"""Multiplier performance-characterisation framework (paper Sec. III).

Mirrors the architecture of the paper's Fig. 3: an input-stream BRAM feeds
the design under test (a LUT-based generic multiplier placed somewhere on
the device), whose output is captured into an output-stream BRAM; an FSM
sequences the test and a PLL provides the two clock domains (a fast,
swept ``mult_clk`` for the DUT and a safe ``fsm_clk`` for the supportive
modules).

The harness sweeps clock frequency x device location x multiplicand and
aggregates the observed output errors into the records the error model
(``repro.models.error_model``) is built from.
"""

from .stream import InputStreamBRAM, OutputStreamBRAM, M9K_BITS
from .fsm import CharacterizationFSM, FSMState
from .circuit import CharacterizationCircuit, TestRun
from .harness import (
    CharacterizationConfig,
    PlannedSweep,
    characterize_multiplier,
    error_trace,
    plan_characterization,
)
from .results import CharacterizationRecord, CharacterizationResult

__all__ = [
    "InputStreamBRAM",
    "OutputStreamBRAM",
    "M9K_BITS",
    "CharacterizationFSM",
    "FSMState",
    "CharacterizationCircuit",
    "TestRun",
    "CharacterizationConfig",
    "PlannedSweep",
    "characterize_multiplier",
    "error_trace",
    "plan_characterization",
    "CharacterizationRecord",
    "CharacterizationResult",
]
