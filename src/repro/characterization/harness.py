"""Characterisation sweeps: frequency x location x multiplicand.

Implements the paper's measurement procedure (Sec. III-C): one multiplier
operand is enumerated through (a subset of) its possible values, the other
is stimulated with a uniform random stream; the circuit is re-placed at
several device locations; the capture clock is swept across and beyond the
tool-reported Fmax.

Performance notes (per the hpc-parallel guides): the transition timing
simulation is the hot path and is independent of the capture frequency,
so each simulated stream is reused across the whole frequency sweep —
captured at every frequency in one batched NumPy pass; and multiple
multiplicand segments are concatenated into one stream so the per-call
overhead of the level loop is amortised.  Segment-boundary transitions
(where the fixed operand artificially "switches") are masked out of the
statistics — in hardware the constant is set between runs, not streamed.

The sweep itself is sharded per ``(location, multiplicand-chunk)`` and
dispatched through :mod:`repro.parallel.engine`: pass ``jobs`` (or set
``REPRO_JOBS``) to fan the shards out over a process pool.  Results are
bit-identical at any worker count — stimulus streams are drawn up front
in serial order and every capture derives its jitter generator from an
explicit seed path.  Shard failures are retried and, if persistent,
quarantined per the active :class:`~repro.config.ResilienceSettings`
(see ``docs/resilience.md``); recovered sweeps are — by the same
determinism argument — bit-identical to undisturbed ones.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

import numpy as np

from ..config import ResilienceSettings, get_resilience_settings
from ..errors import CharacterizationError
from ..fabric.device import FPGADevice
from ..faults import FaultPlan
from ..obs import runtime as obs
from ..parallel.cache import PlacedDesignCache, multiplier_netlist
from ..parallel.engine import Shard, SweepPlan, run_sweep
from ..parallel.jobs import resolve_jobs
from ..rng import SeedTree
from ..synthesis.flow import SynthesisFlow
from .circuit import CharacterizationCircuit, TestRun
from .results import CharacterizationResult

if TYPE_CHECKING:
    from ..parallel.executors import ShardExecutor

__all__ = [
    "CharacterizationConfig",
    "PlannedSweep",
    "characterize_multiplier",
    "error_trace",
    "plan_characterization",
]


@dataclass(frozen=True)
class CharacterizationConfig:
    """Sweep configuration.

    Attributes
    ----------
    freqs_mhz:
        Clock frequencies to request from the PLL.
    n_samples:
        Capture cycles per (multiplicand, location) cell.  The paper used
        29 400; benches scale this down.
    multiplicands:
        Fixed-operand values; ``None`` enumerates the full coefficient
        range (the paper's procedure).
    n_locations:
        Number of placement anchors probed across the die.
    segment_chunk:
        Multiplicand segments fused into one timing simulation.
    """

    freqs_mhz: tuple[float, ...] = (270.0, 290.0, 310.0, 330.0, 350.0)
    n_samples: int = 1000
    multiplicands: tuple[int, ...] | None = None
    n_locations: int = 2
    segment_chunk: int = 8

    def __post_init__(self) -> None:
        if not self.freqs_mhz:
            raise CharacterizationError("at least one frequency required")
        if any(f <= 0 for f in self.freqs_mhz):
            raise CharacterizationError("frequencies must be positive")
        if self.n_samples < 2:
            raise CharacterizationError("n_samples must be >= 2")
        if self.n_locations < 1:
            raise CharacterizationError("n_locations must be >= 1")
        if self.segment_chunk < 1:
            raise CharacterizationError("segment_chunk must be >= 1")


def _resolve_multiplicands(config: CharacterizationConfig, w_coeff: int) -> np.ndarray:
    if config.multiplicands is None:
        return np.arange(1 << w_coeff, dtype=np.int64)
    m = np.asarray(config.multiplicands, dtype=np.int64)
    if m.size == 0:
        raise CharacterizationError("empty multiplicand list")
    if m.min() < 0 or m.max() >= (1 << w_coeff):
        raise CharacterizationError(
            f"multiplicands outside the {w_coeff}-bit range"
        )
    return m


@dataclass(frozen=True)
class PlannedSweep:
    """Deterministic sweep decomposition, before any execution.

    The pure planning half of :func:`characterize_multiplier`: the
    deduped config, the :class:`~repro.parallel.engine.SweepPlan`, the
    placement anchors, the resolved multiplicand axis and the fully
    stimulus-laden shards.  Because planning is execution-free, two calls
    with the same ``(device, geometry, config, seed)`` yield byte-equal
    shard descriptors — the property the distributed fabric's descriptor
    regression pins across executors.
    """

    config: CharacterizationConfig
    plan: SweepPlan
    locations: tuple[tuple[int, int], ...]
    multiplicands: np.ndarray
    shards: tuple[Shard, ...]


def plan_characterization(
    device: FPGADevice,
    w_data: int,
    w_coeff: int,
    config: CharacterizationConfig | None = None,
    seed: int = 0,
) -> PlannedSweep:
    """Plan one characterisation sweep without executing anything.

    Performs the PLL frequency dedupe, anchor selection and the serial
    up-front stimulus draw, exactly as :func:`characterize_multiplier`
    does before dispatching — that function plans through here, so a
    plan in hand is *the* plan a sweep would run.
    """
    if config is None:
        config = CharacterizationConfig()
    tree = SeedTree(seed).child("characterization", f"{w_data}x{w_coeff}")
    multiplicands = _resolve_multiplicands(config, w_coeff)

    # The PLL can only hit a frequency grid; distinct requests may collapse
    # onto one achievable clock.  Dedupe up front (keep the first request)
    # so the result's frequency axis is strictly ascending.
    pll = device.family.pll
    seen: set[float] = set()
    freq_requests: list[float] = []
    for f in sorted(config.freqs_mhz):
        achieved_f = round(pll.synthesize(f).achieved_mhz, 6)
        if achieved_f not in seen:
            seen.add(achieved_f)
            freq_requests.append(f)
    config = replace(config, freqs_mhz=tuple(freq_requests))

    flow = SynthesisFlow(device)
    locations = tuple(
        flow.available_anchors(
            multiplier_netlist(w_data, w_coeff), config.n_locations
        )
    )

    seg_len = config.n_samples + 1  # one extra word to form n_samples transitions
    achieved = [pll.synthesize(f).achieved_mhz for f in config.freqs_mhz]
    # The harness fuses several multiplicand segments into one stream (a
    # software batching optimisation); the stream buffers are sized for
    # the fused length — in hardware each segment is its own BRAM fill,
    # so no single run exceeds the physical depth.
    plan = SweepPlan(
        w_data=w_data,
        w_coeff=w_coeff,
        seed=seed,
        freqs_mhz=config.freqs_mhz,
        achieved_mhz=tuple(achieved),
        n_samples=config.n_samples,
        max_stream_depth=max(32768, seg_len * config.segment_chunk),
    )

    # Draw every shard's stimulus up front, in the serial order of the
    # per-location stream, so sharding cannot perturb the numbers.  Each
    # multiplicand gets its own contiguous segment of uniform random data.
    n_m = multiplicands.shape[0]
    shards: list[Shard] = []
    for li, loc in enumerate(locations):
        stim_rng = tree.rng("stimulus", str(loc))
        for start in range(0, n_m, config.segment_chunk):
            chunk = multiplicands[start : start + config.segment_chunk]
            stream = stim_rng.integers(
                0, 1 << w_data, size=seg_len * chunk.shape[0], dtype=np.int64
            )
            shards.append(
                Shard(
                    li=li,
                    location=loc,
                    start=start,
                    multiplicands=chunk,
                    stimulus=stream,
                )
            )

    return PlannedSweep(
        config=config,
        plan=plan,
        locations=locations,
        multiplicands=multiplicands,
        shards=tuple(shards),
    )


def characterize_multiplier(
    device: FPGADevice,
    w_data: int,
    w_coeff: int,
    config: CharacterizationConfig | None = None,
    seed: int = 0,
    jobs: int | None = None,
    cache: PlacedDesignCache | None = None,
    resilience: ResilienceSettings | None = None,
    faults: FaultPlan | None = None,
    executor: "str | ShardExecutor | None" = None,
) -> CharacterizationResult:
    """Run a full characterisation sweep of one multiplier geometry.

    Returns the per-(location, multiplicand, frequency) error-statistic
    grids.  Deterministic in ``(device.serial, seed, config)`` — the
    ``jobs`` worker count (default serial; ``None`` consults
    ``REPRO_JOBS``), the ``executor`` topology, and shard retries all
    change wall-clock only, never the numbers: every path re-runs the
    identical pure computation.

    Parameters
    ----------
    jobs:
        Process-pool workers for the ``(location, chunk)`` shards.
    cache:
        Placed-design cache for the per-location circuit placements;
        ``None`` uses the process-wide default.
    resilience:
        Retry/timeout/degradation policy for shard failures; ``None``
        uses the process-wide :func:`repro.config.get_resilience_settings`.
        With ``allow_degraded`` set, quarantined shards leave NaN cells in
        the grids and the sweep's ``result.outcome`` records them;
        otherwise an incomplete sweep raises
        :class:`~repro.errors.SweepFailedError`.
    faults:
        Chaos plan to inject into the sweep (tests/drills); ``None``
        consults ``REPRO_FAULTS``.
    executor:
        First-attempt execution strategy for the shards (``pool`` /
        ``serial`` / ``file-queue`` or a constructed
        :class:`~repro.parallel.executors.ShardExecutor`); ``None``
        consults ``REPRO_EXECUTOR`` (default: the in-process pool).
    """
    t0 = time.perf_counter()
    with obs.span(
        "characterize.sweep", w_data=w_data, w_coeff=w_coeff, seed=seed
    ) as span:
        result = _characterize_multiplier_impl(
            device, w_data, w_coeff, config=config, seed=seed, jobs=jobs,
            cache=cache, resilience=resilience, faults=faults,
            executor=executor,
        )
        span.set(
            locations=len(result.locations),
            frequencies=int(result.freqs_mhz.shape[0]),
            status=result.outcome.status if result.outcome is not None else "",
        )
    obs.counter_add("characterize.sweeps")
    obs.observe("characterize.sweep_seconds", time.perf_counter() - t0)
    return result


def _characterize_multiplier_impl(
    device: FPGADevice,
    w_data: int,
    w_coeff: int,
    config: CharacterizationConfig | None = None,
    seed: int = 0,
    jobs: int | None = None,
    cache: PlacedDesignCache | None = None,
    resilience: ResilienceSettings | None = None,
    faults: FaultPlan | None = None,
    executor: "str | ShardExecutor | None" = None,
) -> CharacterizationResult:
    n_jobs = resolve_jobs(jobs)
    settings = resilience if resilience is not None else get_resilience_settings()
    planned = plan_characterization(device, w_data, w_coeff, config=config, seed=seed)
    config = planned.config
    plan = planned.plan
    locations = planned.locations
    multiplicands = planned.multiplicands
    shards = list(planned.shards)

    n_f = len(config.freqs_mhz)
    n_m = multiplicands.shape[0]
    n_l = len(locations)
    variance = np.zeros((n_l, n_m, n_f))
    mean = np.zeros((n_l, n_m, n_f))
    rate = np.zeros((n_l, n_m, n_f))

    outcome = run_sweep(
        device, plan, shards, jobs=n_jobs, cache=cache,
        resilience=settings, faults=faults, executor=executor,
    )
    outcome.raise_for_status(allow_degraded=settings.allow_degraded)
    for shard, result in zip(shards, outcome.results):
        stop = shard.start + shard.multiplicands.shape[0]
        if result is None:
            # Quarantined shard in an allow_degraded sweep: NaN, never
            # zeros — a zero is a legitimate "no errors seen" statistic.
            variance[shard.li, shard.start : stop, :] = np.nan
            mean[shard.li, shard.start : stop, :] = np.nan
            rate[shard.li, shard.start : stop, :] = np.nan
        else:
            variance[result.li, result.start : stop, :] = result.variance
            mean[result.li, result.start : stop, :] = result.mean
            rate[result.li, result.start : stop, :] = result.error_rate

    freqs = np.asarray(plan.achieved_mhz, dtype=float)
    return CharacterizationResult(
        w_data=w_data,
        w_coeff=w_coeff,
        device_serial=device.serial,
        freqs_mhz=freqs,
        multiplicands=multiplicands,
        locations=locations,
        variance=variance,
        mean=mean,
        error_rate=rate,
        n_samples=config.n_samples,
        outcome=outcome,
    )


def error_trace(
    device: FPGADevice,
    multiplicand: int,
    freq_mhz: float,
    n_samples: int,
    w_data: int = 8,
    w_coeff: int = 8,
    location: tuple[int, int] = (0, 0),
    seed: int = 0,
) -> TestRun:
    """Single-run error trace for one multiplicand/frequency/location.

    This is the paper's Fig. 4 measurement: the per-cycle error sequence
    (and, from it, the error histogram) of one over-clocked run.
    """
    circuit = CharacterizationCircuit(device, w_data, w_coeff, anchor=location, seed=seed)
    tree = SeedTree(seed).child("trace", str(location))
    stim = tree.rng("stimulus").integers(0, 1 << w_data, size=n_samples + 1, dtype=np.int64)
    return circuit.run(multiplicand, stim, freq_mhz, tree.rng("capture", f"{freq_mhz}"))
