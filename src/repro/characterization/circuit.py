"""The characterisation circuit: Fig. 3 assembled.

One :class:`CharacterizationCircuit` owns a placed design under test on a
specific device plus the supportive modules (stream BRAMs, FSM, PLL).  Its
:meth:`run` executes one test: load the stimulus, clock the DUT at the
requested (PLL-achievable) frequency, capture the outputs, return them to
the host side.

The heavy lifting — what the silicon does — is the transition timing
simulation plus the jittered register-capture model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from typing import Sequence

from ..errors import CharacterizationError
from ..fabric.device import FPGADevice
from ..netlist.core import EvalScratch, bits_from_ints
from ..parallel.cache import PlacedDesignCache, get_default_cache
from ..synthesis.flow import PlacedDesign
from ..timing.capture import BatchCaptureResult, capture_stream, capture_stream_batch
from ..timing.simulator import TransitionTimingResult, simulate_transitions
from .fsm import CharacterizationFSM
from .stream import InputStreamBRAM, OutputStreamBRAM

__all__ = ["CharacterizationCircuit", "TestRun"]


@dataclass(frozen=True)
class TestRun:
    """Host-retrieved outcome of one characterisation run.

    Attributes
    ----------
    multiplicand:
        The fixed operand value of this run.
    freq_mhz:
        The achieved (PLL) DUT clock frequency.
    captured:
        The products the output BRAM recorded, one per capture cycle.
    expected:
        The exact products for the same stimulus.
    """

    multiplicand: int
    freq_mhz: float
    captured: np.ndarray
    expected: np.ndarray

    @property
    def errors(self) -> np.ndarray:
        """Signed numeric error per capture cycle."""
        return self.captured - self.expected

    @property
    def error_rate(self) -> float:
        return float((self.captured != self.expected).mean()) if self.captured.size else 0.0

    @property
    def error_variance(self) -> float:
        return float(self.errors.var()) if self.captured.size else 0.0

    @property
    def error_mean(self) -> float:
        return float(self.errors.mean()) if self.captured.size else 0.0


class CharacterizationCircuit:
    """A placed multiplier-under-test with its supportive harness.

    Parameters
    ----------
    device:
        The die hosting the circuit.
    w_data:
        Width of the streamed (random) operand.
    w_coeff:
        Width of the fixed operand (the multiplicand under test).
    anchor:
        Placement location of the DUT — the sweep variable of Fig. 4.
    seed:
        Synthesis seed for this instantiation.
    cache:
        Placed-design cache to place through; ``None`` uses the
        process-wide default.  Identical geometry/anchor/seed requests
        reuse the same placement instead of re-running synthesis.
    """

    def __init__(
        self,
        device: FPGADevice,
        w_data: int,
        w_coeff: int,
        anchor: tuple[int, int] = (0, 0),
        seed: int = 0,
        fsm_clk_mhz: float = 50.0,
        max_stream_depth: int = 32768,
        cache: PlacedDesignCache | None = None,
    ) -> None:
        self.device = device
        self.w_data = int(w_data)
        self.w_coeff = int(w_coeff)
        if cache is None:
            cache = get_default_cache()
        self.placed: PlacedDesign = cache.get_or_place(
            device, self.w_data, self.w_coeff, anchor, seed
        )
        self.fsm = CharacterizationFSM(fsm_clk_mhz=fsm_clk_mhz)
        self.input_bram = InputStreamBRAM(width=self.w_data, depth=max_stream_depth)
        self.output_bram = OutputStreamBRAM(
            width=self.w_data + self.w_coeff, depth=max_stream_depth
        )
        self.pll = device.family.pll

    # ------------------------------------------------------------------
    def simulate_stream(
        self,
        multiplicand: int,
        stimulus: np.ndarray,
        scratch: EvalScratch | None = None,
    ) -> TransitionTimingResult:
        """Run the DUT-side timing simulation for one fixed multiplicand.

        Exposed separately so the harness can reuse one (expensive)
        simulation across a whole frequency sweep — the physical analogue
        being that the logic's settling behaviour does not depend on the
        capture clock.  ``scratch`` reuses simulation temporaries across
        repeated same-shape streams.
        """
        if not (0 <= multiplicand < (1 << self.w_coeff)):
            raise CharacterizationError(
                f"multiplicand {multiplicand} outside {self.w_coeff}-bit range"
            )
        self.input_bram.load(stimulus)
        data = self.input_bram.read_all()
        if data.shape[0] < 2:
            raise CharacterizationError("stimulus must contain at least 2 words")
        inputs = {
            "a": bits_from_ints(data, self.w_data),
            "b": bits_from_ints(np.full(data.shape[0], multiplicand), self.w_coeff),
        }
        return simulate_transitions(
            self.placed.netlist,
            inputs,
            self.placed.node_delay,
            self.placed.edge_delay,
            scratch=scratch,
        )

    def capture(
        self,
        timing: TransitionTimingResult,
        multiplicand: int,
        freq_mhz: float,
        capture_rng: np.random.Generator,
    ) -> TestRun:
        """Capture a simulated stream at one (PLL-achievable) frequency."""
        self.fsm.validate_dut_clock(freq_mhz)
        clock = self.pll.synthesize(freq_mhz)
        self.fsm.run_sequence()
        result = capture_stream(
            timing,
            "p",
            clock.achieved_mhz,
            setup_ns=self.placed.setup_ns,
            jitter=self.pll.jitter,
            rng=capture_rng,
        )
        self.output_bram.write_all(result.captured_ints())
        captured = self.output_bram.retrieve()
        return TestRun(
            multiplicand=multiplicand,
            freq_mhz=clock.achieved_mhz,
            captured=captured,
            expected=result.ideal_ints(),
        )

    def capture_batch(
        self,
        timing: TransitionTimingResult,
        achieved_mhz: Sequence[float],
        rngs: Sequence[np.random.Generator],
    ) -> BatchCaptureResult:
        """Capture one simulated stream at several achieved frequencies.

        The frequencies must already be PLL-achieved values (the sweep
        planner synthesises each requested clock exactly once); one FSM
        test sequence runs per frequency, as in hardware.  Per-frequency
        results are bit-identical to :meth:`capture` with the same rng.
        """
        if len(achieved_mhz) != len(rngs):
            raise CharacterizationError("one capture rng required per frequency")
        for f in achieved_mhz:
            self.fsm.validate_dut_clock(f)
            self.fsm.run_sequence()
        if timing.n_transitions > self.output_bram.depth:
            raise CharacterizationError(
                f"capture of {timing.n_transitions} cycles exceeds output "
                f"BRAM depth {self.output_bram.depth}"
            )
        return capture_stream_batch(
            timing,
            "p",
            achieved_mhz,
            setup_ns=self.placed.setup_ns,
            jitter=self.pll.jitter,
            rngs=rngs,
        )

    def run(
        self,
        multiplicand: int,
        stimulus: np.ndarray,
        freq_mhz: float,
        capture_rng: np.random.Generator,
    ) -> TestRun:
        """Convenience: simulate and capture a single run."""
        timing = self.simulate_stream(multiplicand, stimulus)
        return self.capture(timing, multiplicand, freq_mhz, capture_rng)
