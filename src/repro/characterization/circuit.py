"""The characterisation circuit: Fig. 3 assembled.

One :class:`CharacterizationCircuit` owns a placed design under test on a
specific device plus the supportive modules (stream BRAMs, FSM, PLL).  Its
:meth:`run` executes one test: load the stimulus, clock the DUT at the
requested (PLL-achievable) frequency, capture the outputs, return them to
the host side.

The heavy lifting — what the silicon does — is the transition timing
simulation plus the jittered register-capture model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import CharacterizationError
from ..fabric.device import FPGADevice
from ..netlist.core import bits_from_ints
from ..netlist.multipliers import unsigned_array_multiplier
from ..synthesis.flow import PlacedDesign, SynthesisFlow
from ..timing.capture import capture_stream
from ..timing.simulator import TransitionTimingResult, simulate_transitions
from .fsm import CharacterizationFSM
from .stream import InputStreamBRAM, OutputStreamBRAM

__all__ = ["CharacterizationCircuit", "TestRun"]


@dataclass(frozen=True)
class TestRun:
    """Host-retrieved outcome of one characterisation run.

    Attributes
    ----------
    multiplicand:
        The fixed operand value of this run.
    freq_mhz:
        The achieved (PLL) DUT clock frequency.
    captured:
        The products the output BRAM recorded, one per capture cycle.
    expected:
        The exact products for the same stimulus.
    """

    multiplicand: int
    freq_mhz: float
    captured: np.ndarray
    expected: np.ndarray

    @property
    def errors(self) -> np.ndarray:
        """Signed numeric error per capture cycle."""
        return self.captured - self.expected

    @property
    def error_rate(self) -> float:
        return float((self.captured != self.expected).mean()) if self.captured.size else 0.0

    @property
    def error_variance(self) -> float:
        return float(self.errors.var()) if self.captured.size else 0.0

    @property
    def error_mean(self) -> float:
        return float(self.errors.mean()) if self.captured.size else 0.0


class CharacterizationCircuit:
    """A placed multiplier-under-test with its supportive harness.

    Parameters
    ----------
    device:
        The die hosting the circuit.
    w_data:
        Width of the streamed (random) operand.
    w_coeff:
        Width of the fixed operand (the multiplicand under test).
    anchor:
        Placement location of the DUT — the sweep variable of Fig. 4.
    seed:
        Synthesis seed for this instantiation.
    """

    def __init__(
        self,
        device: FPGADevice,
        w_data: int,
        w_coeff: int,
        anchor: tuple[int, int] = (0, 0),
        seed: int = 0,
        fsm_clk_mhz: float = 50.0,
        max_stream_depth: int = 32768,
    ) -> None:
        self.device = device
        self.w_data = int(w_data)
        self.w_coeff = int(w_coeff)
        netlist = unsigned_array_multiplier(self.w_data, self.w_coeff)
        self.placed: PlacedDesign = SynthesisFlow(device).run(
            netlist, anchor=anchor, seed=seed
        )
        self.fsm = CharacterizationFSM(fsm_clk_mhz=fsm_clk_mhz)
        self.input_bram = InputStreamBRAM(width=self.w_data, depth=max_stream_depth)
        self.output_bram = OutputStreamBRAM(
            width=self.w_data + self.w_coeff, depth=max_stream_depth
        )
        self.pll = device.family.pll

    # ------------------------------------------------------------------
    def simulate_stream(self, multiplicand: int, stimulus: np.ndarray) -> TransitionTimingResult:
        """Run the DUT-side timing simulation for one fixed multiplicand.

        Exposed separately so the harness can reuse one (expensive)
        simulation across a whole frequency sweep — the physical analogue
        being that the logic's settling behaviour does not depend on the
        capture clock.
        """
        if not (0 <= multiplicand < (1 << self.w_coeff)):
            raise CharacterizationError(
                f"multiplicand {multiplicand} outside {self.w_coeff}-bit range"
            )
        self.input_bram.load(stimulus)
        data = self.input_bram.read_all()
        if data.shape[0] < 2:
            raise CharacterizationError("stimulus must contain at least 2 words")
        inputs = {
            "a": bits_from_ints(data, self.w_data),
            "b": bits_from_ints(np.full(data.shape[0], multiplicand), self.w_coeff),
        }
        return simulate_transitions(
            self.placed.netlist, inputs, self.placed.node_delay, self.placed.edge_delay
        )

    def capture(
        self,
        timing: TransitionTimingResult,
        multiplicand: int,
        freq_mhz: float,
        capture_rng: np.random.Generator,
    ) -> TestRun:
        """Capture a simulated stream at one (PLL-achievable) frequency."""
        self.fsm.validate_dut_clock(freq_mhz)
        clock = self.pll.synthesize(freq_mhz)
        self.fsm.run_sequence()
        result = capture_stream(
            timing,
            "p",
            clock.achieved_mhz,
            setup_ns=self.placed.setup_ns,
            jitter=self.pll.jitter,
            rng=capture_rng,
        )
        self.output_bram.write_all(result.captured_ints())
        captured = self.output_bram.retrieve()
        return TestRun(
            multiplicand=multiplicand,
            freq_mhz=clock.achieved_mhz,
            captured=captured,
            expected=result.ideal_ints(),
        )

    def run(
        self,
        multiplicand: int,
        stimulus: np.ndarray,
        freq_mhz: float,
        capture_rng: np.random.Generator,
    ) -> TestRun:
        """Convenience: simulate and capture a single run."""
        timing = self.simulate_stream(multiplicand, stimulus)
        return self.capture(timing, multiplicand, freq_mhz, capture_rng)
