"""Characterisation result containers and persistence.

The central product is the grid of error statistics per
``(location, multiplicand, frequency)`` — the raw material for the error
model E(m, f) of paper Fig. 5 and the prior of Sec. V-B.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from ..errors import CharacterizationError

if TYPE_CHECKING:
    from ..parallel.retry import SweepOutcome

__all__ = ["CharacterizationRecord", "CharacterizationResult"]


@dataclass(frozen=True)
class CharacterizationRecord:
    """Error statistics of one (location, multiplicand, frequency) cell."""

    location: tuple[int, int]
    multiplicand: int
    freq_mhz: float
    variance: float
    mean: float
    error_rate: float
    n_samples: int


@dataclass(frozen=True)
class CharacterizationResult:
    """Full characterisation sweep of one multiplier geometry on one die.

    Attributes
    ----------
    w_data, w_coeff:
        Multiplier geometry (streamed operand x fixed operand widths).
    device_serial:
        Which die the data belongs to — the data is *device specific*.
    freqs_mhz:
        Achieved clock frequencies, shape ``(F,)``.
    multiplicands:
        Fixed-operand values characterised, shape ``(M,)``.
    locations:
        Placement anchors characterised, length ``L``.
    variance, mean, error_rate:
        Statistic grids of shape ``(L, M, F)``.  In a *degraded* sweep
        (see ``outcome``) the cells of quarantined shards are NaN.
    n_samples:
        Capture cycles contributing to each cell.
    outcome:
        The :class:`~repro.parallel.retry.SweepOutcome` of the sweep that
        produced the grids — per-shard attempt counts, retries and
        quarantine dispositions.  Execution provenance, not data: it is
        excluded from equality and from the ``.npz`` archive (the
        workspace persists it as a JSON sidecar instead), and is ``None``
        on results loaded from disk.
    """

    w_data: int
    w_coeff: int
    device_serial: int
    freqs_mhz: np.ndarray
    multiplicands: np.ndarray
    locations: tuple[tuple[int, int], ...]
    variance: np.ndarray
    mean: np.ndarray
    error_rate: np.ndarray
    n_samples: int
    outcome: "SweepOutcome | None" = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        l, m, f = len(self.locations), len(self.multiplicands), len(self.freqs_mhz)
        for name in ("variance", "mean", "error_rate"):
            arr = getattr(self, name)
            if arr.shape != (l, m, f):
                raise CharacterizationError(
                    f"{name} grid shape {arr.shape} != ({l}, {m}, {f})"
                )

    # ------------------------------------------------------------------
    @property
    def degraded(self) -> bool:
        """Were any shards quarantined (NaN cells in the grids)?

        Works both on fresh results (via ``outcome``) and on archives
        loaded from disk, where the NaN cells themselves are the record.
        """
        if self.outcome is not None and self.outcome.status != "complete":
            return True
        return not bool(np.all(np.isfinite(self.variance)))

    # ------------------------------------------------------------------
    def location_index(self, location: tuple[int, int]) -> int:
        try:
            return self.locations.index(tuple(location))
        except ValueError:
            raise CharacterizationError(
                f"location {location} not characterised; have {self.locations}"
            ) from None

    def variance_grid(self, location: tuple[int, int] | None = None) -> np.ndarray:
        """E(m, f) variance grid, shape ``(M, F)``.

        ``location=None`` averages over locations (a whole-device model);
        otherwise the grid for the given anchor is returned (a placement-
        specific model).
        """
        if location is None:
            return self.variance.mean(axis=0)
        return self.variance[self.location_index(location)]

    def mean_grid(self, location: tuple[int, int] | None = None) -> np.ndarray:
        if location is None:
            return self.mean.mean(axis=0)
        return self.mean[self.location_index(location)]

    def records(self) -> list[CharacterizationRecord]:
        """Flatten the grids into per-cell records."""
        out = []
        for li, loc in enumerate(self.locations):
            for mi, m in enumerate(self.multiplicands):
                for fi, f in enumerate(self.freqs_mhz):
                    out.append(
                        CharacterizationRecord(
                            location=loc,
                            multiplicand=int(m),
                            freq_mhz=float(f),
                            variance=float(self.variance[li, mi, fi]),
                            mean=float(self.mean[li, mi, fi]),
                            error_rate=float(self.error_rate[li, mi, fi]),
                            n_samples=self.n_samples,
                        )
                    )
        return out

    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Persist to an ``.npz`` archive."""
        np.savez_compressed(
            Path(path),
            w_data=self.w_data,
            w_coeff=self.w_coeff,
            device_serial=self.device_serial,
            freqs_mhz=self.freqs_mhz,
            multiplicands=self.multiplicands,
            locations=np.asarray(self.locations, dtype=np.int64),
            variance=self.variance,
            mean=self.mean,
            error_rate=self.error_rate,
            n_samples=self.n_samples,
        )

    @classmethod
    def load(cls, path: str | Path) -> "CharacterizationResult":
        """Load a result saved with :meth:`save`."""
        p = Path(path)
        if not p.exists():
            raise CharacterizationError(f"no characterisation archive at {p}")
        with np.load(p) as z:
            return cls(
                w_data=int(z["w_data"]),
                w_coeff=int(z["w_coeff"]),
                device_serial=int(z["device_serial"]),
                freqs_mhz=z["freqs_mhz"],
                multiplicands=z["multiplicands"],
                locations=tuple(tuple(int(v) for v in row) for row in z["locations"]),
                variance=z["variance"],
                mean=z["mean"],
                error_rate=z["error_rate"],
                n_samples=int(z["n_samples"]),
            )
