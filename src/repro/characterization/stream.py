"""Stream BRAM models (the "input stream" / "output stream" blocks of Fig. 3).

A Cyclone III memory block (M9K) holds 9 216 bits; a stream wider or deeper
than one block stitches several blocks together.  The models enforce
capacity and word-width like the real blocks would, count the M9K budget,
and hand data across the two clock domains (the real circuit uses the
BRAMs' true-dual-port mode for exactly this hand-off).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import CharacterizationError

__all__ = ["M9K_BITS", "InputStreamBRAM", "OutputStreamBRAM"]

#: Capacity of one Cyclone III M9K block in bits.
M9K_BITS = 9216


def _blocks_needed(depth: int, width: int) -> int:
    """M9K blocks required for a ``depth`` x ``width`` stream buffer."""
    if depth < 1 or width < 1:
        raise CharacterizationError("stream dimensions must be >= 1")
    return max(1, -(-(depth * width) // M9K_BITS))  # ceil division


@dataclass
class InputStreamBRAM:
    """Stimulus buffer: preloaded by the host, drained by the DUT clock.

    Parameters
    ----------
    width:
        Word width in bits.
    depth:
        Number of words the buffer can hold.
    """

    width: int
    depth: int
    _data: np.ndarray | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self.n_blocks = _blocks_needed(self.depth, self.width)

    def load(self, words: np.ndarray) -> None:
        """Host-side preload over JTAG.  Words must fit width and depth."""
        w = np.asarray(words, dtype=np.int64)
        if w.ndim != 1:
            raise CharacterizationError("stream data must be one-dimensional")
        if w.shape[0] > self.depth:
            raise CharacterizationError(
                f"stream of {w.shape[0]} words exceeds BRAM depth {self.depth}"
            )
        if w.size and (w.min() < 0 or w.max() >= (1 << self.width)):
            raise CharacterizationError(
                f"stream values outside [0, 2^{self.width})"
            )
        self._data = w.copy()

    @property
    def loaded(self) -> bool:
        return self._data is not None

    def read_all(self) -> np.ndarray:
        """DUT-side sequential read-out of the loaded stimulus."""
        if self._data is None:
            raise CharacterizationError("input BRAM read before load")
        return self._data

    def clear(self) -> None:
        self._data = None


@dataclass
class OutputStreamBRAM:
    """Capture buffer: filled at the DUT clock, drained by the host."""

    width: int
    depth: int
    _data: np.ndarray | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self.n_blocks = _blocks_needed(self.depth, self.width)

    def write_all(self, words: np.ndarray) -> None:
        """DUT-side capture of a whole run."""
        w = np.asarray(words, dtype=np.int64)
        if w.shape[0] > self.depth:
            raise CharacterizationError(
                f"capture of {w.shape[0]} words exceeds BRAM depth {self.depth}"
            )
        # Width check is modular: the physical port truncates.
        self._data = (w & ((1 << self.width) - 1)).copy()

    def retrieve(self) -> np.ndarray:
        """Host-side retrieval over JTAG; clears the buffer."""
        if self._data is None:
            raise CharacterizationError("output BRAM retrieved before any capture")
        out = self._data
        self._data = None
        return out
