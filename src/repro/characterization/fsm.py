"""Controller FSM of the characterisation circuit (Fig. 3).

The FSM lives in the safe ``fsm_clk`` domain and sequences one test run:

``IDLE -> LOAD -> ARM -> RUN -> DRAIN -> DONE``

The paper stresses that "special care has been given ... to ensure that
the critical path is always within the design under test" (Sec. III-B): the
supportive modules must stay comfortably error-free while the DUT clock is
swept deep into the error regime.  The model enforces that invariant
explicitly — configuring an ``fsm_clk`` above the supportive-logic Fmax is
a hard error, because measurements taken that way would be garbage.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..errors import CharacterizationError

__all__ = ["FSMState", "CharacterizationFSM"]

#: STA Fmax of the supportive logic (counters, BRAM interface) — shallow
#: logic on dedicated paths, far above any interesting DUT frequency.
SUPPORT_LOGIC_FMAX_MHZ = 450.0


class FSMState(enum.Enum):
    IDLE = "idle"
    LOAD = "load"
    ARM = "arm"
    RUN = "run"
    DRAIN = "drain"
    DONE = "done"


# repro: allow[DT005] -- fixed transition table; written once at import, only read thereafter
_TRANSITIONS: dict[FSMState, FSMState] = {
    FSMState.IDLE: FSMState.LOAD,
    FSMState.LOAD: FSMState.ARM,
    FSMState.ARM: FSMState.RUN,
    FSMState.RUN: FSMState.DRAIN,
    FSMState.DRAIN: FSMState.DONE,
    FSMState.DONE: FSMState.IDLE,
}


@dataclass
class CharacterizationFSM:
    """Test-sequencing FSM with an enforced safe clock domain.

    Parameters
    ----------
    fsm_clk_mhz:
        Frequency of the control/BRAM clock domain.  Must not exceed the
        supportive-logic Fmax.
    """

    fsm_clk_mhz: float = 50.0
    state: FSMState = field(default=FSMState.IDLE)
    completed_runs: int = 0

    def __post_init__(self) -> None:
        if self.fsm_clk_mhz <= 0:
            raise CharacterizationError("fsm clock must be positive")
        if self.fsm_clk_mhz > SUPPORT_LOGIC_FMAX_MHZ:
            raise CharacterizationError(
                f"fsm clock {self.fsm_clk_mhz} MHz exceeds supportive-logic "
                f"Fmax {SUPPORT_LOGIC_FMAX_MHZ} MHz; measurements would be "
                "corrupted by the controller itself"
            )

    def advance(self) -> FSMState:
        """Advance to the next state of the run sequence."""
        self.state = _TRANSITIONS[self.state]
        if self.state == FSMState.DONE:
            self.completed_runs += 1
        return self.state

    def require(self, expected: FSMState) -> None:
        """Assert the FSM is in ``expected`` (protocol guard)."""
        if self.state is not expected:
            raise CharacterizationError(
                f"FSM protocol violation: expected {expected.value}, "
                f"in {self.state.value}"
            )

    def run_sequence(self) -> list[FSMState]:
        """Drive one complete test sequence, returning the visited states."""
        self.require(FSMState.IDLE)
        visited = []
        while True:
            st = self.advance()
            visited.append(st)
            if st is FSMState.DONE:
                break
        self.advance()  # back to IDLE
        return visited

    def validate_dut_clock(self, mult_clk_mhz: float) -> None:
        """Sanity-check a DUT clock request.

        The DUT clock may exceed the support Fmax (that is the point), but
        it must be a physical frequency.
        """
        if mult_clk_mhz <= 0:
            raise CharacterizationError("DUT clock must be positive")
