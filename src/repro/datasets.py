"""Synthetic datasets for training, testing and characterisation.

The paper's Z^6 -> Z^3 case study is dataset-agnostic (Table I only fixes
the case counts), so the reproduction generates controlled synthetic data:

* :func:`low_rank_gaussian` — data with a known intrinsic dimensionality,
  the canonical linear-projection workload;
* :func:`face_like_patches` — smooth 2-D "eigenface" mixtures for the
  image/vision application examples the paper's introduction motivates;
* :func:`uniform_stream` — the uniform stimulus of the characterisation
  procedure (Sec. III-C).

All continuous datasets are returned scaled into [-1, 1] (max-abs), the
range the fixed-point datapath and the optimiser expect.
"""

from __future__ import annotations

import numpy as np

from .errors import ConfigError

__all__ = ["low_rank_gaussian", "face_like_patches", "uniform_stream", "scale_to_unit"]


def scale_to_unit(x: np.ndarray) -> np.ndarray:
    """Scale an array by its max-abs into [-1, 1] (zero data unchanged)."""
    x = np.asarray(x, dtype=float)
    peak = float(np.abs(x).max()) if x.size else 0.0
    return x / peak if peak > 0 else x


def low_rank_gaussian(
    p: int,
    k_true: int,
    n: int,
    rng: np.random.Generator,
    noise: float = 0.05,
    decay: float = 0.6,
) -> np.ndarray:
    """Zero-mean data of shape ``(p, n)`` with ~``k_true`` strong modes.

    ``X = A Z + noise`` with orthonormal ``A`` (p, k_true), latent
    variances decaying geometrically by ``decay``, and isotropic Gaussian
    noise; finally max-abs scaled to [-1, 1].
    """
    if not (1 <= k_true <= p):
        raise ConfigError(f"require 1 <= k_true <= p, got {k_true}, {p}")
    if n < 2:
        raise ConfigError("need n >= 2")
    if noise < 0 or not (0 < decay <= 1):
        raise ConfigError("invalid noise/decay")
    a = np.linalg.qr(rng.normal(size=(p, k_true)))[0]
    latent_std = decay ** np.arange(k_true)
    z = rng.normal(size=(k_true, n)) * latent_std[:, None]
    x = a @ z + noise * rng.normal(size=(p, n))
    x -= x.mean(axis=1, keepdims=True)
    return scale_to_unit(x)


def face_like_patches(
    height: int,
    width: int,
    n: int,
    rng: np.random.Generator,
    n_modes: int = 4,
    noise: float = 0.03,
) -> np.ndarray:
    """Smooth image patches of shape ``(height * width, n)``.

    Each patch is a random mixture of low-spatial-frequency cosine modes
    (an "eigenface"-style generative model), vectorised column-wise and
    scaled to [-1, 1].  Used by the face-recognition example (the paper's
    Sec. V motivation: "applications with high dimensions (i.e. face
    recognition)").
    """
    if height < 2 or width < 2:
        raise ConfigError("patch dimensions must be >= 2")
    if n_modes < 1:
        raise ConfigError("need at least one mode")
    yy, xx = np.mgrid[0:height, 0:width]
    modes = []
    k = 0
    fy = fx = 0
    while len(modes) < n_modes:
        fy, fx = k // 3, k % 3
        k += 1
        if fy == 0 and fx == 0:
            continue
        mode = np.cos(np.pi * fy * yy / height) * np.cos(np.pi * fx * xx / width)
        modes.append(mode.ravel())
    basis = np.stack(modes, axis=1)  # (h*w, n_modes)
    basis /= np.linalg.norm(basis, axis=0, keepdims=True)
    coeff_std = 0.7 ** np.arange(n_modes)
    coeffs = rng.normal(size=(n_modes, n)) * coeff_std[:, None]
    x = basis @ coeffs + noise * rng.normal(size=(height * width, n))
    x -= x.mean(axis=1, keepdims=True)
    return scale_to_unit(x)


def uniform_stream(
    width_bits: int, n: int, rng: np.random.Generator
) -> np.ndarray:
    """Uniform integer stimulus in ``[0, 2**width_bits)`` of length ``n``."""
    if width_bits < 1:
        raise ConfigError("width_bits must be >= 1")
    if n < 1:
        raise ConfigError("n must be >= 1")
    return rng.integers(0, 1 << width_bits, size=n, dtype=np.int64)
