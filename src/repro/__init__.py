"""repro — reproduction of "Over-Clocking of Linear Projection Designs
Through Device Specific Optimisations" (Duarte & Bouganis, IPDPSW 2014).

The library implements the paper's complete system on a simulated FPGA
substrate:

* :mod:`repro.fabric` — device model with intra-die process variation,
  routing delays, operating conditions, PLL and clock jitter;
* :mod:`repro.netlist` — LUT-level arithmetic generators (generic array
  multipliers, Baugh-Wooley, CCMs, MACs);
* :mod:`repro.timing` — static timing analysis and the over-clocking
  (transition-aware) timing simulator;
* :mod:`repro.synthesis` — placement, conservative tool reports, area
  reports;
* :mod:`repro.characterization` — the multiplier characterisation
  framework (paper Sec. III);
* :mod:`repro.models` — error model E(m, f), area model, coefficient
  prior, run-time model;
* :mod:`repro.core` — KLT, quantisation, Gibbs sampling, objective T,
  Pareto selection and Algorithm 1 (paper Secs. IV-V);
* :mod:`repro.circuits` — the projection datapath and the three
  evaluation domains (paper Sec. VI);
* :mod:`repro.framework` — :class:`~repro.framework.OptimizationFramework`,
  the end-to-end Fig. 2 flow;
* :mod:`repro.eval` — experiment drivers regenerating every figure and
  table of the paper's evaluation;
* :mod:`repro.obs` — opt-in tracing/metrics/profiling across the whole
  pipeline (off by default; never changes the numbers).

Quickstart
----------
>>> from repro import make_device, OptimizationFramework, TableISettings
>>> import numpy as np
>>> from repro.datasets import low_rank_gaussian
>>> device = make_device(serial=42)
>>> settings = TableISettings().scaled(0.02)   # scaled-down demo
>>> fw = OptimizationFramework(device, settings, seed=1)
>>> x = low_rank_gaussian(settings.p, 3, settings.n_train,
...                       np.random.default_rng(0))
>>> designs = fw.optimize(x, beta=4.0).designs  # doctest: +SKIP
"""

from . import obs
from .config import DEFAULT_SEED, TableISettings, TimingConfig
from .errors import ReproError
from .fabric import CYCLONE_III_3C16, FPGADevice, OperatingConditions, make_device
from .framework import OptimizationFramework
from .circuits import Domain

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_SEED",
    "TableISettings",
    "TimingConfig",
    "ReproError",
    "CYCLONE_III_3C16",
    "FPGADevice",
    "OperatingConditions",
    "make_device",
    "OptimizationFramework",
    "Domain",
    "obs",
    "__version__",
]
