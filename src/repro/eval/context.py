"""Shared experiment context.

Several figures consume the same expensive artefacts (device,
characterisation-derived error models, area model, optimised designs).
:class:`ExperimentContext` builds them once per (seed, scale) and caches
them, so a bench session does the heavy work a single time.

``scale`` multiplies the paper's Table-I sample counts; benches default to
a small fraction and EXPERIMENTS.md records the scale each reported number
was produced at.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..characterization.harness import CharacterizationConfig
from ..config import TableISettings
from ..core.design import LinearProjectionDesign
from ..core.optimizer import OptimizationResult
from ..datasets import low_rank_gaussian
from ..fabric.device import FPGADevice, make_device
from ..framework import OptimizationFramework, default_frequency_grid

__all__ = ["ExperimentContext"]

_CONTEXT_CACHE: dict[tuple, "ExperimentContext"] = {}


@dataclass
class ExperimentContext:
    """Everything the figure drivers need, built once.

    Use :meth:`get` to obtain a cached instance.
    """

    seed: int
    scale: float
    settings: TableISettings
    device: FPGADevice
    framework: OptimizationFramework
    x_train: np.ndarray
    x_test: np.ndarray
    _of_results: dict[float, OptimizationResult] = field(default_factory=dict)
    _klt_designs: list[LinearProjectionDesign] | None = None

    @classmethod
    def get(
        cls,
        seed: int = 42,
        scale: float = 0.05,
        device_serial: int | None = None,
        n_char_locations: int = 2,
    ) -> "ExperimentContext":
        """Build (or fetch) the context for ``(seed, scale)``.

        ``scale`` scales Table I's sample counts; 1.0 is the paper's full
        experiment.
        """
        key = (seed, scale, device_serial, n_char_locations)
        if key in _CONTEXT_CACHE:
            return _CONTEXT_CACHE[key]
        settings = TableISettings().scaled(scale)
        device = make_device(device_serial if device_serial is not None else seed)
        char = CharacterizationConfig(
            freqs_mhz=default_frequency_grid(settings.clock_frequency_mhz),
            n_samples=settings.n_characterization,
            multiplicands=None,
            n_locations=n_char_locations,
        )
        framework = OptimizationFramework(
            device, settings, char_config=char, seed=seed
        )
        rng = np.random.default_rng(seed)
        x_all = low_rank_gaussian(
            settings.p, settings.k, settings.n_train + settings.n_test, rng, noise=0.02
        )
        ctx = cls(
            seed=seed,
            scale=scale,
            settings=settings,
            device=device,
            framework=framework,
            x_train=x_all[:, : settings.n_train],
            x_test=x_all[:, settings.n_train :],
        )
        _CONTEXT_CACHE[key] = ctx
        return ctx

    # ------------------------------------------------------------------
    def of_result(self, beta: float | None = None) -> OptimizationResult:
        """Algorithm-1 result for ``beta`` (cached)."""
        b = beta if beta is not None else self.settings.betas[0]
        if b not in self._of_results:
            self._of_results[b] = self.framework.optimize(self.x_train, beta=b)
        return self._of_results[b]

    def klt_designs(self) -> list[LinearProjectionDesign]:
        """KLT baseline designs across the word-length sweep (cached)."""
        if self._klt_designs is None:
            self._klt_designs = self.framework.klt_baselines(self.x_train)
        return self._klt_designs
