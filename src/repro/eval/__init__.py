"""Experiment drivers regenerating every figure/table of the paper.

Each ``figN``/``tableN`` driver returns a plain-dict result holding the
numeric rows/series the corresponding paper figure plots, and
:mod:`repro.eval.report` renders them as ASCII tables.  The benchmark
suite wraps these drivers one-to-one.
"""

from .context import ExperimentContext
from .figures import fig1, fig4, fig5, fig6, fig7, fig8, fig9, fig10, fig11
from .tables import runtime_model_table, table1
from .report import render_series, render_table

__all__ = [
    "ExperimentContext",
    "fig1",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "table1",
    "runtime_model_table",
    "render_series",
    "render_table",
]
