"""Drivers for the paper's Table I and the run-time investigation (Sec. VI-E)."""

from __future__ import annotations

from dataclasses import asdict

import numpy as np

from ..config import TableISettings
from ..models.runtime import PAPER_RUNTIME_MODEL, RuntimeModel
from .context import ExperimentContext

__all__ = ["table1", "runtime_model_table"]


def table1(settings: TableISettings | None = None) -> dict:
    """Table I: the case-study settings, as configured vs as in the paper."""
    paper = TableISettings()
    used = settings or paper
    return {
        "paper": asdict(paper),
        "used": asdict(used),
        "matches_paper": asdict(paper) == asdict(used),
    }


def runtime_model_table(ctx: ExperimentContext, beta: float | None = None) -> dict:
    """Sec. VI-E: the paper's run-time model vs this reproduction's timings.

    * evaluates eq. (7)/(8) at the paper's worked example (expected
      ~1 h 44 m on the authors' Core-i7);
    * aggregates this run's measured per-word-length sampling times from
      the Algorithm-1 record;
    * refits the eq. (8) constants on the measurements and reports both
      exponential fits, so the *shape* (exponential growth in wl) can be
      compared even though the absolute constants are machine-specific.
    """
    settings = ctx.settings
    paper_example_seconds = PAPER_RUNTIME_MODEL.total_seconds(
        wordlengths=list(range(3, 10)), k=3, q=5, n_hyperparams=2, n_freqs=1
    )

    result = ctx.of_result(beta)
    by_wl: dict[int, list[float]] = {}
    for _, wl, seconds in result.sampling_times:
        by_wl.setdefault(wl, []).append(seconds)
    measured = {wl: float(np.mean(v)) for wl, v in sorted(by_wl.items())}

    fitted: RuntimeModel | None = None
    if len(measured) >= 2 and all(v > 0 for v in measured.values()):
        fitted = RuntimeModel.fit(list(measured), list(measured.values()))

    predicted_total = None
    if fitted is not None:
        predicted_total = fitted.total_seconds(
            settings.coeff_wordlengths,
            settings.k,
            settings.q,
            n_hyperparams=1,
            n_freqs=1,
        )

    return {
        "paper_model": {"scale": PAPER_RUNTIME_MODEL.scale, "rate": PAPER_RUNTIME_MODEL.rate},
        "paper_example_seconds": paper_example_seconds,
        "paper_example_quote": "1 hour and 44 minutes",
        "measured_vector_seconds_by_wl": measured,
        "measured_total_seconds": result.total_sampling_seconds,
        "fitted_model": None
        if fitted is None
        else {"scale": fitted.scale, "rate": fitted.rate},
        "predicted_total_seconds_fitted": predicted_total,
        "n_vector_samplings": len(result.sampling_times),
        "expected_vector_samplings": len(settings.coeff_wordlengths)
        * (1 + settings.q * (settings.k - 1)),
    }
