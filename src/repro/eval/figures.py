"""Drivers for every figure of the paper's evaluation.

Each driver returns a dict of numeric series — the same data the paper's
figure plots — plus derived summary statistics used by the benches'
qualitative assertions.  No plotting: the benches print the rows.
"""

from __future__ import annotations

import numpy as np

from ..characterization.harness import CharacterizationConfig, characterize_multiplier, error_trace
from ..circuits.datapath import ProjectionDatapath
from ..circuits.domains import Domain
from ..fabric.jitter import JitterModel
from ..models.area_model import collect_area_samples
from ..models.error_model import build_error_model
from ..models.prior import CoefficientPrior
from ..netlist.core import bits_from_ints
from ..netlist.multipliers import unsigned_array_multiplier
from ..rng import SeedTree
from ..synthesis.flow import SynthesisFlow
from ..timing.capture import capture_stream
from ..timing.simulator import simulate_transitions
from .context import ExperimentContext

__all__ = [
    "fig1",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "headline",
]


# ----------------------------------------------------------------------
def fig1(
    ctx: ExperimentContext,
    w_bits: int = 8,
    freq_lo: float = 150.0,
    freq_hi: float = 480.0,
    freq_step: float = 15.0,
    n_samples: int | None = None,
) -> dict:
    """Fig. 1: error percentage at a generic multiplier's output vs clock.

    Identifies the three landmarks of the paper's conceptual figure: the
    tool-reported limit fA, the highest error-free frequency fB (end of
    the Delta-f1 regime) and the frequency fC past which results stop
    being meaningful (here: cycle error rate >= 50%).
    """
    n = n_samples if n_samples is not None else max(400, ctx.settings.n_characterization)
    tree = SeedTree(ctx.seed).child("fig1")
    flow = SynthesisFlow(ctx.device)
    placed = flow.run(unsigned_array_multiplier(w_bits, w_bits), anchor=(0, 0), seed=ctx.seed)

    rng = tree.rng("stimulus")
    a = rng.integers(0, 1 << w_bits, size=n + 1)
    b = rng.integers(0, 1 << w_bits, size=n + 1)
    inputs = {
        "a": bits_from_ints(a, w_bits),
        "b": bits_from_ints(b, w_bits),
    }
    timing = simulate_transitions(placed.netlist, inputs, placed.node_delay, placed.edge_delay)

    freqs = np.arange(freq_lo, freq_hi + 1e-9, freq_step)
    rates = []
    for f in freqs:
        cap = capture_stream(
            timing,
            "p",
            float(f),
            setup_ns=placed.setup_ns,
            jitter=JitterModel(),
            rng=tree.rng("jitter", f"{f}"),
        )
        rates.append(cap.error_rate())
    rates_arr = np.asarray(rates)

    fa = placed.tool_report.fmax_mhz
    error_free = freqs[rates_arr == 0]
    fb = float(error_free.max()) if error_free.size else float(freqs[0])
    above_half = freqs[rates_arr >= 0.5]
    fc = float(above_half.min()) if above_half.size else float(freqs[-1])
    return {
        "freqs_mhz": freqs.tolist(),
        "error_rate_percent": (100.0 * rates_arr).tolist(),
        "fA_tool_mhz": fa,
        "fB_error_free_mhz": fb,
        "fC_meaningless_mhz": fc,
        "device_sta_fmax_mhz": placed.device_sta().fmax_mhz,
    }


# ----------------------------------------------------------------------
def fig4(
    ctx: ExperimentContext,
    multiplicand: int = 222,
    freq_mhz: float = 320.0,
    n_samples: int | None = None,
    n_trace: int = 100,
    n_hist_bins: int = 20,
) -> dict:
    """Fig. 4: per-cycle errors of an 8x8 multiplier at two locations.

    The paper streams 29 400 values with the multiplicand fixed at 222 at
    320 MHz and shows the first 100 errors plus full-test histograms for
    two placements.
    """
    n = n_samples if n_samples is not None else min(29400, 20 * ctx.settings.n_characterization)
    locations = [(0, 0), (ctx.device.cols - 24, ctx.device.rows - 24)]
    out: dict = {
        "multiplicand": multiplicand,
        "freq_mhz": freq_mhz,
        "n_samples": n,
        "locations": {},
    }
    for i, loc in enumerate(locations, start=1):
        run = error_trace(
            ctx.device,
            multiplicand,
            freq_mhz,
            n,
            w_data=8,
            w_coeff=8,
            location=loc,
            seed=ctx.seed + i,
        )
        errors = run.errors
        nonzero = errors[errors != 0]
        hist, edges = np.histogram(nonzero, bins=n_hist_bins) if nonzero.size else (
            np.zeros(n_hist_bins, dtype=int),
            np.linspace(-1, 1, n_hist_bins + 1),
        )
        out["locations"][f"loc {i}"] = {
            "anchor": loc,
            "first_errors": errors[:n_trace].tolist(),
            "error_rate": run.error_rate,
            "error_variance": run.error_variance,
            "histogram_counts": hist.tolist(),
            "histogram_edges": edges.tolist(),
        }
    r1 = out["locations"]["loc 1"]
    r2 = out["locations"]["loc 2"]
    out["locations_differ"] = bool(
        r1["error_rate"] != r2["error_rate"]
        or r1["first_errors"] != r2["first_errors"]
    )
    return out


# ----------------------------------------------------------------------
def fig5(
    ctx: ExperimentContext,
    w_bits: int = 8,
    freqs_mhz: tuple[float, ...] = (280.0, 300.0, 320.0, 340.0, 360.0),
    n_samples: int | None = None,
) -> dict:
    """Fig. 5: the error-model heat map E(m, f) of an 8x8 multiplier.

    Returns the variance grid over all multiplicands x frequencies and
    the summary statistics behind the paper's two observations: variance
    grows with frequency, and multiplicands with few '1' bits err less.
    """
    n = n_samples if n_samples is not None else ctx.settings.n_characterization
    cfg = CharacterizationConfig(
        freqs_mhz=freqs_mhz, n_samples=n, multiplicands=None, n_locations=1
    )
    result = characterize_multiplier(ctx.device, w_bits, w_bits, cfg, seed=ctx.seed)
    model = build_error_model(result)
    grid = model.heatmap()

    popcounts = np.array([bin(m).count("1") for m in result.multiplicands])
    mean_var_by_popcount = {
        int(c): float(grid[popcounts == c].mean()) for c in np.unique(popcounts)
    }
    return {
        "multiplicands": result.multiplicands.tolist(),
        "freqs_mhz": result.freqs_mhz.tolist(),
        "variance_grid": grid,
        "mean_variance_per_freq": grid.mean(axis=0).tolist(),
        "mean_variance_by_popcount": mean_var_by_popcount,
    }


# ----------------------------------------------------------------------
def fig6(ctx: ExperimentContext, n_runs: int = 6) -> dict:
    """Fig. 6: raw area-model data — LE vs word-length across locations."""
    samples = collect_area_samples(
        ctx.device,
        ctx.settings.coeff_wordlengths,
        w_data=ctx.settings.input_wordlength,
        n_runs=n_runs,
        seed=ctx.seed,
    )
    rows = [
        (s.wordlength, s.logic_elements, s.location[0], s.location[1]) for s in samples
    ]
    by_wl: dict[int, list[int]] = {}
    for s in samples:
        by_wl.setdefault(s.wordlength, []).append(s.logic_elements)
    return {
        "samples": rows,
        "mean_le_by_wordlength": {wl: float(np.mean(v)) for wl, v in by_wl.items()},
        "spread_le_by_wordlength": {wl: float(np.ptp(v)) for wl, v in by_wl.items()},
    }


# ----------------------------------------------------------------------
def fig7(
    ctx: ExperimentContext,
    betas: tuple[float, ...] = (0.1, 1.0, 4.0),
    freq_mhz: float = 340.0,
    wordlength: int = 8,
) -> dict:
    """Fig. 7: the coefficient prior for beta in {0.1, 1.0, 4.0}.

    Small beta flattens the prior; large beta suppresses coefficient
    values with high over-clocking error variance.
    """
    model = ctx.framework.characterize().model(wordlength)
    out: dict = {"freq_mhz": freq_mhz, "wordlength": wordlength, "betas": {}}
    for b in betas:
        prior = CoefficientPrior.from_error_model(model, freq_mhz, b)
        out["betas"][b] = {
            "values": prior.values.tolist(),
            "mass": prior.mass.tolist(),
            "entropy": prior.entropy(),
            "mass_ratio_max_min": float(prior.mass.max() / prior.mass.min()),
        }
    return out


# ----------------------------------------------------------------------
def fig8(
    ctx: ExperimentContext,
    freq_lo: float = 150.0,
    freq_hi: float = 600.0,
    freq_step: float = 15.0,
    n_samples: int | None = None,
) -> dict:
    """Fig. 8: max clock frequencies vs word-length for the KLT design.

    Per word-length: the tool-reported Fmax (green), the device-true STA
    bound and the measured error-free data-path Fmax (yellow), and the
    error-onset range up to the frequency where results stop being
    meaningful (red).
    """
    n = n_samples if n_samples is not None else max(400, ctx.settings.n_characterization)
    tree = SeedTree(ctx.seed).child("fig8")
    rows = []
    for design in ctx.klt_designs():
        wl = design.wordlengths[0]
        datapath = ProjectionDatapath(design, ctx.device, anchor=(0, 0), seed=ctx.seed)
        # Worst lane carries the critical path.
        lane = int(np.argmin([pd.device_sta().fmax_mhz for pd in datapath.lanes]))
        placed = datapath.lanes[lane]
        rng = tree.rng("stim", str(wl))
        n_eff = n + 1
        a = rng.integers(0, 1 << design.w_data, size=n_eff)
        b = np.tile(design.magnitudes[:, lane], n_eff // design.p + 1)[:n_eff]
        inputs = {
            "a": bits_from_ints(a, design.w_data),
            "b": bits_from_ints(b, wl),
        }
        timing = simulate_transitions(
            placed.netlist, inputs, placed.node_delay, placed.edge_delay
        )
        freqs = np.arange(freq_lo, freq_hi + 1e-9, freq_step)
        rates = np.array(
            [
                capture_stream(
                    timing,
                    "p",
                    float(f),
                    setup_ns=placed.setup_ns,
                    jitter=JitterModel(),
                    rng=tree.rng("jit", str(wl), f"{f}"),
                ).error_rate()
                for f in freqs
            ]
        )
        error_free = freqs[rates == 0]
        onset = float(error_free.max()) if error_free.size else float(freqs[0])
        meaningless = freqs[rates >= 0.5]
        fc = float(meaningless.min()) if meaningless.size else float(freqs[-1])
        rows.append(
            {
                "wordlength": wl,
                "tool_fmax_mhz": datapath.tool_fmax_mhz(),
                "device_sta_fmax_mhz": datapath.device_fmax_mhz(),
                "datapath_fmax_mhz": onset,
                "error_onset_range_mhz": (onset, fc),
            }
        )
    target = ctx.settings.clock_frequency_mhz
    wl9 = rows[-1]
    return {
        "rows": rows,
        "target_freq_mhz": target,
        "overclock_factor_vs_9bit_tool": target / wl9["tool_fmax_mhz"],
    }


# ----------------------------------------------------------------------
def fig9(ctx: ExperimentContext, n_validation_runs: int = 4) -> dict:
    """Fig. 9: area-model predictions vs fresh synthesis observations.

    Validation samples come from synthesis runs with seeds the fit never
    saw; the paper's criterion is the fraction inside the 95% band.
    """
    model = ctx.framework.fit_area_model()
    fresh = collect_area_samples(
        ctx.device,
        ctx.settings.coeff_wordlengths,
        w_data=ctx.settings.input_wordlength,
        n_runs=n_validation_runs,
        seed=ctx.seed + 777_000,
    )
    rows = []
    hits = 0
    for s in fresh:
        predicted = float(model.predict(s.wordlength))
        inside = model.within_interval(s.wordlength, s.logic_elements)
        hits += int(inside)
        rows.append(
            {
                "wordlength": s.wordlength,
                "predicted_le": predicted,
                "actual_le": s.logic_elements,
                "within_95ci": inside,
            }
        )
    return {
        "rows": rows,
        "coverage": hits / len(fresh),
        "residual_sigma": model.residual_sigma,
        "coeffs": model.coeffs.tolist(),
    }


# ----------------------------------------------------------------------
def fig10(ctx: ExperimentContext, beta: float | None = None) -> dict:
    """Fig. 10: predicted vs simulated vs actual MSE-vs-area for OF designs."""
    result = ctx.of_result(beta)
    rows = []
    for design in sorted(result.designs, key=lambda d: d.area_le or 0.0):
        evs = ctx.framework.evaluate_all_domains(design, ctx.x_test)
        rows.append(
            {
                "wordlengths": design.wordlengths,
                "area_le": evs[Domain.ACTUAL].area_le,
                "predicted_mse": evs[Domain.PREDICTED].mse,
                "simulated_mse": evs[Domain.SIMULATED].mse,
                "actual_mse": evs[Domain.ACTUAL].mse,
            }
        )
    # Paper observation: simulated and actual agree best for small areas.
    devs = [
        abs(r["actual_mse"] - r["simulated_mse"]) / max(r["simulated_mse"], 1e-300)
        for r in rows
    ]
    return {
        "rows": rows,
        "beta": result.beta,
        "freq_mhz": result.freq_mhz,
        "relative_sim_actual_deviation": devs,
    }


# ----------------------------------------------------------------------
def fig11(ctx: ExperimentContext, beta: float | None = None) -> dict:
    """Fig. 11: OF designs vs the KLT methodology at the target clock.

    Returns actual and predicted (area, MSE) points for both families and
    the average actual-MSE improvement of OF over KLT at comparable area
    (the paper quotes "around an order of magnitude on average").
    """
    of_rows = fig10(ctx, beta)["rows"]
    klt_rows = []
    for design in ctx.klt_designs():
        ev_act = ctx.framework.evaluate(design, ctx.x_test, Domain.ACTUAL)
        ev_pred = ctx.framework.evaluate(design, ctx.x_test, Domain.PREDICTED)
        klt_rows.append(
            {
                "wordlength": design.wordlengths[0],
                "area_le": ev_act.area_le,
                "actual_mse": ev_act.mse,
                "predicted_mse": ev_pred.mse,
                "lane_error_rates": ev_act.extra["lane_error_rates"],
            }
        )
    # Improvement at comparable area: for each KLT point, the best OF
    # design not exceeding its area (+5% tolerance).
    ratios = []
    for kr in klt_rows:
        feasible = [r for r in of_rows if r["area_le"] <= kr["area_le"] * 1.05]
        if not feasible:
            continue
        best_of = min(f["actual_mse"] for f in feasible)
        if best_of > 0:
            ratios.append(kr["actual_mse"] / best_of)
    geo_mean = float(np.exp(np.mean(np.log(ratios)))) if ratios else float("nan")
    return {
        "of_rows": of_rows,
        "klt_rows": klt_rows,
        "improvement_ratios": ratios,
        "geometric_mean_improvement": geo_mean,
        "freq_mhz": ctx.settings.clock_frequency_mhz,
    }


# ----------------------------------------------------------------------
def headline(ctx: ExperimentContext, beta: float | None = None) -> dict:
    """The abstract's claim: higher throughput (up to 1.85x) with fewer
    errors than the typical implementation methodology.

    Three operating points on the same device, same data:

    * the typical methodology at its *safe* clock — the 9-bit KLT design
      clocked at what the synthesis tool signs off (error-free, slow);
    * the typical methodology pushed to the target clock (fast, error-
      prone);
    * the optimisation framework's best design at the target clock.

    Throughput is reported as multiplications per second per MAC lane
    (= clock rate: one multiply per lane per cycle).
    """
    import dataclasses

    klt9 = ctx.klt_designs()[-1]
    of_best = min(
        ctx.of_result(beta).designs, key=lambda d: d.metadata["objective_t"]
    )
    target = ctx.settings.clock_frequency_mhz

    ev_klt_target = ctx.framework.evaluate(klt9, ctx.x_test, Domain.ACTUAL)
    tool_fmax = ev_klt_target.extra["tool_fmax_mhz"]
    klt9_safe = dataclasses.replace(klt9, freq_mhz=tool_fmax)
    ev_klt_safe = ctx.framework.evaluate(klt9_safe, ctx.x_test, Domain.ACTUAL)
    ev_of = ctx.framework.evaluate(of_best, ctx.x_test, Domain.ACTUAL)

    rows = [
        {
            "configuration": f"KLT-9 @ tool Fmax ({tool_fmax:.0f} MHz)",
            "freq_mhz": tool_fmax,
            "mse": ev_klt_safe.mse,
            "area_le": ev_klt_safe.area_le,
            "worst_lane_error_rate": max(ev_klt_safe.extra["lane_error_rates"]),
        },
        {
            "configuration": f"KLT-9 @ target ({target:.0f} MHz)",
            "freq_mhz": target,
            "mse": ev_klt_target.mse,
            "area_le": ev_klt_target.area_le,
            "worst_lane_error_rate": max(ev_klt_target.extra["lane_error_rates"]),
        },
        {
            "configuration": f"OF {of_best.wordlengths} @ target ({target:.0f} MHz)",
            "freq_mhz": target,
            "mse": ev_of.mse,
            "area_le": ev_of.area_le,
            "worst_lane_error_rate": max(ev_of.extra["lane_error_rates"]),
        },
    ]
    return {
        "rows": rows,
        "throughput_gain": target / tool_fmax,
        "of_vs_klt_at_target_mse_ratio": ev_klt_target.mse / max(ev_of.mse, 1e-300),
        "of_mse_penalty_vs_safe_klt": ev_of.mse / max(ev_klt_safe.mse, 1e-300),
    }
