"""ASCII rendering of experiment results.

The benches print the same rows/series the paper's figures plot; these
helpers keep that output consistent and readable.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["render_table", "render_series", "format_value"]


def format_value(v: object) -> str:
    """Human formatting: sensible significant digits for floats."""
    if isinstance(v, bool):
        return str(v)
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000 or abs(v) < 1e-3:
            return f"{v:.3e}"
        return f"{v:.4g}"
    return str(v)


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str | None = None
) -> str:
    """Render a fixed-width ASCII table."""
    cells = [[format_value(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    name: str, xs: Sequence[object], ys: Sequence[object], x_label: str = "x", y_label: str = "y"
) -> str:
    """Render one figure series as a two-column table."""
    return render_table(
        [x_label, y_label], list(zip(xs, ys)), title=f"series: {name}"
    )
