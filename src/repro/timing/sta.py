"""Static timing analysis over a delay-annotated netlist.

Arrival-time recurrence (primary inputs launch at t=0 from ideal input
registers):

``arrival(n) = lut_delay(n) + max_k( arrival(fanin_k) + edge_delay(n, k) )``

The per-output critical delay plus the capture-register setup time bounds
the minimum error-free clock period.  STA is a *worst-case-over-data*
bound: the dynamic simulator can pass faster clocks for benign stimulus,
never slower ones.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import period_ns_to_mhz
from ..errors import TimingError
from ..netlist.core import CompiledNetlist

__all__ = ["StaticTimingResult", "static_timing", "arrival_times"]


@dataclass(frozen=True)
class StaticTimingResult:
    """Result of a static timing analysis.

    Attributes
    ----------
    arrival:
        Per-node worst-case arrival times (ns), shape ``(n_nodes,)``.
    output_arrival:
        Mapping output bus -> per-bit arrival times (ns).
    critical_path_ns:
        Worst arrival over all output bits.
    setup_ns:
        Register setup time included in the period bound.
    """

    arrival: np.ndarray
    output_arrival: dict[str, np.ndarray]
    critical_path_ns: float
    setup_ns: float

    @property
    def min_period_ns(self) -> float:
        return self.critical_path_ns + self.setup_ns

    @property
    def fmax_mhz(self) -> float:
        """Maximum error-free clock frequency implied by this analysis."""
        return period_ns_to_mhz(self.min_period_ns)

    def output_fmax_mhz(self, bus: str) -> np.ndarray:
        """Per-bit Fmax of one output bus (MSbs are slowest by structure)."""
        arr = self.output_arrival[bus]
        return 1000.0 / (arr + self.setup_ns)


def arrival_times(
    netlist: CompiledNetlist,
    node_delay: np.ndarray,
    edge_delay: np.ndarray,
    edge_active: np.ndarray | None = None,
    node_static: np.ndarray | None = None,
) -> np.ndarray:
    """Compute worst-case arrival times for every node.

    Parameters
    ----------
    netlist:
        Compiled netlist.
    node_delay:
        Per-node intrinsic (LUT) delay, shape ``(n_nodes,)``; zero for
        inputs and constants.
    edge_delay:
        Per-fanin-edge routing delay, shape ``(n_nodes, 4)``; entries
        beyond a node's arity are ignored.
    edge_active:
        Optional ``(n_nodes, 4)`` bool mask from dataflow analysis: an
        inactive fanin edge drives a provably-constant value and is
        excluded from the arrival max (false-path pruning).
    node_static:
        Optional ``(n_nodes,)`` bool mask: a static node's value provably
        never changes, so it settles at t=0 regardless of fanin timing
        (matching the transition simulator, where an unchanged node
        contributes no settle delay).  Supplying only ``node_static``
        without ``edge_active`` is allowed and is already sound.
    """
    n = netlist.n_nodes
    if node_delay.shape != (n,):
        raise TimingError(f"node_delay shape {node_delay.shape} != ({n},)")
    if edge_delay.shape != (n, 4):
        raise TimingError(f"edge_delay shape {edge_delay.shape} != ({n}, 4)")
    if edge_active is not None and edge_active.shape != (n, 4):
        raise TimingError(f"edge_active shape {edge_active.shape} != ({n}, 4)")
    if node_static is not None and node_static.shape != (n,):
        raise TimingError(f"node_static shape {node_static.shape} != ({n},)")
    arrival = np.zeros(n, dtype=np.float64)
    arity = netlist.arity
    fidx = netlist.fanin_idx
    for ids in netlist.level_groups:
        a = arity[ids]
        best = np.full(ids.shape[0], -np.inf)
        for k in range(4):
            mask = a > k
            if not mask.any():
                break
            if edge_active is not None:
                mask = mask & edge_active[ids, k]
            cand = arrival[fidx[ids, k]] + edge_delay[ids, k]
            best = np.where(mask, np.maximum(best, cand), best)
        # A node with no active in-edge cannot be toggled: it settles at
        # t=0 (its value is constant, so no transition ever launches).
        best = np.where(np.isfinite(best), best, -node_delay[ids])
        arrival[ids] = node_delay[ids] + best
        if node_static is not None:
            arrival[ids] = np.where(node_static[ids], 0.0, arrival[ids])
    return arrival


def static_timing(
    netlist: CompiledNetlist,
    node_delay: np.ndarray,
    edge_delay: np.ndarray,
    setup_ns: float = 0.0,
    edge_active: np.ndarray | None = None,
    node_static: np.ndarray | None = None,
) -> StaticTimingResult:
    """Run STA and collect per-output critical delays.

    ``edge_active`` / ``node_static`` enable sensitisation-aware pruning
    (see :func:`arrival_times`); omitted, this is the plain worst-case
    bound.
    """
    if setup_ns < 0:
        raise TimingError("setup time must be non-negative")
    arrival = arrival_times(
        netlist,
        node_delay,
        edge_delay,
        edge_active=edge_active,
        node_static=node_static,
    )
    out = {name: arrival[ids].copy() for name, ids in netlist.output_buses.items()}
    critical = max(float(a.max()) for a in out.values())
    return StaticTimingResult(
        arrival=arrival,
        output_arrival=out,
        critical_path_ns=critical,
        setup_ns=float(setup_ns),
    )
