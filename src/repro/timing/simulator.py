"""Vectorised two-vector transition-aware timing simulation.

For every consecutive pair of stimulus vectors the simulator computes, per
node, the time at which the node reaches its final (new) value:

* a node whose value does not change settles at t = 0;
* a changed node settles at ``lut_delay + max(settle(fanin) + edge_delay)``
  over the fanins whose values changed.

This is the classic transition-propagation abstraction of timing errors
(cf. the datapath error models of paper ref. [8]): it captures data
dependence (benign transitions settle early), structural dependence (MSbs
settle last), and placement dependence (delays come from the placed
design).  It deliberately ignores glitches on value-preserving nodes and
multi-cycle transient overlap; DESIGN.md records both approximations.

The whole computation is batched over the stimulus axis in NumPy — one
pass over netlist levels regardless of stream length.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import KERNEL_PACKED, get_kernel_mode
from ..errors import TimingError
from ..netlist.core import CompiledNetlist, EvalScratch

__all__ = ["TransitionTimingResult", "simulate_transitions"]


@dataclass(frozen=True)
class TransitionTimingResult:
    """Values and settle times for a stimulus stream.

    For a stream of ``N`` input vectors there are ``N - 1`` transitions.

    Attributes
    ----------
    values:
        Functional node values for all ``N`` vectors, ``(n_nodes, N)`` uint8.
    settle:
        Per-node settle time of each transition, ``(n_nodes, N - 1)``
        float32; entry ``[:, i]`` describes the transition from vector
        ``i`` to vector ``i + 1``.
    """

    netlist: CompiledNetlist
    values: np.ndarray
    settle: np.ndarray

    @property
    def n_transitions(self) -> int:
        return int(self.settle.shape[1])

    def output_values(self, bus: str) -> np.ndarray:
        """Functional values of an output bus, ``(N, width)`` uint8."""
        ids = self.netlist.output_buses[bus]
        return self.values[ids].T

    def output_settle(self, bus: str) -> np.ndarray:
        """Settle times of an output bus, ``(N - 1, width)`` float32."""
        ids = self.netlist.output_buses[bus]
        return self.settle[ids].T


def simulate_transitions(
    netlist: CompiledNetlist,
    inputs: dict[str, np.ndarray],
    node_delay: np.ndarray,
    edge_delay: np.ndarray,
    scratch: EvalScratch | None = None,
) -> TransitionTimingResult:
    """Simulate a stream of input vectors through a placed netlist.

    Dispatches on :func:`repro.config.get_kernel_mode`: in ``"packed"``
    mode the functional value plane comes from the bit-sliced kernel
    and the float32 settle propagation uses the plan's precomputed
    per-level gather indices; in ``"interp"`` mode the original
    per-sample path runs verbatim.  Both produce bit-identical results
    (same values, same float32 settle times) — the settle arithmetic
    performs the identical float operations in the identical order.

    Parameters
    ----------
    netlist:
        Compiled netlist.
    inputs:
        Mapping bus name -> ``(N, width)`` uint8 bit stream (LSB first).
        All buses must share the same stream length ``N >= 2``.
    node_delay, edge_delay:
        Placed delay annotations as for :func:`repro.timing.sta.static_timing`.
    scratch:
        Optional :class:`~repro.netlist.core.EvalScratch` reusing
        internal buffers across repeated same-shape calls.  The returned
        ``values``/``settle`` arrays are always freshly owned — only
        temporaries are pooled — so results stay valid across calls.

    Returns
    -------
    TransitionTimingResult
    """
    n = netlist.n_nodes
    if node_delay.shape != (n,) or edge_delay.shape != (n, 4):
        raise TimingError("delay annotation shapes do not match netlist")
    lengths = {np.asarray(v).shape[0] for v in inputs.values()}
    if len(lengths) != 1:
        raise TimingError(f"input streams disagree on length: {lengths}")
    stream_len = lengths.pop()
    if stream_len < 2:
        raise TimingError("need at least 2 stimulus vectors to form a transition")

    if get_kernel_mode() == KERNEL_PACKED:
        return _simulate_packed(
            netlist, inputs, node_delay, edge_delay, stream_len, scratch
        )

    # Functional values for the whole stream.
    values = netlist.initial_values(stream_len)
    netlist.bind_inputs(values, inputs)
    fidx = netlist.fanin_idx
    arity = netlist.arity
    for ids in netlist.level_groups:
        idx = values[fidx[ids, 0]].astype(np.intp)
        idx |= values[fidx[ids, 1]].astype(np.intp) << 1
        idx |= values[fidx[ids, 2]].astype(np.intp) << 2
        idx |= values[fidx[ids, 3]].astype(np.intp) << 3
        values[ids] = np.take_along_axis(netlist.tt_bits[ids], idx, axis=1)

    n_tr = stream_len - 1
    changed = values[:, 1:] != values[:, :-1]  # (n, n_tr) bool
    settle = np.zeros((n, n_tr), dtype=np.float32)

    # Inputs/consts: settle 0 (input registers switch at t=0; the change
    # itself is accounted for by `changed`).
    for ids in netlist.level_groups:
        a = arity[ids]
        best = np.full((ids.shape[0], n_tr), -np.inf, dtype=np.float32)
        for k in range(4):
            mask_k = a > k
            if not mask_k.any():
                break
            src = fidx[ids, k]
            cand = settle[src] + edge_delay[ids, k, None].astype(np.float32)
            cand = np.where(changed[src], cand, -np.inf)
            best[mask_k] = np.maximum(best[mask_k], cand[mask_k])
        node_settle = node_delay[ids, None].astype(np.float32) + best
        # Unchanged nodes settle at 0; changed nodes take the path time.
        settle[ids] = np.where(changed[ids], node_settle, 0.0)
        # A changed node must have at least one changed fanin; if the
        # best is still -inf the netlist values are inconsistent.
        bad = changed[ids] & ~np.isfinite(node_settle)
        if bad.any():
            raise TimingError("changed node with no changed fanin (internal error)")

    return TransitionTimingResult(netlist=netlist, values=values, settle=settle)


def _simulate_packed(
    netlist: CompiledNetlist,
    inputs: dict[str, np.ndarray],
    node_delay: np.ndarray,
    edge_delay: np.ndarray,
    stream_len: int,
    scratch: EvalScratch | None,
) -> TransitionTimingResult:
    """Packed-kernel body: bit-sliced values + pre-gathered settle loop.

    The settle recurrence mirrors the interpreted loop's float32
    operations exactly; the only difference is that the ``arity > k``
    row selection and fanin gathers come precomputed from the plan
    (``TimingLevel``), so each level touches only populated fanin slots.
    """
    from ..kernels.execute import stream_values
    from ..kernels.plan import plan_for

    values = stream_values(netlist, inputs, scratch=scratch)
    plan = plan_for(netlist)

    n = netlist.n_nodes
    n_tr = stream_len - 1
    if scratch is None:
        changed = np.empty((n, n_tr), dtype=np.bool_)
    else:
        changed = scratch.array("timing.changed", (n, n_tr), np.bool_)
    np.not_equal(values[:, 1:], values[:, :-1], out=changed)
    settle = np.zeros((n, n_tr), dtype=np.float32)

    for li, level in enumerate(plan.timing_levels):
        ids = level.ids
        if scratch is None:
            best = np.empty((ids.shape[0], n_tr), dtype=np.float32)
        else:
            best = scratch.array(
                f"timing.best.{li}", (int(ids.shape[0]), n_tr), np.float32
            )
        best.fill(-np.inf)
        for k, rows_k, ids_k, srcs_k in level.gathers:
            cand = settle[srcs_k] + edge_delay[ids_k, k, None].astype(np.float32)
            cand = np.where(changed[srcs_k], cand, -np.inf)
            np.maximum(best[rows_k], cand, out=cand)
            best[rows_k] = cand
        node_settle = node_delay[ids, None].astype(np.float32) + best
        settle[ids] = np.where(changed[ids], node_settle, 0.0)
        bad = changed[ids] & ~np.isfinite(node_settle)
        if bad.any():
            raise TimingError("changed node with no changed fanin (internal error)")

    return TransitionTimingResult(netlist=netlist, values=values, settle=settle)
