"""Timing substrate: static analysis and over-clocking simulation.

:mod:`repro.timing.sta` answers "how fast could this placed design go
error-free" (the device's true data-path Fmax, paper Fig. 1's fB bound);
:mod:`repro.timing.simulator` answers "what exactly comes out of the
register when you clock it faster than that" (the error-prone regime the
characterisation step measures).
"""

from .sta import StaticTimingResult, static_timing
from .simulator import TransitionTimingResult, simulate_transitions
from .capture import CaptureResult, capture_stream
from .razor import RazorConfig, RazorResult, razor_execute, razor_optimal_frequency

__all__ = [
    "StaticTimingResult",
    "static_timing",
    "TransitionTimingResult",
    "simulate_transitions",
    "CaptureResult",
    "capture_stream",
    "RazorConfig",
    "RazorResult",
    "razor_execute",
    "razor_optimal_frequency",
]
