"""Razor-style timing-error detection and replay (paper ref. [4]).

The paper's Background section contrasts its approach with Razor: a
generic time-redundant scheme where a shadow register samples the
combinational output half a cycle later (always meeting timing), a
comparator flags main/shadow mismatches, and flagged cycles are replayed.
Razor guarantees *correct* results arbitrarily deep into the over-clocking
regime, but pays

* a throughput penalty — every detected error stalls the pipeline for the
  replay (here: one extra cycle per erroneous result);
* an area penalty — shadow registers and comparators on every protected
  bit (Razor literature reports ~1.2-3x register overhead; we charge a
  configurable fraction of the protected design's LE count);
* and, the paper's actual criticism, *design opacity*: the recovery
  machinery "does not hide the performance variability in the design" —
  the designer still has to absorb the variable latency downstream.

The model wraps a capture result: detected = every mis-latched cycle
(ideal Razor detection), output = always the ideal values, effective
throughput = f * N / (N + replays).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import TimingError
from .capture import CaptureResult

__all__ = ["RazorConfig", "RazorResult", "razor_execute"]


@dataclass(frozen=True)
class RazorConfig:
    """Razor protection parameters.

    Attributes
    ----------
    replay_cycles:
        Stall cycles charged per detected error (classic Razor: 1).
    area_overhead_fraction:
        Extra LEs per protected LE (shadow registers + comparators).
    """

    replay_cycles: int = 1
    area_overhead_fraction: float = 0.35

    def __post_init__(self) -> None:
        if self.replay_cycles < 1:
            raise TimingError("replay must cost at least one cycle")
        if self.area_overhead_fraction < 0:
            raise TimingError("area overhead cannot be negative")


@dataclass(frozen=True)
class RazorResult:
    """Outcome of running a stream through a Razor-protected register."""

    freq_mhz: float
    n_results: int
    n_replays: int
    corrected: np.ndarray  # always the ideal outputs
    config: RazorConfig

    @property
    def error_rate_detected(self) -> float:
        return self.n_replays / self.n_results if self.n_results else 0.0

    @property
    def effective_throughput_mhz(self) -> float:
        """Results per microsecond after replay stalls."""
        total_cycles = self.n_results + self.config.replay_cycles * self.n_replays
        if total_cycles == 0:
            return 0.0
        return self.freq_mhz * self.n_results / total_cycles

    def protected_area(self, base_area_le: int) -> float:
        """LE cost of the design once Razor-protected."""
        return base_area_le * (1.0 + self.config.area_overhead_fraction)


def razor_execute(capture: CaptureResult, config: RazorConfig = RazorConfig()) -> RazorResult:
    """Apply Razor detection/replay semantics to a raw capture.

    Assumes ideal detection (the shadow register always captures the
    settled value): every cycle whose main register mis-latched any bit is
    flagged and replayed, so the corrected output equals the ideal output.
    """
    wrong = (capture.captured_bits != capture.ideal_bits).any(axis=1)
    return RazorResult(
        freq_mhz=capture.freq_mhz,
        n_results=capture.n_cycles,
        n_replays=int(wrong.sum()),
        corrected=capture.ideal_ints(),
        config=config,
    )


def razor_optimal_frequency(
    freqs_mhz: np.ndarray,
    error_rates: np.ndarray,
    config: RazorConfig = RazorConfig(),
) -> tuple[float, float]:
    """The clock that maximises Razor's effective throughput.

    Given a profile of raw error rates over candidate clocks, returns
    ``(best_freq, best_effective_throughput)``.  Razor's throughput curve
    ``f / (1 + r(f) * replay)`` keeps rising only while the error rate
    grows slower than the clock — the classic Razor operating point.
    """
    freqs = np.asarray(freqs_mhz, dtype=float)
    rates = np.asarray(error_rates, dtype=float)
    if freqs.shape != rates.shape or freqs.size == 0:
        raise TimingError("frequency/error-rate profiles must align and be non-empty")
    if np.any((rates < 0) | (rates > 1)):
        raise TimingError("error rates must lie in [0, 1]")
    eff = freqs / (1.0 + config.replay_cycles * rates)
    best = int(np.argmax(eff))
    return float(freqs[best]), float(eff[best])
