"""Register capture of an over-clocked combinational output.

Given the settle times from :func:`repro.timing.simulator.simulate_transitions`
and a clock, the capture model decides per output bit and per cycle whether
the new value latched in time:

``captured[i] = new_value[i]  if settle[i] <= period - jitter_i - setup
                old_value[i]  otherwise``

where ``old_value`` is the functional output of the previous stimulus —
i.e. a late bit holds the register's previous (stale) content.  Jitter is
drawn per cycle, which produces the run-to-run variation of error counts
the paper reports at high frequencies (Sec. III-C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..config import mhz_to_period_ns
from ..errors import TimingError
from ..fabric.jitter import JitterModel
from ..netlist.core import ints_from_bits
from .simulator import TransitionTimingResult

__all__ = ["BatchCaptureResult", "CaptureResult", "capture_stream", "capture_stream_batch"]


@dataclass(frozen=True)
class CaptureResult:
    """Outcome of capturing one output bus over a stimulus stream.

    All arrays cover the ``N - 1`` capture cycles (the first stimulus
    vector only initialises the pipeline).

    Attributes
    ----------
    captured_bits:
        What the register actually held, ``(N-1, width)`` uint8.
    ideal_bits:
        What an infinitely slow clock would have captured.
    late_mask:
        True where a bit missed the timing window, ``(N-1, width)``.
    """

    bus: str
    freq_mhz: float
    captured_bits: np.ndarray
    ideal_bits: np.ndarray
    late_mask: np.ndarray

    @property
    def n_cycles(self) -> int:
        return int(self.captured_bits.shape[0])

    def captured_ints(self, signed: bool = False) -> np.ndarray:
        return ints_from_bits(self.captured_bits, signed=signed)

    def ideal_ints(self, signed: bool = False) -> np.ndarray:
        return ints_from_bits(self.ideal_bits, signed=signed)

    def errors(self, signed: bool = False) -> np.ndarray:
        """Numeric error (captured - ideal) per cycle."""
        return self.captured_ints(signed) - self.ideal_ints(signed)

    def error_rate(self) -> float:
        """Fraction of cycles with at least one erroneous bit."""
        wrong = (self.captured_bits != self.ideal_bits).any(axis=1)
        return float(wrong.mean()) if self.n_cycles else 0.0

    def bit_error_rate(self) -> np.ndarray:
        """Per-bit error rate, LSB first (MSbs fail first by structure)."""
        return (self.captured_bits != self.ideal_bits).mean(axis=0)


def capture_stream(
    timing: TransitionTimingResult,
    bus: str,
    freq_mhz: float,
    setup_ns: float = 0.0,
    jitter: JitterModel | None = None,
    rng: np.random.Generator | None = None,
) -> CaptureResult:
    """Capture an output bus at ``freq_mhz`` with optional jitter.

    Parameters
    ----------
    timing:
        Result of a transition simulation.
    bus:
        Output bus to capture.
    freq_mhz:
        Clock frequency of the capture register.
    setup_ns:
        Register setup margin subtracted from every capture window.
    jitter:
        Cycle-to-cycle jitter model; ``None`` means an ideal clock.
    rng:
        Randomness for the jitter draws (required if jitter is active).
    """
    if bus not in timing.netlist.output_buses:
        raise TimingError(f"unknown output bus {bus!r}")
    period = mhz_to_period_ns(freq_mhz)
    values = timing.output_values(bus)  # (N, width)
    settle = timing.output_settle(bus)  # (N-1, width)
    new_bits = values[1:]
    old_bits = values[:-1]

    n_cycles = settle.shape[0]
    if jitter is not None and jitter.sigma_ns > 0:
        if rng is None:
            raise TimingError("jitter requested but no rng supplied")
        eff = jitter.effective_periods(period, n_cycles, rng)
    else:
        eff = np.full(n_cycles, period)
    window = (eff - setup_ns)[:, None]

    late = settle > window
    captured = np.where(late, old_bits, new_bits).astype(np.uint8)
    return CaptureResult(
        bus=bus,
        freq_mhz=float(freq_mhz),
        captured_bits=captured,
        ideal_bits=new_bits.astype(np.uint8),
        late_mask=late,
    )


@dataclass(frozen=True)
class BatchCaptureResult:
    """Outcome of capturing one output bus at several frequencies at once.

    Attributes
    ----------
    freqs_mhz:
        Capture frequencies, length ``F``.
    captured:
        Captured integer products per frequency, ``(F, N-1)`` int64.
    ideal:
        Exact integer products (frequency-independent), ``(N-1,)`` int64.
    late_counts:
        Late-bit events per frequency, ``(F,)`` int64.
    """

    bus: str
    freqs_mhz: np.ndarray
    captured: np.ndarray
    ideal: np.ndarray
    late_counts: np.ndarray

    @property
    def n_cycles(self) -> int:
        return int(self.captured.shape[1])

    def errors(self) -> np.ndarray:
        """Numeric error (captured - ideal) per frequency and cycle."""
        return self.captured - self.ideal[None, :]


def capture_stream_batch(
    timing: TransitionTimingResult,
    bus: str,
    freqs_mhz: Sequence[float],
    setup_ns: float = 0.0,
    jitter: JitterModel | None = None,
    rngs: Sequence[np.random.Generator] | None = None,
) -> BatchCaptureResult:
    """Capture one simulated stream at many frequencies in one NumPy pass.

    Per-frequency results are bit-identical to calling
    :func:`capture_stream` once per frequency with the matching rng: the
    jitter draws come from each frequency's own generator in order, and
    the late/captured computation is the same comparison broadcast over a
    leading frequency axis.  The transition simulation (the expensive
    part) is shared across the whole frequency sweep.

    Parameters
    ----------
    freqs_mhz:
        Capture frequencies, length ``F``.
    rngs:
        One jitter generator per frequency (required if jitter is active).
    """
    if bus not in timing.netlist.output_buses:
        raise TimingError(f"unknown output bus {bus!r}")
    if len(freqs_mhz) == 0:
        raise TimingError("at least one capture frequency required")
    if rngs is not None and len(rngs) != len(freqs_mhz):
        raise TimingError(
            f"{len(rngs)} jitter rngs supplied for {len(freqs_mhz)} frequencies"
        )
    values = timing.output_values(bus)  # (N, width)
    settle = timing.output_settle(bus)  # (N-1, width)
    new_bits = values[1:]
    old_bits = values[:-1]
    n_cycles = settle.shape[0]

    # One period vector for the whole sweep, then one broadcast for the
    # no-jitter windows — not an np.full + subtract per frequency.
    periods = np.array([mhz_to_period_ns(f) for f in freqs_mhz])
    if jitter is not None and jitter.sigma_ns > 0:
        if rngs is None:
            raise TimingError("jitter requested but no rngs supplied")
        # Jittered windows keep the per-frequency draw order: each
        # frequency's generator produces exactly the draws it would in a
        # lone capture_stream call (bit-identity contract above).
        windows = np.empty((len(freqs_mhz), n_cycles))
        for fi, period in enumerate(periods):
            eff = jitter.effective_periods(period, n_cycles, rngs[fi])
            windows[fi] = eff - setup_ns
    else:
        windows = np.broadcast_to(
            (periods - setup_ns)[:, None], (len(freqs_mhz), n_cycles)
        )

    late = settle[None, :, :] > windows[:, :, None]  # (F, N-1, width)
    captured_bits = np.where(late, old_bits[None], new_bits[None])
    weights = 1 << np.arange(values.shape[1], dtype=np.int64)
    captured = captured_bits.astype(np.int64) @ weights
    ideal = new_bits.astype(np.int64) @ weights
    return BatchCaptureResult(
        bus=bus,
        freqs_mhz=np.asarray(freqs_mhz, dtype=float),
        captured=captured,
        ideal=ideal,
        late_counts=late.sum(axis=(1, 2)).astype(np.int64),
    )
