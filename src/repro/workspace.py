"""Persistent per-device workspaces.

A real deployment of the paper's flow is not one Python session: the
characterisation runs once per device (or per maintenance interval) and
its artefacts are reused by every later optimisation, possibly on another
machine.  A :class:`Workspace` is a directory holding those artefacts:

```
<root>/
  workspace.json            device serial / settings / provenance
  characterization/
    wl03.npz ... wl09.npz   one CharacterizationResult per word-length
  area_model.json           fitted LE-cost model
  designs/
    <name>.json             design lists from optimisation runs
  cache/placed/
    <sha256>.pkl            placed-design cache entries (see repro.parallel)
```

Everything round-trips bit-exactly, and :meth:`Workspace.framework`
rehydrates an :class:`~repro.framework.OptimizationFramework` whose
characterisation/area caches are pre-seeded from disk — no re-simulation.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import asdict
from pathlib import Path

import numpy as np

from .characterization.results import CharacterizationResult
from .config import ResilienceSettings, TableISettings
from .core.design import LinearProjectionDesign
from .errors import ConfigError
from .fabric.device import FPGADevice, make_device
from .framework import OptimizationFramework
from .io import load_designs, save_designs
from .models.area_model import AreaModel
from .models.error_model import ErrorModel, ErrorModelSet, build_error_model
from .parallel.cache import PlacedDesignCache

__all__ = ["Workspace"]

_META_VERSION = 1


class Workspace:
    """A directory of per-device flow artefacts.

    Safe to share: every artefact write is atomic (write-to-temp +
    ``os.replace`` in the same directory), so concurrent readers — other
    processes, or the job server's other tenants — never observe a torn
    file, and a job cancelled mid-stage leaves only complete artefacts
    behind.

    Parameters
    ----------
    root:
        Workspace directory (created on :meth:`initialize`).
    cache:
        Placed-design cache this workspace should place through;
        ``None`` (the default) lazily creates a disk-backed cache under
        ``<root>/cache/placed``.  A server multiplexing many jobs passes
        its one warm shared cache here instead — the cache is keyed on
        device identity, never on the workspace, so sharing is
        bit-transparent.
    """

    def __init__(self, root: str | Path, cache: PlacedDesignCache | None = None) -> None:
        self.root = Path(root)
        self._cache = cache

    # ------------------------------------------------------------------
    @property
    def meta_path(self) -> Path:
        return self.root / "workspace.json"

    @property
    def char_dir(self) -> Path:
        return self.root / "characterization"

    @property
    def designs_dir(self) -> Path:
        return self.root / "designs"

    @property
    def area_model_path(self) -> Path:
        return self.root / "area_model.json"

    @property
    def cache_dir(self) -> Path:
        return self.root / "cache" / "placed"

    def exists(self) -> bool:
        return self.meta_path.exists()

    # ------------------------------------------------------------------
    @staticmethod
    def _writer_tag() -> str:
        """Unique-per-writer temp-name tag: pid plus thread id.

        The pid separates racing processes (mirroring the placed cache's
        install discipline); the thread id separates the job server's
        worker threads, which share one pid.
        """
        return f"{os.getpid()}.{threading.get_ident()}"

    def _write_atomic(self, path: Path, text: str) -> None:
        """Atomic text write: same-directory temp file + ``os.replace``.

        The temp name carries a per-writer tag so concurrent same-file
        writers never collide on the temp path, and is dot-prefixed so
        directory globs (``wl*.npz``, ``*.json``) never pick up an
        in-flight write.
        """
        tmp = path.parent / f".{path.name}.tmp.{self._writer_tag()}"
        try:
            tmp.write_text(text)
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)

    def initialize(
        self,
        device: FPGADevice,
        settings: TableISettings,
        seed: int,
        exist_ok: bool = False,
    ) -> None:
        """Create the workspace for one device + settings combination.

        With ``exist_ok=True`` an already-initialised workspace is
        accepted *iff* its recorded identity (device, settings, seed)
        matches — the idempotent form concurrent tenants can all call;
        a mismatch still raises :class:`~repro.errors.ConfigError`.
        """
        meta = {
            "version": _META_VERSION,
            "device_serial": device.serial,
            "family": device.family.name,
            "seed": seed,
            "settings": asdict(settings),
        }
        if self.exists():
            if not exist_ok:
                raise ConfigError(f"workspace already initialised at {self.root}")
            existing = self._meta()
            # Round-trip through JSON so tuple-vs-list differences vanish.
            if existing != json.loads(json.dumps(meta)):
                raise ConfigError(
                    f"workspace at {self.root} is initialised with a different "
                    f"device/settings/seed combination"
                )
            return
        self.root.mkdir(parents=True, exist_ok=True)
        self.char_dir.mkdir(exist_ok=True)
        self.designs_dir.mkdir(exist_ok=True)
        self._write_atomic(self.meta_path, json.dumps(meta, indent=2))

    def _meta(self) -> dict:
        if not self.exists():
            raise ConfigError(f"no workspace at {self.root}; initialise first")
        meta = json.loads(self.meta_path.read_text())
        if meta.get("version") != _META_VERSION:
            raise ConfigError("unsupported workspace version")
        return meta

    def device(self) -> FPGADevice:
        """Rehydrate the workspace's device (the serial is the identity)."""
        return make_device(self._meta()["device_serial"])

    def settings(self) -> TableISettings:
        s = dict(self._meta()["settings"])
        s["betas"] = tuple(s["betas"])
        return TableISettings(**s)

    def seed(self) -> int:
        return int(self._meta()["seed"])

    # ------------------------------------------------------------------
    def save_characterization(self, wl: int, result: CharacterizationResult) -> Path:
        """Archive one sweep; its execution outcome lands in a JSON sidecar.

        The ``.npz`` holds only the data grids; the resilience provenance
        (attempt counts, retries, quarantined shards) goes to
        ``wlNN.outcome.json`` so ``repro-flow status`` can flag degraded
        artefacts without loading the arrays.
        """
        path = self.char_dir / f"wl{wl:02d}.npz"
        # The temp name keeps the .npz suffix (so numpy does not append
        # one) but is dot-prefixed and writer-tagged like every workspace
        # write: racing jobs archiving the same sweep install atomically
        # and bit-identically, whoever wins.
        tmp = path.parent / f".{path.name}.tmp.{self._writer_tag()}.npz"
        try:
            result.save(tmp)
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)
        if result.outcome is not None:
            self._write_atomic(
                self.outcome_path(wl),
                json.dumps(result.outcome.as_dict(), indent=2),
            )
        return path

    def outcome_path(self, wl: int) -> Path:
        return self.char_dir / f"wl{wl:02d}.outcome.json"

    def sweep_health(self) -> dict[int, dict]:
        """Sweep-outcome summaries of every archived word-length.

        Word-lengths without a sidecar (pre-resilience archives) map to
        ``{"status": "complete"}`` — they could only have been written by
        a sweep that finished every shard.
        """
        health: dict[int, dict] = {}
        for wl in self.characterized_wordlengths():
            path = self.outcome_path(wl)
            if path.exists():
                data = json.loads(path.read_text())
                health[wl] = {
                    "status": data.get("status", "complete"),
                    "n_shards": data.get("n_shards"),
                    "n_quarantined": data.get("n_quarantined", 0),
                    "quarantined": data.get("quarantined", []),
                    "total_attempts": data.get("total_attempts"),
                }
            else:
                health[wl] = {"status": "complete", "n_quarantined": 0}
        return health

    def characterized_wordlengths(self) -> list[int]:
        if not self.char_dir.exists():
            return []
        return sorted(
            int(p.stem[2:]) for p in self.char_dir.glob("wl*.npz")
        )

    def load_error_models(self) -> ErrorModelSet:
        """Rebuild the error-model set from the archived sweeps."""
        wls = self.characterized_wordlengths()
        if not wls:
            raise ConfigError(f"no characterisation archives in {self.char_dir}")
        models: dict[int, ErrorModel] = {}
        for wl in wls:
            result = CharacterizationResult.load(self.char_dir / f"wl{wl:02d}.npz")
            models[wl] = build_error_model(result)
        return ErrorModelSet(models)

    # ------------------------------------------------------------------
    def save_area_model(self, model: AreaModel) -> Path:
        payload = {
            "coeffs": model.coeffs.tolist(),
            "residual_sigma": model.residual_sigma,
            "wl_range": list(model.wl_range),
            "n_samples": model.n_samples,
        }
        self._write_atomic(self.area_model_path, json.dumps(payload, indent=2))
        return self.area_model_path

    def load_area_model(self) -> AreaModel:
        if not self.area_model_path.exists():
            raise ConfigError(f"no area model at {self.area_model_path}")
        p = json.loads(self.area_model_path.read_text())
        return AreaModel(
            coeffs=np.asarray(p["coeffs"]),
            residual_sigma=float(p["residual_sigma"]),
            wl_range=(int(p["wl_range"][0]), int(p["wl_range"][1])),
            n_samples=int(p["n_samples"]),
        )

    # ------------------------------------------------------------------
    def save_design_set(self, name: str, designs: list[LinearProjectionDesign]) -> Path:
        if not name or "/" in name:
            raise ConfigError(f"invalid design-set name {name!r}")
        path = self.designs_dir / f"{name}.json"
        tmp = path.parent / f".{path.name}.tmp.{self._writer_tag()}"
        try:
            save_designs(designs, tmp)
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)
        return path

    def load_design_set(self, name: str) -> list[LinearProjectionDesign]:
        return load_designs(self.designs_dir / f"{name}.json")

    def design_sets(self) -> list[str]:
        if not self.designs_dir.exists():
            return []
        return sorted(p.stem for p in self.designs_dir.glob("*.json"))

    # ------------------------------------------------------------------
    def placed_cache(self) -> PlacedDesignCache:
        """The placed-design cache this workspace places through.

        Memoised: every stage of one Workspace instance shares one cache
        handle (and its warm memory tier) instead of re-opening the
        directory per call.  If a cache was injected at construction
        (the server's shared warm cache), that instance is returned;
        otherwise a disk-backed cache under ``<root>/cache/placed`` is
        created on first use and persists across sessions.
        """
        if self._cache is None:
            self._cache = PlacedDesignCache(self.cache_dir)
        return self._cache

    def framework(
        self,
        jobs: int | None = None,
        resilience: ResilienceSettings | None = None,
    ) -> OptimizationFramework:
        """An OptimizationFramework pre-seeded from the archived artefacts.

        The characterisation and area-model caches are filled from disk if
        present, so :meth:`OptimizationFramework.optimize` and
        :meth:`~repro.framework.OptimizationFramework.evaluate` run without
        re-simulating the device.  The framework places through this
        workspace's disk-backed cache; ``jobs`` sets its worker count and
        ``resilience`` its shard retry/degradation policy.
        """
        fw = OptimizationFramework(
            self.device(),
            self.settings(),
            seed=self.seed(),
            jobs=jobs,
            cache=self.placed_cache(),
            resilience=resilience,
        )
        if self.characterized_wordlengths():
            fw._error_models = self.load_error_models()
        if self.area_model_path.exists():
            fw._area_model = self.load_area_model()
        return fw
