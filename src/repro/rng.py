"""Deterministic random-number plumbing.

Every stochastic component in the library draws from a *seed tree* rooted at
one user-supplied integer.  The same root seed therefore reproduces the same
"device" (process-variation field), the same characterisation stimulus, and
the same sampled designs, while distinct named children are statistically
independent.

The tree is built with :class:`numpy.random.SeedSequence` using stable
string-derived spawn keys, so adding a new consumer never perturbs the
streams of existing consumers (unlike positional ``spawn`` calls).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

__all__ = ["SeedTree", "rng_from", "derive_seed"]


def derive_seed(root: int, *path: str) -> int:
    """Derive a stable 63-bit integer seed for a named path under ``root``.

    The derivation hashes ``root`` together with the path components so the
    result is invariant to the order in which other paths are created.

    Parameters
    ----------
    root:
        Root seed of the tree.
    path:
        Any number of string components naming the consumer, e.g.
        ``("fabric", "variation", "systematic")``.
    """
    h = hashlib.sha256()
    h.update(str(int(root)).encode("ascii"))
    for part in path:
        h.update(b"\x00")
        h.update(str(part).encode("utf-8"))
    return int.from_bytes(h.digest()[:8], "little") & (2**63 - 1)


def rng_from(root: int, *path: str) -> np.random.Generator:
    """Create a :class:`numpy.random.Generator` for a named path."""
    return np.random.default_rng(derive_seed(root, *path))


@dataclass
class SeedTree:
    """A node in the deterministic seed tree.

    Examples
    --------
    >>> tree = SeedTree(1234)
    >>> g1 = tree.rng("fabric", "variation")
    >>> g2 = SeedTree(1234).rng("fabric", "variation")
    >>> bool(g1.integers(1 << 30) == g2.integers(1 << 30))
    True
    """

    root: int
    prefix: tuple[str, ...] = field(default_factory=tuple)

    def child(self, *path: str) -> "SeedTree":
        """Return a subtree rooted at ``prefix + path``."""
        return SeedTree(self.root, self.prefix + tuple(path))

    def seed(self, *path: str) -> int:
        """Integer seed for ``prefix + path``."""
        return derive_seed(self.root, *(self.prefix + tuple(path)))

    def rng(self, *path: str) -> np.random.Generator:
        """Generator for ``prefix + path``."""
        return np.random.default_rng(self.seed(*path))
