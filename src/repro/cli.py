"""Command-line entry point: ``repro-experiment <name>``.

Runs one of the paper's experiments at a configurable scale and prints
the figure's numeric series as ASCII tables.  The ``lint`` subcommand
instead runs the netlist static analyser over a generated design and
reports its diagnostics (text or JSON); the ``cache`` subcommand
inspects or clears an on-disk placed-design cache; the ``faults``
subcommand describes/validates a chaos fault-injection plan; the ``obs``
subcommand prints the telemetry reference or summarises exported
trace/metrics artefacts; the ``audit`` subcommand runs the determinism
and concurrency sanitizer (DT rules) over repro's own source.

Examples
--------
::

    repro-experiment fig5 --scale 0.05 --seed 42
    repro-experiment fig11 --scale 0.1
    repro-experiment table1
    repro-experiment runtime
    repro-experiment lint ccm 93 8
    repro-experiment lint unsigned_multiplier 8 8 --format json
    repro-experiment analyze ccm 93 8 --prove
    repro-experiment analyze unsigned_multiplier 8 8 --assume b=222 --sta
    repro-experiment cache info --workspace WS
    repro-experiment cache clear --dir /tmp/placed-cache
    repro-experiment faults describe --plan '{"seed": 7, "specs": [...]}'
    repro-experiment faults validate --plan @plan.json
    repro-experiment obs reference
    repro-experiment obs trace run.jsonl
    repro-experiment obs metrics run.metrics.json
    repro-experiment audit src/repro
    repro-experiment audit --rules
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any

import numpy as np

from .analysis import LintConfig, lint_netlist, rule_table
from .config import KERNEL_MODES, REPRO_KERNEL_ENV, set_kernel_mode
from .eval import figures, tables
from .eval.context import ExperimentContext
from .eval.report import render_table
from .errors import ReproError
from .netlist.generators import GENERATORS, generate

__all__ = ["main"]

_FIGURES = {
    "fig1": figures.fig1,
    "fig4": figures.fig4,
    "fig5": figures.fig5,
    "fig6": figures.fig6,
    "fig7": figures.fig7,
    "fig8": figures.fig8,
    "fig9": figures.fig9,
    "fig10": figures.fig10,
    "fig11": figures.fig11,
    "headline": figures.headline,
}


def _print_result(name: str, result: dict) -> None:
    if name == "headline":
        rows = [
            (r["configuration"], r["freq_mhz"], r["mse"], r["area_le"])
            for r in result["rows"]
        ]
        print(
            render_table(
                ["configuration", "clock MHz", "actual MSE", "area LE"],
                rows,
                title="Headline: throughput vs errors",
            )
        )
        print(
            f"throughput gain {result['throughput_gain']:.2f}x; OF vs KLT @ "
            f"target MSE ratio {result['of_vs_klt_at_target_mse_ratio']:.1f}x"
        )
        return
    if name == "fig8":
        rows = [
            (
                r["wordlength"],
                r["tool_fmax_mhz"],
                r["device_sta_fmax_mhz"],
                r["datapath_fmax_mhz"],
                r["error_onset_range_mhz"][1],
            )
            for r in result["rows"]
        ]
        print(
            render_table(
                ["wl", "tool Fmax", "STA Fmax", "data-path Fmax", "fC"],
                rows,
                title="Fig. 8: maximum clock frequencies vs word-length",
            )
        )
        print(
            f"target {result['target_freq_mhz']} MHz = "
            f"{result['overclock_factor_vs_9bit_tool']:.2f}x the 9-bit tool Fmax"
        )
        return
    if name == "fig10":
        rows = [
            (
                str(r["wordlengths"]),
                r["area_le"],
                r["predicted_mse"],
                r["simulated_mse"],
                r["actual_mse"],
            )
            for r in result["rows"]
        ]
        print(
            render_table(
                ["wordlengths", "area LE", "predicted", "simulated", "actual"],
                rows,
                title=f"Fig. 10: domains @ {result['freq_mhz']} MHz (beta={result['beta']})",
            )
        )
        return
    if name == "fig11":
        rows = [
            ("OF", str(r["wordlengths"]), r["area_le"], r["actual_mse"])
            for r in result["of_rows"]
        ] + [
            ("KLT", r["wordlength"], r["area_le"], r["actual_mse"])
            for r in result["klt_rows"]
        ]
        print(
            render_table(
                ["family", "wl", "area LE", "actual MSE"],
                rows,
                title=f"Fig. 11: OF vs KLT @ {result['freq_mhz']} MHz",
            )
        )
        print(
            f"geometric-mean improvement at comparable area: "
            f"{result['geometric_mean_improvement']:.1f}x"
        )
        return
    # Generic fallback: JSON (numpy arrays summarised).
    def default(o: object) -> object:
        if isinstance(o, np.ndarray):
            return {
                "shape": list(o.shape),
                "mean": float(o.mean()),
                "min": float(o.min()),
                "max": float(o.max()),
            }
        if isinstance(o, (np.integer, np.floating)):
            return o.item()
        return str(o)

    print(json.dumps(result, indent=2, default=default))


def _lint_main(argv: list[str]) -> int:
    """``lint`` subcommand: run the static analyser over a generated design."""
    parser = argparse.ArgumentParser(
        prog="repro-experiment lint",
        description="Lint a generated netlist and report NLxxx diagnostics.",
        epilog="Rules: "
        + "; ".join(f"{rid} {name} ({sev})" for rid, name, sev, _ in rule_table()),
    )
    parser.add_argument(
        "generator",
        choices=sorted(GENERATORS),
        help="registered design-under-test generator",
    )
    parser.add_argument(
        "params",
        nargs="*",
        type=int,
        help="integer generator parameters (e.g. widths, coefficient)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="report rendering (default: text)",
    )
    parser.add_argument(
        "--disable",
        action="append",
        default=[],
        metavar="NLxxx",
        help="rule ID to skip (repeatable)",
    )
    parser.add_argument(
        "--max-fanout", type=int, default=None, help="NL009 fanout budget"
    )
    parser.add_argument(
        "--max-depth", type=int, default=None, help="NL010 depth budget"
    )
    parser.add_argument(
        "--fail-on",
        choices=["error", "warning", "info"],
        default="error",
        help="severity at which the exit code becomes 1 (default: error)",
    )
    args = parser.parse_args(argv)

    try:
        netlist = generate(args.generator, *args.params)
        config = LintConfig.build(
            disabled=args.disable,
            max_fanout=args.max_fanout,
            max_depth=args.max_depth,
            fail_on=args.fail_on,
        )
    except (ReproError, TypeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = lint_netlist(netlist, config)
    if args.format == "json":
        print(report.to_json())
    else:
        print(report.to_text())
    return 0 if report.ok(config.fail_on) else 1


def _parse_assumption(spec: str) -> tuple[str, "int | tuple[int, int]"]:
    """Parse one ``BUS=V`` or ``BUS=LO:HI`` assumption argument."""
    if "=" not in spec:
        raise ValueError(f"assumption {spec!r} is not BUS=V or BUS=LO:HI")
    bus, _, value = spec.partition("=")
    if ":" in value:
        lo, _, hi = value.partition(":")
        return bus, (int(lo), int(hi))
    return bus, int(value)


def _analyze_main(argv: list[str]) -> int:
    """``analyze`` subcommand: word-level dataflow / proof / timing report."""
    from .analysis import Severity, analyze_dataflow, lint_netlist, prove_multiplier
    from .analysis.sensitization import sensitized_sta

    parser = argparse.ArgumentParser(
        prog="repro-experiment analyze",
        description="Word-level static analysis of a generated netlist: "
        "known-bits/range dataflow, equivalence proof against golden "
        "integer arithmetic, and false-path-aware STA.",
        epilog="Assumptions pin input buses, e.g. --assume b=222 (the "
        "characterised multiplicand) or --assume a=0:15 (a range).",
    )
    parser.add_argument(
        "generator",
        choices=sorted(GENERATORS),
        help="registered design-under-test generator",
    )
    parser.add_argument(
        "params",
        nargs="*",
        type=int,
        help="integer generator parameters (e.g. widths, coefficient)",
    )
    parser.add_argument(
        "--assume",
        action="append",
        default=[],
        metavar="BUS=V|BUS=LO:HI",
        help="input-bus value or range assumption (repeatable)",
    )
    parser.add_argument(
        "--prove",
        action="store_true",
        help="run the multiplier equivalence proof (exhaustive when the "
        "free input space allows, stratified otherwise); exit 1 on failure",
    )
    parser.add_argument(
        "--sta",
        action="store_true",
        help="place the design and report worst-case vs sensitisation-"
        "aware per-output-bit timing under the assumptions",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="report rendering (default: text)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="device serial / placement seed"
    )
    args = parser.parse_args(argv)

    try:
        assumptions = dict(_parse_assumption(s) for s in args.assume)
        netlist = generate(args.generator, *args.params)
        # Clamped dataflow stays sound under contradictory assumptions;
        # the contradiction itself is WL001's job (reported via lint).
        flow_result = analyze_dataflow(netlist, assumptions or None, clamp=True)
        report = lint_netlist(netlist, assumptions=assumptions or None)
    except (ReproError, TypeError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    payload: dict = {"dataflow": flow_result.as_dict(), "lint": report.to_dict()}
    failed = not report.ok(Severity.ERROR)

    if args.prove:
        try:
            m = assumptions.get("b") if isinstance(assumptions.get("b"), int) else None
            cert = prove_multiplier(netlist, m=m, seed=args.seed)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        payload["proof"] = cert.as_dict()
        failed = failed or not cert.passed

    if args.sta:
        try:
            from .fabric import make_device
            from .synthesis.flow import SynthesisFlow

            placed = SynthesisFlow(make_device(args.seed)).run(
                netlist, seed=args.seed
            )
            worst = placed.device_sta()
            pruned = sensitized_sta(placed, assumptions or None)
            payload["sta"] = {
                "setup_ns": worst.setup_ns,
                "worst_case": {
                    bus: [round(float(a) + worst.setup_ns, 4) for a in arr]
                    for bus, arr in worst.output_arrival.items()
                },
                "sensitized": {
                    bus: [round(float(a) + pruned.setup_ns, 4) for a in arr]
                    for bus, arr in pruned.output_arrival.items()
                },
                "worst_fmax_mhz": round(worst.fmax_mhz, 3),
                "sensitized_fmax_mhz": round(pruned.fmax_mhz, 3),
            }
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    if args.format == "json":
        print(json.dumps(payload, indent=2))
    else:
        df = payload["dataflow"]
        print(f"dataflow {df['netlist']!r}: {df['n_known_bits']} known bit(s), "
              f"{df['n_static_live_luts']} static live LUT(s)")
        for bus, rng in df["output_ranges"].items():
            known = df["known_output_bits"][bus]
            print(f"  output {bus!r}: range [{rng[0]}, {rng[1]}]"
                  + (f", fixed bits {known}" if known else ""))
        print(report.to_text())
        if "proof" in payload:
            proof = payload["proof"]
            verdict = "PROVED" if proof["passed"] else "FAILED"
            print(f"proof [{proof['kind']}/{proof['method']}] {verdict} over "
                  f"{proof['n_vectors']} vector(s)"
                  + (f"; counterexample {proof['counterexample']}"
                     if proof["counterexample"] else ""))
        if "sta" in payload:
            sta = payload["sta"]
            print(f"sta: worst-case fmax {sta['worst_fmax_mhz']} MHz, "
                  f"sensitised fmax {sta['sensitized_fmax_mhz']} MHz")
            for bus in sorted(sta["worst_case"]):
                print(f"  {bus!r} min period ns/bit:")
                print(f"    worst-case: {sta['worst_case'][bus]}")
                print(f"    sensitised: {sta['sensitized'][bus]}")
    return 1 if failed else 0


def _faults_main(argv: list[str]) -> int:
    """``faults`` subcommand: describe or validate a chaos fault plan."""
    from .faults import FAULT_KINDS, REPRO_FAULTS_ENV, FaultPlan

    parser = argparse.ArgumentParser(
        prog="repro-experiment faults",
        description="Describe or validate a deterministic fault-injection "
        "plan (chaos testing of the characterisation engine).",
        epilog="Fault kinds: " + ", ".join(FAULT_KINDS)
        + ". Plans are JSON — inline or @path; see docs/resilience.md.",
    )
    parser.add_argument(
        "action",
        choices=["describe", "validate"],
        help="describe: summarise the plan; validate: parse-check only",
    )
    parser.add_argument(
        "--plan",
        default=None,
        metavar="JSON|@FILE",
        help=f"fault plan (default: ${REPRO_FAULTS_ENV})",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="report rendering (default: text)",
    )
    args = parser.parse_args(argv)

    try:
        if args.plan is not None:
            plan = FaultPlan.from_spec(args.plan)
        else:
            plan = FaultPlan.from_env()
            if plan is None:
                print(
                    f"error: no fault plan (pass --plan or set ${REPRO_FAULTS_ENV})",
                    file=sys.stderr,
                )
                return 2
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.action == "validate":
        print(f"valid fault plan: {len(plan.specs)} spec(s), seed {plan.seed}")
        return 0
    if args.format == "json":
        print(json.dumps(plan.as_dict(), indent=2))
    else:
        print(plan.describe())
    return 0


def _cache_main(argv: list[str]) -> int:
    """``cache`` subcommand: inspect or clear a placed-design cache."""
    from .parallel.cache import REPRO_CACHE_DIR_ENV, PlacedDesignCache
    from .workspace import Workspace

    parser = argparse.ArgumentParser(
        prog="repro-experiment cache",
        description="Inspect, verify or clear an on-disk placed-design cache.",
    )
    parser.add_argument(
        "action",
        nargs="?",
        default="info",
        choices=["info", "verify", "clear"],
        help="what to do with the cache (default: info)",
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help="shorthand for the 'verify' action: read-only integrity walk "
        "of the content-addressed store, reporting (not rebuilding) "
        "checksum mismatches and torn entries",
    )
    where = parser.add_mutually_exclusive_group()
    where.add_argument(
        "--dir",
        dest="directory",
        default=None,
        help=f"cache directory (default: ${REPRO_CACHE_DIR_ENV})",
    )
    where.add_argument(
        "--workspace",
        default=None,
        help="use the placed-design cache of this workspace",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="report rendering (default: text)",
    )
    args = parser.parse_args(argv)
    if args.verify:
        args.action = "verify"

    if args.workspace is not None:
        cache = Workspace(args.workspace).placed_cache()
    else:
        directory = args.directory or os.environ.get(REPRO_CACHE_DIR_ENV)
        if not directory:
            print(
                "error: no cache directory (pass --dir/--workspace or set "
                f"${REPRO_CACHE_DIR_ENV})",
                file=sys.stderr,
            )
            return 2
        cache = PlacedDesignCache(directory)

    if args.action == "clear":
        removed = cache.clear(disk=True)
        print(f"removed {removed} cache entries from {cache.directory}")
        return 0
    if args.action == "verify":
        problems = cache.verify()
        checked = len(cache.disk_entries())
        if args.format == "json":
            print(json.dumps(
                {"directory": str(cache.directory), "entries": checked,
                 "problems": problems},
                indent=2,
            ))
        else:
            for problem in problems:
                print(f"{problem['entry']}: {problem['problem']}")
            print(
                f"verified {checked} entries in {cache.directory}: "
                f"{len(problems)} problem(s)"
            )
        return 1 if problems else 0
    stats = cache.stats().as_dict()
    if args.format == "json":
        print(json.dumps(stats, indent=2))
    else:
        for key in ("directory", "disk_entries", "disk_bytes"):
            print(f"{key}: {stats[key]}")
    return 0


def _audit_main(argv: list[str]) -> int:
    """``audit`` subcommand: determinism + portability audit of repro source."""
    from .analysis.portability import dx_rule_table_markdown
    from .analysis.sanitizer import dt_rule_table_markdown
    from .cli_flow import export_telemetry, resolve_telemetry_paths
    from .obs import runtime as obs

    parser = argparse.ArgumentParser(
        prog="repro-experiment audit",
        description="Audit Python source for determinism/concurrency "
        "hazards (DT rules) and distribution readiness (DX rules): "
        "ambient RNG, clock/env reads, unlocked shared-cache writes, "
        "impure boundary payloads, incomplete cache keys, host-identity "
        "leaks, frozen wire-contract drift (see docs/static_analysis.md).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to audit (default: src/repro)",
    )
    parser.add_argument(
        "--family",
        choices=["dt", "dx", "all"],
        default="all",
        help="which rule family to run (default: all, single parse)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="report rendering (default: text)",
    )
    parser.add_argument(
        "--disable",
        action="append",
        default=[],
        metavar="RULE",
        help="skip a rule entirely, e.g. DT004 or DX007 (repeatable)",
    )
    parser.add_argument(
        "--rules",
        action="store_true",
        help="print the DT + DX rule reference tables and exit",
    )
    parser.add_argument(
        "--contracts",
        action="store_true",
        help="verify the frozen wire-schema contracts only and exit "
        "(0 = no drift)",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        help="record a repro.obs trace of the audit: PATH.jsonl + PATH.json "
        "(chrome trace_event) plus a metrics snapshot (default: $REPRO_TRACE)",
    )
    args = parser.parse_args(argv)

    if args.rules:
        print(dt_rule_table_markdown())
        print()
        print(dx_rule_table_markdown())
        return 0

    trace_path, metrics_path = resolve_telemetry_paths(args.trace, None)
    if trace_path or metrics_path:
        obs.enable_observability(
            trace=bool(trace_path), metrics=bool(metrics_path)
        )
    try:
        return _run_audit(args, obs=obs)
    finally:
        if trace_path or metrics_path:
            export_telemetry(trace_path, metrics_path)
            obs.disable_observability()


def _run_audit(args: argparse.Namespace, obs: Any) -> int:
    """Body of the ``audit`` subcommand, run under any requested telemetry."""
    from .analysis.portability import audit_portability, verify_contracts
    from .analysis.sanitizer import audit_paths, build_module_index

    paths = args.paths or ["src/repro"]
    disabled = frozenset(args.disable)
    with obs.span("audit.run", family=args.family, contracts=args.contracts):
        index = build_module_index(paths)
        if args.contracts:
            drifts = verify_contracts(index)
            obs.counter_add("audit.dx.contracts_checked")
            if not drifts:
                print("wire contracts: all frozen fingerprints match")
                return 0
            for drift in drifts:
                print(f"DRIFT {drift.name} ({drift.source}): {drift.detail}")
            return 1

        reports = []
        if args.family in ("dt", "all"):
            reports.append(audit_paths(paths, disabled=disabled, index=index))
        if args.family in ("dx", "all"):
            dx_report = audit_portability(disabled=disabled, index=index)
            obs.counter_add("audit.dx.findings", len(dx_report.findings))
            obs.counter_add(
                "audit.dx.suppressions", len(dx_report.suppressions)
            )
            obs.counter_add("audit.dx.contracts_checked")
            reports.append(dx_report)

    for report in reports:
        if args.format == "json":
            print(report.to_json())
        else:
            print(report.to_text())
    return 0 if all(report.clean for report in reports) else 1


def _obs_main(argv: list[str]) -> int:
    """``obs`` subcommand: telemetry reference and artefact inspection."""
    from .errors import ObservabilityError
    from .obs import (
        load_metrics_snapshot,
        load_trace_jsonl,
        summarize_spans,
        telemetry_reference_markdown,
    )

    parser = argparse.ArgumentParser(
        prog="repro-experiment obs",
        description="Inspect repro.obs telemetry: print the span/metric "
        "reference (generated from the catalogue) or summarise exported "
        "trace/metrics artefacts (see docs/observability.md).",
    )
    parser.add_argument(
        "action",
        choices=["reference", "trace", "metrics"],
        help="reference: print the telemetry catalogue; trace: summarise "
        "a JSONL trace sidecar; metrics: pretty-print a metrics snapshot",
    )
    parser.add_argument(
        "path",
        nargs="?",
        default=None,
        help="artefact path (required for trace/metrics)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="report rendering (default: text)",
    )
    args = parser.parse_args(argv)

    if args.action == "reference":
        print(telemetry_reference_markdown())
        return 0
    if args.path is None:
        print(f"error: obs {args.action} requires a path", file=sys.stderr)
        return 2
    try:
        if args.action == "trace":
            rows = summarize_spans(load_trace_jsonl(args.path))
            if args.format == "json":
                print(json.dumps(rows, indent=2))
            else:
                print(render_table(
                    ["span", "count", "total s", "mean s", "max s"],
                    [(r["name"], r["count"], r["total_s"], r["mean_s"], r["max_s"])
                     for r in rows],
                    title=f"trace summary: {args.path}",
                ))
            return 0
        snapshot = load_metrics_snapshot(args.path)
        if args.format == "json":
            print(json.dumps(snapshot, indent=2, sort_keys=True))
        else:
            for name, value in sorted(snapshot.get("counters", {}).items()):
                print(f"counter   {name} = {value}")
            for name, value in sorted(snapshot.get("gauges", {}).items()):
                print(f"gauge     {name} = {value}")
            for name, h in sorted(snapshot.get("histograms", {}).items()):
                print(f"histogram {name}: count={h['count']} sum={h['sum']:.6g}"
                      + (f" min={h['min']:.6g} max={h['max']:.6g}"
                         if h["count"] else ""))
            for p in snapshot.get("profiles", []):
                print(f"profile   {p['stage']}: wall={p['wall_s']}s "
                      f"cpu={p['cpu_s']}s peak_rss={p['peak_rss_bytes']}B")
        return 0
    except ObservabilityError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "lint":
        return _lint_main(argv[1:])
    if argv and argv[0] == "analyze":
        return _analyze_main(argv[1:])
    if argv and argv[0] == "audit":
        return _audit_main(argv[1:])
    if argv and argv[0] == "cache":
        return _cache_main(argv[1:])
    if argv and argv[0] == "faults":
        return _faults_main(argv[1:])
    if argv and argv[0] == "obs":
        return _obs_main(argv[1:])
    if argv and argv[0] == "serve":
        from .serve.cli import serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "worker":
        from .parallel.worker import worker_main

        return worker_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro-experiment",
        description="Regenerate a figure/table of the IPDPSW'14 over-clocked "
        "linear-projection paper.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_FIGURES) + ["table1", "runtime", "all"],
        help="which experiment to run",
    )
    parser.add_argument("--seed", type=int, default=42, help="root seed / device serial")
    parser.add_argument(
        "--scale",
        type=float,
        default=0.05,
        help="fraction of the paper's Table-I sample counts (1.0 = full)",
    )
    parser.add_argument(
        "--kernel",
        choices=sorted(KERNEL_MODES),
        default=None,
        help="netlist evaluation kernel: bit-sliced 'packed' or the "
        "interpreted golden reference (default: $REPRO_KERNEL or packed)",
    )
    args = parser.parse_args(argv)
    if args.kernel is not None:
        os.environ[REPRO_KERNEL_ENV] = args.kernel
        set_kernel_mode(args.kernel)

    if args.experiment == "table1":
        _print_result("table1", tables.table1())
        return 0

    ctx = ExperimentContext.get(seed=args.seed, scale=args.scale)
    if args.experiment == "runtime":
        _print_result("runtime", tables.runtime_model_table(ctx))
        return 0
    if args.experiment == "all":
        for name, fn in _FIGURES.items():
            print(f"==== {name} ====")
            _print_result(name, fn(ctx))
        _print_result("runtime", tables.runtime_model_table(ctx))
        return 0
    _print_result(args.experiment, _FIGURES[args.experiment](ctx))
    return 0


if __name__ == "__main__":
    sys.exit(main())
