"""Wallace/Dadda-style tree multiplier.

An alternative generic-multiplier architecture: partial products are
compressed stage by stage with column-parallel 3:2 / 2:2 counters until
two rows remain, then a single carry-propagate adder finishes the product.

Versus the ripple array (:func:`repro.netlist.multipliers.unsigned_array_multiplier`)
the tree trades LUTs for depth: its combinational depth is
``O(log(width)) + final-adder`` instead of ``O(wa + wb)``, so the same
fabric clocks it faster and its over-clocking error signature is flatter
across output bits (the array concentrates failures in the MSbs).  The
architecture ablation bench uses it to show the characterisation
framework is component-agnostic — exactly the paper's claim that "the
proposed framework can be utilised for other arithmetic components"
(Sec. III-A).
"""

from __future__ import annotations

from ..errors import NetlistError
from .adders import add_ripple_carry
from .core import Netlist

__all__ = ["wallace_tree_multiplier"]


def _compress_stage(
    nl: Netlist, columns: list[list[int]], width: int
) -> tuple[list[list[int]], bool]:
    """One parallel compression stage: 3:2 and 2:2 counters per column.

    Returns the next column set and whether any compression happened.
    Bits produced in this stage land in the *next* stage's columns, which
    is what bounds the tree's depth logarithmically.
    """
    nxt: list[list[int]] = [[] for _ in range(width)]
    compressed = False
    for c in range(width):
        bits = columns[c]
        keep_carry = c + 1 < width  # carries past the top column are modular
        i = 0
        while len(bits) - i >= 3:
            if keep_carry:
                s, cy = nl.full_adder(bits[i], bits[i + 1], bits[i + 2])
                nxt[c + 1].append(cy)
            else:
                s = nl.XOR3(bits[i], bits[i + 1], bits[i + 2])
            nxt[c].append(s)
            i += 3
            compressed = True
        if len(bits) - i == 2 and len(bits) > 2:
            if keep_carry:
                s, cy = nl.half_adder(bits[i], bits[i + 1])
                nxt[c + 1].append(cy)
            else:
                s = nl.XOR(bits[i], bits[i + 1])
            nxt[c].append(s)
            i += 2
            compressed = True
        nxt[c].extend(bits[i:])
    return nxt, compressed


def wallace_tree_multiplier(wa: int, wb: int, name: str | None = None) -> Netlist:
    """Build an unsigned ``wa`` x ``wb`` Wallace-tree multiplier.

    Interface matches the array generator: inputs ``a``/``b``, output bus
    ``p`` of ``wa + wb`` bits, LSB first.
    """
    if wa < 1 or wb < 1:
        raise NetlistError(f"multiplier widths must be >= 1, got {wa}x{wb}")
    if wa > 32 or wb > 32:
        raise NetlistError("widths above 32 bits unsupported")
    nl = Netlist(name or f"wmul{wa}x{wb}")
    a = nl.add_input_bus("a", wa)
    b = nl.add_input_bus("b", wb)
    width = wa + wb

    columns: list[list[int]] = [[] for _ in range(width)]
    for i in range(wb):
        for j in range(wa):
            columns[i + j].append(nl.AND(a[j], b[i]))

    while max(len(c) for c in columns) > 2:
        columns, compressed = _compress_stage(nl, columns, width)
        if not compressed:  # pragma: no cover - loop guard
            raise NetlistError("Wallace compression stalled")

    # Final carry-propagate add of the two remaining rows.  The product is
    # exactly wa+wb bits, so the top carry is provably 0 and never built.
    # Columns holding fewer than two bits pad with the zero rail, which
    # constant folding absorbs (no LUT ever sees the zero twice).
    zero = nl.add_const(0)
    row0 = [c[0] if len(c) >= 1 else zero for c in columns]
    row1 = [c[1] if len(c) >= 2 else zero for c in columns]
    product, _ = add_ripple_carry(nl, row0, row1, emit_carry=False, fold_consts=True)
    nl.set_output_bus("p", product)
    nl.prune_dangling()
    return nl
