"""Multiply-accumulate (MAC) block generator.

The linear-projection datapath computes each output coefficient as a dot
product of the input vector with a projection-vector column; in hardware
this is a MAC per column (paper Sec. VI-B measures area "for each
Multiply-Accumulate (MAC) block").  The block here is a sign-magnitude
generic multiplier followed by a ripple-carry accumulator-add stage.
"""

from __future__ import annotations

from ..errors import NetlistError
from .adders import add_ripple_carry
from .core import Netlist

__all__ = ["mac_block"]


def mac_block(
    w_data: int, w_coeff: int, w_acc: int | None = None, name: str | None = None
) -> Netlist:
    """Build a MAC block: ``acc_out = acc_in + a * b`` (unsigned core).

    Inputs: ``a`` (``w_data`` bits), ``b`` (``w_coeff`` bits), ``acc``
    (``w_acc`` bits, default ``w_data + w_coeff + 2`` guard bits).
    Output: ``acc_out`` (``w_acc`` bits, modular).

    Signs are handled outside the block (sign-magnitude datapath), so the
    combinational core under test is exactly the generic multiplier plus
    the accumulate adder, mirroring the characterised component.
    """
    if w_data < 1 or w_coeff < 1:
        raise NetlistError("MAC operand widths must be >= 1")
    w_prod = w_data + w_coeff
    if w_acc is None:
        w_acc = w_prod + 2
    if w_acc < w_prod:
        raise NetlistError(f"accumulator width {w_acc} narrower than product {w_prod}")

    nl = Netlist(name or f"mac{w_data}x{w_coeff}")
    a = nl.add_input_bus("a", w_data)
    b = nl.add_input_bus("b", w_coeff)
    acc_in = nl.add_input_bus("acc", w_acc)

    # Generic unsigned array multiplier (same topology as the DUT).
    if w_coeff == 1:
        product = [nl.AND(a[j], b[0]) for j in range(w_data)] + [nl.add_const(0)]
    elif w_data == 1:
        # Degenerate 1-bit data operand: product fits w_coeff bits, so the
        # MSB is constant 0 padding, not a dead carry LUT (rule WL002).
        product = [nl.AND(b[i], a[0]) for i in range(w_coeff)] + [nl.add_const(0)]
    else:
        first = [nl.AND(a[j], b[0]) for j in range(w_data)]
        product = [first[0]]
        running = first[1:]
        carry_top: int | None = None
        for i in range(1, w_coeff):
            pp = [nl.AND(a[j], b[i]) for j in range(w_data)]
            top = carry_top if carry_top is not None else nl.add_const(0)
            sums, cout = add_ripple_carry(nl, running + [top], pp)
            product.append(sums[0])
            running = sums[1:]
            carry_top = cout
        product.extend(running)
        product.append(carry_top)

    # Zero-extend the product to the accumulator width and add.  The
    # accumulator is modular, so the top carry is never materialised.
    zero = nl.add_const(0)
    prod_ext = product + [zero] * (w_acc - len(product))
    acc_out, _ = add_ripple_carry(nl, list(acc_in), prod_ext, emit_carry=False)
    nl.set_output_bus("acc_out", acc_out)
    nl.set_output_bus("p", product)
    return nl
