"""LUT-based generic multiplier generators.

The paper's design-under-test is a LUT-based *generic* multiplier (both
operands variable), as opposed to the constant-coefficient multipliers of
its predecessor work [7].  Three variants are provided:

* :func:`unsigned_array_multiplier` — the classic ripple array multiplier
  used for characterisation (paper Sec. III uses an 8x8 unsigned DUT);
* :func:`baugh_wooley_multiplier` — two's-complement signed array
  multiplier (modified Baugh-Wooley form);
* :func:`sign_magnitude_multiplier` — unsigned core with XOR sign handling,
  matching how the linear-projection datapath consumes the error model
  (coefficients are characterised by magnitude).
"""

from __future__ import annotations

from ..errors import NetlistError
from .adders import add_ripple_carry
from .core import TT_NOT, Netlist

__all__ = [
    "unsigned_array_multiplier",
    "baugh_wooley_multiplier",
    "sign_magnitude_multiplier",
]


def _check_widths(wa: int, wb: int) -> None:
    if wa < 1 or wb < 1:
        raise NetlistError(f"multiplier widths must be >= 1, got {wa}x{wb}")
    if wa > 32 or wb > 32:
        raise NetlistError(f"multiplier widths above 32 bits unsupported ({wa}x{wb})")


def unsigned_array_multiplier(wa: int, wb: int, name: str | None = None) -> Netlist:
    """Build an unsigned ``wa`` x ``wb`` ripple array multiplier.

    Inputs: bus ``a`` (``wa`` bits), bus ``b`` (``wb`` bits); output bus
    ``p`` (``wa + wb`` bits), all LSB first.

    Structure: partial products ``a & b_i`` accumulated row by row with
    ripple-carry adders, so the critical path runs diagonally to the most
    significant product bit — MSbs fail first under over-clocking, exactly
    as the paper observes (Fig. 4 caption).
    """
    _check_widths(wa, wb)
    nl = Netlist(name or f"umul{wa}x{wb}")
    a = nl.add_input_bus("a", wa)
    b = nl.add_input_bus("b", wb)

    if wb == 1:
        # Degenerate case: product is a & b0 padded with one zero MSB.
        product = [nl.AND(a[j], b[0]) for j in range(wa)] + [nl.add_const(0)]
        nl.set_output_bus("p", product)
        return nl
    if wa == 1:
        # Symmetric degenerate case.  The general path would build a
        # ripple chain whose top carry is provably 0 (a 1-bit operand
        # product needs only wb bits); pad with a constant instead of a
        # dead carry LUT (rule WL002).
        product = [nl.AND(b[i], a[0]) for i in range(wb)] + [nl.add_const(0)]
        nl.set_output_bus("p", product)
        return nl

    # Row 0 partial product is the initial running sum.
    acc = [nl.AND(a[j], b[0]) for j in range(wa)]
    product: list[int] = [acc[0]]
    running = acc[1:]  # wa-1 bits at weights 2^1..
    carry_top: int | None = None
    for i in range(1, wb):
        pp = [nl.AND(a[j], b[i]) for j in range(wa)]
        top = carry_top if carry_top is not None else nl.add_const(0)
        addend = running + [top]  # wa bits at weights 2^i..
        sums, cout = add_ripple_carry(nl, addend, pp)
        product.append(sums[0])
        running = sums[1:]
        carry_top = cout
    product.extend(running)
    product.append(carry_top)
    nl.set_output_bus("p", product)
    return nl


def baugh_wooley_multiplier(wa: int, wb: int, name: str | None = None) -> Netlist:
    """Build a two's-complement signed ``wa`` x ``wb`` array multiplier.

    Modified Baugh-Wooley form: partial products with one signed operand
    bit are complemented (NAND instead of AND) and correction ones are
    added at columns ``wa-1``, ``wb-1`` and ``wa+wb-1``; the result is the
    exact ``wa+wb``-bit two's-complement product.

    Inputs ``a`` (signed, ``wa`` bits), ``b`` (signed, ``wb`` bits);
    output ``p`` (``wa + wb`` bits, two's complement).
    """
    _check_widths(wa, wb)
    if wa < 2 or wb < 2:
        raise NetlistError("Baugh-Wooley needs at least 2-bit operands")
    nl = Netlist(name or f"bwmul{wa}x{wb}")
    a = nl.add_input_bus("a", wa, signed=True)
    b = nl.add_input_bus("b", wb, signed=True)
    wp = wa + wb

    # Column-wise lists of partial-product bits (weight = column index).
    columns: list[list[int]] = [[] for _ in range(wp)]
    for i in range(wb):
        for j in range(wa):
            mixed = (i == wb - 1) != (j == wa - 1)
            node = nl.NAND(a[j], b[i]) if mixed else nl.AND(a[j], b[i])
            columns[i + j].append(node)
    # Correction constants: +2^(wa-1) + 2^(wb-1) + 2^(wa+wb-1) (mod 2^wp).
    columns[wa - 1].append(nl.add_const(1))
    columns[wb - 1].append(nl.add_const(1))
    columns[wp - 1].append(nl.add_const(1))

    product = _reduce_columns(nl, columns, wp)
    nl.set_output_bus("p", product, signed=True)
    # The correction ones are absorbed numerically; sweep the rail if unused.
    nl.prune_dangling()
    return nl


def _reduce_columns(nl: Netlist, columns: list[list[int]], width: int) -> list[int]:
    """Ripple-style column compression to one bit per column (mod 2^width).

    Repeatedly applies full/half adders within each column, pushing carries
    into the next column, until every column holds a single bit.  Carries
    past the top column are dropped (modular arithmetic).  Constant bits
    (e.g. the Baugh-Wooley correction ones) are absorbed numerically so no
    counter LUT ever wires the shared constant rail — and never the same
    rail twice.
    """
    cols = [list(c) for c in columns]
    carry_const = 0  # constant addend carried into the current column
    for c in range(width):
        k = carry_const
        rest = []
        for bit in cols[c]:
            v = nl.const_value(bit)
            if v is None:
                rest.append(bit)
            else:
                k += v
        if (k & 1) and rest:
            # bit + 1: sum = NOT bit, carry = bit (folded increment cell)
            bit = rest.pop()
            rest.append(nl.add_lut_shared(TT_NOT, (bit,)))
            if c + 1 < width:
                cols[c + 1].append(bit)
            k -= 1
        cols[c] = rest if not (k & 1) else rest + [nl.add_const(1)]
        carry_const = k >> 1
    changed = True
    while changed:
        changed = False
        for c in range(width):
            col = cols[c]
            keep_carry = c + 1 < width  # modular: top-column carries vanish
            while len(col) >= 3:
                a_, b_, cin = col.pop(), col.pop(), col.pop()
                if keep_carry:
                    s, cy = nl.full_adder(a_, b_, cin)
                    cols[c + 1].append(cy)
                else:
                    s = nl.XOR3(a_, b_, cin)
                col.append(s)
                changed = True
            if len(col) == 2:
                a_, b_ = col.pop(), col.pop()
                if keep_carry:
                    s, cy = nl.half_adder(a_, b_)
                    cols[c + 1].append(cy)
                else:
                    s = nl.XOR(a_, b_)
                col.append(s)
                changed = True
    out = []
    for c in range(width):
        if not cols[c]:
            out.append(nl.add_const(0))
        else:
            out.append(cols[c][0])
    return out


def sign_magnitude_multiplier(wa: int, wb: int, name: str | None = None) -> Netlist:
    """Sign-magnitude multiplier: unsigned core + XOR sign bit.

    Inputs: magnitude buses ``a`` (``wa`` bits) and ``b`` (``wb`` bits) and
    1-bit sign buses ``sa``, ``sb``.  Outputs: magnitude product ``p``
    (``wa+wb`` bits) and sign ``sp`` (1 bit).

    The projection datapath uses this form because the characterised error
    model E(m, f) is indexed by coefficient *magnitude* (paper Sec. V-B1
    fixes one operand to the coefficient value).
    """
    _check_widths(wa, wb)
    nl = Netlist(name or f"smmul{wa}x{wb}")
    a = nl.add_input_bus("a", wa)
    b = nl.add_input_bus("b", wb)
    sa = nl.add_input_bus("sa", 1)
    sb = nl.add_input_bus("sb", 1)
    # Unsigned array core (same topology as unsigned_array_multiplier).
    if wb == 1:
        product = [nl.AND(a[j], b[0]) for j in range(wa)] + [nl.add_const(0)]
    elif wa == 1:
        # Same degenerate form as unsigned_array_multiplier: a 1-bit
        # operand product needs only wb bits, so the MSB is constant 0.
        product = [nl.AND(b[i], a[0]) for i in range(wb)] + [nl.add_const(0)]
    else:
        acc = [nl.AND(a[j], b[0]) for j in range(wa)]
        product = [acc[0]]
        running = acc[1:]
        carry_top: int | None = None
        for i in range(1, wb):
            pp = [nl.AND(a[j], b[i]) for j in range(wa)]
            top = carry_top if carry_top is not None else nl.add_const(0)
            addend = running + [top]
            sums, cout = add_ripple_carry(nl, addend, pp)
            product.append(sums[0])
            running = sums[1:]
            carry_top = cout
        product.extend(running)
        product.append(carry_top)
    nl.set_output_bus("p", product)
    nl.set_output_bus("sp", [nl.XOR(sa[0], sb[0])])
    return nl
