"""Constant-coefficient multiplier (CCM) generator.

The paper's predecessor work [7] built linear-projection designs from CCMs;
the paper's contribution is moving to *generic* multipliers so one
characterised component covers every coefficient value.  The CCM generator
is kept as the comparison baseline (ablation benches) and to reproduce the
scaling argument: a CCM's structure — and therefore its area, delay and
over-clocking behaviour — depends on the coefficient, so characterising a
design space of CCMs needs one circuit per coefficient value, which is what
limited [7] to small problems (paper Sec. II).

The generator uses canonical-signed-digit (CSD) recoding: the product is a
sum/difference of shifted copies of the input, one adder per non-zero CSD
digit.
"""

from __future__ import annotations

from ..errors import NetlistError
from .adders import add_ripple_carry, subtract_ripple
from .core import Netlist

__all__ = ["csd_digits", "ccm_multiplier"]


def csd_digits(value: int) -> list[int]:
    """Canonical-signed-digit recoding of a non-negative integer.

    Returns digits in {-1, 0, +1}, LSB first, with no two adjacent
    non-zeros.  ``sum(d * 2**i) == value`` holds.
    """
    if value < 0:
        raise NetlistError("CSD recoding expects a non-negative constant")
    digits: list[int] = []
    v = value
    while v:
        if v & 1:
            # remainder 2 - (v mod 4): +1 if v % 4 == 1 else -1
            d = 2 - (v & 3)
            digits.append(d)
            v -= d
        else:
            digits.append(0)
        v >>= 1
    if not digits:
        digits = [0]
    return digits


def ccm_multiplier(coefficient: int, w_in: int, name: str | None = None) -> Netlist:
    """Build a CCM computing ``coefficient * x`` for unsigned ``x``.

    Inputs: bus ``x`` (``w_in`` bits).  Output: bus ``p`` wide enough to
    hold ``coefficient * (2**w_in - 1)`` exactly.

    The zero coefficient yields a constant-zero output (no LUTs), matching
    what a synthesiser would emit — and illustrating why CCM area/delay is
    coefficient-dependent.
    """
    if coefficient < 0:
        raise NetlistError("ccm_multiplier expects a non-negative coefficient")
    if w_in < 1:
        raise NetlistError("input width must be >= 1")
    nl = Netlist(name or f"ccm{coefficient}x{w_in}")
    nl.attrs.update(
        kind="ccm",
        coefficient=coefficient,
        w_in=w_in,
        data_bus="x",
        product_bus="p",
    )
    x = nl.add_input_bus("x", w_in)

    max_product = coefficient * ((1 << w_in) - 1)
    w_out = max(1, max_product.bit_length())

    if coefficient == 0:
        nl.set_output_bus("p", [nl.add_const(0)])
        return nl

    digits = csd_digits(coefficient)

    def shifted_term(shift: int) -> list[int]:
        """``x << shift`` as a w_out-bit vector (zero-padded on demand)."""
        bits = list(x)
        if shift:
            bits = [nl.add_const(0)] * shift + bits
        bits = bits[:w_out]
        if len(bits) < w_out:
            bits += [nl.add_const(0)] * (w_out - len(bits))
        return bits

    # The running sum stays w_out bits wide and the final value fits w_out
    # bits exactly, so no adder/subtractor ever materialises its top carry.
    acc: list[int] | None = None
    pending_sub: list[list[int]] = []
    for i, d in enumerate(digits):
        if d == 0:
            continue
        term = shifted_term(i)
        if acc is None:
            if d > 0:
                acc = term
            else:
                # Leading CSD digit of a positive constant is never -1 at
                # the top, but intermediate leading -1 can occur before a
                # later +1; defer subtraction until we have a positive acc.
                pending_sub.append(term)
            continue
        if d > 0:
            acc, _ = add_ripple_carry(nl, acc, term, emit_carry=False, fold_consts=True)
        else:
            acc, _ = subtract_ripple(nl, acc, term, emit_carry=False)
    if acc is None:
        raise NetlistError(f"degenerate CSD for coefficient {coefficient}")
    for term in pending_sub:
        acc, _ = subtract_ripple(nl, acc, term, emit_carry=False)
    nl.set_output_bus("p", acc[:w_out])
    # Constant folding in the adders absorbs padded-zero nets by value;
    # sweep any constant nodes left without consumers.
    nl.prune_dangling()
    return nl
