"""Adder structures mapped to LUTs.

Ripple-carry adders dominate LUT-based arithmetic on low-cost FPGA fabric
(the Cyclone III LE has a dedicated carry chain; we model the chain as the
MAJ3 LUT of each full adder).  The ripple topology is what gives the
most-significant sum bits the longest combinational paths — the property
the paper's over-clocking error analysis hinges on.
"""

from __future__ import annotations

from typing import Sequence

from ..errors import NetlistError
from .core import (
    TT_AND2,
    TT_MAJ3,
    TT_NOT,
    TT_OR2,
    TT_XNOR2,
    TT_XOR2,
    TT_XOR3,
    Netlist,
)

__all__ = ["add_ripple_carry", "add_ripple_carry_with_const", "subtract_ripple"]


def _adder_stage(
    nl: Netlist,
    a: int,
    b: int,
    cin: int | None,
    need_carry: bool,
    fold: bool,
) -> tuple[int, int | None]:
    """One ripple stage; with ``fold`` constant operands are propagated.

    Folding emits the simplified cell a synthesiser would: operands that
    are constant nodes never reach a LUT fanin, so no LUT ever wires the
    same constant twice or ignores an input.  Folded cells are also
    structurally shared (CSE) — the shift-and-add patterns that use
    folding (CSD multipliers) routinely re-add identical operand pairs.
    """
    ops = [a, b] if cin is None else [a, b, cin]
    if fold:
        values = [nl.const_value(o) for o in ops]
        const_sum = sum(v for v in values if v is not None)
        variables = [o for o, v in zip(ops, values) if v is None]
        if not variables:
            total = const_sum
            return nl.add_const(total & 1), nl.add_const(total >> 1)
        if len(variables) == 1:
            v = variables[0]
            if const_sum == 0:
                return v, nl.add_const(0)
            if const_sum == 1:
                return nl.add_lut_shared(TT_NOT, (v,)), v
            return v, nl.add_const(1)  # const_sum == 2
        if len(variables) == 2:
            u, w = variables
            if const_sum == 0:
                s = nl.add_lut_shared(TT_XOR2, (u, w))
                return s, (nl.add_lut_shared(TT_AND2, (u, w)) if need_carry else None)
            s = nl.add_lut_shared(TT_XNOR2, (u, w))
            return s, (nl.add_lut_shared(TT_OR2, (u, w)) if need_carry else None)
        s = nl.add_lut_shared(TT_XOR3, (a, b, cin))
        return s, (nl.add_lut_shared(TT_MAJ3, (a, b, cin)) if need_carry else None)
    if cin is None:
        return nl.XOR(a, b), (nl.AND(a, b) if need_carry else None)
    return nl.XOR3(a, b, cin), (nl.MAJ3(a, b, cin) if need_carry else None)


def add_ripple_carry(
    nl: Netlist,
    a_bits: Sequence[int],
    b_bits: Sequence[int],
    cin: int | None = None,
    emit_carry: bool = True,
    fold_consts: bool = False,
) -> tuple[list[int], int | None]:
    """Ripple-carry add two equal-width bit vectors.

    Parameters
    ----------
    nl:
        Netlist under construction.
    a_bits, b_bits:
        LSB-first node-id vectors of equal width.
    cin:
        Optional carry-in node; omitted means constant 0 (and the LSB stage
        degenerates to a half adder, as a synthesiser would emit).
    emit_carry:
        When False, the final carry-out LUT is not built and ``None`` is
        returned in its place.  Callers that discard the carry (modular
        sums, outputs provably too narrow to overflow) must use this so
        the netlist carries no dead logic.
    fold_consts:
        Constant-propagate operand bits that are constant nodes, emitting
        simplified stage cells.  Off by default so the characterised DUT
        topologies stay exactly as published; the CSD/CCM path enables it
        because its shifted terms are padded with constants.

    Returns
    -------
    (sum_bits, carry_out):
        LSB-first sum node ids (same width as the inputs) and the final
        carry node id (``None`` with ``emit_carry=False``).
    """
    if len(a_bits) != len(b_bits):
        raise NetlistError(f"adder width mismatch: {len(a_bits)} vs {len(b_bits)}")
    if not a_bits:
        raise NetlistError("adder width must be >= 1")
    width = len(a_bits)
    sums: list[int] = []
    c: int | None = cin
    for j in range(width):
        last = j == width - 1
        need_carry = emit_carry or not last
        s, c = _adder_stage(nl, a_bits[j], b_bits[j], c, need_carry, fold_consts)
        sums.append(s)
        if not need_carry:
            c = None
    return sums, c


def add_ripple_carry_with_const(
    nl: Netlist,
    a_bits: Sequence[int],
    const_bits: Sequence[int],
    cin: int | None = None,
) -> tuple[list[int], int]:
    """Add a compile-time constant bit pattern to a bit vector.

    Constant-0 positions propagate the running carry through simplified
    logic (as constant propagation in a synthesiser would); constant-1
    positions use half-adder-style increment cells.
    """
    if len(a_bits) != len(const_bits):
        raise NetlistError("width mismatch in constant add")
    sums: list[int] = []
    carry = cin
    for a, k in zip(a_bits, const_bits):
        if k not in (0, 1):
            raise NetlistError("constant bits must be 0 or 1")
        if carry is None:
            if k == 0:
                sums.append(a)  # a + 0, no carry yet
                continue
            # a + 1: sum = NOT a, carry = a (constant-propagated half adder)
            sums.append(nl.NOT(a))
            carry = a
            continue
        if k == 0:
            s, carry = nl.half_adder(a, carry)
            sums.append(s)
        else:
            # a + 1 + carry: sum = a XNOR carry, carry_out = a OR carry
            sums.append(nl.XNOR(a, carry))
            carry = nl.OR(a, carry)
    if carry is None:
        carry = nl.add_const(0)
    return sums, carry


def subtract_ripple(
    nl: Netlist,
    a_bits: Sequence[int],
    b_bits: Sequence[int],
    emit_carry: bool = True,
) -> tuple[list[int], int | None]:
    """Compute ``a - b`` as ``a + NOT(b) + 1`` (two's complement).

    Returns LSB-first difference bits and the carry-out (1 = no borrow;
    ``None`` with ``emit_carry=False``).  The inverter layer constant-folds
    NOTs of constant bits and shares repeated inverters of the same driver
    (synthesiser-style CSE), so repeated subtractions of overlapping
    shifted terms — the CSD multiplier pattern — stay lint-clean.
    """
    if len(a_bits) != len(b_bits):
        raise NetlistError("subtractor width mismatch")
    nb: list[int] = []
    for b in b_bits:
        v = nl.const_value(b)
        if v is not None:
            nb.append(nl.add_const(1 - v))
        else:
            nb.append(nl.add_lut_shared(TT_NOT, (b,)))
    one = nl.add_const(1)
    return add_ripple_carry(
        nl, list(a_bits), nb, cin=one, emit_carry=emit_carry, fold_consts=True
    )
