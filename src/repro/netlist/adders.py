"""Adder structures mapped to LUTs.

Ripple-carry adders dominate LUT-based arithmetic on low-cost FPGA fabric
(the Cyclone III LE has a dedicated carry chain; we model the chain as the
MAJ3 LUT of each full adder).  The ripple topology is what gives the
most-significant sum bits the longest combinational paths — the property
the paper's over-clocking error analysis hinges on.
"""

from __future__ import annotations

from typing import Sequence

from ..errors import NetlistError
from .core import Netlist

__all__ = ["add_ripple_carry", "add_ripple_carry_with_const", "subtract_ripple"]


def add_ripple_carry(
    nl: Netlist,
    a_bits: Sequence[int],
    b_bits: Sequence[int],
    cin: int | None = None,
) -> tuple[list[int], int]:
    """Ripple-carry add two equal-width bit vectors.

    Parameters
    ----------
    nl:
        Netlist under construction.
    a_bits, b_bits:
        LSB-first node-id vectors of equal width.
    cin:
        Optional carry-in node; omitted means constant 0 (and the LSB stage
        degenerates to a half adder, as a synthesiser would emit).

    Returns
    -------
    (sum_bits, carry_out):
        LSB-first sum node ids (same width as the inputs) and the final
        carry node id.
    """
    if len(a_bits) != len(b_bits):
        raise NetlistError(f"adder width mismatch: {len(a_bits)} vs {len(b_bits)}")
    if not a_bits:
        raise NetlistError("adder width must be >= 1")
    sums: list[int] = []
    if cin is None:
        s, c = nl.half_adder(a_bits[0], b_bits[0])
    else:
        s, c = nl.full_adder(a_bits[0], b_bits[0], cin)
    sums.append(s)
    for j in range(1, len(a_bits)):
        s, c = nl.full_adder(a_bits[j], b_bits[j], c)
        sums.append(s)
    return sums, c


def add_ripple_carry_with_const(
    nl: Netlist,
    a_bits: Sequence[int],
    const_bits: Sequence[int],
    cin: int | None = None,
) -> tuple[list[int], int]:
    """Add a compile-time constant bit pattern to a bit vector.

    Constant-0 positions propagate the running carry through simplified
    logic (as constant propagation in a synthesiser would); constant-1
    positions use half-adder-style increment cells.
    """
    if len(a_bits) != len(const_bits):
        raise NetlistError("width mismatch in constant add")
    sums: list[int] = []
    carry = cin
    for a, k in zip(a_bits, const_bits):
        if k not in (0, 1):
            raise NetlistError("constant bits must be 0 or 1")
        if carry is None:
            if k == 0:
                sums.append(a)  # a + 0, no carry yet
                continue
            # a + 1: sum = NOT a, carry = a (constant-propagated half adder)
            sums.append(nl.NOT(a))
            carry = a
            continue
        if k == 0:
            s, carry = nl.half_adder(a, carry)
            sums.append(s)
        else:
            # a + 1 + carry: sum = a XNOR carry, carry_out = a OR carry
            sums.append(nl.XNOR(a, carry))
            carry = nl.OR(a, carry)
    if carry is None:
        carry = nl.add_const(0)
    return sums, carry


def subtract_ripple(
    nl: Netlist, a_bits: Sequence[int], b_bits: Sequence[int]
) -> tuple[list[int], int]:
    """Compute ``a - b`` as ``a + NOT(b) + 1`` (two's complement).

    Returns LSB-first difference bits and the carry-out (1 = no borrow).
    """
    if len(a_bits) != len(b_bits):
        raise NetlistError("subtractor width mismatch")
    nb = [nl.NOT(b) for b in b_bits]
    one = nl.add_const(1)
    return add_ripple_carry(nl, list(a_bits), nb, cin=one)
