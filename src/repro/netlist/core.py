"""Netlist DAG representation, validation, levelisation and evaluation.

A :class:`Netlist` is a combinational DAG whose internal nodes are K-input
LUTs (K <= 4, matching a Cyclone III logic element), plus primary-input and
constant nodes.  Construction is imperative via builder methods; once built,
:meth:`Netlist.compile` freezes the graph into a :class:`CompiledNetlist`
of NumPy arrays that the timing simulator consumes.

Truth-table convention: for a LUT with fanins ``(f0, f1, ..., f_{a-1})``
the row index is ``sum(value(f_k) << k)`` — fanin 0 is the least
significant index bit — and the output is bit ``index`` of the integer
truth table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from ..config import KERNEL_PACKED, get_kernel_mode
from ..errors import NetlistError

__all__ = [
    "Netlist",
    "CompiledNetlist",
    "EvalScratch",
    "NetlistStats",
    "bits_from_ints",
    "ints_from_bits",
]

MAX_LUT_ARITY = 4

# Node kinds
_KIND_INPUT = 0
_KIND_CONST = 1
_KIND_LUT = 2

# Common truth tables (fanin 0 = LSB of the row index).
TT_NOT = 0b01  # 1-input
TT_BUF = 0b10  # 1-input
TT_AND2 = 0b1000
TT_OR2 = 0b1110
TT_XOR2 = 0b0110
TT_NAND2 = 0b0111
TT_NOR2 = 0b0001
TT_XNOR2 = 0b1001
TT_ANDN2 = 0b0010  # a AND NOT b  (index = a + 2b)
TT_XOR3 = 0b10010110
TT_MAJ3 = 0b11101000
TT_MUX = 0b11001010  # fanins (d0, d1, sel): sel ? d1 : d0


def bits_from_ints(values: np.ndarray | Sequence[int], width: int) -> np.ndarray:
    """Unpack integers into a ``(batch, width)`` uint8 LSB-first bit array.

    Negative integers are interpreted in ``width``-bit two's complement.
    Widths up to 64 are supported (the int64 carrier).
    """
    v = np.asarray(values)
    if width < 1:
        raise NetlistError("width must be >= 1")
    if width > 64:
        raise NetlistError(f"{width}-bit words do not fit the int64 carrier")
    v = v.astype(np.int64)
    if width < 64:
        v = v & ((1 << width) - 1)
    # width == 64: int64 already is the 64-bit two's-complement pattern and
    # the arithmetic right shift below extracts sign-extended bits correctly.
    shifts = np.arange(width, dtype=np.int64)
    return ((v[..., None] >> shifts) & 1).astype(np.uint8)


def ints_from_bits(bits: np.ndarray, signed: bool = False) -> np.ndarray:
    """Pack a ``(batch, width)`` LSB-first bit array into integers.

    With ``signed=True`` the most significant bit is a two's-complement
    sign bit.  Signed words up to 64 bits and unsigned words up to 63 bits
    fit the int64 result (a 64-bit unsigned all-ones word does not).
    """
    b = np.asarray(bits)
    if b.ndim != 2:
        raise NetlistError(f"expected 2-D bit array, got shape {b.shape}")
    width = b.shape[1]
    if width > (64 if signed else 63):
        raise NetlistError(
            f"{width}-bit {'signed' if signed else 'unsigned'} words do not "
            "fit the int64 carrier"
        )
    # Weights as int64 without ever forming 2**63 as a positive Python int:
    # the sign weight of a w-bit two's-complement word is -(2**(w-1)).
    weights = np.ones(width, dtype=np.int64)
    np.left_shift(weights[:63], np.arange(min(width, 63), dtype=np.int64),
                  out=weights[:63])
    if signed:
        weights[-1] = (
            np.iinfo(np.int64).min if width == 64 else -(1 << (width - 1))
        )
    return (b.astype(np.int64) * weights).sum(axis=1)


class EvalScratch:
    """Reusable buffer pool for repeated same-shape evaluations.

    Hot sweeps (segment-chunked characterisation, equivalence sweeps)
    evaluate the same netlist at the same batch size thousands of times;
    without a scratch every call re-allocates the node-value plane and
    one output array per bus.  Passing one ``EvalScratch`` to
    :meth:`CompiledNetlist.evaluate` / :func:`simulate_transitions`
    reuses those buffers across calls.

    Contract: arrays handed out for a given key are **overwritten by the
    next call** that uses the same scratch — callers that keep results
    across calls must copy them.  A scratch is single-threaded state;
    use one per worker, never share across threads.
    """

    __slots__ = ("_buffers",)

    def __init__(self) -> None:
        self._buffers: dict[str, np.ndarray] = {}

    def array(self, key: str, shape: tuple[int, ...], dtype: object) -> np.ndarray:
        """An uninitialised ``(shape, dtype)`` array, reused when possible."""
        buf = self._buffers.get(key)
        if buf is None or buf.shape != shape or buf.dtype != np.dtype(dtype):
            buf = np.empty(shape, dtype=dtype)
            self._buffers[key] = buf
        return buf

    def __len__(self) -> int:
        return len(self._buffers)


@dataclass(frozen=True)
class NetlistStats:
    """Structural statistics of a netlist."""

    n_luts: int
    n_inputs: int
    n_consts: int
    depth: int  # LUT levels on the longest input->output path
    n_outputs: int

    @property
    def logic_elements(self) -> int:
        """LE estimate: one LUT maps to one logic element."""
        return self.n_luts


class Netlist:
    """Mutable combinational netlist builder.

    Nodes are referenced by dense integer ids in creation order.
    """

    def __init__(self, name: str = "netlist") -> None:
        self.name = name
        self._kinds: list[int] = []
        self._tts: list[int] = []
        self._fanins: list[tuple[int, ...]] = []
        self._const_values: list[int] = []
        self._const_ids: dict[int, int] = {}
        self._shared_luts: dict[tuple[int, tuple[int, ...]], int] = {}
        self.input_buses: dict[str, list[int]] = {}
        self.output_buses: dict[str, list[int]] = {}
        #: Per-bus two's-complement flags; unsigned when absent (the
        #: default).  Word-level analyses (range lattice, equivalence
        #: proofs) read these to interpret bus values as integers.
        self.input_bus_signed: dict[str, bool] = {}
        self.output_bus_signed: dict[str, bool] = {}
        #: Free-form generator metadata (e.g. a CCM's declared
        #: ``coefficient``); consumed by the word-level lint rules.
        self.attrs: dict[str, object] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return len(self._kinds)

    def _add_node(self, kind: int, tt: int, fanins: tuple[int, ...], const: int = 0) -> int:
        nid = len(self._kinds)
        self._kinds.append(kind)
        self._tts.append(tt)
        self._fanins.append(fanins)
        self._const_values.append(const)
        return nid

    def add_input_bus(self, name: str, width: int, signed: bool = False) -> list[int]:
        """Declare a primary-input bus; returns its bit node ids, LSB first.

        ``signed`` marks the bus as a two's-complement word for word-level
        analyses; the bit-level structure is unaffected.
        """
        if width < 1:
            raise NetlistError("bus width must be >= 1")
        if name in self.input_buses:
            raise NetlistError(f"duplicate input bus {name!r}")
        bits = [self._add_node(_KIND_INPUT, 0, ()) for _ in range(width)]
        self.input_buses[name] = bits
        self.input_bus_signed[name] = bool(signed)
        return bits

    def add_const(self, value: int) -> int:
        """Return the constant-0 or constant-1 node, creating it on first use.

        Constants are deduplicated: repeated requests for the same value
        return the same node id (one tied-off net per value, as a
        synthesiser would emit).
        """
        if value not in (0, 1):
            raise NetlistError("constant must be 0 or 1")
        nid = self._const_ids.get(value)
        if nid is None:
            nid = self._add_node(_KIND_CONST, 0, (), const=value)
            self._const_ids[value] = nid
        return nid

    def const_value(self, nid: int) -> int | None:
        """The constant value of node ``nid``, or ``None`` if not a constant."""
        if not (0 <= nid < self.n_nodes):
            raise NetlistError(f"unknown node {nid}")
        if self._kinds[nid] != _KIND_CONST:
            return None
        return self._const_values[nid]

    def add_lut(self, tt: int, fanins: Iterable[int]) -> int:
        """Add a LUT node with truth table ``tt`` over ``fanins``."""
        f = tuple(int(x) for x in fanins)
        arity = len(f)
        if not (1 <= arity <= MAX_LUT_ARITY):
            raise NetlistError(f"LUT arity must be 1..{MAX_LUT_ARITY}, got {arity}")
        if not (0 <= tt < (1 << (1 << arity))):
            raise NetlistError(f"truth table {tt:#x} out of range for arity {arity}")
        for x in f:
            if not (0 <= x < self.n_nodes):
                raise NetlistError(f"fanin {x} references unknown node")
        return self._add_node(_KIND_LUT, tt, f)

    def add_lut_shared(self, tt: int, fanins: Iterable[int]) -> int:
        """Add a LUT, reusing an existing identical one if present.

        Structural common-subexpression sharing: if a LUT with the same
        truth table over the same fanin tuple was previously created
        *through this method*, its node id is returned instead of growing
        the netlist.  Used by generators for inverter/complement layers
        that naturally repeat (e.g. CSD subtraction), matching what a
        synthesiser's CSE would emit.
        """
        f = tuple(int(x) for x in fanins)
        key = (tt, f)
        nid = self._shared_luts.get(key)
        if nid is None:
            nid = self.add_lut(tt, f)
            self._shared_luts[key] = nid
        return nid

    def set_output_bus(self, name: str, bits: Sequence[int], signed: bool = False) -> None:
        """Declare an output bus from existing node ids, LSB first.

        ``signed`` marks the bus as a two's-complement word for word-level
        analyses; the bit-level structure is unaffected.
        """
        if name in self.output_buses:
            raise NetlistError(f"duplicate output bus {name!r}")
        for x in bits:
            if not (0 <= x < self.n_nodes):
                raise NetlistError(f"output bit {x} references unknown node")
        self.output_buses[name] = list(int(b) for b in bits)
        self.output_bus_signed[name] = bool(signed)

    def prune_dangling(self) -> int:
        """Remove nodes no output depends on (primary inputs are kept).

        Returns the number of removed nodes.  Ids are renumbered but the
        topological order is preserved, so fanins still precede consumers;
        node ids held by the caller are invalidated.  Generators that
        constant-fold call this last to sweep constant nets whose value
        was absorbed into simplified logic (a synthesiser's dead-net
        sweep); outputs must already be set.
        """
        n = self.n_nodes
        live = [False] * n
        for out_bits in self.output_buses.values():
            for b in out_bits:
                live[b] = True
        for nid in range(n - 1, -1, -1):
            if live[nid]:
                for f in self._fanins[nid]:
                    live[f] = True
        for nid, kind in enumerate(self._kinds):
            if kind == _KIND_INPUT:
                live[nid] = True
        if all(live):
            return 0
        remap: dict[int, int] = {}
        kinds: list[int] = []
        tts: list[int] = []
        fanins: list[tuple[int, ...]] = []
        consts: list[int] = []
        for nid in range(n):
            if not live[nid]:
                continue
            remap[nid] = len(kinds)
            kinds.append(self._kinds[nid])
            tts.append(self._tts[nid])
            fanins.append(tuple(remap[f] for f in self._fanins[nid]))
            consts.append(self._const_values[nid])
        self._kinds, self._tts, self._fanins, self._const_values = kinds, tts, fanins, consts
        self._const_ids = {v: remap[i] for v, i in self._const_ids.items() if i in remap}
        self._shared_luts = {
            (tt, tuple(remap[f] for f in key)): remap[i]
            for (tt, key), i in self._shared_luts.items()
            if i in remap
        }
        self.input_buses = {k: [remap[b] for b in v] for k, v in self.input_buses.items()}
        self.output_buses = {k: [remap[b] for b in v] for k, v in self.output_buses.items()}
        return n - len(kinds)

    # ------------------------------------------------------------------
    # gate conveniences
    # ------------------------------------------------------------------
    def NOT(self, a: int) -> int:
        return self.add_lut(TT_NOT, (a,))

    def AND(self, a: int, b: int) -> int:
        return self.add_lut(TT_AND2, (a, b))

    def OR(self, a: int, b: int) -> int:
        return self.add_lut(TT_OR2, (a, b))

    def XOR(self, a: int, b: int) -> int:
        return self.add_lut(TT_XOR2, (a, b))

    def XNOR(self, a: int, b: int) -> int:
        return self.add_lut(TT_XNOR2, (a, b))

    def NAND(self, a: int, b: int) -> int:
        return self.add_lut(TT_NAND2, (a, b))

    def XOR3(self, a: int, b: int, c: int) -> int:
        return self.add_lut(TT_XOR3, (a, b, c))

    def MAJ3(self, a: int, b: int, c: int) -> int:
        return self.add_lut(TT_MAJ3, (a, b, c))

    def MUX(self, d0: int, d1: int, sel: int) -> int:
        return self.add_lut(TT_MUX, (d0, d1, sel))

    def full_adder(self, a: int, b: int, cin: int) -> tuple[int, int]:
        """Full adder mapped to two 3-LUTs; returns ``(sum, carry)``."""
        return self.XOR3(a, b, cin), self.MAJ3(a, b, cin)

    def half_adder(self, a: int, b: int) -> tuple[int, int]:
        """Half adder mapped to two 2-LUTs; returns ``(sum, carry)``."""
        return self.XOR(a, b), self.AND(a, b)

    # ------------------------------------------------------------------
    # analysis
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural sanity.

        The builder methods already enforce these invariants at
        construction time, but netlists can be assembled or mutated by
        hand (tests, deserialisation, external generators), so validation
        re-checks everything evaluation and timing depend on: output
        references, LUT arities, truth-table widths, and that every fanin
        strictly precedes its consumer (which is what guarantees
        acyclicity — in particular no self-referential fanins).
        """
        if not self.output_buses:
            raise NetlistError(f"netlist {self.name!r} declares no outputs")
        for name, bits in self.output_buses.items():
            if not bits:
                raise NetlistError(f"output bus {name!r} is empty")
            for b in bits:
                if not (0 <= b < self.n_nodes):
                    raise NetlistError(
                        f"output bus {name!r} references unknown node {b}"
                    )
        for nid, kind in enumerate(self._kinds):
            fanins = self._fanins[nid]
            if kind != _KIND_LUT:
                # Hand-mutated graphs can thread fanins through input or
                # constant nodes, hiding a cycle from the LUT-only check.
                if fanins:
                    raise NetlistError(
                        f"non-LUT node {nid} has fanins {tuple(fanins)}; "
                        "inputs and constants must be sources"
                    )
                continue
            arity = len(fanins)
            if not (1 <= arity <= MAX_LUT_ARITY):
                raise NetlistError(
                    f"LUT node {nid} arity {arity} outside 1..{MAX_LUT_ARITY}"
                )
            tt = self._tts[nid]
            if not (0 <= tt < (1 << (1 << arity))):
                raise NetlistError(
                    f"LUT node {nid} truth table {tt:#x} wider than "
                    f"2**{arity} bits"
                )
            for f in fanins:
                if f == nid:
                    raise NetlistError(f"LUT node {nid} is its own fanin")
                if not (0 <= f < len(self._kinds)):
                    raise NetlistError(
                        f"LUT node {nid} fanin {f} references unknown node"
                    )
                if f > nid:
                    raise NetlistError(
                        f"LUT node {nid} fanin {f} is a forward reference "
                        "(cycle or broken topological construction order)"
                    )

    def node_levels(self) -> np.ndarray:
        """LUT-level depth per node (inputs/consts at level 0)."""
        levels = np.zeros(self.n_nodes, dtype=np.int32)
        for nid in range(self.n_nodes):
            if self._kinds[nid] == _KIND_LUT:
                levels[nid] = 1 + max(levels[f] for f in self._fanins[nid])
        return levels

    def stats(self) -> NetlistStats:
        kinds = np.asarray(self._kinds)
        levels = self.node_levels()
        out_ids = [b for bits in self.output_buses.values() for b in bits]
        depth = int(levels[out_ids].max()) if out_ids else 0
        return NetlistStats(
            n_luts=int((kinds == _KIND_LUT).sum()),
            n_inputs=int((kinds == _KIND_INPUT).sum()),
            n_consts=int((kinds == _KIND_CONST).sum()),
            depth=depth,
            n_outputs=len(out_ids),
        )

    # ------------------------------------------------------------------
    # compilation / evaluation
    # ------------------------------------------------------------------
    def compile(self) -> "CompiledNetlist":
        """Freeze into array form for vectorised evaluation/simulation."""
        self.validate()
        n = self.n_nodes
        kinds = np.asarray(self._kinds, dtype=np.int8)
        arity = np.zeros(n, dtype=np.int8)
        fanin_idx = np.zeros((n, MAX_LUT_ARITY), dtype=np.int32)
        tt_bits = np.zeros((n, 1 << MAX_LUT_ARITY), dtype=np.uint8)
        const_values = np.asarray(self._const_values, dtype=np.uint8)
        for nid in range(n):
            f = self._fanins[nid]
            arity[nid] = len(f)
            fanin_idx[nid, : len(f)] = f
            if kinds[nid] == _KIND_LUT:
                a = len(f)
                tt = self._tts[nid]
                # Expand the truth table over all 16 index rows so unused
                # (padded) fanin index bits are "don't care" = repeat.
                rows = 1 << a
                base = np.array([(tt >> r) & 1 for r in range(rows)], dtype=np.uint8)
                reps = (1 << MAX_LUT_ARITY) // rows
                tt_bits[nid] = np.tile(base, reps)
        levels = self.node_levels()
        order = np.argsort(levels, kind="stable").astype(np.int32)
        # Group nodes by level for level-parallel evaluation.
        max_level = int(levels.max()) if n else 0
        level_groups: list[np.ndarray] = []
        for lv in range(1, max_level + 1):
            ids = np.nonzero(levels == lv)[0].astype(np.int32)
            if ids.size:
                level_groups.append(ids)
        return CompiledNetlist(
            name=self.name,
            kinds=kinds,
            arity=arity,
            fanin_idx=fanin_idx,
            tt_bits=tt_bits,
            const_values=const_values,
            levels=levels,
            topo_order=order,
            level_groups=tuple(level_groups),
            input_buses={k: np.asarray(v, dtype=np.int32) for k, v in self.input_buses.items()},
            output_buses={k: np.asarray(v, dtype=np.int32) for k, v in self.output_buses.items()},
            input_bus_signed=dict(self.input_bus_signed),
            output_bus_signed=dict(self.output_bus_signed),
            attrs=dict(self.attrs),
        )


@dataclass(frozen=True)
class CompiledNetlist:
    """Immutable array-form netlist, ready for batched simulation.

    ``tt_bits[nid]`` always has 16 rows; rows beyond ``2**arity`` repeat
    the table so padded fanins never change the output.
    """

    name: str
    kinds: np.ndarray  # (n,) int8
    arity: np.ndarray  # (n,) int8
    fanin_idx: np.ndarray  # (n, 4) int32
    tt_bits: np.ndarray  # (n, 16) uint8
    const_values: np.ndarray  # (n,) uint8
    levels: np.ndarray  # (n,) int32
    topo_order: np.ndarray  # (n,) int32
    level_groups: tuple[np.ndarray, ...]
    input_buses: dict[str, np.ndarray]
    output_buses: dict[str, np.ndarray]
    # Word-level metadata (defaults keep pickled/legacy constructors working).
    input_bus_signed: dict[str, bool] = field(default_factory=dict)
    output_bus_signed: dict[str, bool] = field(default_factory=dict)
    attrs: dict[str, object] = field(default_factory=dict)

    @property
    def n_nodes(self) -> int:
        return int(self.kinds.shape[0])

    @property
    def n_luts(self) -> int:
        return int((self.kinds == _KIND_LUT).sum())

    @property
    def depth(self) -> int:
        return int(self.levels.max()) if self.n_nodes else 0

    @property
    def lut_mask(self) -> np.ndarray:
        return self.kinds == _KIND_LUT

    def initial_values(self, batch: int, scratch: EvalScratch | None = None) -> np.ndarray:
        """Node-value array of shape ``(n_nodes, batch)`` with constants set.

        With ``scratch``, the plane is drawn from the pool instead of
        freshly allocated (and is clobbered by the next scratch user).
        """
        if scratch is None:
            vals = np.zeros((self.n_nodes, batch), dtype=np.uint8)
        else:
            vals = scratch.array("values", (self.n_nodes, batch), np.uint8)
            vals.fill(0)
        const_mask = self.kinds == _KIND_CONST
        vals[const_mask] = self.const_values[const_mask, None]
        return vals

    def bind_inputs(self, values: np.ndarray, inputs: dict[str, np.ndarray]) -> None:
        """Write input-bus bit arrays into a node-value array in place.

        ``inputs[name]`` must be ``(batch, width)`` uint8, LSB first.
        """
        for name, bits in inputs.items():
            if name not in self.input_buses:
                raise NetlistError(f"unknown input bus {name!r}")
            ids = self.input_buses[name]
            b = np.asarray(bits, dtype=np.uint8)
            if b.ndim != 2 or b.shape[1] != ids.shape[0]:
                raise NetlistError(
                    f"input {name!r}: expected shape (batch, {ids.shape[0]}), got {b.shape}"
                )
            values[ids] = b.T
        missing = set(self.input_buses) - set(inputs)
        if missing:
            raise NetlistError(f"missing input buses: {sorted(missing)}")

    def evaluate(
        self,
        inputs: dict[str, np.ndarray],
        scratch: EvalScratch | None = None,
    ) -> dict[str, np.ndarray]:
        """Pure functional evaluation (no timing), batched.

        Dispatches on :func:`repro.config.get_kernel_mode`: ``"packed"``
        (the default) runs the bit-sliced execution plan of
        :mod:`repro.kernels`; ``"interp"`` runs the original per-sample
        truth-table interpreter, kept verbatim as the golden reference
        the packed kernel is proven bit-identical to.

        Parameters
        ----------
        inputs:
            Mapping bus name -> ``(batch, width)`` uint8 bit array.
        scratch:
            Optional :class:`EvalScratch`; reuses the value plane and
            output buffers across repeated same-shape calls (returned
            arrays are then overwritten by the next call).

        Returns
        -------
        dict
            Mapping output bus name -> ``(batch, width)`` uint8 bit array.
        """
        if get_kernel_mode() == KERNEL_PACKED:
            from ..kernels.execute import evaluate_packed

            return evaluate_packed(self, inputs, scratch=scratch)
        return self._evaluate_interp(inputs, scratch)

    def _evaluate_interp(
        self,
        inputs: dict[str, np.ndarray],
        scratch: EvalScratch | None = None,
    ) -> dict[str, np.ndarray]:
        """The interpreted (per-sample gather) evaluator: golden reference."""
        first = next(iter(inputs.values()))
        batch = np.asarray(first).shape[0]
        values = self.initial_values(batch, scratch)
        self.bind_inputs(values, inputs)
        for ids in self.level_groups:
            idx = values[self.fanin_idx[ids, 0]].astype(np.intp)
            idx |= values[self.fanin_idx[ids, 1]].astype(np.intp) << 1
            idx |= values[self.fanin_idx[ids, 2]].astype(np.intp) << 2
            idx |= values[self.fanin_idx[ids, 3]].astype(np.intp) << 3
            values[ids] = np.take_along_axis(
                self.tt_bits[ids], idx, axis=1
            )
        if scratch is None:
            return {
                name: values[ids].T.copy() for name, ids in self.output_buses.items()
            }
        out: dict[str, np.ndarray] = {}
        for name, ids in self.output_buses.items():
            buf = scratch.array(f"out.{name}", (batch, int(ids.shape[0])), np.uint8)
            np.copyto(buf, values[ids].T)
            out[name] = buf
        return out

    def evaluate_ints(
        self, signed_out: bool = False, **int_inputs: np.ndarray
    ) -> dict[str, np.ndarray]:
        """Evaluate with integer inputs/outputs (convenience wrapper)."""
        bit_inputs = {}
        for name, vals in int_inputs.items():
            if name not in self.input_buses:
                raise NetlistError(f"unknown input bus {name!r}")
            width = self.input_buses[name].shape[0]
            bit_inputs[name] = bits_from_ints(np.atleast_1d(vals), width)
        out = self.evaluate(bit_inputs)
        return {name: ints_from_bits(bits, signed=signed_out) for name, bits in out.items()}
