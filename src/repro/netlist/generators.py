"""Parametric generator registry.

A light indirection so harness code (characterisation, synthesis sweeps,
CLI) can request designs-under-test by name, mirroring how the paper's
framework is "independent from the design under test" (Sec. III-A).
"""

from __future__ import annotations

from typing import Callable

from ..errors import NetlistError
from .ccm import ccm_multiplier
from .core import Netlist
from .mac import mac_block
from .wallace import wallace_tree_multiplier
from .multipliers import (
    baugh_wooley_multiplier,
    sign_magnitude_multiplier,
    unsigned_array_multiplier,
)

__all__ = ["GENERATORS", "generate", "register_generator"]

GENERATORS: dict[str, Callable[..., Netlist]] = {
    "unsigned_multiplier": unsigned_array_multiplier,
    "baugh_wooley_multiplier": baugh_wooley_multiplier,
    "sign_magnitude_multiplier": sign_magnitude_multiplier,
    "ccm": ccm_multiplier,
    "mac": mac_block,
    "wallace_multiplier": wallace_tree_multiplier,
}


def register_generator(name: str, fn: Callable[..., Netlist]) -> None:
    """Register a new design-under-test generator under ``name``."""
    if name in GENERATORS:
        raise NetlistError(f"generator {name!r} already registered")
    GENERATORS[name] = fn


def generate(name: str, *args, **kwargs) -> Netlist:
    """Instantiate a registered generator by name."""
    try:
        fn = GENERATORS[name]
    except KeyError:
        raise NetlistError(
            f"unknown generator {name!r}; available: {sorted(GENERATORS)}"
        ) from None
    return fn(*args, **kwargs)
