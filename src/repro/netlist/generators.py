"""Parametric generator registry.

A light indirection so harness code (characterisation, synthesis sweeps,
CLI) can request designs-under-test by name, mirroring how the paper's
framework is "independent from the design under test" (Sec. III-A).
"""

from __future__ import annotations

from typing import Callable

from ..errors import NetlistError
from .ccm import ccm_multiplier
from .core import Netlist
from .mac import mac_block
from .wallace import wallace_tree_multiplier
from .multipliers import (
    baugh_wooley_multiplier,
    sign_magnitude_multiplier,
    unsigned_array_multiplier,
)

__all__ = ["GENERATORS", "generate", "register_generator"]

GENERATORS: dict[str, Callable[..., Netlist]] = {
    "unsigned_multiplier": unsigned_array_multiplier,
    "baugh_wooley_multiplier": baugh_wooley_multiplier,
    "sign_magnitude_multiplier": sign_magnitude_multiplier,
    "ccm": ccm_multiplier,
    "mac": mac_block,
    "wallace_multiplier": wallace_tree_multiplier,
}


def register_generator(name: str, fn: Callable[..., Netlist]) -> None:
    """Register a new design-under-test generator under ``name``."""
    if name in GENERATORS:
        raise NetlistError(f"generator {name!r} already registered")
    GENERATORS[name] = fn


def generate(name: str, *args, **kwargs) -> Netlist:
    """Instantiate a registered generator by name.

    When :func:`repro.config.get_analysis_settings` has ``lint_generated``
    set (off by default; enable with ``REPRO_LINT_GENERATED=1``), every
    generated netlist passes through the static-analysis gate, raising
    :class:`~repro.errors.LintError` on error-severity findings.
    """
    try:
        fn = GENERATORS[name]
    except KeyError:
        raise NetlistError(
            f"unknown generator {name!r}; available: {sorted(GENERATORS)}"
        ) from None
    netlist = fn(*args, **kwargs)
    from ..config import get_analysis_settings

    if get_analysis_settings().lint_generated:
        # Imported lazily: repro.analysis reads repro.netlist.core, which
        # would recurse through this package during its own import.
        from ..analysis import check_netlist

        check_netlist(netlist, context=f"generator {name!r}")
    return netlist
