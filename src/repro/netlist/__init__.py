"""Gate-level netlist substrate.

Everything the paper synthesises — LUT-based generic multipliers, CCMs,
MAC blocks — is generated here as a DAG of 4-input LUT nodes, the same
primitive a Cyclone III logic element provides.  The structural properties
the paper's observations rest on fall out of the construction:

* the most-significant product bits sit at the end of the longest
  carry/sum chains, so they fail first under over-clocking (Sec. III-C);
* multiplicands with few '1' bits excite fewer partial products, so their
  products settle earlier (Fig. 5).
"""

from .core import CompiledNetlist, Netlist, NetlistStats, bits_from_ints, ints_from_bits
from .adders import add_ripple_carry, add_ripple_carry_with_const
from .multipliers import (
    baugh_wooley_multiplier,
    sign_magnitude_multiplier,
    unsigned_array_multiplier,
)
from .ccm import ccm_multiplier, csd_digits
from .wallace import wallace_tree_multiplier
from .mac import mac_block
from .generators import GENERATORS, generate

__all__ = [
    "CompiledNetlist",
    "Netlist",
    "NetlistStats",
    "bits_from_ints",
    "ints_from_bits",
    "add_ripple_carry",
    "add_ripple_carry_with_const",
    "unsigned_array_multiplier",
    "baugh_wooley_multiplier",
    "sign_magnitude_multiplier",
    "ccm_multiplier",
    "csd_digits",
    "wallace_tree_multiplier",
    "mac_block",
    "GENERATORS",
    "generate",
]
