"""The job model: specs, deterministic ids, states, records.

A :class:`JobSpec` is the immutable description a tenant submits; a
:class:`JobRecord` is the server's mutable bookkeeping around it.  Job
ids are *deterministic*: the SHA-256 of ``tenant | sequence-number |
canonical-JSON(spec)``, so replaying the same submission sequence against
a fresh server yields the same ids — schedules and ids are reproducible,
exactly like everything else in this library.

State machine::

    QUEUED -> RUNNING -> DONE            every sweep complete
                      -> DEGRADED        finished, some shards quarantined
                      -> FAILED          SweepFailedError (exit-3 parity),
                                         ConfigError (exit-2 parity), ...
           \\-> CANCELLED <- RUNNING      tenant cancel (queued or mid-run)

``FAILED`` carries the batch CLI's exit code for the same failure, so a
served job and a ``repro-flow`` invocation tell one SLO story.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any

from ..errors import ServeError

__all__ = [
    "CANCELLED",
    "DEGRADED",
    "DONE",
    "FAILED",
    "JOB_KINDS",
    "JOB_STATES",
    "JobCancelled",
    "JobRecord",
    "JobSpec",
    "QUEUED",
    "RUNNING",
    "TERMINAL_STATES",
    "job_id_for",
]

#: Job kinds — one per flow stage (see repro.stages).
JOB_KINDS = ("characterize", "fit_area", "optimize", "evaluate")

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
DEGRADED = "degraded"
FAILED = "failed"
CANCELLED = "cancelled"

#: Every job state, in lifecycle order.
JOB_STATES = (QUEUED, RUNNING, DONE, DEGRADED, FAILED, CANCELLED)

#: States a job never leaves (DEGRADED is terminal *and* carries results).
TERMINAL_STATES = (DONE, DEGRADED, FAILED, CANCELLED)


class JobCancelled(Exception):  # noqa: N818 -- a control signal, not an error
    """Raised inside a worker when its job's cancel flag is set."""


@dataclass(frozen=True)
class JobSpec:
    """One tenant's immutable job description.

    Attributes
    ----------
    tenant:
        Tenant identity — the unit of quota accounting.
    kind:
        One of :data:`JOB_KINDS`.
    workspace:
        Path of the :class:`~repro.workspace.Workspace` the stage runs
        against (created idempotently if ``params['init']`` is given).
    priority:
        Higher runs first; ties break by submission order.
    params:
        Stage parameters (``jobs``, ``beta``, ``name``, ``domain``,
        resilience overrides, an optional ``faults`` chaos-plan JSON and
        an optional ``init`` block) — all JSON-serialisable.
    """

    tenant: str
    kind: str
    workspace: str
    priority: int = 0
    params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.tenant:
            raise ServeError("job spec needs a non-empty tenant")
        if self.kind not in JOB_KINDS:
            raise ServeError(
                f"unknown job kind {self.kind!r}; expected one of {JOB_KINDS}"
            )
        if not self.workspace:
            raise ServeError("job spec needs a workspace path")

    def canonical_json(self) -> str:
        """The spec as canonical JSON — the basis of the deterministic id."""
        payload = {
            "tenant": self.tenant,
            "kind": self.kind,
            "workspace": self.workspace,
            "priority": self.priority,
            "params": self.params,
        }
        try:
            return json.dumps(payload, sort_keys=True, separators=(",", ":"))
        except (TypeError, ValueError) as exc:
            raise ServeError(f"job params are not JSON-serialisable: {exc}") from None

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "JobSpec":
        """Build a spec from a decoded submit-request payload."""
        params = payload.get("params") or {}
        if not isinstance(params, dict):
            raise ServeError("job 'params' must be a JSON object")
        return cls(
            tenant=str(payload.get("tenant", "")),
            kind=str(payload.get("kind", "")),
            workspace=str(payload.get("workspace", "")),
            priority=int(payload.get("priority", 0)),
            params=params,
        )


def job_id_for(spec: JobSpec, seq: int) -> str:
    """Deterministic job id: sha256(tenant | seq | canonical spec), truncated."""
    basis = f"{spec.tenant}|{seq}|{spec.canonical_json()}"
    return hashlib.sha256(basis.encode("utf-8")).hexdigest()[:16]


@dataclass
class JobRecord:
    """Server-side bookkeeping for one submitted job.

    Mutated by the scheduler (state transitions) and the worker thread
    (progress appends, result installation); read by status/result/watch
    handlers.  Progress events are append-only, so readers can stream
    them by index without locking.
    """

    job_id: str
    seq: int
    spec: JobSpec
    state: str = QUEUED
    progress: list[dict[str, Any]] = field(default_factory=list)
    result: dict[str, Any] | None = None
    error: str | None = None
    exit_code: int | None = None

    @property
    def finished(self) -> bool:
        return self.state in TERMINAL_STATES

    def status_dict(self) -> dict[str, Any]:
        """The wire form of this record's current status."""
        return {
            "job_id": self.job_id,
            "seq": self.seq,
            "tenant": self.spec.tenant,
            "kind": self.spec.kind,
            "workspace": self.spec.workspace,
            "priority": self.spec.priority,
            "state": self.state,
            "finished": self.finished,
            "n_progress": len(self.progress),
            "error": self.error,
            "exit_code": self.exit_code,
        }
