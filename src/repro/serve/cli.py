"""The ``repro serve`` subcommand: boot a job server in the foreground.

::

    repro serve --socket /tmp/repro.sock --cache-dir /var/cache/repro \
        --workers 4 --queue-limit 128

The server runs until a client sends ``shutdown`` (or the process gets
SIGINT).  ``--kernel`` pins the evaluation kernel exactly like the batch
CLIs do — the env var makes spawn-started pool workers agree.
"""

from __future__ import annotations

import argparse
import os
import sys

from ..config import KERNEL_MODES, REPRO_KERNEL_ENV, set_kernel_mode
from ..errors import ReproError
from .server import JobServer
from .settings import ServeSettings

__all__ = ["serve_main"]


def serve_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Serve characterise/optimize/evaluate jobs over a Unix socket.",
    )
    parser.add_argument("--socket", required=True, metavar="PATH",
                        help="Unix-domain socket to listen on")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="shared placed-design cache directory "
                             "(default: memory-only)")
    parser.add_argument("--workers", type=int, default=None, metavar="N",
                        help="concurrent jobs (default: $REPRO_SERVE_WORKERS or 2)")
    parser.add_argument("--queue-limit", type=int, default=None, metavar="N",
                        help="total queued jobs before 429 "
                             "(default: $REPRO_SERVE_QUEUE_LIMIT or 64)")
    parser.add_argument("--tenant-queue-limit", type=int, default=None, metavar="N",
                        help="queued jobs per tenant before 429 "
                             "(default: $REPRO_SERVE_TENANT_QUEUE_LIMIT or 8)")
    parser.add_argument("--tenant-running-limit", type=int, default=None, metavar="N",
                        help="running jobs per tenant "
                             "(default: $REPRO_SERVE_TENANT_RUNNING_LIMIT or 2)")
    parser.add_argument(
        "--kernel",
        choices=sorted(KERNEL_MODES),
        default=None,
        help="netlist evaluation kernel for served jobs "
             "(default: $REPRO_KERNEL or packed; bit-identical either way)",
    )
    args = parser.parse_args(argv)

    if args.kernel is not None:
        os.environ[REPRO_KERNEL_ENV] = args.kernel
        set_kernel_mode(args.kernel)

    settings = ServeSettings.from_env()
    overrides = {
        "max_workers": args.workers,
        "queue_limit": args.queue_limit,
        "tenant_queue_limit": args.tenant_queue_limit,
        "tenant_running_limit": args.tenant_running_limit,
    }
    from dataclasses import replace

    applied = {k: v for k, v in overrides.items() if v is not None}
    if applied:
        settings = replace(settings, **applied)

    try:
        server = JobServer(args.socket, settings=settings, cache_dir=args.cache_dir)
        print(f"repro serve: listening on {args.socket} "
              f"({settings.max_workers} worker(s), "
              f"queue limit {settings.queue_limit})", flush=True)
        server.run_blocking()
    except KeyboardInterrupt:
        print("repro serve: interrupted", file=sys.stderr)
        return 130
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print("repro serve: shut down cleanly", flush=True)
    return 0
