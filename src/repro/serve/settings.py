"""Serve-side configuration: worker bound, queue limits, tenant quotas.

Every knob has a matching ``REPRO_SERVE_*`` environment variable so a
deployment can be tuned without code changes; explicit arguments always
win.  Like :class:`~repro.config.ResilienceSettings`, the environment is
read in exactly one place (:meth:`ServeSettings.from_env`) — the
designated boundary the determinism audit allows.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Mapping

from ..errors import ConfigError

__all__ = [
    "REPRO_SERVE_QUEUE_LIMIT_ENV",
    "REPRO_SERVE_TENANT_QUEUE_LIMIT_ENV",
    "REPRO_SERVE_TENANT_RUNNING_LIMIT_ENV",
    "REPRO_SERVE_WORKERS_ENV",
    "ServeSettings",
]

#: Environment knobs for the job server (see docs/serving.md).
REPRO_SERVE_WORKERS_ENV = "REPRO_SERVE_WORKERS"
REPRO_SERVE_QUEUE_LIMIT_ENV = "REPRO_SERVE_QUEUE_LIMIT"
REPRO_SERVE_TENANT_QUEUE_LIMIT_ENV = "REPRO_SERVE_TENANT_QUEUE_LIMIT"
REPRO_SERVE_TENANT_RUNNING_LIMIT_ENV = "REPRO_SERVE_TENANT_RUNNING_LIMIT"


@dataclass(frozen=True)
class ServeSettings:
    """Admission-control and concurrency policy of one server instance.

    Attributes
    ----------
    max_workers:
        Jobs executing concurrently (each on its own worker thread;
        a job's sweep may additionally fan out over ``jobs`` processes).
    queue_limit:
        Total queued jobs accepted before submissions bounce with
        ``queue-full`` (HTTP 429 semantics — backpressure, not failure).
    tenant_queue_limit:
        Queued jobs one tenant may hold; beyond it submissions bounce
        with ``tenant-quota`` so a single noisy tenant cannot occupy the
        whole queue.
    tenant_running_limit:
        Jobs one tenant may have running at once; further jobs stay
        queued (admitted, but not scheduled) until a slot frees up.
    """

    max_workers: int = 2
    queue_limit: int = 64
    tenant_queue_limit: int = 8
    tenant_running_limit: int = 2

    def __post_init__(self) -> None:
        for name in (
            "max_workers",
            "queue_limit",
            "tenant_queue_limit",
            "tenant_running_limit",
        ):
            if int(getattr(self, name)) < 1:
                raise ConfigError(f"{name} must be >= 1")

    @classmethod
    def from_env(cls, environ: Mapping[str, str] | None = None) -> "ServeSettings":
        """Settings with the ``REPRO_SERVE_*`` environment overrides applied."""
        env: Mapping[str, str] = os.environ if environ is None else environ
        kwargs: dict[str, int] = {}
        for key, envvar in (
            ("max_workers", REPRO_SERVE_WORKERS_ENV),
            ("queue_limit", REPRO_SERVE_QUEUE_LIMIT_ENV),
            ("tenant_queue_limit", REPRO_SERVE_TENANT_QUEUE_LIMIT_ENV),
            ("tenant_running_limit", REPRO_SERVE_TENANT_RUNNING_LIMIT_ENV),
        ):
            raw = env.get(envvar)
            if raw is not None:
                try:
                    kwargs[key] = int(raw)
                except ValueError:
                    raise ConfigError(
                        f"{envvar}={raw!r} is not an integer"
                    ) from None
        return cls(**kwargs)
