"""Thin synchronous client for the job server.

Stdlib-only (one JSON line per request over a Unix-domain socket), so
tests, examples and shell tooling can talk to a :class:`JobServer`
without pulling in any HTTP machinery.  Each call opens a fresh
connection — the server multiplexes clients natively, and one connection
per request keeps the client trivially thread-safe.

::

    client = ServeClient(socket_path)
    job = client.submit("tenant-a", "characterize", workspace="/path/ws")
    done = client.wait(job["job_id"])
    assert done["state"] == "done"
"""

from __future__ import annotations

import json
import socket
from pathlib import Path
from typing import Any

from ..errors import JobRejectedError, ServeError

__all__ = ["ServeClient"]


class ServeClient:
    """One server endpoint, addressed by its Unix-socket path."""

    def __init__(self, socket_path: str | Path, timeout_s: float = 120.0) -> None:
        self.socket_path = Path(socket_path)
        self.timeout_s = float(timeout_s)

    # ------------------------------------------------------------------
    def request(self, payload: dict[str, Any], timeout_s: float | None = None) -> dict[str, Any]:
        """One raw request/response exchange; raises on transport errors."""
        data = json.dumps(payload).encode("utf-8") + b"\n"
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
            sock.settimeout(self.timeout_s if timeout_s is None else timeout_s)
            try:
                sock.connect(str(self.socket_path))
            except OSError as exc:
                raise ServeError(
                    f"cannot reach job server at {self.socket_path}: {exc}"
                ) from None
            sock.sendall(data)
            buffer = b""
            while not buffer.endswith(b"\n"):
                chunk = sock.recv(65536)
                if not chunk:
                    break  # EOF: fall through with whatever arrived
                buffer += chunk
        if not buffer:
            raise ServeError("job server closed the connection without a response")
        response = json.loads(buffer.decode("utf-8"))
        if not isinstance(response, dict):
            raise ServeError("malformed response from job server")
        return response

    # ------------------------------------------------------------------
    def ping(self) -> dict[str, Any]:
        return self.request({"op": "ping"})

    def submit(
        self,
        tenant: str,
        kind: str,
        workspace: str | Path,
        priority: int = 0,
        params: dict[str, Any] | None = None,
    ) -> dict[str, Any]:
        """Submit one job; raises :class:`JobRejectedError` on backpressure.

        A rejection (``queue-full`` / ``tenant-quota``, HTTP-429
        semantics) means *retry later*, not failure — the exception
        carries ``reason`` and ``http_status`` so callers can back off.
        """
        response = self.request({
            "op": "submit",
            "tenant": tenant,
            "kind": kind,
            "workspace": str(workspace),
            "priority": priority,
            "params": params or {},
        })
        if not response.get("ok"):
            if response.get("rejected"):
                raise JobRejectedError(
                    str(response.get("error")),
                    reason=str(response.get("reason")),
                    http_status=int(response.get("http_status", 429)),
                )
            raise ServeError(str(response.get("error")))
        return response

    def status(self, job_id: str) -> dict[str, Any]:
        return self.request({"op": "status", "job_id": job_id})

    def result(self, job_id: str) -> dict[str, Any]:
        return self.request({"op": "result", "job_id": job_id})

    def wait(self, job_id: str, timeout_s: float | None = None) -> dict[str, Any]:
        """Block until the job is terminal; returns its result payload."""
        response = self.request(
            {"op": "wait", "job_id": job_id, "timeout": timeout_s},
            # The socket must outlive the server-side wait.
            timeout_s=None if timeout_s is None else timeout_s + 10.0,
        )
        if not response.get("ok"):
            raise ServeError(str(response.get("error")))
        return response

    def progress(self, job_id: str, since: int = 0) -> dict[str, Any]:
        return self.request({"op": "progress", "job_id": job_id, "since": since})

    def cancel(self, job_id: str) -> dict[str, Any]:
        return self.request({"op": "cancel", "job_id": job_id})

    def stats(self) -> dict[str, Any]:
        return self.request({"op": "stats"})

    def shutdown(self) -> dict[str, Any]:
        return self.request({"op": "shutdown"})
