"""Job execution: one stage run on a worker thread, byte-equal to batch.

:func:`execute_job` is the only code path served jobs go through, and it
is a thin adapter over :mod:`repro.stages` — the very functions the
``repro-flow`` CLI calls.  That shared body is what makes the headline
guarantee (server artefacts byte-identical to batch artefacts) true *by
construction*; the tests in ``tests/serve`` then enforce it end to end.

Runs on a plain worker thread (the server dispatches through a bounded
``ThreadPoolExecutor``), so everything here is synchronous.  The
module-level function keeps the dispatch fork-safe by construction — no
bound methods or closures cross the executor boundary.
"""

from __future__ import annotations

import time
from dataclasses import replace
from threading import Event
from typing import Any

from ..circuits.domains import Domain
from ..config import ResilienceSettings, TableISettings, get_resilience_settings
from ..errors import ConfigError, ReproError, ServeError, SweepFailedError
from ..faults import FaultPlan
from ..fabric.device import make_device
from ..obs import runtime as obs
from ..parallel.cache import PlacedDesignCache
from ..stages import (
    ProgressFn,
    characterize_workspace,
    evaluate_workspace,
    fit_area_workspace,
    optimize_workspace,
)
from ..workspace import Workspace
from .jobs import (
    CANCELLED,
    DEGRADED,
    DONE,
    FAILED,
    JobCancelled,
    JobRecord,
)

__all__ = ["execute_job"]

#: FAILED-state exit codes, matching repro-flow's process exit codes.
_EXIT_SWEEP_FAILED = 3
_EXIT_CONFIG = 2
_EXIT_OTHER = 1


def _resilience_from_params(params: dict[str, Any]) -> ResilienceSettings:
    """The job's resilience policy: process-wide settings + spec overrides."""
    settings = get_resilience_settings()
    overrides: dict[str, Any] = {}
    if params.get("shard_timeout") is not None:
        overrides["shard_timeout_s"] = float(params["shard_timeout"])
    if params.get("max_retries") is not None:
        overrides["max_retries"] = int(params["max_retries"])
    if params.get("allow_degraded"):
        overrides["allow_degraded"] = True
    return replace(settings, **overrides) if overrides else settings


def _faults_from_params(params: dict[str, Any]) -> FaultPlan | None:
    raw = params.get("faults")
    if raw is None:
        return None
    if isinstance(raw, str):
        return FaultPlan.from_json(raw)
    if isinstance(raw, dict):
        return FaultPlan.from_dict(raw)
    raise ServeError("job param 'faults' must be a chaos-plan JSON object or string")


def _maybe_initialize(ws: Workspace, params: dict[str, Any]) -> None:
    """Create the workspace when the spec carries an ``init`` block.

    Idempotent (``exist_ok=True``): any number of jobs naming the same
    workspace + init block cooperate instead of racing.
    """
    init = params.get("init")
    if init is None:
        return
    if not isinstance(init, dict):
        raise ServeError("job param 'init' must be an object: {serial, scale}")
    serial = int(init.get("serial", 42))
    scale = float(init.get("scale", 0.05))
    ws.initialize(
        make_device(serial),
        TableISettings().scaled(scale),
        seed=serial,
        exist_ok=True,
    )


def _jobs_param(params: dict[str, Any]) -> int | None:
    raw = params.get("jobs")
    return None if raw is None else int(raw)


def _executor_param(params: dict[str, Any]) -> str | None:
    raw = params.get("executor")
    return None if raw is None else str(raw)


def _run_stage(
    record: JobRecord,
    ws: Workspace,
    cache: PlacedDesignCache,
    progress: ProgressFn,
) -> dict[str, Any]:
    """Dispatch one stage; returns the job's result payload."""
    params = record.spec.params
    kind = record.spec.kind
    if kind == "characterize":
        paths = characterize_workspace(
            ws,
            jobs=_jobs_param(params),
            resilience=_resilience_from_params(params),
            cache=cache,
            faults=_faults_from_params(params),
            progress=progress,
            executor=_executor_param(params),
        )
        return {
            "paths": [str(p) for p in paths],
            "sweep_health": {
                str(wl): health for wl, health in sorted(ws.sweep_health().items())
            },
        }
    if kind == "fit_area":
        model, path = fit_area_workspace(
            ws, n_runs=int(params.get("n_runs", 6)), progress=progress
        )
        return {"path": str(path), "residual_sigma": model.residual_sigma}
    if kind == "optimize":
        result, path = optimize_workspace(
            ws,
            name=str(params.get("name", "run1")),
            beta=float(params.get("beta", 4.0)),
            jobs=_jobs_param(params),
            cache=cache,
            progress=progress,
        )
        return {"path": str(path), "n_designs": len(result.designs)}
    if kind == "evaluate":
        rows = evaluate_workspace(
            ws,
            name=str(params.get("name", "run1")),
            domain=Domain(str(params.get("domain", "actual"))),
            jobs=_jobs_param(params),
            cache=cache,
            progress=progress,
        )
        return {"rows": rows}
    raise ServeError(f"unknown job kind {kind!r}")  # unreachable: spec validates


def execute_job(record: JobRecord, cache: PlacedDesignCache, cancel: Event) -> None:
    """Run one job to a terminal state; never raises.

    The worker-side half of the server: stage execution through
    :mod:`repro.stages` against a :class:`~repro.workspace.Workspace`
    wired to the server's shared warm ``cache``.  Cancellation is
    cooperative — the ``cancel`` event is checked at every progress
    milestone (for characterisation: between word-length sweeps), so a
    cancelled job stops at an artefact boundary and everything already
    archived stays valid.
    """
    started = time.perf_counter()

    def progress(event: dict[str, Any]) -> None:
        if cancel.is_set():
            raise JobCancelled(record.job_id)
        record.progress.append(event)

    with obs.span(
        "serve.job",
        kind=record.spec.kind,
        tenant=record.spec.tenant,
        job_id=record.job_id,
    ):
        try:
            if cancel.is_set():
                raise JobCancelled(record.job_id)
            ws = Workspace(record.spec.workspace, cache=cache)
            _maybe_initialize(ws, record.spec.params)
            record.result = _run_stage(record, ws, cache, progress)
            health = record.result.get("sweep_health")
            degraded = isinstance(health, dict) and any(
                entry.get("status") != "complete" for entry in health.values()
            )
            record.state = DEGRADED if degraded else DONE
        except JobCancelled:
            record.state = CANCELLED
            record.error = "cancelled by tenant"
        except SweepFailedError as exc:
            record.state = FAILED
            record.error = str(exc)
            record.exit_code = _EXIT_SWEEP_FAILED
        except ConfigError as exc:
            record.state = FAILED
            record.error = str(exc)
            record.exit_code = _EXIT_CONFIG
        except ReproError as exc:
            record.state = FAILED
            record.error = str(exc)
            record.exit_code = _EXIT_OTHER
    obs.observe("serve.job.seconds", time.perf_counter() - started)
    obs.counter_add(f"serve.job.{record.state}")
