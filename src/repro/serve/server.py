"""The asyncio job server: characterisation-as-a-service.

One long-running :class:`JobServer` multiplexes any number of tenants
onto one warm :class:`~repro.parallel.cache.PlacedDesignCache` and a
bounded pool of worker threads.  The wire protocol is JSON lines over a
Unix-domain socket — one request object per line, one response object per
line — which keeps the thin client (:mod:`repro.serve.client`)
dependency-free and the server trivially scriptable.

Operations::

    ping | submit | status | result | wait | progress | cancel | stats | shutdown

Scheduling is the deterministic :class:`~repro.serve.queue.AdmissionQueue`
policy; execution is :func:`~repro.serve.runner.execute_job` — the same
:mod:`repro.stages` code the batch CLI runs, so served artefacts are
byte-identical to ``repro-flow``'s.  Backpressure is an admission
rejection (HTTP-429 semantics), never a dropped job: once ``submit``
returns ``ok`` the job reaches a terminal state.
"""

from __future__ import annotations

import asyncio
import json
import threading
from pathlib import Path
from typing import Any

from ..errors import JobRejectedError, ReproError, ServeError
from ..obs import runtime as obs
from ..parallel.cache import PlacedDesignCache
from .jobs import CANCELLED, QUEUED, RUNNING, JobRecord, JobSpec, job_id_for
from .queue import AdmissionQueue, QueueEntry
from .runner import execute_job
from .settings import ServeSettings

__all__ = ["JobServer"]


class JobServer:
    """A multi-tenant job server over the sweep pipeline.

    Parameters
    ----------
    socket_path:
        Unix-domain socket to listen on (created on start, removed on
        shutdown).
    settings:
        Admission/concurrency policy; ``None`` reads ``REPRO_SERVE_*``.
    cache_dir:
        Directory of the shared placed-design cache every job places
        through; ``None`` shares a memory-only cache.  Per-entry fcntl
        locks + atomic installs make the directory safe to share with
        concurrent batch runs too.
    """

    def __init__(
        self,
        socket_path: str | Path,
        settings: ServeSettings | None = None,
        cache_dir: str | Path | None = None,
    ) -> None:
        self.socket_path = Path(socket_path)
        self.settings = settings if settings is not None else ServeSettings.from_env()
        self.cache = PlacedDesignCache(cache_dir)
        self._queue = AdmissionQueue(self.settings)
        self._records: dict[str, JobRecord] = {}
        self._by_seq: dict[int, JobRecord] = {}
        self._cancel_events: dict[str, threading.Event] = {}
        self._done_events: dict[str, asyncio.Event] = {}
        self._running: dict[str, int] = {}
        self._active = 0
        self._seq = 0
        self._job_tasks: list[asyncio.Task[None]] = []
        self._stop = asyncio.Event()
        self._kick = asyncio.Event()
        from concurrent.futures import ThreadPoolExecutor

        self._executor = ThreadPoolExecutor(
            max_workers=self.settings.max_workers,
            thread_name_prefix="repro-serve",
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def run(self, ready: threading.Event | None = None) -> None:
        """Serve until a ``shutdown`` request; drains running jobs first."""
        self.socket_path.parent.mkdir(parents=True, exist_ok=True)
        server = await asyncio.start_unix_server(
            self._handle_client, path=str(self.socket_path)
        )
        scheduler = asyncio.create_task(self._scheduler())
        if ready is not None:
            ready.set()
        try:
            async with server:
                await self._stop.wait()
                # Graceful drain: running jobs finish, queued jobs stay
                # queued (they were admitted; a restart would resume them
                # in a persistent deployment — documented limitation).
                self._job_tasks = [t for t in self._job_tasks if not t.done()]
                if self._job_tasks:
                    await asyncio.gather(*self._job_tasks, return_exceptions=True)
        finally:
            scheduler.cancel()
            self._executor.shutdown(wait=True)
            self.socket_path.unlink(missing_ok=True)

    def run_blocking(self, ready: threading.Event | None = None) -> None:
        """Entry point for a dedicated server thread/process."""
        asyncio.run(self.run(ready))

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def _update_depth_gauge(self) -> None:
        obs.gauge_set("serve.queue.depth", float(len(self._queue)))

    async def _scheduler(self) -> None:
        """Dispatch queued jobs into free worker slots, deterministically."""
        while not self._stop.is_set():
            while self._active < self.settings.max_workers:
                entry = self._queue.pop_next(self._running)
                if entry is None:
                    break
                self._dispatch(entry)
            self._update_depth_gauge()
            await self._kick.wait()
            self._kick.clear()

    def _dispatch(self, entry: QueueEntry) -> None:
        record = self._by_seq[entry.seq]
        record.state = RUNNING
        self._running[entry.tenant] = self._running.get(entry.tenant, 0) + 1
        self._active += 1
        task = asyncio.create_task(self._run_job(record))
        self._job_tasks.append(task)

    async def _run_job(self, record: JobRecord) -> None:
        cancel = self._cancel_events[record.job_id]
        loop = asyncio.get_running_loop()
        try:
            await loop.run_in_executor(
                self._executor, execute_job, record, self.cache, cancel
            )
        finally:
            tenant = record.spec.tenant
            remaining = self._running.get(tenant, 1) - 1
            if remaining <= 0:
                self._running.pop(tenant, None)
            else:
                self._running[tenant] = remaining
            self._active -= 1
            self._done_events[record.job_id].set()
            self._kick.set()

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    request = json.loads(line.decode("utf-8"))
                    if not isinstance(request, dict):
                        raise ServeError("request must be a JSON object")
                    response = await self._handle_request(request)
                except ReproError as exc:
                    response = {"ok": False, "error": str(exc)}
                except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                    response = {"ok": False, "error": f"bad request line: {exc}"}
                writer.write(json.dumps(response).encode("utf-8") + b"\n")
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-exchange; nothing to clean up
        except asyncio.CancelledError:
            # Loop teardown with this connection idle: end quietly so the
            # transport's done-callback has no exception to re-raise.
            pass
        finally:
            writer.close()

    async def _handle_request(self, request: dict[str, Any]) -> dict[str, Any]:
        op = request.get("op")
        if op == "ping":
            return {"ok": True, "server": "repro.serve", "active": self._active}
        if op == "submit":
            return self._op_submit(request)
        if op == "status":
            return {"ok": True, **self._record_for(request).status_dict()}
        if op == "result":
            return self._op_result(self._record_for(request))
        if op == "wait":
            return await self._op_wait(request)
        if op == "progress":
            record = self._record_for(request)
            since = int(request.get("since", 0))
            return {
                "ok": True,
                "state": record.state,
                "finished": record.finished,
                "events": list(record.progress[since:]),
            }
        if op == "cancel":
            return self._op_cancel(self._record_for(request))
        if op == "stats":
            return self._op_stats()
        if op == "shutdown":
            self._stop.set()
            self._kick.set()
            return {"ok": True, "stopping": True}
        raise ServeError(f"unknown op {op!r}")

    def _record_for(self, request: dict[str, Any]) -> JobRecord:
        job_id = str(request.get("job_id", ""))
        record = self._records.get(job_id)
        if record is None:
            raise ServeError(f"unknown job id {job_id!r}")
        return record

    def _op_submit(self, request: dict[str, Any]) -> dict[str, Any]:
        spec = JobSpec.from_dict(request)
        seq = self._seq
        try:
            position = self._queue.admit(QueueEntry(seq, spec.tenant, spec.priority))
        except JobRejectedError as exc:
            obs.counter_add("serve.job.rejected")
            return {
                "ok": False,
                "rejected": True,
                "error": str(exc),
                "reason": exc.reason,
                "http_status": exc.http_status,
            }
        self._seq = seq + 1
        job_id = job_id_for(spec, seq)
        record = JobRecord(job_id=job_id, seq=seq, spec=spec)
        self._records[job_id] = record
        self._by_seq[seq] = record
        self._cancel_events[job_id] = threading.Event()
        self._done_events[job_id] = asyncio.Event()
        obs.counter_add("serve.job.submitted")
        self._update_depth_gauge()
        self._kick.set()
        return {"ok": True, "job_id": job_id, "state": QUEUED, "position": position}

    def _op_result(self, record: JobRecord) -> dict[str, Any]:
        if not record.finished:
            return {
                "ok": False,
                "error": f"job {record.job_id} is {record.state}, not finished",
                "state": record.state,
            }
        return {
            "ok": True,
            "job_id": record.job_id,
            "state": record.state,
            "result": record.result,
            "error": record.error,
            "exit_code": record.exit_code,
        }

    async def _op_wait(self, request: dict[str, Any]) -> dict[str, Any]:
        record = self._record_for(request)
        timeout = request.get("timeout")
        event = self._done_events[record.job_id]
        try:
            await asyncio.wait_for(
                event.wait(), None if timeout is None else float(timeout)
            )
        except asyncio.TimeoutError:
            return {"ok": False, "error": "timeout", "state": record.state}
        return self._op_result(record)

    def _op_cancel(self, record: JobRecord) -> dict[str, Any]:
        if record.finished:
            return {"ok": True, "job_id": record.job_id, "state": record.state}
        if record.state == QUEUED and self._queue.remove(record.seq) is not None:
            record.state = CANCELLED
            record.error = "cancelled before start"
            self._done_events[record.job_id].set()
            obs.counter_add("serve.job.cancelled")
            self._update_depth_gauge()
            return {"ok": True, "job_id": record.job_id, "state": record.state}
        # Running (or just dispatched): cooperative — the worker observes
        # the flag at its next progress milestone and stops at an
        # artefact boundary, leaving workspace and cache valid.
        self._cancel_events[record.job_id].set()
        return {"ok": True, "job_id": record.job_id, "state": record.state}

    def _op_stats(self) -> dict[str, Any]:
        states: dict[str, int] = {}
        for seq in sorted(self._by_seq):
            state = self._by_seq[seq].state
            states[state] = states.get(state, 0) + 1
        return {
            "ok": True,
            "queue_depth": len(self._queue),
            "queued": [entry.seq for entry in self._queue.snapshot()],
            "active": self._active,
            "running_by_tenant": {
                tenant: self._running[tenant] for tenant in sorted(self._running)
            },
            "states": states,
            "settings": {
                "max_workers": self.settings.max_workers,
                "queue_limit": self.settings.queue_limit,
                "tenant_queue_limit": self.settings.tenant_queue_limit,
                "tenant_running_limit": self.settings.tenant_running_limit,
            },
            "cache": self.cache.stats().as_dict(),
        }
