"""Admission control: a pure, deterministic priority queue with quotas.

The queue is plain data + plain rules — no clocks, no randomness, no I/O
— so its every decision is a function of the submission history.  That is
what the Hypothesis property in ``tests/serve`` pins: the same submission
sequence always produces the same admissions, rejections and schedule
order.

Ordering: higher ``priority`` first, then first-come-first-served within
a priority (ascending sequence number).  Admission: a submission bounces
with ``"queue-full"`` when the whole queue is at ``queue_limit`` and with
``"tenant-quota"`` when the submitting tenant already holds
``tenant_queue_limit`` queued entries.  Scheduling respects
``tenant_running_limit``: an entry whose tenant is saturated is skipped
(it keeps its place) in favour of the best entry of any other tenant.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Mapping

from ..errors import JobRejectedError
from .settings import ServeSettings

__all__ = ["AdmissionQueue", "QueueEntry", "REASON_QUEUE_FULL", "REASON_TENANT_QUOTA"]

#: Machine-readable rejection reasons (HTTP 429 semantics, see docs/serving.md).
REASON_QUEUE_FULL = "queue-full"
REASON_TENANT_QUOTA = "tenant-quota"


@dataclass(frozen=True)
class QueueEntry:
    """One queued job: just enough identity for admission and ordering."""

    seq: int
    tenant: str
    priority: int = 0

    @property
    def sort_key(self) -> tuple[int, int]:
        """Schedule order: priority descending, then submission order."""
        return (-self.priority, self.seq)


class AdmissionQueue:
    """Bounded multi-tenant priority queue; every decision deterministic."""

    def __init__(self, settings: ServeSettings) -> None:
        self.settings = settings
        self._entries: list[tuple[tuple[int, int], QueueEntry]] = []
        self._queued_by_tenant: dict[str, int] = {}

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def depth_for(self, tenant: str) -> int:
        return self._queued_by_tenant.get(tenant, 0)

    def admit(self, entry: QueueEntry) -> int:
        """Admit ``entry`` or raise :class:`~repro.errors.JobRejectedError`.

        Returns the entry's current schedule position (0 = next up).
        Quota checks run in a fixed order — tenant quota before global
        capacity — so rejection reasons are reproducible too.
        """
        if self.depth_for(entry.tenant) >= self.settings.tenant_queue_limit:
            raise JobRejectedError(
                f"tenant {entry.tenant!r} already has "
                f"{self.settings.tenant_queue_limit} queued job(s)",
                reason=REASON_TENANT_QUOTA,
            )
        if len(self._entries) >= self.settings.queue_limit:
            raise JobRejectedError(
                f"queue is full ({self.settings.queue_limit} job(s))",
                reason=REASON_QUEUE_FULL,
            )
        item = (entry.sort_key, entry)
        position = bisect.bisect_left(self._entries, item)
        self._entries.insert(position, item)
        self._queued_by_tenant[entry.tenant] = self.depth_for(entry.tenant) + 1
        return position

    # ------------------------------------------------------------------
    def pop_next(self, running: Mapping[str, int] | None = None) -> QueueEntry | None:
        """Remove and return the next schedulable entry, or ``None``.

        ``running`` maps tenant -> currently-running job count; entries
        of tenants at ``tenant_running_limit`` are passed over (keeping
        their queue position) in favour of the best other-tenant entry.
        """
        counts: Mapping[str, int] = running if running is not None else {}
        limit = self.settings.tenant_running_limit
        for index, (_, entry) in enumerate(self._entries):
            if counts.get(entry.tenant, 0) < limit:
                del self._entries[index]
                self._decrement(entry.tenant)
                return entry
        return None

    def remove(self, seq: int) -> QueueEntry | None:
        """Withdraw a queued entry by sequence number (cancellation)."""
        for index, (_, entry) in enumerate(self._entries):
            if entry.seq == seq:
                del self._entries[index]
                self._decrement(entry.tenant)
                return entry
        return None

    def snapshot(self) -> list[QueueEntry]:
        """The queued entries in schedule order (for stats/tests)."""
        return [entry for _, entry in self._entries]

    def _decrement(self, tenant: str) -> None:
        remaining = self.depth_for(tenant) - 1
        if remaining <= 0:
            self._queued_by_tenant.pop(tenant, None)
        else:
            self._queued_by_tenant[tenant] = remaining
