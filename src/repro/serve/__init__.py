"""Characterisation-as-a-service: a multi-tenant job server over the flow.

The batch CLI runs one stage and exits; this package keeps the pipeline
warm and serves it.  A :class:`~repro.serve.server.JobServer` accepts
characterise/fit-area/optimize/evaluate submissions from any number of
tenants, schedules them through a deterministic admission-controlled
queue (:mod:`repro.serve.queue`), executes them on a bounded worker pool
via the shared stage bodies in :mod:`repro.stages`, and places every
design through one warm shared
:class:`~repro.parallel.cache.PlacedDesignCache`.

Headline guarantee, enforced by ``tests/serve``: a job submitted through
the server produces **byte-identical** artefacts to the same run through
``repro-flow``, at any concurrency, under either kernel.

See ``docs/serving.md`` for the API, quota/backpressure and SLO story.
"""

from .client import ServeClient
from .jobs import (
    CANCELLED,
    DEGRADED,
    DONE,
    FAILED,
    JOB_KINDS,
    JOB_STATES,
    JobRecord,
    JobSpec,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    job_id_for,
)
from .queue import AdmissionQueue, QueueEntry, REASON_QUEUE_FULL, REASON_TENANT_QUOTA
from .server import JobServer
from .settings import ServeSettings

__all__ = [
    "AdmissionQueue",
    "CANCELLED",
    "DEGRADED",
    "DONE",
    "FAILED",
    "JOB_KINDS",
    "JOB_STATES",
    "JobRecord",
    "JobServer",
    "JobSpec",
    "QUEUED",
    "QueueEntry",
    "REASON_QUEUE_FULL",
    "REASON_TENANT_QUOTA",
    "RUNNING",
    "ServeClient",
    "ServeSettings",
    "TERMINAL_STATES",
    "job_id_for",
]
