"""Projection datapath circuits and the three evaluation domains.

The paper evaluates every design in three domains (Sec. VI):

* **predicted** — what the optimisation framework's own models expect
  (reconstruction MSE on data + error-model variance);
* **simulated** — characterised errors injected into a software execution
  of the fixed-point datapath on the test data;
* **actual** — the datapath run "on the device": every multiplication
  goes through the placed, over-clocked multiplier timing simulation.
"""

from .domains import Domain
from .datapath import ProjectionDatapath
from .executor import DomainEvaluation, evaluate_design, evaluate_domains

__all__ = [
    "Domain",
    "ProjectionDatapath",
    "DomainEvaluation",
    "evaluate_design",
    "evaluate_domains",
]
