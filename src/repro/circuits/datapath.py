"""The linear-projection datapath on the fabric.

Architecture (paper Sec. V: one MAC per output dimension, coefficients of
a possibly different word-length per column):

* input samples stream in one component ``x_p`` per cycle;
* K MAC lanes run in parallel, lane ``k`` multiplying the current ``x_p``
  magnitude by the magnitude of coefficient ``lambda_pk``;
* the generic multiplier inside each lane is the timing-critical,
  over-clocked component; the accumulator stage sits behind a pipeline
  register on the fast dedicated carry chain and never limits the clock
  ("the generic multipliers ... are the arithmetic operators with the most
  critical paths in the data path").

Each lane's multiplier is synthesised and placed separately, so the
actual-domain behaviour inherits placement-and-routing variation per lane.
"""

from __future__ import annotations

import math

from dataclasses import dataclass

import numpy as np

from ..core.design import LinearProjectionDesign
from ..errors import DesignError
from ..fabric.device import FPGADevice
from ..netlist.core import bits_from_ints
from ..parallel.cache import PlacedDesignCache, get_default_cache, multiplier_netlist
from ..synthesis.flow import PlacedDesign
from ..timing.capture import capture_stream
from ..timing.simulator import simulate_transitions

__all__ = ["ProjectionDatapath", "LaneRun"]


@dataclass(frozen=True)
class LaneRun:
    """Captured multiplier outputs of one MAC lane over a test stream."""

    lane: int
    captured_products: np.ndarray  # (n_mults,) ints
    exact_products: np.ndarray  # (n_mults,) ints

    @property
    def error_rate(self) -> float:
        if self.captured_products.size == 0:
            return 0.0
        return float((self.captured_products != self.exact_products).mean())


class ProjectionDatapath:
    """A design's K multiplier lanes placed on a device.

    Parameters
    ----------
    design:
        The linear-projection design to implement.
    device:
        The die to place on.
    anchor:
        Bottom-left corner of the datapath region; lanes tile rightwards.
    seed:
        Synthesis seed for the lanes.
    cache:
        Placed-design cache; lanes sharing a geometry/anchor/seed reuse
        the placement instead of re-running synthesis.  ``None`` uses
        the process-wide default.
    """

    def __init__(
        self,
        design: LinearProjectionDesign,
        device: FPGADevice,
        anchor: tuple[int, int] = (0, 0),
        seed: int = 0,
        cache: PlacedDesignCache | None = None,
    ) -> None:
        self.design = design
        self.device = device
        self.anchor = anchor
        self.seed = seed
        if cache is None:
            cache = get_default_cache()
        self.lanes: list[PlacedDesign] = []
        x, y = anchor
        row_height = 0
        for k, wl in enumerate(design.wordlengths):
            netlist = multiplier_netlist(design.w_data, wl)

            side = max(2, math.ceil(math.sqrt(netlist.n_nodes / 0.55)))
            if x + side > device.cols:  # wrap to the next lane row
                x = anchor[0]
                y += row_height + 2
                row_height = 0
            if y + side > device.rows:
                raise DesignError(
                    "datapath lanes do not fit the device at this anchor"
                )
            placed = cache.get_or_place(
                device, design.w_data, wl, (x, y), seed + k
            )
            self.lanes.append(placed)
            x += placed.placement.region[0] + 2
            row_height = max(row_height, placed.placement.region[1])

    # ------------------------------------------------------------------
    @property
    def total_area_le(self) -> int:
        """Synthesis-reported area of all lanes (the 'actual area')."""
        return sum(lane.area.logic_elements for lane in self.lanes)

    def tool_fmax_mhz(self) -> float:
        """The conservative tool Fmax of the slowest lane."""
        return min(lane.tool_report.fmax_mhz for lane in self.lanes)

    def device_fmax_mhz(self) -> float:
        """Device-true STA Fmax of the slowest lane (error-free bound)."""
        return min(lane.device_sta().fmax_mhz for lane in self.lanes)

    def run_lane(
        self,
        lane: int,
        x_magnitudes: np.ndarray,
        freq_mhz: float,
        rng: np.random.Generator,
    ) -> LaneRun:
        """Run one lane's multiplier over the full test stream.

        Parameters
        ----------
        x_magnitudes:
            Input-data magnitudes, shape ``(P, N)``; the lane consumes
            them column-major (p fastest), exactly the streaming order of
            the hardware.
        freq_mhz:
            Over-clocked operating frequency.
        rng:
            Jitter randomness.
        """
        placed = self.lanes[lane]
        wl = self.design.wordlengths[lane]
        p, n = x_magnitudes.shape
        if p != self.design.p:
            raise DesignError(
                f"x magnitudes have P={p}, design has P={self.design.p}"
            )
        a_stream = x_magnitudes.T.reshape(-1)  # sample-major, p fastest
        b_stream = np.tile(self.design.magnitudes[:, lane], n)
        # Pipeline priming word so every real multiplication has a
        # predecessor transition.
        a_stream = np.concatenate([[0], a_stream])
        b_stream = np.concatenate([[0], b_stream])
        inputs = {
            "a": bits_from_ints(a_stream, self.design.w_data),
            "b": bits_from_ints(b_stream, wl),
        }
        timing = simulate_transitions(
            placed.netlist, inputs, placed.node_delay, placed.edge_delay
        )
        clock = self.device.family.pll.synthesize(freq_mhz)
        cap = capture_stream(
            timing,
            "p",
            clock.achieved_mhz,
            setup_ns=placed.setup_ns,
            jitter=self.device.family.pll.jitter,
            rng=rng,
        )
        return LaneRun(
            lane=lane,
            captured_products=cap.captured_ints(),
            exact_products=cap.ideal_ints(),
        )
