"""Design evaluation in the predicted / simulated / actual domains.

The three domains share the test data and differ only in where the
over-clocking errors come from:

* PREDICTED: the error model's variance term added to the quantised
  basis's reconstruction MSE (no sampling);
* SIMULATED: zero-mean Gaussian errors with the characterised per-
  coefficient variance injected into each multiplication of a software
  fixed-point execution;
* ACTUAL: the placed datapath's multipliers run through the timing
  simulation; captured products are centred by the characterised error
  mean (the paper's subtract-a-constant trick) and accumulated.

MSE is always the reconstruction error in the original data space
(paper Fig. 10/11 y-axis).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.design import LinearProjectionDesign
from ..core.objective import objective_t
from ..core.quantize import quantize_data
from ..errors import DesignError
from ..fabric.device import FPGADevice
from ..models.error_model import ErrorModelSet
from ..parallel.cache import PlacedDesignCache
from ..rng import SeedTree
from .datapath import ProjectionDatapath
from .domains import Domain

__all__ = ["DomainEvaluation", "evaluate_design", "evaluate_domains"]


@dataclass(frozen=True)
class DomainEvaluation:
    """A design's measured performance in one domain."""

    domain: Domain
    mse: float
    area_le: float
    freq_mhz: float
    extra: dict = field(default_factory=dict, compare=False)


def _dual_reconstruct(design: LinearProjectionDesign, factors: np.ndarray) -> np.ndarray:
    """Host-side reconstruction ``X_hat = Lambda (Lambda^T Lambda)^-1 F``.

    The hardware emits ``F = Lambda^T X`` (plus errors); the dual basis is
    the natural least-squares reconstruction and coincides with plain
    ``Lambda F`` exactly when the basis is orthonormal — the paper's
    working assumption (Sec. V-A).
    """
    lam = design.values
    gram = lam.T @ lam
    eps = 1e-12 * max(1.0, float(np.trace(gram)))
    return lam @ np.linalg.solve(gram + eps * np.eye(design.k), factors)


def _check_test_data(design: LinearProjectionDesign, x_test: np.ndarray) -> np.ndarray:
    x = np.asarray(x_test, dtype=float)
    if x.ndim != 2 or x.shape[0] != design.p:
        raise DesignError(
            f"test data must be ({design.p}, N), got {x.shape}"
        )
    return x


def _fixed_point_products(
    design: LinearProjectionDesign, x_test: np.ndarray
) -> tuple[np.ndarray, np.ndarray, float]:
    """Exact fixed-point per-multiplication values and factor matrix.

    Returns ``(products, factors, peak)`` where ``products[p, k, i]`` is
    the signed value of multiplication ``lambda_pk * x_pi`` and
    ``factors = products.sum(axis=0)`` is the exact fixed-point ``F``.
    """
    q = quantize_data(x_test, design.w_data)
    peak = float(np.abs(x_test).max()) if x_test.size else 0.0
    # Integer products and their value scaling.
    prods = np.empty((design.p, design.k, x_test.shape[1]))
    for k, wl in enumerate(design.wordlengths):
        scale = peak * 2.0 ** (-(design.w_data + wl))
        mag = q.magnitudes * design.magnitudes[:, k][:, None]  # (P, N) ints
        sign = q.signs * design.signs[:, k][:, None]
        prods[:, k, :] = sign * mag * scale
    factors = prods.sum(axis=0)  # (K, N)
    return prods, factors, peak


def evaluate_design(
    design: LinearProjectionDesign,
    x_test: np.ndarray,
    domain: Domain,
    error_models: ErrorModelSet | None = None,
    device: FPGADevice | None = None,
    anchor: tuple[int, int] = (0, 0),
    seed: int = 0,
    cache: PlacedDesignCache | None = None,
) -> DomainEvaluation:
    """Evaluate one design in one domain.

    ``error_models`` is required for PREDICTED and SIMULATED;
    ``device`` is required for ACTUAL.  ``cache`` (ACTUAL only) lets the
    datapath reuse previously placed lane multipliers.
    """
    x = _check_test_data(design, x_test)
    freq = design.freq_mhz
    area = float(design.area_le) if design.area_le is not None else float("nan")

    if domain is Domain.PREDICTED:
        if error_models is None:
            raise DesignError("PREDICTED domain needs error models")
        parts = objective_t(design, x, error_models)
        return DomainEvaluation(
            domain=domain,
            mse=parts["objective_t"],
            area_le=area,
            freq_mhz=freq,
            extra=parts,
        )

    if domain is Domain.SIMULATED:
        if error_models is None:
            raise DesignError("SIMULATED domain needs error models")
        rng = SeedTree(seed).rng("simulated", design.method, str(design.wordlengths))
        _, factors, peak = _fixed_point_products(design, x)
        noisy = factors.copy()
        rates = []
        for k, wl in enumerate(design.wordlengths):
            model = error_models.model(wl)
            var_int = model.query(design.magnitudes[:, k], freq)  # (P,)
            val_scale = (peak * 2.0 ** (-(design.w_data + wl))) ** 2
            var_val = var_int * val_scale
            # One zero-mean draw per multiplication, summed over p.
            eps = rng.normal(size=(design.p, x.shape[1])) * np.sqrt(var_val)[:, None]
            noisy[k] += eps.sum(axis=0)
            rates.append(float(np.count_nonzero(var_int > 0)) / design.p)
        x_hat = _dual_reconstruct(design, noisy)
        mse = float(((x - x_hat) ** 2).mean())
        return DomainEvaluation(
            domain=domain,
            mse=mse,
            area_le=area,
            freq_mhz=freq,
            extra={"erroneous_coeff_fraction": float(np.mean(rates))},
        )

    if domain is Domain.ACTUAL:
        if device is None:
            raise DesignError("ACTUAL domain needs a device")
        datapath = ProjectionDatapath(
            design, device, anchor=anchor, seed=seed, cache=cache
        )
        q = quantize_data(x, design.w_data)
        peak = float(np.abs(x).max()) if x.size else 0.0
        n = x.shape[1]
        tree = SeedTree(seed).child("actual", design.method)
        factors = np.empty((design.k, n))
        lane_rates = []
        for k, wl in enumerate(design.wordlengths):
            run = datapath.run_lane(
                k, q.magnitudes, freq, tree.rng(f"lane{k}", "jitter")
            )
            prod_int = run.captured_products.astype(float)
            if error_models is not None:
                # Zero-mean correction: subtract the characterised error
                # mean of each coefficient (a constant in the circuit).
                mean_all = error_models.model(wl).mean_at(freq)
                mean_per_p = mean_all[design.magnitudes[:, k]]
                prod_int -= np.tile(mean_per_p, n)
            sign = (q.signs * design.signs[:, k][:, None]).T.reshape(-1)
            val = sign * prod_int * peak * 2.0 ** (-(design.w_data + wl))
            factors[k] = val.reshape(n, design.p).sum(axis=1)
            lane_rates.append(run.error_rate)
        x_hat = _dual_reconstruct(design, factors)
        mse = float(((x - x_hat) ** 2).mean())
        return DomainEvaluation(
            domain=domain,
            mse=mse,
            area_le=float(datapath.total_area_le),
            freq_mhz=freq,
            extra={
                "lane_error_rates": lane_rates,
                "tool_fmax_mhz": datapath.tool_fmax_mhz(),
                "device_fmax_mhz": datapath.device_fmax_mhz(),
            },
        )

    raise DesignError(f"unknown domain {domain!r}")


def evaluate_domains(
    design: LinearProjectionDesign,
    x_test: np.ndarray,
    error_models: ErrorModelSet,
    device: FPGADevice,
    anchor: tuple[int, int] = (0, 0),
    seed: int = 0,
    cache: PlacedDesignCache | None = None,
) -> dict[Domain, DomainEvaluation]:
    """Evaluate a design in all three domains (paper Fig. 10).

    The predicted and simulated rows reuse the actual run's synthesis-
    reported area, matching the paper's note that "all area results refer
    to the actual area utilised by the design".
    """
    actual = evaluate_design(
        design, x_test, Domain.ACTUAL, error_models, device, anchor, seed, cache
    )
    out = {Domain.ACTUAL: actual}
    for domain in (Domain.PREDICTED, Domain.SIMULATED):
        ev = evaluate_design(design, x_test, domain, error_models, seed=seed)
        out[domain] = DomainEvaluation(
            domain=domain,
            mse=ev.mse,
            area_le=actual.area_le,
            freq_mhz=ev.freq_mhz,
            extra=ev.extra,
        )
    return out
