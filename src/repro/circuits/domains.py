"""Evaluation-domain definitions (paper Sec. VI)."""

from __future__ import annotations

import enum

__all__ = ["Domain"]


class Domain(enum.Enum):
    """The three evaluation domains of the paper's methodology.

    PREDICTED
        The optimisation framework's own estimate: reconstruction MSE of
        the quantised basis on data plus the error model's variance term.
        No randomness beyond the data.
    SIMULATED
        Software execution of the fixed-point datapath with errors
        injected per the characterised (mean, variance) of each
        coefficient at the target frequency.  "Provides an insight of the
        quality of the error model" (Sec. VI).
    ACTUAL
        Execution on the device model: every multiplication runs through
        the placed multiplier's transition timing simulation with jittered
        register capture.  Deviates from SIMULATED through placement and
        routing variation, exactly as on real silicon.
    """

    PREDICTED = "predicted"
    SIMULATED = "simulated"
    ACTUAL = "actual"
