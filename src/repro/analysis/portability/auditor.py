"""The DX portability audit: static proof of location transparency.

Three passes over the shared :class:`~repro.analysis.sanitizer.auditor.
ModuleIndex` (one parse serves both the DT determinism audit and this
one), plus the frozen wire-contract check:

* **payload purity** (DX001–DX004): walks the annotated field graph of
  every catalogued boundary type transitively — through tuple/dict/
  Optional/union annotations, string forward references, scanned field
  types and base classes — and flags any path that reaches a
  thread-affine object, open handle, callable or process-ambient object.
  Unknown types are treated as opaque data (the audit proves what it
  can see; the catalogue's tables define impurity, not purity).
* **cache-key completeness** (DX005): for each declared
  :class:`~repro.analysis.portability.catalog.CacheKeyContract`, every
  getter parameter the body uses must syntactically reach the key-type
  construction — directly in its arguments, or via a call to a
  same-module helper from which the key construction is reachable on the
  DT call graph.  A used-but-unkeyed input means two workers with
  different values would share one cache entry.
* **host dependence** (DX006–DX008): roots reachability at the
  catalogued artefact entry points (cache installs, workspace archives,
  job-id derivation) using the same conservative call graph the DT audit
  uses, and flags host-identity reads, cwd dependence and absolute
  paths anywhere in that cone.
* **wire contracts** (DX009): re-derives each frozen schema fingerprint
  from the index and reports unacknowledged drift
  (:mod:`repro.analysis.portability.contracts`).

Findings flow through the same allowance + ``# repro: allow[DXnnn]``
pragma policy as the DT family and render with the shared
:class:`~repro.analysis.sanitizer.report.AuditReport`.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Sequence

from ..sanitizer.auditor import (
    MODULE_UNIT,
    ModuleIndex,
    _allowed,
    _ClassInfo,
    _Module,
    _Occurrence,
    _pragma_for_line,
    _Unit,
    build_module_index,
)
from ..sanitizer.effects import Allowance
from ..sanitizer.report import AuditFinding, AuditReport, Suppression
from .catalog import (
    ABS_PATH_CALLS,
    AMBIENT_TYPES,
    ARTEFACT_ENTRY_POINTS,
    BOUNDARY_TYPES,
    CACHE_KEY_CONTRACTS,
    CALLABLE_TYPES,
    CWD_CALLS,
    DX_ALLOWANCES,
    CacheKeyContract,
    HANDLE_PREFIXES,
    HANDLE_TYPES,
    HOST_IDENTITY_CALLS,
    THREAD_AFFINE_PREFIXES,
)
from .contracts import verify_contracts
from .rules import (
    EFFECT_ABS_PATH,
    EFFECT_AMBIENT_FIELD,
    EFFECT_CALLABLE_FIELD,
    EFFECT_CONTRACT_DRIFT,
    EFFECT_CWD,
    EFFECT_HANDLE_FIELD,
    EFFECT_HOST_IDENTITY,
    EFFECT_KEY_INCOMPLETE,
    EFFECT_THREAD_AFFINE_FIELD,
    dx_rule_for_effect,
)

__all__ = ["audit_portability"]


# ----------------------------------------------------------------------
# Payload purity (DX001-DX004).


def _annotation_atoms(
    node: ast.expr | None, module: _Module
) -> list[str]:
    """Import-rooted dotted type names appearing in an annotation.

    Walks subscripts (``tuple[X, ...]``), PEP-604 unions (``X | None``),
    ``Optional``/``Callable`` arguments and quoted forward references;
    ``None``/``...`` constants vanish.  Roots resolve through the
    module's import map, so ``Lock`` imported from ``threading`` comes
    back as ``threading.Lock``.
    """
    if node is None:
        return []
    atoms: list[str] = []
    if isinstance(node, ast.Name):
        atoms.append(module.imports.get(node.id, node.id))
    elif isinstance(node, ast.Attribute):
        parts: list[str] = []
        current: ast.expr = node
        while isinstance(current, ast.Attribute):
            parts.insert(0, current.attr)
            current = current.value
        if isinstance(current, ast.Name):
            parts.insert(0, module.imports.get(current.id, current.id))
            atoms.append(".".join(parts))
    elif isinstance(node, ast.Subscript):
        atoms.extend(_annotation_atoms(node.value, module))
        atoms.extend(_annotation_atoms(node.slice, module))
    elif isinstance(node, (ast.Tuple, ast.List)):
        for elt in node.elts:
            atoms.extend(_annotation_atoms(elt, module))
    elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        atoms.extend(_annotation_atoms(node.left, module))
        atoms.extend(_annotation_atoms(node.right, module))
    elif isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            parsed = ast.parse(node.value, mode="eval")
        except SyntaxError:
            return []
        atoms.extend(_annotation_atoms(parsed.body, module))
    return atoms


def _impure_effect(atom: str) -> str | None:
    """The DX effect an annotation atom triggers, or ``None`` if opaque."""
    if any(atom.startswith(prefix) for prefix in THREAD_AFFINE_PREFIXES):
        return EFFECT_THREAD_AFFINE_FIELD
    if atom in HANDLE_TYPES or any(
        atom.startswith(prefix) for prefix in HANDLE_PREFIXES
    ):
        return EFFECT_HANDLE_FIELD
    if atom in CALLABLE_TYPES:
        return EFFECT_CALLABLE_FIELD
    if atom in AMBIENT_TYPES:
        return EFFECT_AMBIENT_FIELD
    return None


def _resolve_class(
    atom: str, module: _Module, index: ModuleIndex
) -> tuple[_Module, _ClassInfo] | None:
    """A scanned class an (import-rooted) annotation atom names, if any."""
    if "." not in atom:
        info = module.classes.get(atom)
        return (module, info) if info is not None else None
    parts = atom.split(".")
    for i in range(len(parts) - 1, 0, -1):
        owner = index.modules.get(".".join(parts[:i]))
        if owner is None:
            continue
        info = owner.classes.get(".".join(parts[i:]))
        return (owner, info) if info is not None else None
    return None


def _walk_class(
    module: _Module,
    info: _ClassInfo,
    trail: tuple[str, ...],
    seen: set[tuple[str, str]],
    index: ModuleIndex,
    out: dict[tuple[str, str, str, int], _Occurrence],
    modules_out: dict[tuple[str, str, str, int], _Module],
) -> None:
    via = "" if len(trail) == 1 else f" (via {' -> '.join(trail)})"
    for field_info in info.fields:
        for atom in _annotation_atoms(field_info.annotation, module):
            effect = _impure_effect(atom)
            if effect is not None:
                occ = _Occurrence(
                    effect,
                    field_info.lineno,
                    f"boundary field `{info.name}.{field_info.name}` holds "
                    f"`{atom}`{via}; payloads crossing a process/host "
                    "boundary must be pure data",
                    f"{info.name}.{field_info.name}",
                )
                key = (effect, module.name, occ.qualname, occ.lineno)
                if key not in out:
                    out[key] = occ
                    modules_out[key] = module
                continue
            resolved = _resolve_class(atom, module, index)
            if resolved is None:
                continue
            owner, nested = resolved
            mark = (owner.name, nested.name)
            if mark in seen:
                continue
            seen.add(mark)
            _walk_class(
                owner, nested, trail + (nested.name,), seen, index, out, modules_out
            )
    for base in info.bases:
        resolved = _resolve_class(base, module, index)
        if resolved is None:
            continue
        owner, base_info = resolved
        mark = (owner.name, base_info.name)
        if mark not in seen:
            seen.add(mark)
            _walk_class(owner, base_info, trail, seen, index, out, modules_out)


def _purity_occurrences(
    index: ModuleIndex, boundary_types: Sequence[str]
) -> list[tuple[_Module, _Occurrence]]:
    out: dict[tuple[str, str, str, int], _Occurrence] = {}
    modules_out: dict[tuple[str, str, str, int], _Module] = {}
    for spec in boundary_types:
        mod_name, _, cls_name = spec.partition(":")
        module = index.modules.get(mod_name)
        if module is None:
            continue
        info = module.classes.get(cls_name)
        if info is None:
            continue
        _walk_class(
            module,
            info,
            (cls_name,),
            {(mod_name, cls_name)},
            index,
            out,
            modules_out,
        )
    return [(modules_out[key], out[key]) for key in sorted(out)]


# ----------------------------------------------------------------------
# Cache-key completeness (DX005).


def _is_key_call(call: ast.Call, key_cls: str, key_full: str, module: _Module) -> bool:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id == key_cls or module.imports.get(func.id) == key_full
    if isinstance(func, ast.Attribute):
        parts: list[str] = []
        current: ast.expr = func
        while isinstance(current, ast.Attribute):
            parts.insert(0, current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return False
        root = module.imports.get(current.id, current.id)
        dotted = ".".join([root, *parts])
        return (
            current.id == key_cls
            or dotted == key_full
            or dotted.startswith(f"{key_full}.")
        )
    return False


def _key_calls(node: ast.AST, key_cls: str, key_full: str, module: _Module) -> list[ast.Call]:
    return [
        sub
        for sub in ast.walk(node)
        if isinstance(sub, ast.Call) and _is_key_call(sub, key_cls, key_full, module)
    ]


def _call_arg_names(call: ast.Call) -> set[str]:
    names: set[str] = set()
    for arg in [*call.args, *(kw.value for kw in call.keywords)]:
        names.update(
            sub.id for sub in ast.walk(arg) if isinstance(sub, ast.Name)
        )
    return names


def _key_reaching_units(
    index: ModuleIndex, module: _Module, key_cls: str, key_full: str
) -> set[str]:
    """Same-module unit keys from which a key construction is reachable."""
    direct = {
        unit.key
        for unit in module.units.values()
        if unit.node is not None and _key_calls(unit.node, key_cls, key_full, module)
    }
    reaching = set(direct)
    changed = True
    module_keys = {unit.key for unit in module.units.values()}
    while changed:
        changed = False
        for key in module_keys - reaching:
            if index.edges.get(key, set()) & reaching:
                reaching.add(key)
                changed = True
    return reaching


def _callee_unit_key(call: ast.Call, module: _Module) -> str | None:
    """The same-module unit a call statically targets, if resolvable."""
    func = call.func
    if isinstance(func, ast.Name) and func.id in module.units:
        return module.units[func.id].key
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        if func.value.id in ("self", "cls"):
            for qualname, unit in module.units.items():
                if qualname.endswith(f".{func.attr}"):
                    return unit.key
    return None


def _cache_key_occurrences(
    index: ModuleIndex, contracts: Sequence[CacheKeyContract]
) -> list[tuple[_Module, _Occurrence]]:
    out: list[tuple[_Module, _Occurrence]] = []
    for contract in contracts:
        mod_name, _, qualname = contract.getter.partition(":")
        module = index.modules.get(mod_name)
        if module is None:
            continue
        unit = module.units.get(qualname)
        key_mod, _, key_cls = contract.key_type.partition(":")
        key_full = f"{key_mod}.{key_cls}"
        if unit is None or unit.node is None:
            out.append(
                (
                    module,
                    _Occurrence(
                        EFFECT_KEY_INCOMPLETE,
                        1,
                        f"declared cache getter `{contract.getter}` was not "
                        "found in the audited tree; fix the catalogue or the "
                        "rename",
                        qualname,
                    ),
                )
            )
            continue
        reaching = _key_reaching_units(index, module, key_cls, key_full)
        if not reaching:
            out.append(
                (
                    module,
                    _Occurrence(
                        EFFECT_KEY_INCOMPLETE,
                        unit.lineno,
                        f"cache getter `{qualname}` never constructs its "
                        f"declared key type `{key_cls}`",
                        qualname,
                    ),
                )
            )
            continue
        keyed: set[str] = set()
        used: set[str] = set()
        for stmt in unit.node.body:
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Name):
                    used.add(sub.id)
                if not isinstance(sub, ast.Call):
                    continue
                if _is_key_call(sub, key_cls, key_full, module):
                    keyed.update(_call_arg_names(sub))
                else:
                    callee = _callee_unit_key(sub, module)
                    if callee is not None and callee in reaching:
                        keyed.update(_call_arg_names(sub))
        args = unit.node.args
        params = [
            a.arg
            for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]
            if a.arg not in ("self", "cls") and a.arg not in contract.exempt
        ]
        for param in params:
            if param in used and param not in keyed:
                out.append(
                    (
                        module,
                        _Occurrence(
                            EFFECT_KEY_INCOMPLETE,
                            unit.lineno,
                            f"parameter `{param}` of `{qualname}` influences "
                            "the produced artefact but never reaches the "
                            f"`{key_cls}` construction; two workers with "
                            "different values would share one cache entry",
                            qualname,
                        ),
                    )
                )
    return out


# ----------------------------------------------------------------------
# Host dependence (DX006-DX008).


def _host_occurrences(
    index: ModuleIndex, entry_points: Sequence[str]
) -> tuple[list[tuple[_Module, _Occurrence]], int]:
    reachable = index.reachable_units(entry_points)
    reachable_mods = index.reachable_modules(reachable)
    out: list[tuple[_Module, _Occurrence]] = []

    def in_scope(module: _Module, unit: _Unit) -> bool:
        if unit.qualname == MODULE_UNIT:
            return module.name in reachable_mods
        return unit.key in reachable

    for module in index.modules.values():
        for unit in module.units.values():
            if not in_scope(module, unit):
                continue
            for dotted, lineno in unit.dotted_call_sites:
                if dotted in HOST_IDENTITY_CALLS:
                    out.append(
                        (
                            module,
                            _Occurrence(
                                EFFECT_HOST_IDENTITY,
                                lineno,
                                f"artefact-reachable code reads host identity "
                                f"via `{dotted}`",
                                unit.qualname,
                            ),
                        )
                    )
                elif dotted in CWD_CALLS:
                    out.append(
                        (
                            module,
                            _Occurrence(
                                EFFECT_CWD,
                                lineno,
                                f"artefact-reachable code depends on the "
                                f"working directory via `{dotted}`",
                                unit.qualname,
                            ),
                        )
                    )
                elif dotted in ABS_PATH_CALLS:
                    out.append(
                        (
                            module,
                            _Occurrence(
                                EFFECT_ABS_PATH,
                                lineno,
                                f"artefact-reachable code anchors paths to "
                                f"this host via `{dotted}`",
                                unit.qualname,
                            ),
                        )
                    )
            for value, lineno in unit.abs_path_literals:
                out.append(
                    (
                        module,
                        _Occurrence(
                            EFFECT_ABS_PATH,
                            lineno,
                            f"artefact-reachable code embeds the absolute "
                            f"path literal {value!r}",
                            unit.qualname,
                        ),
                    )
                )
    return out, len(reachable)


# ----------------------------------------------------------------------
# Contract drift (DX009).


def _contract_occurrences(
    index: ModuleIndex, frozen: dict[str, str] | None
) -> list[tuple[_Module, _Occurrence]]:
    out: list[tuple[_Module, _Occurrence]] = []
    for drift in verify_contracts(index, frozen):
        module = index.modules.get(drift.source)
        if module is None:
            # Shape underivable because the source module is absent; pin
            # the finding to any scanned module so it still surfaces.
            if not index.modules:
                continue
            module = index.modules[sorted(index.modules)[0]]
        out.append(
            (
                module,
                _Occurrence(
                    EFFECT_CONTRACT_DRIFT,
                    1,
                    f"wire contract `{drift.name}` drifted: {drift.detail}",
                    MODULE_UNIT,
                ),
            )
        )
    return out


# ----------------------------------------------------------------------
# The assembled DX audit.


def audit_portability(
    paths: Iterable[str | Path] = (),
    boundary_types: Sequence[str] | None = None,
    cache_contracts: Sequence[CacheKeyContract] | None = None,
    entry_points: Sequence[str] | None = None,
    allowances: Sequence[Allowance] | None = None,
    disabled: frozenset[str] = frozenset(),
    index: ModuleIndex | None = None,
    check_contracts: bool = True,
    frozen_contracts: dict[str, str] | None = None,
) -> AuditReport:
    """Run the DX location-transparency audit and return the report.

    Parameters
    ----------
    paths:
        Files or directories to audit; ignored when ``index`` is given.
    boundary_types / cache_contracts / entry_points / allowances:
        Catalogue overrides (defaults: :mod:`~repro.analysis.portability.
        catalog`).  Boundary types or contract getters that do not
        resolve in the audited tree are skipped for purity (the
        entry-point resolution test pins that they resolve on
        ``src/repro``) but missing cache getters are findings.
    disabled:
        Rule IDs to skip entirely (CLI ``--disable``).
    index:
        A prebuilt shared :class:`ModuleIndex`; keeps a combined DT + DX
        run single-parse.
    check_contracts / frozen_contracts:
        Whether to include DX009 wire-contract verification, and an
        override for the frozen registry (fixtures pin their own).
    """
    if index is None:
        index = build_module_index(paths)
    boundaries = BOUNDARY_TYPES if boundary_types is None else tuple(boundary_types)
    contracts = (
        CACHE_KEY_CONTRACTS if cache_contracts is None else tuple(cache_contracts)
    )
    roots = ARTEFACT_ENTRY_POINTS if entry_points is None else tuple(entry_points)
    policy = DX_ALLOWANCES if allowances is None else tuple(allowances)

    occurrences: list[tuple[_Module, _Occurrence]] = []
    occurrences.extend(_purity_occurrences(index, boundaries))
    occurrences.extend(_cache_key_occurrences(index, contracts))
    host_occurrences, n_reachable = _host_occurrences(index, roots)
    occurrences.extend(host_occurrences)
    if check_contracts:
        occurrences.extend(_contract_occurrences(index, frozen_contracts))

    findings: list[AuditFinding] = []
    suppressions: list[Suppression] = []
    for module, occ in occurrences:
        rule = dx_rule_for_effect(occ.effect)
        if rule.rule_id in disabled:
            continue
        if _allowed(occ, module.name, policy):
            continue
        pragma = _pragma_for_line(module, occ.lineno)
        if pragma is not None and not pragma.problems and rule.rule_id in pragma.rules:
            suppressions.append(
                Suppression(
                    rule=rule.rule_id,
                    module=module.name,
                    path=str(module.path),
                    lineno=occ.lineno,
                    reason=pragma.reason,
                )
            )
            continue
        findings.append(
            AuditFinding(
                rule=rule.rule_id,
                name=rule.name,
                module=module.name,
                qualname=occ.qualname,
                path=str(module.path),
                lineno=occ.lineno,
                message=occ.detail,
            )
        )

    n_functions = sum(
        1
        for module in index.modules.values()
        for unit in module.units.values()
        if unit.qualname != MODULE_UNIT
    )
    findings.sort(key=lambda f: (f.rule, f.path, f.lineno))
    suppressions.sort(key=lambda s: (s.rule, s.path, s.lineno))
    return AuditReport(
        findings=tuple(findings),
        suppressions=tuple(suppressions),
        n_files=len(index.files),
        n_functions=n_functions,
        n_reachable=n_reachable,
        entry_points=tuple(roots),
    )
