"""Distribution-readiness auditor: static location-transparency proofs.

The third analysis layer next to the noise-floor (``NLxxx``) and the
determinism sanitizer (``DTxxx``): before the ROADMAP's distributed
sweep fabric can ship ``(location, chunk)`` shards to cross-host
workers, the codebase must be *location transparent* — payloads pure
data, cache keys complete, artefacts host-independent, wire schemas
frozen.  The ``DXnnn`` family proves each property statically, over the
same single-parse :class:`~repro.analysis.sanitizer.auditor.ModuleIndex`
the DT audit uses.

* :mod:`~repro.analysis.portability.rules` — the stable ``DXnnn`` rule
  registry and the generated docs table;
* :mod:`~repro.analysis.portability.catalog` — boundary types,
  impure-type tables, cache-key contracts, artefact entry points and
  the DX allowance policy;
* :mod:`~repro.analysis.portability.contracts` — frozen wire-schema
  fingerprints and the drift check behind ``repro audit --contracts``;
* :mod:`~repro.analysis.portability.auditor` — the analysis engine
  (:func:`audit_portability`).

Exposed on the command line as ``repro audit --family dx`` and gated to
zero findings in ``scripts/check.sh``.  Suppressions use the shared
pragma grammar (``# repro: allow[DXnnn] -- reason``) and are policed by
the shared ``DT000`` meta-rule.
"""

from .auditor import audit_portability
from .catalog import (
    ARTEFACT_ENTRY_POINTS,
    BOUNDARY_TYPES,
    CACHE_KEY_CONTRACTS,
    DX_ALLOWANCES,
    CacheKeyContract,
)
from .contracts import (
    CONTRACTS,
    FROZEN_CONTRACTS,
    ContractDrift,
    WireContract,
    contract_shapes,
    fingerprint,
    verify_contracts,
    wire_contracts_markdown,
)
from .rules import (
    DX_REGISTRY,
    DXRule,
    dx_rule_for_effect,
    dx_rule_table,
    dx_rule_table_markdown,
)

__all__ = [
    "ARTEFACT_ENTRY_POINTS",
    "BOUNDARY_TYPES",
    "CACHE_KEY_CONTRACTS",
    "CONTRACTS",
    "CacheKeyContract",
    "ContractDrift",
    "DXRule",
    "DX_ALLOWANCES",
    "DX_REGISTRY",
    "FROZEN_CONTRACTS",
    "WireContract",
    "audit_portability",
    "contract_shapes",
    "dx_rule_for_effect",
    "dx_rule_table",
    "dx_rule_table_markdown",
    "fingerprint",
    "verify_contracts",
    "wire_contracts_markdown",
]
