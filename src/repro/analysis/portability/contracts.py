"""Frozen wire-schema contracts: fingerprints a fleet can trust.

A distributed fabric has peers that were not started from the same
checkout: a worker drains shard descriptors written by yesterday's
submitter, a client polls a server deployed last week, a warm cache
directory is shared by every version in the fleet.  Each such surface is
a *wire contract* — and a contract that can drift silently is how
mixed-version fleets corrupt each other's state.

This module derives each contract's live shape **statically** from the
shared :class:`~repro.analysis.sanitizer.auditor.ModuleIndex` (the same
single parse the DT and DX passes use — no imports, no runtime state),
canonicalises it to JSON, and fingerprints it.  The fingerprints are
frozen in :data:`FROZEN_CONTRACTS`; ``repro audit --contracts`` (and the
DX family's DX009 rule) fail whenever a derived fingerprint disagrees
with its frozen value.  Changing a wire schema is allowed — *silently*
changing one is not: the same commit must update the frozen registry,
which makes the change visible in review and in the generated docs
table.
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass
from typing import Any

from ..sanitizer.auditor import ModuleIndex, _Module

__all__ = [
    "CONTRACTS",
    "ContractDrift",
    "FROZEN_CONTRACTS",
    "WireContract",
    "contract_shapes",
    "fingerprint",
    "verify_contracts",
    "wire_contracts_markdown",
]


@dataclass(frozen=True)
class WireContract:
    """One frozen wire schema.

    Attributes
    ----------
    name:
        Stable dotted contract name, versioned (``surface.vN``).
    source:
        Dotted module the shape is derived from (and the file a drift
        finding points at).
    description:
        What the schema covers and who depends on it.
    """

    name: str
    source: str
    description: str


#: Every wire surface the fabric's peers depend on.
CONTRACTS: tuple[WireContract, ...] = (
    WireContract(
        "serve.protocol.v1",
        "repro.serve.server",
        "The job server's newline-JSON protocol: the op set, the "
        "submit/status/result response fields, and the job kind/state "
        "vocabularies clients schedule against.",
    ),
    WireContract(
        "sidecar.outcome.v1",
        "repro.parallel.retry",
        "The `wlNN.outcome.json` sweep-health sidecar: outcome, "
        "per-shard report and per-attempt record fields that "
        "`sweep_health()` and operators read back.",
    ),
    WireContract(
        "cache.entry.v2",
        "repro.parallel.cache",
        "The placed-design cache's on-disk entry: the payload envelope "
        "fields, the disk version, and the `PlacedKey` identity fields "
        "every sharing process hashes.",
    ),
    WireContract(
        "shard.descriptor.v1",
        "repro.parallel.engine",
        "The shard unit of work and its plan/result shapes — exactly "
        "what a cross-host work queue will serialize.",
    ),
    WireContract(
        "spool.queue.v1",
        "repro.parallel.spool",
        "The file-queue spool's on-disk protocol: the spool version, the "
        "manifest/descriptor/plan/result record fields, and the outcome "
        "sidecar every coordinator and stateless worker exchange.",
    ),
)

#: The frozen registry: contract name -> fingerprint of the canonical
#: shape.  Updating a value here is the *acknowledgement* that a wire
#: schema changed; `repro audit --contracts` fails until it happens.
FROZEN_CONTRACTS: dict[str, str] = {
    "serve.protocol.v1": "a2641785bf7ddcd2",
    "sidecar.outcome.v1": "34caf5ac544583ef",
    "cache.entry.v2": "2e102209f35a80e8",
    "shard.descriptor.v1": "ffec9f8147b24d14",
    "spool.queue.v1": "10135b19285c375b",
}


@dataclass(frozen=True)
class ContractDrift:
    """One contract whose derived shape disagrees with the frozen registry."""

    name: str
    source: str
    frozen: str | None
    derived: str | None
    detail: str


# ----------------------------------------------------------------------
# Static shape extraction over the shared module index.


def _function_node(
    module: _Module, qualname: str
) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
    unit = module.units.get(qualname)
    return unit.node if unit is not None else None


def _return_dict_keys(node: ast.AST | None) -> list[str]:
    """Sorted union of constant keys over dict literals in return statements."""
    if node is None:
        return []
    keys: set[str] = set()
    for stmt in ast.walk(node):
        if not isinstance(stmt, ast.Return) or stmt.value is None:
            continue
        for sub in ast.walk(stmt.value):
            if isinstance(sub, ast.Dict):
                keys.update(
                    k.value
                    for k in sub.keys
                    if isinstance(k, ast.Constant) and isinstance(k.value, str)
                )
    return sorted(keys)


def _dict_literal_keys(node: ast.AST | None) -> list[str]:
    """Sorted union of constant keys over every dict literal in ``node``."""
    if node is None:
        return []
    keys: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Dict):
            keys.update(
                k.value
                for k in sub.keys
                if isinstance(k, ast.Constant) and isinstance(k.value, str)
            )
    return sorted(keys)


def _compared_constants(node: ast.AST | None, name: str) -> list[str]:
    """Sorted constants ``name`` is ``==``-compared against in ``node``."""
    if node is None:
        return []
    values: set[str] = set()
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Compare) or len(sub.ops) != 1:
            continue
        if not isinstance(sub.ops[0], ast.Eq):
            continue
        if not (isinstance(sub.left, ast.Name) and sub.left.id == name):
            continue
        comparator = sub.comparators[0]
        if isinstance(comparator, ast.Constant) and isinstance(comparator.value, str):
            values.add(comparator.value)
    return sorted(values)


def _module_assignments(module: _Module) -> dict[str, ast.expr]:
    out: dict[str, ast.expr] = {}
    if module.tree is None:
        return out
    for stmt in module.tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        for target in targets:
            if isinstance(target, ast.Name) and value is not None:
                out[target.id] = value
    return out


def _module_constant(module: _Module, name: str) -> Any:
    """The constant value assigned to module-level ``name``, if literal.

    Tuples/lists of module-level names (``STATES = (QUEUED, DONE)``)
    resolve one level deep through sibling literal assignments.
    """
    assignments = _module_assignments(module)
    value = assignments.get(name)
    if value is None:
        return None
    try:
        return ast.literal_eval(value)
    except (ValueError, TypeError, SyntaxError):
        pass
    if isinstance(value, (ast.Tuple, ast.List)):
        resolved: list[Any] = []
        for elt in value.elts:
            target = (
                assignments.get(elt.id) if isinstance(elt, ast.Name) else elt
            )
            if target is None:
                return None
            try:
                resolved.append(ast.literal_eval(target))
            except (ValueError, TypeError, SyntaxError):
                return None
        return resolved
    return None


def _class_fields(module: _Module, cls: str) -> list[dict[str, str]] | None:
    info = module.classes.get(cls)
    if info is None:
        return None
    return [
        {
            "name": f.name,
            "type": ast.unparse(f.annotation) if f.annotation is not None else "",
        }
        for f in info.fields
    ]


def _shape_serve_protocol(index: ModuleIndex) -> dict[str, Any] | None:
    server = index.modules.get("repro.serve.server")
    jobs = index.modules.get("repro.serve.jobs")
    if server is None or jobs is None:
        return None
    return {
        "ops": _compared_constants(
            _function_node(server, "JobServer._handle_request"), "op"
        ),
        "submit_fields": _return_dict_keys(
            _function_node(server, "JobServer._op_submit")
        ),
        "result_fields": _return_dict_keys(
            _function_node(server, "JobServer._op_result")
        ),
        "status_fields": _return_dict_keys(
            _function_node(jobs, "JobRecord.status_dict")
        ),
        "job_kinds": list(_module_constant(jobs, "JOB_KINDS") or ()),
        "job_states": list(_module_constant(jobs, "JOB_STATES") or ()),
        "terminal_states": list(_module_constant(jobs, "TERMINAL_STATES") or ()),
    }


def _shape_sidecar_outcome(index: ModuleIndex) -> dict[str, Any] | None:
    retry = index.modules.get("repro.parallel.retry")
    if retry is None:
        return None
    return {
        "outcome_fields": _return_dict_keys(
            _function_node(retry, "SweepOutcome.as_dict")
        ),
        "report_fields": _return_dict_keys(
            _function_node(retry, "ShardReport.as_dict")
        ),
        "attempt_fields": _return_dict_keys(
            _function_node(retry, "ShardAttempt.as_dict")
        ),
    }


def _shape_cache_entry(index: ModuleIndex) -> dict[str, Any] | None:
    cache = index.modules.get("repro.parallel.cache")
    if cache is None:
        return None
    return {
        "disk_version": _module_constant(cache, "_DISK_VERSION"),
        "payload_fields": _dict_literal_keys(
            _function_node(cache, "PlacedDesignCache._store_disk")
        ),
        "key_fields": _class_fields(cache, "PlacedKey"),
    }


def _shape_shard_descriptor(index: ModuleIndex) -> dict[str, Any] | None:
    engine = index.modules.get("repro.parallel.engine")
    if engine is None:
        return None
    return {
        "shard": _class_fields(engine, "Shard"),
        "plan": _class_fields(engine, "SweepPlan"),
        "result": _class_fields(engine, "ShardResult"),
    }


def _shape_spool_queue(index: ModuleIndex) -> dict[str, Any] | None:
    spool = index.modules.get("repro.parallel.spool")
    if spool is None:
        return None
    return {
        "spool_version": _module_constant(spool, "SPOOL_VERSION"),
        "manifest_fields": _dict_literal_keys(
            _function_node(spool, "write_manifest")
        ),
        "descriptor_fields": _dict_literal_keys(
            _function_node(spool, "shard_descriptor")
        ),
        "plan_fields": _dict_literal_keys(
            _function_node(spool, "plan_descriptor")
        ),
        "result_fields": _dict_literal_keys(
            _function_node(spool, "result_record")
        ),
        "outcome_fields": _class_fields(spool, "WorkerOutcome"),
    }


_SHAPE_DERIVERS = {
    "serve.protocol.v1": _shape_serve_protocol,
    "sidecar.outcome.v1": _shape_sidecar_outcome,
    "cache.entry.v2": _shape_cache_entry,
    "shard.descriptor.v1": _shape_shard_descriptor,
    "spool.queue.v1": _shape_spool_queue,
}


def contract_shapes(index: ModuleIndex) -> dict[str, dict[str, Any] | None]:
    """Every contract's live shape derived from ``index`` (None = absent)."""
    return {c.name: _SHAPE_DERIVERS[c.name](index) for c in CONTRACTS}


def fingerprint(shape: dict[str, Any]) -> str:
    """Truncated sha256 of the shape's canonical JSON."""
    canonical = json.dumps(shape, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def verify_contracts(
    index: ModuleIndex, frozen: dict[str, str] | None = None
) -> list[ContractDrift]:
    """Compare each derived contract shape against the frozen registry.

    Returns one :class:`ContractDrift` per disagreement — drifted
    fingerprints, underivable shapes (the source module left the audited
    tree) and frozen entries for unknown contracts all count.
    """
    registry = FROZEN_CONTRACTS if frozen is None else frozen
    shapes = contract_shapes(index)
    drifts: list[ContractDrift] = []
    for contract in CONTRACTS:
        expected = registry.get(contract.name)
        shape = shapes[contract.name]
        derived = fingerprint(shape) if shape is not None else None
        if expected is None:
            drifts.append(
                ContractDrift(
                    contract.name,
                    contract.source,
                    None,
                    derived,
                    "contract has no frozen fingerprint; add it to "
                    "FROZEN_CONTRACTS",
                )
            )
        elif derived is None:
            drifts.append(
                ContractDrift(
                    contract.name,
                    contract.source,
                    expected,
                    None,
                    f"source module {contract.source} is not in the audited "
                    "tree, so the shape cannot be derived",
                )
            )
        elif derived != expected:
            drifts.append(
                ContractDrift(
                    contract.name,
                    contract.source,
                    expected,
                    derived,
                    f"derived fingerprint {derived} != frozen {expected}; "
                    "if the schema change is intended, update "
                    "FROZEN_CONTRACTS in the same commit",
                )
            )
    return drifts


def _escape(text: str) -> str:
    return text.replace("|", "\\|")


def wire_contracts_markdown() -> str:
    """The frozen contract registry as a markdown table.

    Embedded in ``docs/static_analysis.md`` between generated-content
    markers; ``tests/analysis/portability/test_docs_drift.py`` fails
    when they diverge.
    """
    lines = [
        "| Contract | Fingerprint | Derived from | Covers |",
        "|---|---|---|---|",
    ]
    for contract in CONTRACTS:
        frozen = FROZEN_CONTRACTS.get(contract.name, "—")
        lines.append(
            f"| `{contract.name}` | `{frozen}` | `{contract.source}` | "
            f"{_escape(contract.description)} |"
        )
    return "\n".join(lines)
