"""The DX rule registry: stable IDs for the location-transparency audit.

Each ``DXnnn`` rule binds one portability hazard to a stable identifier,
a name and a finding template — the same shape as the ``NLxxx``/
``WLxxx``/``DTxxx`` families, so suppression
(``# repro: allow[DXnnn] -- reason``), documentation generation and
drift testing all work identically.  Pragma hygiene itself stays policed
by the shared ``DT000`` meta-rule (one pragma grammar, one police).

The family certifies what the distributed sweep fabric (ROADMAP) needs
before it can exist: every object crossing a process/host boundary is
pure data (DX001–DX004), every input that influences a cached artefact
is in its key (DX005), no host identity leaks into artefacts or keys
(DX006–DX008), and the wire schemas peers depend on cannot drift
silently (DX009).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "DX_REGISTRY",
    "DXRule",
    "dx_rule_for_effect",
    "dx_rule_table",
    "dx_rule_table_markdown",
]

#: Hazard kinds, one per DX rule (mirrors the DT effect constants).
EFFECT_THREAD_AFFINE_FIELD = "payload.thread_affine"
EFFECT_HANDLE_FIELD = "payload.handle"
EFFECT_CALLABLE_FIELD = "payload.callable"
EFFECT_AMBIENT_FIELD = "payload.ambient_object"
EFFECT_KEY_INCOMPLETE = "cache.key_incomplete"
EFFECT_ABS_PATH = "host.absolute_path"
EFFECT_HOST_IDENTITY = "host.identity"
EFFECT_CWD = "host.cwd"
EFFECT_CONTRACT_DRIFT = "wire.contract_drift"


@dataclass(frozen=True)
class DXRule:
    """One location-transparency rule.

    Attributes
    ----------
    rule_id:
        Stable ``DXnnn`` identifier.
    name:
        Short kebab-case rule name.
    effect:
        The portability hazard the rule polices.
    description:
        What a finding of this rule means.
    """

    rule_id: str
    name: str
    effect: str
    description: str


#: Registry of every DX rule, keyed by rule ID.
DX_REGISTRY: dict[str, DXRule] = {}


def _register(rule: DXRule) -> DXRule:
    DX_REGISTRY[rule.rule_id] = rule
    return rule


_register(
    DXRule(
        "DX001",
        "thread-affine-field",
        EFFECT_THREAD_AFFINE_FIELD,
        "A declared boundary type (a shard descriptor, sweep plan, job "
        "spec, cache key — anything the fabric serializes) reaches a "
        "thread-affine object: a lock, event, thread, executor, future "
        "or queue. Such fields pin the payload to one process and "
        "cannot cross a host boundary.",
    )
)
_register(
    DXRule(
        "DX002",
        "handle-field",
        EFFECT_HANDLE_FIELD,
        "A boundary type reaches an open handle (file object, socket, "
        "IO stream): the descriptor number is meaningless on any other "
        "host, so the payload deserializes broken or not at all.",
    )
)
_register(
    DXRule(
        "DX003",
        "callable-field",
        EFFECT_CALLABLE_FIELD,
        "A boundary type reaches a callable (function, bound method, "
        "lambda): callables capture module and closure state that does "
        "not ship with the payload; remote workers must import "
        "behaviour, never receive it.",
    )
)
_register(
    DXRule(
        "DX004",
        "ambient-object-field",
        EFFECT_AMBIENT_FIELD,
        "A boundary type reaches a process-ambient object (logger, RNG "
        "generator instance, module, weakref): its state is local to "
        "the sending process, so the receiving host reconstructs "
        "something subtly different.",
    )
)
_register(
    DXRule(
        "DX005",
        "incomplete-cache-key",
        EFFECT_KEY_INCOMPLETE,
        "An input of a declared cache getter influences the produced "
        "artefact bytes but never reaches the cache-key construction: "
        "two workers with different values for that input would share "
        "one entry and silently serve each other wrong artefacts.",
    )
)
_register(
    DXRule(
        "DX006",
        "absolute-path",
        EFFECT_ABS_PATH,
        "Artefact-reachable code embeds an absolute path (a `/...` "
        "literal, `os.path.abspath`, `realpath`, `expanduser`): the "
        "path names one host's filesystem, so artefacts or keys built "
        "from it are not relocatable.",
    )
)
_register(
    DXRule(
        "DX007",
        "host-identity",
        EFFECT_HOST_IDENTITY,
        "Artefact-reachable code reads host identity (`gethostname`, "
        "`platform.*`, `os.getpid`, `os.uname`, `getpass.getuser`, "
        "thread ids): any such value flowing into artefact bytes or "
        "cache keys makes equal work hash unequally across the fleet.",
    )
)
_register(
    DXRule(
        "DX008",
        "cwd-dependence",
        EFFECT_CWD,
        "Artefact-reachable code depends on the working directory "
        "(`os.getcwd`, `Path.cwd`, `os.chdir`): workers are launched "
        "from arbitrary directories, so relative resolution must happen "
        "at the submitting edge, never inside the fabric.",
    )
)
_register(
    DXRule(
        "DX009",
        "frozen-contract-drift",
        EFFECT_CONTRACT_DRIFT,
        "A wire schema (serve protocol, outcome sidecar, cache-entry "
        "layout, shard descriptor) no longer matches its frozen "
        "fingerprint: the change may be fine, but it must be "
        "acknowledged by updating the frozen registry in the same "
        "commit, or mixed-version fleets corrupt each other's state.",
    )
)

_RULE_BY_EFFECT: dict[str, DXRule] = {
    rule.effect: rule for rule in DX_REGISTRY.values()
}


def dx_rule_for_effect(effect: str) -> DXRule:
    """The DX rule policing ``effect``; unknown effects raise ``KeyError``."""
    return _RULE_BY_EFFECT[effect]


def dx_rule_table() -> list[tuple[str, str, str, str]]:
    """``(rule_id, name, effect, description)`` rows, sorted by rule ID."""
    return [
        (r.rule_id, r.name, r.effect, r.description)
        for r in sorted(DX_REGISTRY.values(), key=lambda r: r.rule_id)
    ]


def _escape(text: str) -> str:
    return text.replace("|", "\\|")


def dx_rule_table_markdown() -> str:
    """The DX rule catalogue as a GitHub-flavoured markdown table.

    Embedded in ``docs/static_analysis.md`` between generated-content
    markers; ``tests/analysis/portability/test_docs_drift.py`` fails
    when they diverge.
    """
    lines = [
        "| ID | Name | Effect | Finding |",
        "|----|------|--------|---------|",
    ]
    for rule_id, name, effect, description in dx_rule_table():
        lines.append(
            f"| {rule_id} | `{name}` | `{effect}` | {_escape(description)} |"
        )
    return "\n".join(lines)
