"""The portability catalogue: what the DX audit holds where.

Closed-world in the same sense as the DT effect catalogue
(:mod:`repro.analysis.sanitizer.effects`): the boundary types whose
payload purity is proven, the impure-type tables that define "pure", the
cache-key contracts, the artefact entry points that root the
host-dependence rules, and the sanctioned exceptions are all declared
*here*, in one reviewable table.

Why these boundaries: the ROADMAP's distributed sweep fabric ships
``(location, chunk)`` shards to stateless cross-host workers and shares
a content-addressed placed-design cache between them.  Every type below
is something that fabric will serialize (shards, plans, results, fault
plans, job specs) or hash (cache keys); every artefact entry point below
writes bytes a remote peer will read back.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sanitizer.effects import Allowance
from .rules import EFFECT_HOST_IDENTITY

__all__ = [
    "ABS_PATH_CALLS",
    "AMBIENT_TYPES",
    "ARTEFACT_ENTRY_POINTS",
    "BOUNDARY_TYPES",
    "CACHE_KEY_CONTRACTS",
    "CALLABLE_TYPES",
    "CWD_CALLS",
    "DX_ALLOWANCES",
    "CacheKeyContract",
    "HANDLE_PREFIXES",
    "HANDLE_TYPES",
    "HOST_IDENTITY_CALLS",
    "THREAD_AFFINE_PREFIXES",
]

#: ``module:Class`` names whose transitive field graphs must be pure
#: data.  Everything the future fabric serializes across a process or
#: host boundary, plus the placed-cache key it hashes.
BOUNDARY_TYPES: tuple[str, ...] = (
    "repro.faults.plan:FaultPlan",
    "repro.faults.plan:FaultSpec",
    "repro.parallel.cache:PlacedKey",
    "repro.parallel.engine:Shard",
    "repro.parallel.engine:ShardResult",
    "repro.parallel.engine:SweepPlan",
    "repro.parallel.retry:ShardAttempt",
    "repro.parallel.retry:ShardReport",
    "repro.parallel.retry:SweepOutcome",
    "repro.parallel.spool:WorkerOutcome",
    "repro.serve.jobs:JobSpec",
)

#: Annotation roots that mark a field thread-affine (DX001).  Matched by
#: module prefix: anything these modules export pins a payload to one
#: process (locks, events, threads, pools, futures, queues).
THREAD_AFFINE_PREFIXES: tuple[str, ...] = (
    "_thread.",
    "asyncio.",
    "concurrent.futures.",
    "multiprocessing.",
    "queue.",
    "threading.",
)

#: Annotation roots that mark a field an open handle (DX002).
HANDLE_PREFIXES: tuple[str, ...] = ("io.", "socket.")

#: Exact handle types (DX002) that live outside the handle modules.
HANDLE_TYPES: frozenset[str] = frozenset(
    {
        "mmap.mmap",
        "typing.BinaryIO",
        "typing.IO",
        "typing.TextIO",
    }
)

#: Exact callable annotations (DX003).
CALLABLE_TYPES: frozenset[str] = frozenset(
    {
        "collections.abc.Callable",
        "types.BuiltinFunctionType",
        "types.FunctionType",
        "types.LambdaType",
        "types.MethodType",
        "typing.Callable",
    }
)

#: Exact process-ambient object types (DX004).
AMBIENT_TYPES: frozenset[str] = frozenset(
    {
        "logging.Handler",
        "logging.Logger",
        "numpy.random.Generator",
        "numpy.random.RandomState",
        "random.Random",
        "types.FrameType",
        "types.ModuleType",
        "weakref.ref",
    }
)


@dataclass(frozen=True)
class CacheKeyContract:
    """One cache getter whose key must capture every influential input.

    Attributes
    ----------
    getter:
        ``module:qualname`` of the memoising entry point.  Every
        parameter the getter's body *uses* must syntactically reach the
        key construction (directly, or through a same-module helper the
        key construction is reachable from) — a used-but-unkeyed
        parameter is a DX005 finding.
    key_type:
        ``module:Class`` of the key the getter must construct.
    exempt:
        Parameters excluded from the completeness demand (``self`` and
        ``cls`` are always exempt).
    """

    getter: str
    key_type: str
    exempt: tuple[str, ...] = ()


#: Every memoising boundary the fabric shares between workers.
CACHE_KEY_CONTRACTS: tuple[CacheKeyContract, ...] = (
    CacheKeyContract(
        getter="repro.parallel.cache:PlacedDesignCache.get_or_place",
        key_type="repro.parallel.cache:PlacedKey",
    ),
)

#: ``module:qualname`` roots for the host-dependence rules (DX006–DX008):
#: everything that writes shared artefact bytes or derives shared
#: identities (cache entries, workspace archives, job ids).
ARTEFACT_ENTRY_POINTS: tuple[str, ...] = (
    "repro.parallel.cache:PlacedDesignCache._store_disk",
    "repro.parallel.cache:PlacedKey.digest",
    "repro.parallel.cache:PlacedKey.for_device",
    "repro.parallel.spool:write_manifest",
    "repro.parallel.spool:write_outcome",
    "repro.parallel.spool:write_result",
    "repro.serve.jobs:JobSpec.canonical_json",
    "repro.serve.jobs:job_id_for",
    "repro.workspace:Workspace.save_area_model",
    "repro.workspace:Workspace.save_characterization",
    "repro.workspace:Workspace.save_design_set",
)

#: Import-rooted dotted calls that read host identity (DX007).
HOST_IDENTITY_CALLS: frozenset[str] = frozenset(
    {
        "getpass.getuser",
        "os.getpid",
        "os.getppid",
        "os.uname",
        "platform.machine",
        "platform.node",
        "platform.platform",
        "platform.release",
        "platform.system",
        "platform.version",
        "socket.getfqdn",
        "socket.gethostname",
        "threading.get_ident",
        "threading.get_native_id",
    }
)

#: Import-rooted dotted calls that read or change the working directory
#: (DX008).
CWD_CALLS: frozenset[str] = frozenset(
    {
        "os.chdir",
        "os.fchdir",
        "os.getcwd",
        "os.getcwdb",
        "pathlib.Path.cwd",
    }
)

#: Import-rooted dotted calls that anchor paths to one host's filesystem
#: (DX006).  Absolute-path string literals are caught separately by the
#: scanner.
ABS_PATH_CALLS: frozenset[str] = frozenset(
    {
        "os.path.abspath",
        "os.path.expanduser",
        "os.path.realpath",
    }
)

#: The DX policy table: every sanctioned portability exception.
DX_ALLOWANCES: tuple[Allowance, ...] = (
    Allowance(
        EFFECT_HOST_IDENTITY,
        "repro.parallel.cache",
        "PlacedDesignCache._store_disk",
        "os.getpid names the *temporary* file only; the installed entry "
        "path and bytes are pure in the key, so peers on any host "
        "converge on identical entries.",
    ),
    Allowance(
        EFFECT_HOST_IDENTITY,
        "repro.workspace",
        "Workspace._writer_tag",
        "pid + thread id tag temp-file names so racing writers never "
        "collide; the installed artefact name and bytes never carry the "
        "tag.",
    ),
    Allowance(
        EFFECT_HOST_IDENTITY,
        "repro.parallel.spool",
        "_writer_tag",
        "os.getpid names the *temporary* file only, mirroring the "
        "workspace writer tag; installed spool entries are named by "
        "shard index and generation alone.",
    ),
    Allowance(
        EFFECT_HOST_IDENTITY,
        "repro.parallel.sanitize",
        "CacheSanitizer._record",
        "The runtime sanitizer journals the violating pid as provenance; "
        "the journal is diagnostic output, never artefact or key input.",
    ),
)
