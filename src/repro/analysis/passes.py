"""The built-in lint passes and the rule registry.

Each pass is a function over an :class:`~repro.analysis.context.AnalysisContext`
yielding :class:`Finding` tuples; the linter turns findings into
:class:`~repro.analysis.diagnostics.Diagnostic` objects with the rule's
(possibly overridden) severity.  Rules carry stable IDs so suppression and
tests can reference them: see ``docs/static_analysis.md`` for the catalogue.

=====  ==================  ========  =======================================
ID     name                default   finding
=====  ==================  ========  =======================================
NL000  invalid-structure   error     broken DAG invariants (bad fanin refs,
                                     oversized truth tables, bad arity)
NL001  dangling-node       warning   non-output LUT/const with no fanouts
NL002  dead-logic          error     LUT unreachable from any output bus
NL003  duplicate-const     info      several constant nodes of one value
NL004  constant-lut        warning   truth table constant over all rows
NL005  ignored-fanin       warning   truth table independent of a fanin,
                                     or the same driver wired twice
NL006  duplicate-lut       warning   structural duplicate via canonical hash
NL007  output-overlap      error     logic node shared between output buses
NL008  output-width        error     missing outputs or an empty output bus
NL009  fanout-budget       warning   LUT/input fanout above the budget
NL010  depth-budget        warning   LUT depth above the budget
NL011  input-coverage      warning   primary input that cannot affect any
                                     output
=====  ==================  ========  =======================================

Word-level rules (``WL0xx``) run the dataflow abstract interpreter of
:mod:`repro.analysis.dataflow` instead of walking raw structure:

=====  =======================  ========  ==================================
ID     name                     default   finding
=====  =======================  ========  ==================================
WL001  bus-overflow             error     input-range assumption overflows
                                          the bus's width/signedness
WL002  dead-output-bits         warning   LUT-driven output bit provably
                                          constant for all inputs
WL003  static-under-assumption  info      live logic provably constant
                                          under the given assumptions
WL004  ccm-contradiction        error     CCM's folded constants disagree
                                          with its declared coefficient
=====  =======================  ========  ==================================
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterator, NamedTuple

from .context import KIND_CONST, KIND_INPUT, AnalysisContext
from .diagnostics import Severity

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .linter import LintConfig

__all__ = ["Finding", "LintRule", "REGISTRY", "rule_table", "rule_table_markdown"]


class Finding(NamedTuple):
    """One raw pass finding, before severity/rule metadata are attached."""

    message: str
    nodes: tuple[int, ...] = ()
    bus: str | None = None


PassFn = Callable[[AnalysisContext, "LintConfig"], Iterator[Finding]]


@dataclass(frozen=True)
class LintRule:
    """A registered rule: stable ID, metadata and its pass function."""

    rule_id: str
    name: str
    default_severity: Severity
    description: str
    fn: PassFn
    needs_sound_structure: bool = True


REGISTRY: dict[str, LintRule] = {}


def _register(
    rule_id: str,
    name: str,
    severity: Severity,
    description: str,
    needs_sound_structure: bool = True,
) -> Callable[[PassFn], PassFn]:
    def deco(fn: PassFn) -> PassFn:
        REGISTRY[rule_id] = LintRule(
            rule_id=rule_id,
            name=name,
            default_severity=severity,
            description=description,
            fn=fn,
            needs_sound_structure=needs_sound_structure,
        )
        return fn

    return deco


def rule_table() -> list[tuple[str, str, str, str]]:
    """(id, name, default severity, description) rows, sorted by ID."""
    return [
        (r.rule_id, r.name, str(r.default_severity), r.description)
        for r in sorted(REGISTRY.values(), key=lambda r: r.rule_id)
    ]


def rule_table_markdown() -> str:
    """The rule catalogue as a GitHub-flavoured markdown table.

    ``docs/static_analysis.md`` embeds this between generated-content
    markers; ``tests/analysis/test_docs_drift.py`` fails when the two
    diverge, so the doc can never silently fall behind the registry.
    """
    lines = [
        "| ID | Name | Default severity | Finding |",
        "|----|------|------------------|---------|",
    ]
    for rule_id, name, severity, description in rule_table():
        desc = " ".join(description.split())
        lines.append(f"| {rule_id} | `{name}` | {severity} | {desc} |")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# NL000 — structural integrity (always runs; other passes gate on it)
# ----------------------------------------------------------------------
@_register(
    "NL000",
    "invalid-structure",
    Severity.ERROR,
    "DAG invariants are broken: out-of-range/self/forward fanin references, "
    "truth tables wider than 2**arity bits, invalid arities or constants, "
    "buses referencing unknown nodes.",
    needs_sound_structure=False,
)
def _check_structure(ctx: AnalysisContext, cfg: "LintConfig") -> Iterator[Finding]:
    for problem in ctx.structure_errors:
        yield Finding(problem)


# ----------------------------------------------------------------------
# NL001 — dangling / unused nodes
# ----------------------------------------------------------------------
@_register(
    "NL001",
    "dangling-node",
    Severity.WARNING,
    "A LUT or constant node drives nothing and is not an output bit.",
)
def _check_dangling(ctx: AnalysisContext, cfg: "LintConfig") -> Iterator[Finding]:
    fanout = ctx.fanout
    for nid in range(ctx.n_nodes):
        if ctx.kinds[nid] == KIND_INPUT:
            continue  # unused inputs are NL011's finding
        if fanout[nid] == 0 and nid not in ctx.output_bits:
            what = "LUT" if ctx.is_lut(nid) else "constant"
            yield Finding(f"{what} node {nid} drives nothing", nodes=(nid,))


# ----------------------------------------------------------------------
# NL002 — dead logic
# ----------------------------------------------------------------------
@_register(
    "NL002",
    "dead-logic",
    Severity.ERROR,
    "A LUT is unreachable from every output bus: it burns area and delay "
    "without contributing to any observable value.",
)
def _check_dead_logic(ctx: AnalysisContext, cfg: "LintConfig") -> Iterator[Finding]:
    live = ctx.live
    dead = tuple(
        nid for nid in range(ctx.n_nodes) if ctx.is_lut(nid) and not live[nid]
    )
    for nid in dead:
        yield Finding(
            f"LUT node {nid} cannot reach any output bus", nodes=(nid,)
        )


# ----------------------------------------------------------------------
# NL003 — multi-use constants
# ----------------------------------------------------------------------
@_register(
    "NL003",
    "duplicate-const",
    Severity.INFO,
    "The same constant value exists as several nodes; one shared node "
    "would do (the builder deduplicates, so this indicates hand editing).",
)
def _check_duplicate_const(ctx: AnalysisContext, cfg: "LintConfig") -> Iterator[Finding]:
    by_value: dict[int, list[int]] = defaultdict(list)
    for nid in range(ctx.n_nodes):
        if ctx.kinds[nid] == KIND_CONST:
            by_value[ctx.const_values[nid]].append(nid)
    for value, nodes in sorted(by_value.items()):
        if len(nodes) > 1:
            yield Finding(
                f"constant {value} exists as {len(nodes)} separate nodes",
                nodes=tuple(nodes),
            )


# ----------------------------------------------------------------------
# NL004 — constant-foldable LUTs (constant truth table)
# ----------------------------------------------------------------------
@_register(
    "NL004",
    "constant-lut",
    Severity.WARNING,
    "A LUT's truth table emits the same value on every row; it should be "
    "a constant node.",
)
def _check_constant_lut(ctx: AnalysisContext, cfg: "LintConfig") -> Iterator[Finding]:
    for nid in range(ctx.n_nodes):
        if not ctx.is_lut(nid):
            continue
        rows = 1 << ctx.arity(nid)
        tt = ctx.tts[nid]
        if tt == 0 or tt == (1 << rows) - 1:
            value = 0 if tt == 0 else 1
            yield Finding(
                f"LUT node {nid} always outputs {value}", nodes=(nid,)
            )


# ----------------------------------------------------------------------
# NL005 — ignored / duplicate fanins
# ----------------------------------------------------------------------
@_register(
    "NL005",
    "ignored-fanin",
    Severity.WARNING,
    "A LUT's output does not depend on one of its fanins, or the same "
    "driver is wired to several fanin positions; the LUT folds to a "
    "smaller arity.",
)
def _check_ignored_fanin(ctx: AnalysisContext, cfg: "LintConfig") -> Iterator[Finding]:
    for nid in range(ctx.n_nodes):
        if not ctx.is_lut(nid):
            continue
        f = ctx.fanins[nid]
        repeated = sorted({x for x, c in Counter(f).items() if c > 1})
        if repeated:
            yield Finding(
                f"LUT node {nid} wires driver(s) {repeated} to multiple "
                "fanin positions",
                nodes=(nid,),
            )
        deps = ctx.lut_dependence(nid)
        ignored = [k for k, used in enumerate(deps) if not used]
        # A constant truth table ignores everything; NL004 already covers it.
        if ignored and any(deps):
            yield Finding(
                f"LUT node {nid} ignores fanin position(s) {ignored} "
                f"(drivers {[f[k] for k in ignored]})",
                nodes=(nid,),
            )


# ----------------------------------------------------------------------
# NL006 — structural duplicate LUTs
# ----------------------------------------------------------------------
@_register(
    "NL006",
    "duplicate-lut",
    Severity.WARNING,
    "Several LUTs compute the same function of the same driver nodes "
    "(canonical fanin-permutation hash); a synthesiser would share one.",
)
def _check_duplicate_lut(ctx: AnalysisContext, cfg: "LintConfig") -> Iterator[Finding]:
    groups: dict[tuple[tuple[int, ...], int], list[int]] = defaultdict(list)
    for nid in range(ctx.n_nodes):
        if ctx.is_lut(nid):
            groups[ctx.canonical_lut_key(nid)].append(nid)
    for (fanins, _tt), nodes in sorted(groups.items()):
        if len(nodes) > 1:
            yield Finding(
                f"{len(nodes)} LUTs compute the same function of drivers "
                f"{list(fanins)}",
                nodes=tuple(nodes),
            )


# ----------------------------------------------------------------------
# NL007 — output-bus overlap
# ----------------------------------------------------------------------
@_register(
    "NL007",
    "output-overlap",
    Severity.ERROR,
    "A logic node is shared between different output buses: two named "
    "output words alias the same net, which is an interface bug.  "
    "Constant nodes are exempt (bits tied to a shared rail are normal), "
    "and repetition *within* one bus is allowed — post-CSE netlists "
    "legitimately tie one net to several bit positions (e.g. a 1-bit "
    "CCM whose product bits are all equal).",
)
def _check_output_overlap(ctx: AnalysisContext, cfg: "LintConfig") -> Iterator[Finding]:
    seen: dict[int, str] = {}
    for bus in sorted(ctx.output_buses):
        bits = [b for b in ctx.output_buses[bus] if ctx.kinds[b] != KIND_CONST]
        for b in bits:
            if b in seen and seen[b] != bus:
                yield Finding(
                    f"node {b} is shared between output buses "
                    f"{seen[b]!r} and {bus!r}",
                    nodes=(b,),
                    bus=bus,
                )
            else:
                seen[b] = bus


# ----------------------------------------------------------------------
# NL008 — output-bus width
# ----------------------------------------------------------------------
@_register(
    "NL008",
    "output-width",
    Severity.ERROR,
    "The netlist declares no outputs, or an output bus has zero width.",
    needs_sound_structure=False,
)
def _check_output_width(ctx: AnalysisContext, cfg: "LintConfig") -> Iterator[Finding]:
    if not ctx.output_buses:
        yield Finding("netlist declares no output buses")
        return
    for bus in sorted(ctx.output_buses):
        if not ctx.output_buses[bus]:
            yield Finding(f"output bus {bus!r} is empty", bus=bus)


# ----------------------------------------------------------------------
# NL009 — fanout budget
# ----------------------------------------------------------------------
@_register(
    "NL009",
    "fanout-budget",
    Severity.WARNING,
    "A LUT or input drives more fanins than the configured budget; such "
    "nets dominate routing delay and distort the delay model.",
)
def _check_fanout(ctx: AnalysisContext, cfg: "LintConfig") -> Iterator[Finding]:
    fanout = ctx.fanout
    for nid in range(ctx.n_nodes):
        if ctx.kinds[nid] == KIND_CONST:
            continue  # constants are tied off for free in fabric
        if fanout[nid] > cfg.max_fanout:
            yield Finding(
                f"node {nid} drives {int(fanout[nid])} fanins "
                f"(budget {cfg.max_fanout})",
                nodes=(nid,),
            )


# ----------------------------------------------------------------------
# NL010 — depth budget
# ----------------------------------------------------------------------
@_register(
    "NL010",
    "depth-budget",
    Severity.WARNING,
    "The netlist's LUT depth exceeds the configured budget; such paths "
    "cannot meet any interesting clock and suggest a degenerate topology.",
)
def _check_depth(ctx: AnalysisContext, cfg: "LintConfig") -> Iterator[Finding]:
    if ctx.depth > cfg.max_depth:
        yield Finding(
            f"LUT depth {ctx.depth} exceeds budget {cfg.max_depth}"
        )


# ----------------------------------------------------------------------
# NL011 — input coverage
# ----------------------------------------------------------------------
@_register(
    "NL011",
    "input-coverage",
    Severity.WARNING,
    "A primary-input bit cannot affect any output: either the interface "
    "is over-wide or logic was dropped during generation.",
)
def _check_input_coverage(ctx: AnalysisContext, cfg: "LintConfig") -> Iterator[Finding]:
    live = ctx.live
    for bus in sorted(ctx.input_buses):
        bits = ctx.input_buses[bus]
        uncovered = [i for i, b in enumerate(bits) if not live[b]]
        if uncovered:
            yield Finding(
                f"input bus {bus!r} bit(s) {uncovered} cannot affect any output",
                nodes=tuple(bits[i] for i in uncovered),
                bus=bus,
            )


# ----------------------------------------------------------------------
# WL001 — assumption vs bus boundary (overflow/truncation)
# ----------------------------------------------------------------------
@_register(
    "WL001",
    "bus-overflow",
    Severity.ERROR,
    "A declared input-range assumption does not fit the bus it names: the "
    "range overflows the bus's width/signedness, or the bus does not "
    "exist, so driving those values would truncate at the word boundary.",
)
def _check_bus_overflow(ctx: AnalysisContext, cfg: "LintConfig") -> Iterator[Finding]:
    from .dataflow import assumption_problems

    if not ctx.assumptions:
        return
    for problem in assumption_problems(ctx, ctx.assumptions):
        yield Finding(problem)


# ----------------------------------------------------------------------
# WL002 — provably-dead output bits
# ----------------------------------------------------------------------
@_register(
    "WL002",
    "dead-output-bits",
    Severity.WARNING,
    "An output-bus bit driven by logic is provably constant for every "
    "input: the cone feeding it is wasted area.  Bits tied to explicit "
    "constant nodes are exempt — that is intentional zero/one padding.",
)
def _check_dead_output_bits(ctx: AnalysisContext, cfg: "LintConfig") -> Iterator[Finding]:
    from .dataflow import BIT_TOP

    # Unconditional run: a bit must be dead for *all* inputs to count.
    flow = ctx.dataflow(None)
    for bus in sorted(ctx.output_buses):
        bits = ctx.output_buses[bus]
        dead = [
            (i, int(flow.bits[b]))
            for i, b in enumerate(bits)
            if ctx.is_lut(b) and int(flow.bits[b]) != BIT_TOP
        ]
        if dead:
            idx = [i for i, _ in dead]
            vals = [v for _, v in dead]
            yield Finding(
                f"output bus {bus!r} bit(s) {idx} are LUT-driven but "
                f"provably stuck at {vals}",
                nodes=tuple(bits[i] for i in idx),
                bus=bus,
            )


# ----------------------------------------------------------------------
# WL003 — logic static under the given assumptions
# ----------------------------------------------------------------------
@_register(
    "WL003",
    "static-under-assumption",
    Severity.INFO,
    "Live LUTs are provably constant under the declared input assumptions "
    "(e.g. a fixed multiplicand freezes part of the array); the frozen "
    "cone cannot glitch and its paths are false for timing purposes.",
)
def _check_static_under_assumption(
    ctx: AnalysisContext, cfg: "LintConfig"
) -> Iterator[Finding]:
    from .dataflow import assumption_problems

    if not ctx.assumptions:
        return  # without assumptions this would duplicate NL004/WL002
    if assumption_problems(ctx, ctx.assumptions):
        return  # WL001 reports the contradiction; nothing sound to add
    flow = ctx.dataflow(ctx.assumptions)
    baseline = {*ctx.dataflow(None).static_luts()}
    frozen = [nid for nid in flow.static_luts() if nid not in baseline]
    if frozen:
        yield Finding(
            f"{len(frozen)} live LUT(s) are provably static under the "
            f"given assumptions",
            nodes=tuple(frozen),
        )


# ----------------------------------------------------------------------
# WL004 — CCM coefficient contradiction
# ----------------------------------------------------------------------
@_register(
    "WL004",
    "ccm-contradiction",
    Severity.ERROR,
    "A constant-coefficient multiplier's folded constants disagree with "
    "its declared coefficient: singleton-input dataflow probes (where "
    "abstract interpretation is exact) yield a product other than "
    "coefficient*x, or the product bus width does not match the "
    "coefficient's magnitude.",
)
def _check_ccm_contradiction(ctx: AnalysisContext, cfg: "LintConfig") -> Iterator[Finding]:
    if ctx.attrs.get("kind") != "ccm":
        return
    coefficient = ctx.attrs.get("coefficient")
    data_bus = str(ctx.attrs.get("data_bus", "x"))
    product_bus = str(ctx.attrs.get("product_bus", "p"))
    if not isinstance(coefficient, int) or isinstance(coefficient, bool):
        yield Finding(
            f"ccm netlist declares no integer coefficient (attrs: "
            f"{sorted(ctx.attrs)})"
        )
        return
    if data_bus not in ctx.input_buses or product_bus not in ctx.output_buses:
        yield Finding(
            f"ccm netlist is missing its declared buses "
            f"{data_bus!r} -> {product_bus!r}"
        )
        return
    w_in = len(ctx.input_buses[data_bus])
    x_max = (1 << w_in) - 1
    expected_width = max(1, (coefficient * x_max).bit_length())
    actual_width = len(ctx.output_buses[product_bus])
    if actual_width != expected_width:
        yield Finding(
            f"product bus {product_bus!r} is {actual_width} bits but "
            f"coefficient {coefficient} over {w_in}-bit data needs "
            f"{expected_width}",
            bus=product_bus,
        )
    # Singleton probes: with every input bit pinned the abstract
    # interpretation degenerates to exact evaluation, so any mismatch is
    # a real functional contradiction, not over-approximation noise.
    for x in (1, 1 << (w_in - 1), x_max):
        flow = ctx.dataflow({data_bus: x})
        got = flow.constant_value(product_bus)
        want = coefficient * x
        rep = (1 << actual_width) - 1
        if got is None or got != (want & rep if actual_width < want.bit_length() else want):
            yield Finding(
                f"folded constants contradict coefficient {coefficient}: "
                f"{data_bus}={x} yields {got}, expected {want}",
                bus=product_bus,
            )
            return  # one witness is enough; later probes add noise
