"""Word-level dataflow analysis: a fixed-point abstract interpreter.

Two cooperating abstract domains run over the LUT DAG:

* **known-bits** — every net carries one of three codes: provably 0,
  provably 1, or unknown (``⊤``).  LUT nodes transfer known fanin bits
  through their truth tables by enumerating the (at most 16) rows
  consistent with the known bits; the output is known exactly when all
  consistent rows agree.
* **integer ranges** — named buses carry ``[lo, hi]`` intervals.  Input
  assumptions enter the bit lattice through the shared-prefix rule (all
  values in a contiguous two's-complement pattern range agree on every
  bit position above ``bit_length(lo XOR hi)``); bus ranges are read
  back out of the bit lattice with per-bit weights (the sign bit of a
  signed bus weighs ``-2**(w-1)``).

Soundness contract: a bit reported as known 0/1 holds for *every*
concrete input consistent with the assumptions, and a reported bus
range contains every reachable bus value.  The converse is not promised
— the analysis over-approximates (a ``⊤`` bit may still be constant in
reality).  The timing hooks (:attr:`DataflowResult.node_static`,
:attr:`DataflowResult.edge_active`) expose only node-level constancy,
which is the strongest pruning that stays sound against the
transition-settle model in :mod:`repro.timing.simulator`: a node whose
value provably never changes settles at t = 0 under any stimulus, while
per-row truth-table sensitisation arguments do not survive that model's
"max over changed fanins" settle rule and are deliberately not used.

The public entry point is :func:`analyze_dataflow`; linting and STA go
through :meth:`repro.analysis.context.AnalysisContext.dataflow`, which
memoises runs per assumption set.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Iterator, Mapping, Sequence, Union

import numpy as np

from ..errors import AnalysisError
from ..netlist.core import MAX_LUT_ARITY, CompiledNetlist, Netlist, bits_from_ints
from .context import KIND_CONST, AnalysisContext

__all__ = [
    "BIT_ZERO",
    "BIT_ONE",
    "BIT_TOP",
    "IntRange",
    "RangeLike",
    "DataflowResult",
    "analyze_dataflow",
    "analyze_context",
    "normalize_assumptions",
    "assumption_problems",
    "cache_key",
    "ProbeReport",
    "probe_dataflow",
]

# Known-bits lattice codes (uint8 in the per-node array).
BIT_ZERO: int = 0
BIT_ONE: int = 1
BIT_TOP: int = 2


@dataclass(frozen=True)
class IntRange:
    """A closed integer interval ``[lo, hi]`` (Python ints, arbitrary width)."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise AnalysisError(f"empty range [{self.lo}, {self.hi}]")

    @property
    def singleton(self) -> bool:
        return self.lo == self.hi

    @property
    def width(self) -> int:
        """Number of values covered."""
        return self.hi - self.lo + 1

    def __contains__(self, value: object) -> bool:
        return isinstance(value, int) and self.lo <= value <= self.hi

    def intersect(self, other: "IntRange") -> "IntRange | None":
        lo, hi = max(self.lo, other.lo), min(self.hi, other.hi)
        return IntRange(lo, hi) if lo <= hi else None

    def as_tuple(self) -> tuple[int, int]:
        return (self.lo, self.hi)


RangeLike = Union[int, tuple[int, int], IntRange]


def _coerce_range(value: RangeLike, bus: str) -> IntRange:
    if isinstance(value, IntRange):
        return value
    if isinstance(value, bool):  # bool is an int; reject explicitly
        raise AnalysisError(f"assumption for bus {bus!r} must be int or (lo, hi)")
    if isinstance(value, int):
        return IntRange(int(value), int(value))
    if isinstance(value, (tuple, list)) and len(value) == 2:
        lo, hi = value
        if isinstance(lo, int) and isinstance(hi, int):
            if lo > hi:
                raise AnalysisError(
                    f"assumption for bus {bus!r}: empty range [{lo}, {hi}]"
                )
            return IntRange(int(lo), int(hi))
    raise AnalysisError(
        f"assumption for bus {bus!r} must be an int, an (lo, hi) tuple or an "
        f"IntRange, got {value!r}"
    )


def representable_range(width: int, signed: bool) -> IntRange:
    """The value interval a ``width``-bit (un)signed bus can carry."""
    if width <= 0:
        return IntRange(0, 0)
    if signed:
        return IntRange(-(1 << (width - 1)), (1 << (width - 1)) - 1)
    return IntRange(0, (1 << width) - 1)


def assumption_problems(
    ctx: AnalysisContext, assumptions: Mapping[str, RangeLike]
) -> list[str]:
    """Describe assumption/interface contradictions (for rule WL001).

    Returns human-readable problems: unknown bus names and ranges that
    overflow the bus's representable interval.  An empty list means
    :func:`normalize_assumptions` will accept the assumptions unchanged.
    """
    problems: list[str] = []
    for bus in sorted(assumptions):
        if bus not in ctx.input_buses:
            problems.append(
                f"assumption names unknown input bus {bus!r} "
                f"(inputs: {sorted(ctx.input_buses)})"
            )
            continue
        rng = _coerce_range(assumptions[bus], bus)
        width = len(ctx.input_buses[bus])
        signed = ctx.bus_signed(bus)
        rep = representable_range(width, signed)
        if rng.lo < rep.lo or rng.hi > rep.hi:
            kind = "signed" if signed else "unsigned"
            problems.append(
                f"assumption [{rng.lo}, {rng.hi}] overflows {kind} "
                f"{width}-bit input bus {bus!r} "
                f"(representable [{rep.lo}, {rep.hi}])"
            )
    return problems


def normalize_assumptions(
    ctx: AnalysisContext,
    assumptions: Mapping[str, RangeLike] | None,
    clamp: bool = False,
) -> dict[str, IntRange]:
    """Validate assumptions against the context's input buses.

    With ``clamp=True``, out-of-bounds ranges are intersected with the
    bus's representable interval (dropped entirely when disjoint, which
    is the sound over-approximation) instead of raising; unknown buses
    always raise.
    """
    if not assumptions:
        return {}
    out: dict[str, IntRange] = {}
    for bus in sorted(assumptions):
        if bus not in ctx.input_buses:
            raise AnalysisError(
                f"assumption names unknown input bus {bus!r} "
                f"(inputs: {sorted(ctx.input_buses)})"
            )
        rng = _coerce_range(assumptions[bus], bus)
        rep = representable_range(len(ctx.input_buses[bus]), ctx.bus_signed(bus))
        if rng.lo < rep.lo or rng.hi > rep.hi:
            if not clamp:
                raise AnalysisError(
                    f"assumption [{rng.lo}, {rng.hi}] does not fit bus "
                    f"{bus!r} (representable [{rep.lo}, {rep.hi}]); "
                    "fix the assumption or pass clamp=True"
                )
            clamped = rng.intersect(rep)
            if clamped is None:
                continue  # disjoint: no usable constraint, leave bus at ⊤
            rng = clamped
        out[bus] = rng
    return out


def cache_key(
    assumptions: Mapping[str, RangeLike] | None,
) -> tuple[tuple[str, int, int], ...]:
    """Canonical hashable key for one assumption set."""
    if not assumptions:
        return ()
    items: list[tuple[str, int, int]] = []
    for bus in sorted(assumptions):
        rng = _coerce_range(assumptions[bus], bus)
        items.append((bus, rng.lo, rng.hi))
    return tuple(items)


# ----------------------------------------------------------------------
# lattice conversions
# ----------------------------------------------------------------------
def range_to_bits(rng: IntRange, width: int, signed: bool) -> list[int]:
    """Known-bits codes (LSB first) sound for every value in ``rng``.

    Uses the shared-prefix rule on the two's-complement bit patterns:
    for a contiguous pattern interval ``[plo, phi]`` every member agrees
    with ``plo`` on all bit positions at or above
    ``bit_length(plo XOR phi)``.  A signed range straddling zero has no
    contiguous pattern interval (the sign bit splits it), so every bit
    is ``⊤``.
    """
    if width <= 0:
        return []
    if signed and rng.lo < 0 <= rng.hi:
        return [BIT_TOP] * width
    offset = (1 << width) if rng.lo < 0 else 0
    plo, phi = rng.lo + offset, rng.hi + offset
    known_from = (plo ^ phi).bit_length()
    codes: list[int] = []
    for i in range(width):
        if i >= known_from:
            codes.append((plo >> i) & 1)
        else:
            codes.append(BIT_TOP)
    return codes


def bits_to_range(codes: Sequence[int], signed: bool) -> IntRange:
    """Tightest interval containing every value consistent with ``codes``."""
    width = len(codes)
    if width == 0:
        return IntRange(0, 0)
    lo = 0
    hi = 0
    for i, code in enumerate(codes):
        weight = -(1 << (width - 1)) if (signed and i == width - 1) else (1 << i)
        if code == BIT_ONE:
            lo += weight
            hi += weight
        elif code == BIT_TOP:
            lo += min(0, weight)
            hi += max(0, weight)
    return IntRange(lo, hi)


def _lut_transfer(tt: int, fanin_codes: Sequence[int]) -> int:
    """Abstract LUT output over known fanin bits.

    Enumerates the truth-table rows consistent with the known bits; the
    output is known iff all consistent rows agree.  At least one row is
    always consistent, so the result is well-defined.
    """
    arity = len(fanin_codes)
    seen: int = -1
    for row in range(1 << arity):
        consistent = True
        for k in range(arity):
            code = fanin_codes[k]
            if code != BIT_TOP and code != ((row >> k) & 1):
                consistent = False
                break
        if not consistent:
            continue
        value = (tt >> row) & 1
        if seen < 0:
            seen = value
        elif seen != value:
            return BIT_TOP
    return BIT_ONE if seen == 1 else BIT_ZERO


# ----------------------------------------------------------------------
# the interpreter
# ----------------------------------------------------------------------
@dataclass
class DataflowResult:
    """Outcome of one fixed-point run over a netlist DAG.

    Attributes
    ----------
    bits:
        ``(n_nodes,)`` uint8 array of known-bits codes
        (``BIT_ZERO`` / ``BIT_ONE`` / ``BIT_TOP``).
    assumptions:
        The normalised input-range assumptions the run used.
    iterations:
        Forward passes until the fixed point (2 for any DAG: one to
        compute, one to confirm stability).
    """

    ctx: AnalysisContext
    assumptions: dict[str, IntRange]
    bits: np.ndarray
    iterations: int

    # -- timing hooks ---------------------------------------------------
    @cached_property
    def node_static(self) -> np.ndarray:
        """``(n,)`` bool: node value is provably constant (never toggles)."""
        static: np.ndarray = self.bits != BIT_TOP
        return static

    @cached_property
    def edge_active(self) -> np.ndarray:
        """``(n, 4)`` bool: LUT fanin edge can carry a transition.

        An edge is inactive when its driver is provably constant (or the
        position is padding past the LUT's arity).  This is node-level
        pruning only — see the module docstring for why finer
        truth-table sensitisation would be unsound against the
        transition-settle timing model.
        """
        ctx = self.ctx
        active = np.zeros((ctx.n_nodes, MAX_LUT_ARITY), dtype=bool)
        static = self.node_static
        for nid in range(ctx.n_nodes):
            if not ctx.is_lut(nid):
                continue
            for k, f in enumerate(ctx.fanins[nid]):
                active[nid, k] = not static[f]
        return active

    # -- word-level queries ---------------------------------------------
    def node_code(self, nid: int) -> int:
        return int(self.bits[nid])

    def bus_codes(self, name: str) -> list[int]:
        """Known-bits codes of a named bus, LSB first."""
        buses = (
            self.ctx.input_buses if name in self.ctx.input_buses else self.ctx.output_buses
        )
        if name not in buses:
            raise AnalysisError(f"unknown bus {name!r}")
        return [int(self.bits[b]) for b in buses[name]]

    def bus_range(self, name: str) -> IntRange:
        """Sound value interval for a named (input or output) bus."""
        return bits_to_range(self.bus_codes(name), self.ctx.bus_signed(name))

    @property
    def output_ranges(self) -> dict[str, IntRange]:
        return {name: self.bus_range(name) for name in sorted(self.ctx.output_buses)}

    def known_output_bits(self, name: str) -> list[tuple[int, int]]:
        """``(bit index, constant value)`` pairs provably fixed on a bus."""
        codes = self.bus_codes(name)
        return [(i, c) for i, c in enumerate(codes) if c != BIT_TOP]

    def static_luts(self) -> list[int]:
        """Live LUT nodes whose output is provably constant."""
        live = self.ctx.live
        static = self.node_static
        return [
            nid
            for nid in range(self.ctx.n_nodes)
            if self.ctx.is_lut(nid) and static[nid] and live[nid]
        ]

    def constant_value(self, name: str) -> int | None:
        """The bus's exact value when every bit is known, else ``None``."""
        rng = self.bus_range(name)
        return rng.lo if rng.singleton else None

    def as_dict(self) -> dict[str, object]:
        n_static_luts = len(self.static_luts())
        return {
            "netlist": self.ctx.name,
            "n_nodes": self.ctx.n_nodes,
            "iterations": self.iterations,
            "assumptions": {k: v.as_tuple() for k, v in self.assumptions.items()},
            "n_known_bits": int((self.bits != BIT_TOP).sum()),
            "n_static_live_luts": n_static_luts,
            "output_ranges": {
                k: v.as_tuple() for k, v in self.output_ranges.items()
            },
            "known_output_bits": {
                name: self.known_output_bits(name)
                for name in sorted(self.ctx.output_buses)
            },
        }


def _iter_lut_ids(ctx: AnalysisContext) -> Iterator[int]:
    for nid in range(ctx.n_nodes):
        if ctx.is_lut(nid):
            yield nid


def analyze_context(
    ctx: AnalysisContext,
    assumptions: Mapping[str, RangeLike] | None = None,
    clamp: bool = False,
) -> DataflowResult:
    """Run the abstract interpretation over a prepared context."""
    if not ctx.sound:
        raise AnalysisError(
            f"netlist {ctx.name!r} is structurally unsound; fix NL000 "
            f"findings before dataflow analysis: {ctx.structure_errors[0]}"
        )
    normalized = normalize_assumptions(ctx, assumptions, clamp=clamp)

    bits = np.full(ctx.n_nodes, BIT_TOP, dtype=np.uint8)
    for nid in range(ctx.n_nodes):
        if ctx.kinds[nid] == KIND_CONST:
            bits[nid] = BIT_ONE if ctx.const_values[nid] else BIT_ZERO
    for bus, rng in normalized.items():
        ids = ctx.input_buses[bus]
        codes = range_to_bits(rng, len(ids), ctx.bus_signed(bus))
        for b, code in zip(ids, codes):
            # An input node can sit on several buses; meet the constraints
            # (conflicts cannot arise from representable ranges on one bus,
            # but a shared node across buses takes the tighter fact).
            if code != BIT_TOP:
                bits[b] = code

    # Fixed-point forward iteration.  Fanins precede consumers (checked
    # by the structural gate above), so the first pass already computes
    # the fixpoint and the second confirms stability; the loop shape is
    # kept so the invariant is enforced, not assumed.
    iterations = 0
    changed = True
    while changed:
        changed = False
        iterations += 1
        for nid in _iter_lut_ids(ctx):
            fanin_codes = [int(bits[f]) for f in ctx.fanins[nid]]
            new = _lut_transfer(ctx.tts[nid], fanin_codes)
            if new != bits[nid]:
                bits[nid] = new
                changed = True
        if iterations > ctx.n_nodes + 1:  # pragma: no cover - defensive
            raise AnalysisError(
                f"dataflow on {ctx.name!r} failed to reach a fixed point"
            )

    return DataflowResult(
        ctx=ctx, assumptions=normalized, bits=bits, iterations=iterations
    )


def analyze_dataflow(
    netlist: Netlist | CompiledNetlist,
    assumptions: Mapping[str, RangeLike] | None = None,
    clamp: bool = False,
) -> DataflowResult:
    """Abstractly interpret a netlist under optional input assumptions.

    Parameters
    ----------
    netlist:
        Builder or compiled form.
    assumptions:
        Bus name -> exact value (``int``), ``(lo, hi)`` tuple or
        :class:`IntRange`.  Only input buses may be constrained.
    clamp:
        Intersect out-of-bounds assumptions with the bus's representable
        interval instead of raising.

    Returns
    -------
    DataflowResult
        Known-bits per node, per-bus ranges, and the node-constancy
        masks consumed by sensitisation-aware STA.
    """
    ctx = AnalysisContext.build(netlist, assumptions=assumptions)
    return analyze_context(ctx, assumptions, clamp=clamp)


# ----------------------------------------------------------------------
# concrete sampling probe
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ProbeReport:
    """Concrete cross-check of a :class:`DataflowResult`.

    Attributes
    ----------
    n_samples:
        Concrete input vectors drawn (within the run's assumptions).
    sound:
        True when no abstract fact was contradicted by any sample.
    violations:
        ``(node id, claimed code, observed value)`` triples where a node
        the analysis called provably 0/1 read the opposite value on some
        sample.  Non-empty means the abstract interpreter is broken.
    n_top_constant:
        Nodes the analysis left at ``⊤`` that never toggled across the
        sample — a (non-binding) witness of over-approximation, useful
        when tuning the transfer functions.
    """

    netlist: str
    n_samples: int
    seed: int
    sound: bool
    violations: tuple[tuple[int, int, int], ...]
    n_top_constant: int

    def require(self) -> "ProbeReport":
        if not self.sound:
            raise AnalysisError(
                f"dataflow probe on {self.netlist!r} found "
                f"{len(self.violations)} contradicted facts; first: "
                f"node {self.violations[0][0]} claimed "
                f"{self.violations[0][1]} observed {self.violations[0][2]}"
            )
        return self


def probe_dataflow(
    netlist: Netlist | CompiledNetlist,
    result: DataflowResult,
    n_samples: int = 256,
    seed: int = 0,
) -> ProbeReport:
    """Cross-check abstract facts against concrete kernel evaluations.

    Draws ``n_samples`` random input vectors uniformly within the
    result's assumption ranges and evaluates the full node-value plane
    through the bit-sliced kernel
    (:func:`repro.kernels.stream_values` — one packed pass covers the
    whole sample).  Every bit the analysis claims provably 0/1 must read
    that value on every sample; any contradiction is a soundness bug in
    the abstract interpreter, reported per node.

    ``netlist`` must be the netlist ``result`` was computed on (node ids
    are matched positionally).
    """
    from ..kernels.execute import stream_values

    cn = netlist.compile() if isinstance(netlist, Netlist) else netlist
    ctx = result.ctx
    if cn.n_nodes != ctx.n_nodes:
        raise AnalysisError(
            f"netlist {cn.name!r} has {cn.n_nodes} nodes but the dataflow "
            f"result describes {ctx.n_nodes}"
        )
    if n_samples < 1:
        raise AnalysisError("probe needs at least one sample")

    rng = np.random.default_rng(seed)
    inputs: dict[str, np.ndarray] = {}
    for name, ids in cn.input_buses.items():
        width = int(ids.shape[0])
        signed = ctx.bus_signed(name)
        rng_bounds = result.assumptions.get(
            name, representable_range(width, signed)
        )
        draws = rng.integers(
            rng_bounds.lo, rng_bounds.hi + 1, size=n_samples, dtype=np.int64
        )
        inputs[name] = bits_from_ints(draws, width)

    plane = stream_values(cn, inputs)  # (n_nodes, n_samples) uint8

    claimed = result.bits
    violations: list[tuple[int, int, int]] = []
    for code in (BIT_ZERO, BIT_ONE):
        rows = np.nonzero(claimed == code)[0]
        if rows.size == 0:
            continue
        disagree = plane[rows] != np.uint8(code)
        bad_rows = np.nonzero(disagree.any(axis=1))[0]
        for r in bad_rows:
            nid = int(rows[r])
            observed = int(plane[nid, int(np.nonzero(disagree[r])[0][0])])
            violations.append((nid, code, observed))

    top_rows = np.nonzero(claimed == BIT_TOP)[0]
    n_top_constant = 0
    if top_rows.size:
        top_plane = plane[top_rows]
        constant = (top_plane == top_plane[:, :1]).all(axis=1)
        n_top_constant = int(constant.sum())

    return ProbeReport(
        netlist=cn.name,
        n_samples=int(n_samples),
        seed=int(seed),
        sound=not violations,
        violations=tuple(violations),
        n_top_constant=n_top_constant,
    )

