"""Sensitisation-aware STA: false-path pruning from dataflow facts.

Plain STA (:mod:`repro.timing.sta`) maxes arrival times over *every*
structural path.  Under a fixed multiplicand — the paper's operating
point: one operand of the characterised multiplier is the coefficient —
whole cones of the array are provably constant, their paths can never
launch a transition, and the worst-case bound is pessimistic.  This
module intersects the known-bits reachability computed by
:mod:`repro.analysis.dataflow` with arrival times:

* a provably-constant node settles at t = 0 (it never toggles — the same
  rule the transition simulator applies to unchanged nodes);
* a fanin edge driven by a provably-constant net is excluded from the
  arrival max.

Only node-level constancy is used; per-row truth-table sensitisation is
deliberately not (see the dataflow module docstring for the soundness
argument against the transition-settle model).

The per-(coefficient, output-bit) ``min_period_ns`` surface this yields
is a *static companion* to the characterised error model E(m, f): the
paper's prior (Sec. V, eq. 6) downweights error-prone coefficients from
measurements; :meth:`CoefficientTimingProfile.variance_proxy_at` derives
the same shape analytically (worst-case squared product error from bits
whose paths miss the clock), and
:meth:`repro.models.prior.CoefficientPrior.from_static_profile` turns it
into a prior without any hardware sweep.  :func:`agreement_report`
quantifies how the static surface relates to characterisation data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from ..errors import AnalysisError
from .context import AnalysisContext
from .dataflow import DataflowResult, RangeLike, analyze_context

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..models.error_model import ErrorModel
    from ..synthesis.flow import PlacedDesign
    from ..timing.sta import StaticTimingResult

__all__ = [
    "CoefficientTimingProfile",
    "sensitized_sta",
    "coefficient_timing_profile",
    "agreement_report",
]


def _dataflow_for(placed: "PlacedDesign", assumptions: Mapping[str, RangeLike] | None) -> DataflowResult:
    ctx = AnalysisContext.build(placed.netlist, assumptions=assumptions)
    return analyze_context(ctx, assumptions)


def sensitized_sta(
    placed: "PlacedDesign",
    assumptions: Mapping[str, RangeLike] | None = None,
) -> "StaticTimingResult":
    """Device-true STA with false paths pruned under input assumptions.

    With no assumptions this still prunes cones that are constant for
    structural reasons (folded constants); with assumptions (e.g. the
    multiplicand bus pinned) it additionally discards every path through
    logic the pinned value freezes.  The result is always
    ``<=`` the plain :meth:`PlacedDesign.device_sta` bound per output
    bit, and remains a sound error-free bound for stimuli drawn from the
    assumed input set.
    """
    from ..timing.sta import static_timing

    flow = _dataflow_for(placed, assumptions)
    return static_timing(
        placed.netlist,
        placed.node_delay,
        placed.edge_delay,
        setup_ns=placed.setup_ns,
        edge_active=flow.edge_active,
        node_static=flow.node_static,
    )


@dataclass(frozen=True)
class CoefficientTimingProfile:
    """Per-(coefficient, output-bit) static timing surface of one placement.

    Attributes
    ----------
    multiplicands:
        Coefficient magnitudes analysed, shape ``(M,)``.
    min_period_ns:
        Sensitisation-aware minimum error-free clock period per
        coefficient per output bit, shape ``(M, width)``; includes the
        capture-register setup time.
    worst_case_period_ns:
        Plain (coefficient-independent) STA bound per output bit,
        shape ``(width,)``.
    """

    netlist: str
    coeff_bus: str
    out_bus: str
    multiplicands: np.ndarray
    min_period_ns: np.ndarray
    worst_case_period_ns: np.ndarray
    setup_ns: float

    @property
    def width(self) -> int:
        return int(self.worst_case_period_ns.shape[0])

    def row(self, m: int) -> np.ndarray:
        """``min_period_ns`` over output bits for one coefficient."""
        idx = int(np.searchsorted(self.multiplicands, m))
        if idx >= self.multiplicands.shape[0] or self.multiplicands[idx] != m:
            raise AnalysisError(f"multiplicand {m} not in the analysed set")
        return self.min_period_ns[idx]

    def static_fmax_mhz(self) -> np.ndarray:
        """Per-coefficient error-free Fmax (MHz), shape ``(M,)``.

        The slowest still-sensitisable output bit governs; a coefficient
        that freezes the whole product (m=0) is unbounded and reported
        as ``inf``.
        """
        worst = self.min_period_ns.max(axis=1)
        with np.errstate(divide="ignore"):
            return np.where(worst > 0, 1000.0 / worst, np.inf)

    def variance_proxy_at(self, freq_mhz: float) -> np.ndarray:
        """Worst-case squared product error per coefficient, shape ``(M,)``.

        A product bit whose ``min_period_ns`` exceeds the clock period
        can latch stale data; if it does, the integer product is wrong
        by ``2**bit``, contributing ``4**bit`` squared error.  Summing
        over all late bits gives a static stand-in for the characterised
        variance E(m, f) — same units (integer-product squared error),
        same monotonicity in frequency, no hardware sweep.
        """
        if freq_mhz <= 0:
            raise AnalysisError("frequency must be positive")
        period = 1000.0 / float(freq_mhz)
        late = self.min_period_ns > period  # (M, width)
        weights = np.power(4.0, np.arange(self.width, dtype=np.float64))
        return late @ weights

    def as_dict(self) -> dict[str, object]:
        return {
            "netlist": self.netlist,
            "coeff_bus": self.coeff_bus,
            "out_bus": self.out_bus,
            "setup_ns": self.setup_ns,
            "multiplicands": [int(m) for m in self.multiplicands],
            "min_period_ns": self.min_period_ns.tolist(),
            "worst_case_period_ns": self.worst_case_period_ns.tolist(),
            "static_fmax_mhz": [
                None if not np.isfinite(f) else float(f)
                for f in self.static_fmax_mhz()
            ],
        }


def coefficient_timing_profile(
    placed: "PlacedDesign",
    multiplicands: Sequence[int] | np.ndarray | None = None,
    coeff_bus: str = "b",
    out_bus: str = "p",
) -> CoefficientTimingProfile:
    """Sweep sensitisation-aware STA over coefficient values.

    For every ``m`` the coefficient bus is pinned to ``m`` and the
    output bus's per-bit arrival is recomputed with the frozen cones
    pruned — the static analogue of the characterisation sweep, which
    fixes the same bus per run (:mod:`repro.characterization.harness`).

    Parameters
    ----------
    multiplicands:
        Coefficient values; defaults to the full range of the bus.
    """
    cn = placed.netlist
    if coeff_bus not in cn.input_buses:
        raise AnalysisError(
            f"netlist {cn.name!r} has no input bus {coeff_bus!r} "
            f"(inputs: {sorted(cn.input_buses)})"
        )
    if out_bus not in cn.output_buses:
        raise AnalysisError(
            f"netlist {cn.name!r} has no output bus {out_bus!r} "
            f"(outputs: {sorted(cn.output_buses)})"
        )
    if multiplicands is None:
        w = int(cn.input_buses[coeff_bus].shape[0])
        multiplicands = np.arange(1 << w, dtype=np.int64)
    mags = np.asarray(multiplicands, dtype=np.int64)
    if mags.ndim != 1 or mags.shape[0] == 0:
        raise AnalysisError("multiplicands must be a non-empty 1-D sequence")
    if np.any(np.diff(mags) <= 0):
        raise AnalysisError("multiplicands must be strictly ascending")

    worst = placed.device_sta()
    worst_period = worst.output_arrival[out_bus] + worst.setup_ns

    rows = np.empty((mags.shape[0], worst_period.shape[0]), dtype=np.float64)
    for i, m in enumerate(mags):
        sta = sensitized_sta(placed, {coeff_bus: int(m)})
        rows[i] = sta.output_arrival[out_bus] + sta.setup_ns
    return CoefficientTimingProfile(
        netlist=cn.name,
        coeff_bus=coeff_bus,
        out_bus=out_bus,
        multiplicands=mags,
        min_period_ns=rows,
        worst_case_period_ns=worst_period,
        setup_ns=float(worst.setup_ns),
    )


def agreement_report(
    profile: CoefficientTimingProfile,
    model: "ErrorModel",
    guard_ns: float = 0.045,
) -> dict[str, object]:
    """Compare the static timing surface against characterised E(m, f).

    For every characterised ``(m, f)`` cell shared with the profile, the
    static surface predicts *error-free* when the clock period exceeds
    the coefficient's worst ``min_period_ns`` by at least ``guard_ns``
    (clock jitter erodes the capture window by up to its truncation
    bound — default 3 sigma of the stock 15 ps jitter model — so the
    deterministic STA bound needs that margin before it promises clean
    capture).  A *violation* is a cell the static analysis clears but
    characterisation measured errors in: soundness failures, zero in a
    correct implementation.  Cells the static analysis flags as risky
    but measure clean are expected — STA is worst-case over data while
    the measured stimulus is benign-or-not per sample.

    Returns a JSON-able dict with the violation count, per-coefficient
    static vs measured error-free Fmax, and tightness statistics
    (coefficients whose static bound beats the worst-case bound).
    """
    if guard_ns < 0:
        raise AnalysisError("guard_ns must be non-negative")
    shared = [
        (i, int(np.searchsorted(model.multiplicands, m)))
        for i, m in enumerate(profile.multiplicands)
        if np.any(model.multiplicands == m)
    ]
    if not shared:
        raise AnalysisError(
            "no multiplicand is shared between the profile and the model"
        )
    periods = 1000.0 / model.freqs_mhz  # (F,)
    static_worst = profile.min_period_ns.max(axis=1)  # (M,)

    n_cells = 0
    n_static_clean = 0
    violations: list[dict[str, float | int]] = []
    per_coefficient: list[dict[str, object]] = []
    for pi, mi in shared:
        m = int(profile.multiplicands[pi])
        measured = model.variance[mi]  # (F,)
        clean_mask = periods >= static_worst[pi] + guard_ns
        n_cells += periods.shape[0]
        n_static_clean += int(clean_mask.sum())
        bad = clean_mask & (measured > 0)
        for fi in np.nonzero(bad)[0]:
            violations.append(
                {
                    "m": m,
                    "freq_mhz": float(model.freqs_mhz[fi]),
                    "measured_variance": float(measured[fi]),
                    "static_min_period_ns": float(static_worst[pi]),
                }
            )
        static_fmax = (
            float(1000.0 / static_worst[pi]) if static_worst[pi] > 0 else None
        )
        per_coefficient.append(
            {
                "m": m,
                "static_fmax_mhz": static_fmax,
                "measured_error_free_fmax_mhz": model.error_free_fmax(m),
                "tighter_than_worst_case": bool(
                    static_worst[pi] < profile.worst_case_period_ns.max()
                ),
            }
        )

    tighter = [c for c in per_coefficient if c["tighter_than_worst_case"]]
    return {
        "netlist": profile.netlist,
        "guard_ns": float(guard_ns),
        "n_coefficients": len(shared),
        "n_cells": n_cells,
        "n_static_clean_cells": n_static_clean,
        "n_violations": len(violations),
        "violations": violations,
        "consistent": not violations,
        "n_tighter_than_worst_case": len(tighter),
        "per_coefficient": per_coefficient,
    }
