"""Netlist static analysis: a pass-based linter over netlist DAGs.

The subsystem guards the characterisation/optimisation pipeline against
structurally unsound generated netlists (paper Fig. 2: every design the
framework characterises or places passes through here first).  It offers:

* :func:`lint_netlist` — run all passes, get a typed
  :class:`LintReport` of severity-ranked :class:`Diagnostic` findings;
* :func:`check_netlist` — the gate form: raise
  :class:`~repro.errors.LintError` on findings at/above the threshold;
* :class:`LintConfig` — rule suppression, severity overrides, budgets;
* the rule registry in :mod:`repro.analysis.passes` (stable ``NLxxx``
  IDs, catalogued in ``docs/static_analysis.md``).

The gate is wired into :meth:`repro.synthesis.flow.SynthesisFlow.run`
(on by default) and :func:`repro.netlist.generators.generate` (behind
``repro.config.AnalysisSettings.lint_generated``), and is exposed on the
command line as ``repro lint``.

On top of the structural layer sits the word-level semantic layer:

* :mod:`repro.analysis.dataflow` — known-bits/range abstract
  interpretation (:func:`analyze_dataflow`), feeding the ``WL0xx`` lint
  rules;
* :mod:`repro.analysis.equivalence` — :func:`prove_multiplier`
  certificates against golden integer arithmetic;
* :mod:`repro.analysis.sensitization` — false-path-aware STA and the
  per-coefficient timing profiles consumed by
  :meth:`repro.models.prior.CoefficientPrior.from_static_profile`;

exposed on the command line as ``repro analyze``.

Orthogonal to both: :mod:`repro.analysis.sanitizer` audits the repo's
*own Python source* (not netlists) for determinism and concurrency
hazards — the ``DTnnn`` rules behind ``repro audit`` — and
:mod:`repro.analysis.portability` extends the same machinery with the
``DXnnn`` location-transparency rules and frozen wire-schema contracts
(``repro audit --family dx`` / ``--contracts``).
"""

from .context import AnalysisContext
from .dataflow import (
    BIT_ONE,
    BIT_TOP,
    BIT_ZERO,
    DataflowResult,
    IntRange,
    ProbeReport,
    analyze_dataflow,
    probe_dataflow,
)
from .diagnostics import Diagnostic, LintReport, Severity
from .equivalence import (
    EquivalenceCertificate,
    prove_multiplier,
    prove_multiplier_family,
)
from .linter import LintConfig, LintWarning, check_netlist, lint_netlist
from .passes import REGISTRY, Finding, LintRule, rule_table, rule_table_markdown
from .portability import (
    DX_REGISTRY,
    DXRule,
    audit_portability,
    dx_rule_table_markdown,
    verify_contracts,
    wire_contracts_markdown,
)
from .sanitizer import (
    AuditFinding,
    AuditReport,
    DT_REGISTRY,
    DTRule,
    ModuleIndex,
    audit_paths,
    build_module_index,
    dt_rule_table_markdown,
    effect_catalogue_markdown,
)
from .sensitization import (
    CoefficientTimingProfile,
    agreement_report,
    coefficient_timing_profile,
    sensitized_sta,
)

__all__ = [
    "AnalysisContext",
    "Diagnostic",
    "LintReport",
    "Severity",
    "LintConfig",
    "LintWarning",
    "check_netlist",
    "lint_netlist",
    "REGISTRY",
    "Finding",
    "LintRule",
    "rule_table",
    "rule_table_markdown",
    "BIT_ZERO",
    "BIT_ONE",
    "BIT_TOP",
    "IntRange",
    "DataflowResult",
    "analyze_dataflow",
    "ProbeReport",
    "probe_dataflow",
    "EquivalenceCertificate",
    "prove_multiplier",
    "prove_multiplier_family",
    "CoefficientTimingProfile",
    "sensitized_sta",
    "coefficient_timing_profile",
    "agreement_report",
    "AuditFinding",
    "AuditReport",
    "DTRule",
    "DT_REGISTRY",
    "DXRule",
    "DX_REGISTRY",
    "ModuleIndex",
    "audit_paths",
    "audit_portability",
    "build_module_index",
    "dt_rule_table_markdown",
    "dx_rule_table_markdown",
    "effect_catalogue_markdown",
    "verify_contracts",
    "wire_contracts_markdown",
]
