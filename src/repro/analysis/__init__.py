"""Netlist static analysis: a pass-based linter over netlist DAGs.

The subsystem guards the characterisation/optimisation pipeline against
structurally unsound generated netlists (paper Fig. 2: every design the
framework characterises or places passes through here first).  It offers:

* :func:`lint_netlist` — run all passes, get a typed
  :class:`LintReport` of severity-ranked :class:`Diagnostic` findings;
* :func:`check_netlist` — the gate form: raise
  :class:`~repro.errors.LintError` on findings at/above the threshold;
* :class:`LintConfig` — rule suppression, severity overrides, budgets;
* the rule registry in :mod:`repro.analysis.passes` (stable ``NLxxx``
  IDs, catalogued in ``docs/static_analysis.md``).

The gate is wired into :meth:`repro.synthesis.flow.SynthesisFlow.run`
(on by default) and :func:`repro.netlist.generators.generate` (behind
``repro.config.AnalysisSettings.lint_generated``), and is exposed on the
command line as ``repro lint``.
"""

from .context import AnalysisContext
from .diagnostics import Diagnostic, LintReport, Severity
from .linter import LintConfig, LintWarning, check_netlist, lint_netlist
from .passes import REGISTRY, Finding, LintRule, rule_table

__all__ = [
    "AnalysisContext",
    "Diagnostic",
    "LintReport",
    "Severity",
    "LintConfig",
    "LintWarning",
    "check_netlist",
    "lint_netlist",
    "REGISTRY",
    "Finding",
    "LintRule",
    "rule_table",
]
