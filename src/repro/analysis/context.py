"""Shared analysis context: a normalised, read-only view of a netlist DAG.

Both netlist representations — the mutable builder :class:`~repro.netlist.core.Netlist`
and the frozen :class:`~repro.netlist.core.CompiledNetlist` — map onto one
:class:`AnalysisContext`, so every lint pass is written once against a single
structure.  Derived facts the passes share (fanout counts, output-cone
liveness, levels) are computed lazily and cached.

The context also performs the *structural integrity* precheck (rule NL000):
out-of-range/self/forward fanin references, truth tables wider than
``2**arity`` bits, invalid arities and constant values, and dangling bus
references.  Passes that walk the DAG only run when the structure is sound,
so a malformed netlist yields NL000 errors instead of crashes.
"""

from __future__ import annotations

from functools import cached_property
from typing import TYPE_CHECKING, Mapping

import numpy as np

from ..netlist.core import MAX_LUT_ARITY, CompiledNetlist, Netlist

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .dataflow import DataflowResult, RangeLike

__all__ = ["AnalysisContext", "KIND_INPUT", "KIND_CONST", "KIND_LUT"]

# Node-kind codes, mirroring repro.netlist.core's private constants.
KIND_INPUT = 0
KIND_CONST = 1
KIND_LUT = 2


class AnalysisContext:
    """Normalised netlist view plus cached derived structure.

    Parameters
    ----------
    name:
        Netlist name (for report headers).
    kinds:
        Per-node kind codes (``KIND_INPUT`` / ``KIND_CONST`` / ``KIND_LUT``).
    fanins:
        Per-node fanin id tuples (empty for inputs/constants).
    tts:
        Per-node integer truth tables over ``2**arity`` rows (0 for
        non-LUT nodes).
    const_values:
        Per-node constant values (meaningful for ``KIND_CONST`` only).
    input_buses / output_buses:
        Bus name -> LSB-first node-id tuples.
    """

    def __init__(
        self,
        name: str,
        kinds: tuple[int, ...],
        fanins: tuple[tuple[int, ...], ...],
        tts: tuple[int, ...],
        const_values: tuple[int, ...],
        input_buses: dict[str, tuple[int, ...]],
        output_buses: dict[str, tuple[int, ...]],
        input_bus_signed: dict[str, bool] | None = None,
        output_bus_signed: dict[str, bool] | None = None,
        attrs: dict[str, object] | None = None,
    ) -> None:
        self.name = name
        self.kinds = kinds
        self.fanins = fanins
        self.tts = tts
        self.const_values = const_values
        self.input_buses = input_buses
        self.output_buses = output_buses
        self.input_bus_signed = dict(input_bus_signed or {})
        self.output_bus_signed = dict(output_bus_signed or {})
        self.attrs = dict(attrs or {})
        self.assumptions: Mapping[str, RangeLike] | None = None
        self._dataflow_cache: dict[object, DataflowResult] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        netlist: Netlist | CompiledNetlist,
        assumptions: Mapping[str, "RangeLike"] | None = None,
    ) -> "AnalysisContext":
        """Normalise either netlist representation.

        ``assumptions`` (bus name -> value or range) are carried on the
        context for assumption-aware passes; they do not change the
        structural view.
        """
        if isinstance(netlist, Netlist):
            ctx = cls._from_builder(netlist)
        else:
            ctx = cls._from_compiled(netlist)
        ctx.assumptions = assumptions
        return ctx

    @classmethod
    def _from_builder(cls, nl: Netlist) -> "AnalysisContext":
        return cls(
            name=nl.name,
            kinds=tuple(nl._kinds),
            fanins=tuple(tuple(f) for f in nl._fanins),
            tts=tuple(nl._tts),
            const_values=tuple(nl._const_values),
            input_buses={k: tuple(v) for k, v in nl.input_buses.items()},
            output_buses={k: tuple(v) for k, v in nl.output_buses.items()},
            input_bus_signed=dict(nl.input_bus_signed),
            output_bus_signed=dict(nl.output_bus_signed),
            attrs=dict(nl.attrs),
        )

    @classmethod
    def _from_compiled(cls, cn: CompiledNetlist) -> "AnalysisContext":
        n = cn.n_nodes
        fanins: list[tuple[int, ...]] = []
        tts: list[int] = []
        for nid in range(n):
            a = int(cn.arity[nid])
            fanins.append(tuple(int(x) for x in cn.fanin_idx[nid, :a]))
            if cn.kinds[nid] == KIND_LUT:
                rows = 1 << a
                tt = 0
                for r in range(rows):
                    tt |= int(cn.tt_bits[nid, r]) << r
                tts.append(tt)
            else:
                tts.append(0)
        return cls(
            name=cn.name,
            kinds=tuple(int(k) for k in cn.kinds),
            fanins=tuple(fanins),
            tts=tuple(tts),
            const_values=tuple(int(v) for v in cn.const_values),
            input_buses={k: tuple(int(b) for b in v) for k, v in cn.input_buses.items()},
            output_buses={k: tuple(int(b) for b in v) for k, v in cn.output_buses.items()},
            # getattr: tolerate array-form netlists pickled before the
            # word-level metadata fields existed.
            input_bus_signed=dict(getattr(cn, "input_bus_signed", None) or {}),
            output_bus_signed=dict(getattr(cn, "output_bus_signed", None) or {}),
            attrs=dict(getattr(cn, "attrs", None) or {}),
        )

    # ------------------------------------------------------------------
    # basic facts
    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return len(self.kinds)

    def arity(self, nid: int) -> int:
        return len(self.fanins[nid])

    def is_lut(self, nid: int) -> bool:
        return self.kinds[nid] == KIND_LUT

    def tt_bit(self, nid: int, row: int) -> int:
        return (self.tts[nid] >> row) & 1

    @cached_property
    def output_bits(self) -> frozenset[int]:
        """Node ids that appear in at least one output bus."""
        return frozenset(b for bits in self.output_buses.values() for b in bits)

    def bus_signed(self, name: str) -> bool:
        """Declared signedness of a named bus (unsigned when unannotated)."""
        if name in self.input_buses:
            return self.input_bus_signed.get(name, False)
        if name in self.output_buses:
            return self.output_bus_signed.get(name, False)
        raise KeyError(f"unknown bus {name!r}")

    # ------------------------------------------------------------------
    # word-level dataflow (lazy, cached per assumption set)
    # ------------------------------------------------------------------
    def dataflow(
        self, assumptions: Mapping[str, "RangeLike"] | None = None
    ) -> "DataflowResult":
        """Run (or reuse) the known-bits/range abstract interpretation.

        Results are memoised per normalised assumption set, so several
        passes over one context share a single fixed-point run.
        """
        from .dataflow import analyze_context, cache_key

        key = cache_key(assumptions)
        cached = self._dataflow_cache.get(key)
        if cached is None:
            cached = analyze_context(self, assumptions)
            self._dataflow_cache[key] = cached
        return cached

    # ------------------------------------------------------------------
    # structural integrity (rule NL000)
    # ------------------------------------------------------------------
    @cached_property
    def structure_errors(self) -> tuple[str, ...]:
        """Human-readable structural-integrity violations (empty = sound)."""
        problems: list[str] = []
        n = self.n_nodes
        for nid in range(n):
            kind = self.kinds[nid]
            if kind not in (KIND_INPUT, KIND_CONST, KIND_LUT):
                problems.append(f"node {nid} has unknown kind {kind}")
                continue
            a = self.arity(nid)
            if kind == KIND_LUT:
                if not (1 <= a <= MAX_LUT_ARITY):
                    problems.append(
                        f"LUT node {nid} has arity {a}, expected 1..{MAX_LUT_ARITY}"
                    )
                    continue
                tt = self.tts[nid]
                if not (0 <= tt < (1 << (1 << a))):
                    problems.append(
                        f"LUT node {nid} truth table {tt:#x} wider than 2**{a} rows"
                    )
            elif a:
                problems.append(f"non-LUT node {nid} has fanins {self.fanins[nid]}")
            if kind == KIND_CONST and self.const_values[nid] not in (0, 1):
                problems.append(
                    f"constant node {nid} has value {self.const_values[nid]}"
                )
            for f in self.fanins[nid]:
                if f == nid:
                    problems.append(f"node {nid} is its own fanin")
                elif not (0 <= f < n):
                    problems.append(f"node {nid} fanin {f} is out of range")
                elif f > nid:
                    problems.append(
                        f"node {nid} fanin {f} is a forward reference "
                        "(construction order must be topological)"
                    )
        for busses, what in ((self.input_buses, "input"), (self.output_buses, "output")):
            for bus, bits in busses.items():
                for b in bits:
                    if not (0 <= b < n):
                        problems.append(
                            f"{what} bus {bus!r} references unknown node {b}"
                        )
        return tuple(problems)

    @property
    def sound(self) -> bool:
        return not self.structure_errors

    # ------------------------------------------------------------------
    # derived structure (valid only when sound)
    # ------------------------------------------------------------------
    @cached_property
    def fanout(self) -> np.ndarray:
        """Per-node fanout count (number of fanin references to the node)."""
        counts = np.zeros(self.n_nodes, dtype=np.int64)
        for f in self.fanins:
            for x in f:
                counts[x] += 1
        return counts

    @cached_property
    def live(self) -> np.ndarray:
        """Per-node bool: node lies in the transitive fanin cone of an output.

        Exact because fanins always precede their consumer (checked by the
        structural precheck), so one descending sweep reaches a fixpoint.
        """
        live = np.zeros(self.n_nodes, dtype=bool)
        for b in self.output_bits:
            live[b] = True
        for nid in range(self.n_nodes - 1, -1, -1):
            if live[nid]:
                for f in self.fanins[nid]:
                    live[f] = True
        return live

    @cached_property
    def levels(self) -> np.ndarray:
        """LUT-level depth per node (inputs/constants at level 0)."""
        levels = np.zeros(self.n_nodes, dtype=np.int64)
        for nid in range(self.n_nodes):
            if self.is_lut(nid):
                levels[nid] = 1 + max(levels[f] for f in self.fanins[nid])
        return levels

    @cached_property
    def depth(self) -> int:
        """Longest input->output LUT-level path."""
        out = sorted(self.output_bits)
        if not out:
            return 0
        return int(self.levels[out].max())

    def lut_dependence(self, nid: int) -> tuple[bool, ...]:
        """Per-fanin bool: does the LUT's truth table depend on that fanin?"""
        a = self.arity(nid)
        rows = 1 << a
        deps = []
        for k in range(a):
            mask = 1 << k
            deps.append(
                any(self.tt_bit(nid, r) != self.tt_bit(nid, r ^ mask) for r in range(rows))
            )
        return tuple(deps)

    def canonical_lut_key(self, nid: int) -> tuple[tuple[int, ...], int]:
        """Canonical ``(sorted fanins, permuted truth table)`` signature.

        Two LUTs computing the same function of the same driver nodes map
        to the same key regardless of fanin ordering, which is what the
        duplicate-LUT pass hashes on.
        """
        f = self.fanins[nid]
        a = len(f)
        perm = sorted(range(a), key=lambda j: f[j])
        sorted_fanins = tuple(f[j] for j in perm)
        tt = self.tts[nid]
        new_tt = 0
        for r in range(1 << a):
            r2 = 0
            for j in range(a):
                r2 |= ((r >> perm[j]) & 1) << j
            new_tt |= ((tt >> r) & 1) << r2
        return sorted_fanins, new_tt
