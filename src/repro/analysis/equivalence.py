"""Equivalence proofs: certify generated multipliers against integer golden.

:func:`prove_multiplier` checks a multiplier netlist — generic array /
Wallace (buses ``a``, ``b`` -> ``p``), Baugh-Wooley (same buses, signed),
sign-magnitude (``a``, ``b``, ``sa``, ``sb`` -> ``p``, ``sp``), CCM
(``x`` -> ``p``) or MAC (``a``, ``b``, ``acc`` -> ``acc_out``) — against
exact integer arithmetic:

* **exhaustive** when the free input space is at most ``2**exhaustive_limit``
  vectors: every reachable input is evaluated, so a passing certificate is
  a complete functional proof;
* **stratified** above that: all cross-bus corner combinations
  (min/min+1/mid/max-1/max per bus) plus seeded uniform random vectors.
  A passing stratified certificate is strong evidence, not a proof, and
  says so in its ``method`` field.

Fixing the multiplicand (``m``) restricts the proof to the characterised
configuration — one operand pinned, the other swept — which both shrinks
the space (an 8x8 multiplier becomes exhaustively provable per ``m``) and
matches how :mod:`repro.characterization` drives the hardware.

Certificates are plain data (:class:`EquivalenceCertificate`); the gate
form is :meth:`EquivalenceCertificate.require`, raising
:class:`~repro.errors.ProofError` with the counterexample attached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..errors import AnalysisError, ProofError
from ..netlist.core import CompiledNetlist, Netlist, bits_from_ints, ints_from_bits

__all__ = ["EquivalenceCertificate", "prove_multiplier", "prove_multiplier_family"]


@dataclass(frozen=True)
class EquivalenceCertificate:
    """Outcome of one equivalence check.

    ``passed`` with ``method="exhaustive"`` is a complete functional
    proof over the stated input space; with ``method="stratified"`` it
    is corner+random evidence.  ``counterexample`` (when ``passed`` is
    False) maps input bus names to the failing integer vector plus
    ``got``/``want`` for the first mismatching output bus.
    """

    netlist: str
    kind: str  # "generic" | "sign-magnitude" | "ccm" | "mac"
    method: str  # "exhaustive" | "stratified"
    n_vectors: int
    passed: bool
    widths: Mapping[str, int]
    signed: bool
    multiplicand: int | None = None
    seed: int | None = None
    counterexample: Mapping[str, object] | None = None

    def require(self) -> "EquivalenceCertificate":
        """Gate form: return self when passed, raise ProofError otherwise."""
        if not self.passed:
            raise ProofError(
                f"netlist {self.netlist!r} failed {self.method} equivalence "
                f"({self.kind}"
                + (f", m={self.multiplicand}" if self.multiplicand is not None else "")
                + f"): counterexample {dict(self.counterexample or {})}",
                certificate=self,
            )
        return self

    def as_dict(self) -> dict[str, object]:
        return {
            "netlist": self.netlist,
            "kind": self.kind,
            "method": self.method,
            "n_vectors": self.n_vectors,
            "passed": self.passed,
            "widths": dict(self.widths),
            "signed": self.signed,
            "multiplicand": self.multiplicand,
            "seed": self.seed,
            "counterexample": (
                dict(self.counterexample) if self.counterexample else None
            ),
        }


@dataclass(frozen=True)
class _BusSpec:
    name: str
    width: int
    signed: bool
    fixed: int | None = None  # pinned value (e.g. the multiplicand)

    @property
    def lo(self) -> int:
        if self.fixed is not None:
            return self.fixed
        return -(1 << (self.width - 1)) if self.signed else 0

    @property
    def hi(self) -> int:
        if self.fixed is not None:
            return self.fixed
        return ((1 << (self.width - 1)) - 1) if self.signed else ((1 << self.width) - 1)

    @property
    def free_bits(self) -> int:
        return 0 if self.fixed is not None else self.width

    def corners(self) -> list[int]:
        lo, hi = self.lo, self.hi
        mid = (lo + hi) // 2
        return sorted({lo, min(lo + 1, hi), mid, max(hi - 1, lo), hi})


def _wrap(values: np.ndarray, width: int, signed: bool) -> np.ndarray:
    """Reduce exact integers to the bus's modular two's-complement value."""
    mod = 1 << width
    wrapped = np.mod(values, mod)  # object-safe; result in [0, mod)
    if signed:
        wrapped = np.where(wrapped >= (mod >> 1), wrapped - mod, wrapped)
    return wrapped


def _compiled(netlist: Netlist | CompiledNetlist) -> CompiledNetlist:
    return netlist.compile() if isinstance(netlist, Netlist) else netlist


def _classify(cn: CompiledNetlist) -> str:
    inputs = set(cn.input_buses)
    if cn.attrs.get("kind") == "ccm" or inputs == {"x"}:
        return "ccm"
    if {"a", "b", "sa", "sb"} <= inputs:
        return "sign-magnitude"
    if {"a", "b", "acc"} <= inputs:
        return "mac"
    if {"a", "b"} <= inputs:
        return "generic"
    raise AnalysisError(
        f"netlist {cn.name!r} is not a recognised multiplier form "
        f"(inputs {sorted(inputs)})"
    )


def _golden(
    kind: str,
    cn: CompiledNetlist,
    ints: Mapping[str, np.ndarray],
    coefficient: int | None,
) -> dict[str, np.ndarray]:
    """Exact expected outputs (object dtype: arbitrary-precision products)."""
    if kind == "ccm":
        assert coefficient is not None
        x = ints["x"].astype(object)
        return {"p": x * coefficient}
    a = ints["a"].astype(object)
    b = ints["b"].astype(object)
    if kind == "generic":
        return {"p": a * b}
    if kind == "sign-magnitude":
        return {"p": a * b, "sp": ints["sa"] ^ ints["sb"]}
    if kind == "mac":
        # The MAC also exposes its internal product for observability.
        return {"acc_out": ints["acc"].astype(object) + a * b, "p": a * b}
    raise AnalysisError(f"unknown multiplier kind {kind!r}")  # pragma: no cover


def _bus_specs(
    cn: CompiledNetlist, kind: str, m: int | None
) -> tuple[list[_BusSpec], int | None]:
    """Input-bus specs (with the multiplicand pinned) and the coefficient."""
    signed_of = dict(cn.input_bus_signed)
    widths = {name: int(ids.shape[0]) for name, ids in cn.input_buses.items()}
    coefficient: int | None = None

    if kind == "ccm":
        declared = cn.attrs.get("coefficient")
        if isinstance(declared, bool):
            declared = None
        if m is not None and declared is not None and m != declared:
            raise AnalysisError(
                f"m={m} contradicts the netlist's declared coefficient {declared}"
            )
        coefficient = m if m is not None else declared  # type: ignore[assignment]
        if not isinstance(coefficient, int):
            raise AnalysisError(
                "ccm proof needs a coefficient: pass m= or generate via "
                "ccm_multiplier (which declares it in netlist attrs)"
            )
        return (
            [_BusSpec("x", widths["x"], signed_of.get("x", False))],
            coefficient,
        )

    specs: list[_BusSpec] = []
    for name in sorted(cn.input_buses):
        signed = signed_of.get(name, False)
        fixed: int | None = None
        if name == "b" and m is not None:
            lo = -(1 << (widths[name] - 1)) if signed else 0
            hi = ((1 << (widths[name] - 1)) - 1) if signed else ((1 << widths[name]) - 1)
            if not (lo <= m <= hi):
                raise AnalysisError(
                    f"multiplicand {m} does not fit bus 'b' "
                    f"({widths[name]} bits, {'signed' if signed else 'unsigned'})"
                )
            fixed = m
        specs.append(_BusSpec(name, widths[name], signed, fixed))
    return specs, None


def _exhaustive_vectors(specs: Sequence[_BusSpec]) -> dict[str, np.ndarray]:
    """Full cartesian product over every free bus value (object dtype)."""
    axes = [np.arange(s.lo, s.hi + 1, dtype=np.int64) for s in specs]
    grids = np.meshgrid(*axes, indexing="ij")
    return {s.name: g.reshape(-1) for s, g in zip(specs, grids)}


def _stratified_vectors(
    specs: Sequence[_BusSpec], n_random: int, seed: int
) -> dict[str, np.ndarray]:
    """Cross-bus corner combinations plus seeded uniform random vectors."""
    corner_axes = [np.array(s.corners(), dtype=np.int64) for s in specs]
    grids = np.meshgrid(*corner_axes, indexing="ij")
    corners = {s.name: g.reshape(-1) for s, g in zip(specs, grids)}
    rng = np.random.default_rng(seed)
    randoms = {
        s.name: rng.integers(s.lo, s.hi + 1, size=n_random, dtype=np.int64)
        for s in specs
    }
    return {
        s.name: np.concatenate([corners[s.name], randoms[s.name]]) for s in specs
    }


def prove_multiplier(
    netlist: Netlist | CompiledNetlist,
    m: int | None = None,
    exhaustive_limit: int = 16,
    n_random: int = 512,
    seed: int = 0,
) -> EquivalenceCertificate:
    """Certify a multiplier netlist against golden integer arithmetic.

    Parameters
    ----------
    netlist:
        A generated multiplier in builder or compiled form.  The form is
        recognised from its bus interface (see module docstring).
    m:
        Optional multiplicand: pins bus ``b`` (or supplies/validates the
        CCM coefficient), matching the characterisation configuration.
    exhaustive_limit:
        Exhaustive enumeration is used when the free input space has at
        most ``2**exhaustive_limit`` vectors; corner+random stratified
        sampling above that.
    n_random:
        Random vectors in the stratified regime.
    seed:
        Seed for the stratified random vectors (recorded in the
        certificate so failures reproduce).

    Returns
    -------
    EquivalenceCertificate
        Call :meth:`~EquivalenceCertificate.require` to use it as a gate.
    """
    cn = _compiled(netlist)
    kind = _classify(cn)
    specs, coefficient = _bus_specs(cn, kind, m)
    free_bits = sum(s.free_bits for s in specs)

    if free_bits <= exhaustive_limit:
        method = "exhaustive"
        vectors = _exhaustive_vectors(specs)
        used_seed: int | None = None
    else:
        method = "stratified"
        vectors = _stratified_vectors(specs, n_random, seed)
        used_seed = seed

    n_vectors = int(next(iter(vectors.values())).shape[0])
    bit_inputs = {
        s.name: bits_from_ints(vectors[s.name], s.width) for s in specs
    }
    out_bits = cn.evaluate(bit_inputs)
    out_signed = dict(cn.output_bus_signed)
    got = {
        name: ints_from_bits(bits, signed=out_signed.get(name, False))
        for name, bits in out_bits.items()
    }
    golden = _golden(kind, cn, vectors, coefficient)

    widths = {s.name: s.width for s in specs}
    for name, ids in cn.output_buses.items():
        widths[name] = int(ids.shape[0])

    counterexample: dict[str, object] | None = None
    for name in sorted(cn.output_buses):
        if name not in golden:
            continue  # extra observability buses are not part of the spec
        want = _wrap(golden[name], widths[name], out_signed.get(name, False))
        mismatch = np.nonzero(got[name] != want)[0]
        if mismatch.size:
            i = int(mismatch[0])
            counterexample = {
                s.name: int(vectors[s.name][i]) for s in specs
            }
            counterexample["bus"] = name
            counterexample["got"] = int(got[name][i])
            counterexample["want"] = int(want[i])
            break

    return EquivalenceCertificate(
        netlist=cn.name,
        kind=kind,
        method=method,
        n_vectors=n_vectors,
        passed=counterexample is None,
        widths=widths,
        signed=any(s.signed for s in specs),
        multiplicand=coefficient if kind == "ccm" else m,
        seed=used_seed,
        counterexample=counterexample,
    )


def prove_multiplier_family(
    netlist: Netlist | CompiledNetlist,
    ms: Sequence[int],
    exhaustive_limit: int = 16,
    n_random: int = 512,
    seed: int = 0,
) -> list[EquivalenceCertificate]:
    """Certify one multiplier at many multiplicands in a single tiled sweep.

    Equivalent to calling :func:`prove_multiplier` once per ``m`` in
    ``ms`` on a generic ``a * b`` multiplier, but the whole family is
    evaluated as one ``(len(ms), |a-space|)`` tile through
    :func:`repro.kernels.evaluate_tile` — the streamed operand's vectors
    are shared across every multiplicand, so the kernel plan compiles
    once and each batch covers many rows.  This is the characterisation
    configuration (one operand pinned per row, the other swept) proved
    for every multiplicand of a sweep at once.

    The free space is bus ``a`` alone: exhaustive when ``a``'s width is
    at most ``exhaustive_limit`` bits, corner+random stratified above
    that (one shared seeded sample of ``a`` for every row).

    Returns one certificate per multiplicand, in ``ms`` order.
    """
    from ..kernels.execute import evaluate_tile

    cn = _compiled(netlist)
    kind = _classify(cn)
    if kind != "generic":
        raise AnalysisError(
            f"family proof needs a generic a*b multiplier, got {kind!r} "
            f"(use prove_multiplier per configuration instead)"
        )
    if len(ms) == 0:
        raise AnalysisError("family proof needs at least one multiplicand")

    signed_of = dict(cn.input_bus_signed)
    widths = {name: int(ids.shape[0]) for name, ids in cn.input_buses.items()}
    b_spec = _BusSpec("b", widths["b"], signed_of.get("b", False))
    for m in ms:
        if not (b_spec.lo <= int(m) <= b_spec.hi):
            raise AnalysisError(
                f"multiplicand {m} does not fit bus 'b' "
                f"({b_spec.width} bits, "
                f"{'signed' if b_spec.signed else 'unsigned'})"
            )
    a_spec = _BusSpec("a", widths["a"], signed_of.get("a", False))

    if a_spec.free_bits <= exhaustive_limit:
        method = "exhaustive"
        a_values = np.arange(a_spec.lo, a_spec.hi + 1, dtype=np.int64)
        used_seed: int | None = None
    else:
        method = "stratified"
        rng = np.random.default_rng(seed)
        a_values = np.concatenate(
            [
                np.array(a_spec.corners(), dtype=np.int64),
                rng.integers(a_spec.lo, a_spec.hi + 1, size=n_random, dtype=np.int64),
            ]
        )
        used_seed = seed

    out_signed = dict(cn.output_bus_signed)
    tile = evaluate_tile(
        cn,
        fixed={"b": np.asarray(ms, dtype=np.int64)},
        streamed={"a": a_values},
        signed_out=out_signed.get("p", False),
    )
    got = tile["p"]  # (M, S) int64

    cert_widths = {"a": a_spec.width, "b": b_spec.width}
    for name, ids in cn.output_buses.items():
        cert_widths[name] = int(ids.shape[0])

    certificates: list[EquivalenceCertificate] = []
    for mi, m in enumerate(ms):
        want = _wrap(
            a_values.astype(object) * int(m),
            cert_widths["p"],
            out_signed.get("p", False),
        )
        mismatch = np.nonzero(got[mi] != want)[0]
        counterexample: dict[str, object] | None = None
        if mismatch.size:
            i = int(mismatch[0])
            counterexample = {
                "a": int(a_values[i]),
                "b": int(m),
                "bus": "p",
                "got": int(got[mi, i]),
                "want": int(want[i]),
            }
        certificates.append(
            EquivalenceCertificate(
                netlist=cn.name,
                kind=kind,
                method=method,
                n_vectors=int(a_values.shape[0]),
                passed=counterexample is None,
                widths=cert_widths,
                signed=a_spec.signed or b_spec.signed,
                multiplicand=int(m),
                seed=used_seed,
                counterexample=counterexample,
            )
        )
    return certificates

