"""The lint driver: configuration, report assembly and the gate helper.

:func:`lint_netlist` runs every enabled pass over a netlist (builder or
compiled form) and returns a :class:`~repro.analysis.diagnostics.LintReport`.
:func:`check_netlist` is the gate used by the synthesis flow and the
generator factory: it raises :class:`~repro.errors.LintError` when the
report fails the configured severity threshold and funnels sub-threshold
warnings through :mod:`warnings` so sweeps stay observable but quiet.
"""

from __future__ import annotations

import warnings as _warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping

from ..config import get_analysis_settings
from ..errors import AnalysisError, LintError
from ..netlist.core import CompiledNetlist, Netlist
from .context import AnalysisContext
from .diagnostics import Diagnostic, LintReport, Severity
from .passes import REGISTRY

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .dataflow import RangeLike

__all__ = ["LintConfig", "LintWarning", "lint_netlist", "check_netlist"]


class LintWarning(UserWarning):
    """Category for sub-threshold lint findings surfaced via :mod:`warnings`."""


@dataclass(frozen=True)
class LintConfig:
    """Knobs of one lint run.

    Attributes
    ----------
    disabled:
        Rule IDs to skip entirely (e.g. ``{"NL006"}``).
    severity_overrides:
        Rule ID -> severity replacing the rule's default.
    max_fanout / max_depth:
        Budgets for NL009 / NL010.
    fail_on:
        Severity threshold at which :func:`check_netlist` (and the CLI
        exit code) treat the report as a failure.
    """

    disabled: frozenset[str] = frozenset()
    severity_overrides: Mapping[str, Severity] = field(default_factory=dict)
    max_fanout: int = 32
    max_depth: int = 128
    fail_on: Severity = Severity.ERROR

    def __post_init__(self) -> None:
        for rule_id in list(self.disabled) + list(self.severity_overrides):
            if rule_id not in REGISTRY:
                raise AnalysisError(
                    f"unknown rule ID {rule_id!r}; known rules: "
                    f"{sorted(REGISTRY)}"
                )
        if self.max_fanout < 1 or self.max_depth < 1:
            raise AnalysisError("lint budgets must be >= 1")

    @classmethod
    def from_settings(cls, **overrides: object) -> "LintConfig":
        """Build from the library-wide analysis settings (see
        :func:`repro.config.get_analysis_settings`), with keyword tweaks."""
        settings = get_analysis_settings()
        kwargs: dict = {
            "max_fanout": settings.max_fanout,
            "max_depth": settings.max_depth,
        }
        kwargs.update(overrides)
        return cls(**kwargs)

    @classmethod
    def build(
        cls,
        disabled: Iterable[str] = (),
        severity_overrides: Mapping[str, "Severity | str"] | None = None,
        max_fanout: int | None = None,
        max_depth: int | None = None,
        fail_on: "Severity | str" = Severity.ERROR,
    ) -> "LintConfig":
        """Lenient constructor accepting severity names (CLI-facing)."""
        settings = get_analysis_settings()
        return cls(
            disabled=frozenset(disabled),
            severity_overrides={
                k: Severity.parse(v) for k, v in (severity_overrides or {}).items()
            },
            max_fanout=settings.max_fanout if max_fanout is None else max_fanout,
            max_depth=settings.max_depth if max_depth is None else max_depth,
            fail_on=Severity.parse(fail_on),
        )

    def severity_for(self, rule_id: str) -> Severity:
        override = self.severity_overrides.get(rule_id)
        if override is not None:
            return Severity.parse(override)
        return REGISTRY[rule_id].default_severity


def lint_netlist(
    netlist: Netlist | CompiledNetlist,
    config: LintConfig | None = None,
    assumptions: Mapping[str, "RangeLike"] | None = None,
) -> LintReport:
    """Run all enabled passes over ``netlist`` and collect a report.

    Works on both the mutable builder and the compiled array form; a
    structurally broken netlist produces ``NL000`` errors and skips the
    passes that need a sound DAG instead of crashing.

    ``assumptions`` (bus name -> value or ``(lo, hi)`` range) feed the
    word-level ``WL0xx`` passes: WL001 validates them against bus
    boundaries and WL003 reports logic they freeze.
    """
    cfg = config if config is not None else LintConfig.from_settings()
    ctx = AnalysisContext.build(netlist, assumptions=assumptions)
    diagnostics: list[Diagnostic] = []
    for rule_id in sorted(REGISTRY):
        rule = REGISTRY[rule_id]
        if rule_id in cfg.disabled:
            continue
        if rule.needs_sound_structure and not ctx.sound:
            continue
        severity = cfg.severity_for(rule_id)
        for finding in rule.fn(ctx, cfg):
            diagnostics.append(
                Diagnostic(
                    rule=rule_id,
                    name=rule.name,
                    severity=severity,
                    message=finding.message,
                    nodes=finding.nodes,
                    bus=finding.bus,
                )
            )
    diagnostics.sort(key=lambda d: (-int(d.severity), d.rule, d.nodes, d.message))
    return LintReport(
        netlist=ctx.name, n_nodes=ctx.n_nodes, diagnostics=tuple(diagnostics)
    )


def check_netlist(
    netlist: Netlist | CompiledNetlist,
    config: LintConfig | None = None,
    context: str = "",
    assumptions: Mapping[str, "RangeLike"] | None = None,
) -> LintReport:
    """Lint gate: raise :class:`LintError` on failure, warn otherwise.

    Parameters
    ----------
    context:
        Optional prefix naming the gate location (e.g. ``"synthesis flow"``)
        for error and warning messages.

    Returns
    -------
    LintReport
        The report, when the gate passes.
    """
    cfg = config if config is not None else LintConfig.from_settings()
    report = lint_netlist(netlist, cfg, assumptions=assumptions)
    prefix = f"{context}: " if context else ""
    if not report.ok(cfg.fail_on):
        raise LintError(
            f"{prefix}netlist {report.netlist!r} failed lint "
            f"(threshold {cfg.fail_on}):\n"
            + report.to_text(min_severity=cfg.fail_on),
            report=report,
        )
    if not report.clean:
        _warnings.warn(
            f"{prefix}{report.summary()}", LintWarning, stacklevel=2
        )
    return report
