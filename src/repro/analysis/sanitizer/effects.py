"""The determinism effect catalogue: every ambient effect the audit polices.

The sanitizer is **closed-world** in the same sense as the telemetry
catalogue (:mod:`repro.obs.spec`): the set of effects it recognises, the
shard entry points it roots reachability at, and the places allowed to
perform each effect are all declared *here*, in one reviewable table.
Code anywhere else that performs a catalogued effect is a finding — the
auditor does not guess intent, and a new legitimate use must either be
added to :data:`ALLOWANCES` (library-wide policy) or carry an inline
``# repro: allow[DTnnn] -- reason`` pragma (one-off, justified in place).

Why these effects: every open ROADMAP item (characterisation-as-a-
service, the compiled hot path, the distributed shard fabric) rests on
the invariant that shard work is bit-identical at any worker count and
any topology.  Each catalogued effect is a way that invariant silently
breaks — ambient RNG, wall-clock reads, hash-order iteration, unlocked
shared-disk writes — and each maps to exactly one ``DTnnn`` rule
(:mod:`repro.analysis.sanitizer.rules`).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "ALLOWANCES",
    "Allowance",
    "EFFECT_CATALOG",
    "EFFECT_AMBIENT_RNG",
    "EFFECT_BUILTIN_HASH",
    "EFFECT_ENTROPY",
    "EFFECT_ENV_READ",
    "EFFECT_FORK_UNSAFE",
    "EFFECT_MODULE_STATE",
    "EFFECT_NONATOMIC_WRITE",
    "EFFECT_UNLOCKED_INSTALL",
    "EFFECT_UNORDERED_ITER",
    "EFFECT_WALL_CLOCK",
    "EffectSpec",
    "ENTRY_POINTS",
    "LOCK_HELPER_NAMES",
    "SCOPE_EVERYWHERE",
    "SCOPE_REACHABLE",
    "SCOPE_SHARED_DISK",
    "SHARED_DISK_MODULES",
    "effect_catalogue_markdown",
]

#: Effect kinds, one per DT rule (see ``rules.py`` for the pairing).
EFFECT_AMBIENT_RNG = "rng.ambient"
EFFECT_WALL_CLOCK = "time.wall_clock"
EFFECT_ENV_READ = "env.read"
EFFECT_UNORDERED_ITER = "iter.unordered"
EFFECT_MODULE_STATE = "state.module_mutable"
EFFECT_NONATOMIC_WRITE = "fs.nonatomic_write"
EFFECT_UNLOCKED_INSTALL = "fs.unlocked_install"
EFFECT_FORK_UNSAFE = "pool.fork_unsafe"
EFFECT_BUILTIN_HASH = "hash.builtin"
EFFECT_ENTROPY = "entropy.read"

#: Enforcement scopes.  ``reachable``: only code transitively reachable
#: from :data:`ENTRY_POINTS` is held to the rule (a wall-clock read in a
#: report renderer is fine; one in a shard is not).  ``shared_disk``:
#: only modules in :data:`SHARED_DISK_MODULES` (the cache disk tier).
#: ``everywhere``: the whole audited tree.
SCOPE_REACHABLE = "reachable"
SCOPE_SHARED_DISK = "shared_disk"
SCOPE_EVERYWHERE = "everywhere"


@dataclass(frozen=True)
class EffectSpec:
    """One ambient effect the auditor detects.

    Attributes
    ----------
    effect:
        Stable dotted effect name (``category.kind``).
    scope:
        Where occurrences count as findings (see the scope constants).
    description:
        What the effect is and why it endangers shard determinism.
    """

    effect: str
    scope: str
    description: str


#: Catalogue of every effect the auditor recognises, sorted by name.
EFFECT_CATALOG: tuple[EffectSpec, ...] = (
    EffectSpec(
        EFFECT_AMBIENT_RNG,
        SCOPE_REACHABLE,
        "Randomness drawn from global generator state (`random.*`, "
        "`numpy.random.*` module functions, argument-less `default_rng()`) "
        "instead of a seed derived via `repro.rng.derive_seed`: results "
        "then depend on draw interleaving across shards and workers.",
    ),
    EffectSpec(
        EFFECT_BUILTIN_HASH,
        SCOPE_REACHABLE,
        "Built-in `hash()` on shard-reachable paths: string hashes vary "
        "with PYTHONHASHSEED, so any value derived from them differs "
        "between worker processes.",
    ),
    EffectSpec(
        EFFECT_ENTROPY,
        SCOPE_REACHABLE,
        "OS entropy reads (`os.urandom`, `uuid.uuid1/uuid4`, `secrets.*`, "
        "`random.SystemRandom`): irreproducible by construction.",
    ),
    EffectSpec(
        EFFECT_ENV_READ,
        SCOPE_EVERYWHERE,
        "Ambient `os.environ`/`os.getenv` reads outside the declared "
        "configuration entry points: behaviour then varies with inherited "
        "environment instead of explicit arguments, and pool workers may "
        "see a different environment than the parent.",
    ),
    EffectSpec(
        EFFECT_FORK_UNSAFE,
        SCOPE_EVERYWHERE,
        "Work shipped to a `ProcessPoolExecutor` as a lambda, nested "
        "closure or bound method: such callables capture parent-process "
        "state (open handles, RNG objects) that does not survive "
        "fork/spawn identically.",
    ),
    EffectSpec(
        EFFECT_MODULE_STATE,
        SCOPE_REACHABLE,
        "Mutable module-level containers in shard-reachable modules: "
        "state mutated in one pool worker silently diverges from the "
        "others and from the inline path.",
    ),
    EffectSpec(
        EFFECT_NONATOMIC_WRITE,
        SCOPE_SHARED_DISK,
        "A write-mode file open in a shared-disk module whose enclosing "
        "function lacks the write-to-temp + `os.replace` discipline: "
        "concurrent writers can interleave and readers can observe torn "
        "entries.",
    ),
    EffectSpec(
        EFFECT_UNLOCKED_INSTALL,
        SCOPE_SHARED_DISK,
        "An `os.replace`/`os.rename` install into the shared disk tier "
        "in a function that never takes the advisory entry lock: the "
        "runtime sanitizer cannot order such installs, and lost-update "
        "detection has no critical section to verify.",
    ),
    EffectSpec(
        EFFECT_UNORDERED_ITER,
        SCOPE_EVERYWHERE,
        "Iteration over a set/frozenset expression (or materialising one "
        "with `list`/`tuple`) without `sorted()`: iteration order follows "
        "hash order, which for strings varies with PYTHONHASHSEED.",
    ),
    EffectSpec(
        EFFECT_WALL_CLOCK,
        SCOPE_REACHABLE,
        "Wall-clock or monotonic-clock reads (`time.time`, "
        "`time.perf_counter`, `datetime.now`, ...) on shard-reachable "
        "paths outside the observability layer and its declared "
        "latency-bookkeeping call sites.",
    ),
)


#: Shard entry points (``module:qualname``): reachability roots for the
#: ``reachable``-scoped rules.  Everything a pool worker or the inline
#: fallback can execute hangs off these.
ENTRY_POINTS: tuple[str, ...] = (
    "repro.characterization.harness:characterize_multiplier",
    "repro.core.optimizer:optimize_designs",
    "repro.faults.injector:FaultInjector.fire_pre",
    "repro.faults.injector:FaultInjector.mutate_result",
    "repro.parallel.cache:PlacedDesignCache.get_or_place",
    "repro.parallel.engine:_init_worker",
    "repro.parallel.engine:_run_shard_in_worker",
    "repro.parallel.engine:run_shard",
    "repro.parallel.engine:run_sweep",
    "repro.parallel.executors:FileQueueExecutor.run_pass",
    "repro.parallel.executors:PoolExecutor.run_pass",
    "repro.parallel.worker:drain_spool",
)

#: Modules whose on-disk artefacts are shared between concurrent
#: processes; the ``shared_disk`` rules apply only here.
SHARED_DISK_MODULES: tuple[str, ...] = (
    "repro.parallel.cache",
    "repro.parallel.sanitize",
    "repro.parallel.spool",
)

#: Functions that constitute "holding the advisory lock" for DT007: an
#: install function must call one of these (directly) to satisfy the
#: lock discipline.
LOCK_HELPER_NAMES: tuple[str, ...] = ("_entry_lock", "entry_lock")


@dataclass(frozen=True)
class Allowance:
    """One library-wide permission to perform an effect.

    Attributes
    ----------
    effect:
        The effect being allowed (an :data:`EFFECT_CATALOG` name).
    module:
        Dotted module the allowance applies to.
    qualname:
        Function/method qualname within the module (prefix match on the
        dotted path), or ``None`` for the whole module.
    reason:
        Why this use is sound — rendered into the generated docs table,
        so it must actually justify the hole it punches.
    """

    effect: str
    module: str
    qualname: str | None
    reason: str


#: The policy table: every sanctioned effect occurrence in the library.
ALLOWANCES: tuple[Allowance, ...] = (
    # --- env.read: the configuration front doors -----------------------
    Allowance(
        EFFECT_ENV_READ,
        "repro.config",
        None,
        "The configuration module is the designated environment boundary: "
        "REPRO_* knobs are parsed here once into typed settings objects.",
    ),
    Allowance(
        EFFECT_ENV_READ,
        "repro.parallel.jobs",
        "resolve_jobs",
        "REPRO_JOBS is the worker-count entry point; callers receive the "
        "resolved integer, never the raw environment.",
    ),
    Allowance(
        EFFECT_ENV_READ,
        "repro.parallel.cache",
        "get_default_cache",
        "REPRO_CACHE_DIR names the default disk tier exactly once, at "
        "process-wide default-cache creation.",
    ),
    Allowance(
        EFFECT_ENV_READ,
        "repro.parallel.sanitize",
        "sanitize_enabled",
        "REPRO_SANITIZE is the runtime sanitizer's opt-in flag; reading "
        "it cannot perturb results (the sanitizer only observes).",
    ),
    Allowance(
        EFFECT_ENV_READ,
        "repro.faults.plan",
        "FaultPlan.from_env",
        "REPRO_FAULTS is the chaos plan's documented entry point; the "
        "plan itself is deterministic once parsed.",
    ),
    Allowance(
        EFFECT_ENV_READ,
        "repro.obs.runtime",
        "tracing_paths_from_env",
        "REPRO_TRACE/REPRO_METRICS select export paths for telemetry, "
        "which is bit-transparent to the pipeline by contract.",
    ),
    Allowance(
        EFFECT_ENV_READ,
        "repro.cli",
        None,
        "CLI front door: flags fall back to documented environment "
        "variables before the pipeline is entered.",
    ),
    Allowance(
        EFFECT_ENV_READ,
        "repro.cli_flow",
        None,
        "CLI front door: flags fall back to documented environment "
        "variables before the pipeline is entered.",
    ),
    Allowance(
        EFFECT_ENV_READ,
        "repro.serve.settings",
        "ServeSettings.from_env",
        "REPRO_SERVE_* knobs (workers, queue limits, tenant quotas) are "
        "parsed here once into a typed settings object; scheduling "
        "policy never touches job numerics.",
    ),
    Allowance(
        EFFECT_ENV_READ,
        "repro.serve.cli",
        None,
        "CLI front door: flags fall back to documented environment "
        "variables before the server is booted.",
    ),
    Allowance(
        EFFECT_ENV_READ,
        "repro.parallel.executors",
        "resolve_executor",
        "REPRO_EXECUTOR is the shard-topology entry point; callers "
        "receive the resolved executor object, never the raw "
        "environment, and the choice never changes archived bytes.",
    ),
    Allowance(
        EFFECT_ENV_READ,
        "repro.parallel.executors",
        "FileQueueExecutor._spawn_worker",
        "worker children inherit the parent environment plus the "
        "coordinator's package root on PYTHONPATH so an uninstalled "
        "source checkout spawns an importable fleet; the environment "
        "shapes process bring-up only, never shard numerics or "
        "artefact bytes.",
    ),
    # --- wall_clock: sanctioned latency bookkeeping ---------------------
    Allowance(
        EFFECT_WALL_CLOCK,
        "repro.obs",
        None,
        "The observability layer is the designated timing boundary; it "
        "is off by default and bit-transparent when enabled.",
    ),
    Allowance(
        EFFECT_WALL_CLOCK,
        "repro.parallel.engine",
        None,
        "perf_counter reads feed attempt latencies and throughput "
        "metrics only; shard numerics never consume them.",
    ),
    Allowance(
        EFFECT_WALL_CLOCK,
        "repro.parallel.executors",
        None,
        "perf_counter drives pool-harvest timeouts and spool lease-"
        "staleness detection; which attempt wins is made irrelevant by "
        "bit-identical re-execution, so no numeric path consumes it.",
    ),
    Allowance(
        EFFECT_WALL_CLOCK,
        "repro.parallel.worker",
        None,
        "perf_counter feeds the latency_s field of outcome sidecars "
        "only; result records never contain clock reads.",
    ),
    Allowance(
        EFFECT_WALL_CLOCK,
        "repro.characterization.harness",
        None,
        "Sweep wall-clock feeds the characterize.sweep_seconds histogram "
        "only; the grids are computed before the clock is read.",
    ),
    Allowance(
        EFFECT_WALL_CLOCK,
        "repro.core.optimizer",
        None,
        "Per-draw wall-clock is a *deliverable* here: the paper's "
        "runtime model (eqs. 7-8) is fitted to these records; they ride "
        "alongside results without feeding any numeric path.",
    ),
    # --- module state: deliberate, documented singletons ----------------
    Allowance(
        EFFECT_MODULE_STATE,
        "repro.analysis.passes",
        "REGISTRY",
        "Rule registry populated by decorators at import time and "
        "treated as frozen thereafter; workers re-import identically.",
    ),
    Allowance(
        EFFECT_MODULE_STATE,
        "repro.analysis.sanitizer.rules",
        "DT_REGISTRY",
        "DT-rule registry populated at import time and treated as "
        "frozen thereafter; workers re-import identically.",
    ),
    Allowance(
        EFFECT_MODULE_STATE,
        "repro.analysis.sanitizer.rules",
        "_RULE_BY_EFFECT",
        "Effect-to-rule index derived from DT_REGISTRY at import time; "
        "frozen thereafter.",
    ),
    Allowance(
        EFFECT_MODULE_STATE,
        "repro.analysis.portability.rules",
        "DX_REGISTRY",
        "DX-rule registry populated at import time and treated as "
        "frozen thereafter; workers re-import identically.",
    ),
    Allowance(
        EFFECT_MODULE_STATE,
        "repro.analysis.portability.rules",
        "_RULE_BY_EFFECT",
        "Effect-to-rule index derived from DX_REGISTRY at import time; "
        "frozen thereafter.",
    ),
    Allowance(
        EFFECT_MODULE_STATE,
        "repro.analysis.portability.contracts",
        "FROZEN_CONTRACTS",
        "The frozen wire-schema fingerprint registry: a reviewed "
        "constant table, written only by commits, never at runtime.",
    ),
    Allowance(
        EFFECT_MODULE_STATE,
        "repro.analysis.portability.contracts",
        "_SHAPE_DERIVERS",
        "Contract-name-to-deriver dispatch built at import time from "
        "module functions; never mutated.",
    ),
    Allowance(
        EFFECT_MODULE_STATE,
        "repro.kernels.plan",
        "_PLAN_CACHE",
        "Execution-plan memo keyed by netlist content hash; entries are "
        "immutable once built and installs go through _PLAN_CACHE_LOCK "
        "with setdefault, so concurrent compilers converge on one plan.",
    ),
    Allowance(
        EFFECT_MODULE_STATE,
        "repro.obs.spec",
        "_SPANS_BY_NAME",
        "Telemetry-catalogue index built from the frozen SPAN_CATALOG "
        "tuple at import time; never mutated.",
    ),
    Allowance(
        EFFECT_MODULE_STATE,
        "repro.obs.spec",
        "_METRICS_BY_NAME",
        "Telemetry-catalogue index built from the frozen METRIC_CATALOG "
        "tuple at import time; never mutated.",
    ),
)


def _escape(text: str) -> str:
    return text.replace("|", "\\|")


def effect_catalogue_markdown() -> str:
    """The effect catalogue + allowance policy as markdown tables.

    Embedded in ``docs/static_analysis.md`` between generated-content
    markers; ``tests/analysis/sanitizer/test_docs_drift.py`` fails when
    they diverge.
    """
    lines = [
        "| Effect | Scope | Hazard |",
        "|---|---|---|",
    ]
    for spec in sorted(EFFECT_CATALOG, key=lambda s: s.effect):
        lines.append(
            f"| `{spec.effect}` | {spec.scope} | {_escape(spec.description)} |"
        )
    lines += [
        "",
        "Sanctioned occurrences (the allowance policy):",
        "",
        "| Effect | Where | Why it is sound |",
        "|---|---|---|",
    ]
    for allow in sorted(ALLOWANCES, key=lambda a: (a.effect, a.module, a.qualname or "")):
        where = f"`{allow.module}`" + (
            f" · `{allow.qualname}`" if allow.qualname else ""
        )
        lines.append(f"| `{allow.effect}` | {where} | {_escape(allow.reason)} |")
    return "\n".join(lines)
