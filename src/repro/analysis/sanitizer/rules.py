"""The DT rule registry: stable IDs over the effect catalogue.

Each ``DTnnn`` rule binds one effect from
:mod:`repro.analysis.sanitizer.effects` to a stable identifier, a name
and a finding template — the same shape as the ``NLxxx``/``WLxxx``
netlist rules, so suppression (`# repro: allow[DTnnn] -- reason`),
documentation generation and drift testing all work identically.

``DT000`` is the meta-rule: it polices the pragmas themselves, so a
suppression without a justification (or naming an unknown rule) is a
finding rather than a silent hole.
"""

from __future__ import annotations

from dataclasses import dataclass

from .effects import (
    EFFECT_AMBIENT_RNG,
    EFFECT_BUILTIN_HASH,
    EFFECT_ENTROPY,
    EFFECT_ENV_READ,
    EFFECT_FORK_UNSAFE,
    EFFECT_MODULE_STATE,
    EFFECT_NONATOMIC_WRITE,
    EFFECT_UNLOCKED_INSTALL,
    EFFECT_UNORDERED_ITER,
    EFFECT_WALL_CLOCK,
)

__all__ = [
    "DT_REGISTRY",
    "DTRule",
    "PRAGMA_RULE_ID",
    "dt_rule_table",
    "dt_rule_table_markdown",
    "rule_for_effect",
]

#: The meta-rule ID for malformed/unjustified suppression pragmas.
PRAGMA_RULE_ID = "DT000"


@dataclass(frozen=True)
class DTRule:
    """One determinism/concurrency rule.

    Attributes
    ----------
    rule_id:
        Stable ``DTnnn`` identifier.
    name:
        Short kebab-case rule name.
    effect:
        The catalogued effect the rule polices (empty for the DT000
        meta-rule, which polices pragmas rather than code).
    description:
        What a finding of this rule means.
    """

    rule_id: str
    name: str
    effect: str
    description: str


#: Registry of every DT rule, keyed by rule ID.
DT_REGISTRY: dict[str, DTRule] = {}


def _register(rule: DTRule) -> DTRule:
    DT_REGISTRY[rule.rule_id] = rule
    return rule


_register(
    DTRule(
        PRAGMA_RULE_ID,
        "pragma-hygiene",
        "",
        "A `# repro: allow[...]` pragma is malformed: it names an unknown "
        "rule ID or carries no `-- justification`. Suppressions must say "
        "why the hazard is sound, or they are findings themselves.",
    )
)
_register(
    DTRule(
        "DT001",
        "ambient-rng",
        EFFECT_AMBIENT_RNG,
        "Shard-reachable code draws randomness from global generator "
        "state (`random.*`, `numpy.random.*` module functions, or an "
        "argument-less `default_rng()`) instead of a generator seeded "
        "through `repro.rng.derive_seed`/`SeedTree`.",
    )
)
_register(
    DTRule(
        "DT002",
        "wall-clock",
        EFFECT_WALL_CLOCK,
        "Shard-reachable code reads a clock (`time.time`, "
        "`time.perf_counter`, `datetime.now`, ...) outside the "
        "observability layer and the catalogued latency call sites.",
    )
)
_register(
    DTRule(
        "DT003",
        "ambient-env",
        EFFECT_ENV_READ,
        "Code reads `os.environ`/`os.getenv` outside the declared "
        "configuration entry points (repro.config, resolve_jobs, the "
        "CLIs, ...), making behaviour depend on inherited environment.",
    )
)
_register(
    DTRule(
        "DT004",
        "unordered-iteration",
        EFFECT_UNORDERED_ITER,
        "A set/frozenset expression is iterated (or materialised with "
        "`list`/`tuple`) without `sorted()`: the order follows string "
        "hashes, which vary with PYTHONHASHSEED across processes.",
    )
)
_register(
    DTRule(
        "DT005",
        "mutable-module-state",
        EFFECT_MODULE_STATE,
        "A shard-reachable module declares a mutable module-level "
        "container (dict/list/set): mutations diverge silently between "
        "pool workers and the inline path.",
    )
)
_register(
    DTRule(
        "DT006",
        "nonatomic-shared-write",
        EFFECT_NONATOMIC_WRITE,
        "A shared-disk module opens a file for writing in a function "
        "without the write-to-temp + `os.replace` discipline, so "
        "concurrent writers can tear each other's entries.",
    )
)
_register(
    DTRule(
        "DT007",
        "unlocked-install",
        EFFECT_UNLOCKED_INSTALL,
        "A shared-disk module installs an entry (`os.replace`/`os.rename`) "
        "in a function that never takes the advisory entry lock, leaving "
        "nothing for the runtime sanitizer's lost-update check to order.",
    )
)
_register(
    DTRule(
        "DT008",
        "fork-unsafe-capture",
        EFFECT_FORK_UNSAFE,
        "A lambda, nested closure or bound method is submitted to a "
        "process pool: its captured state does not survive fork/spawn "
        "identically, and may not pickle at all.",
    )
)
_register(
    DTRule(
        "DT009",
        "builtin-hash",
        EFFECT_BUILTIN_HASH,
        "Shard-reachable code calls built-in `hash()`: string hashes are "
        "salted per process (PYTHONHASHSEED), so derived values differ "
        "between workers. Use `hashlib` or `repro.rng.derive_seed`.",
    )
)
_register(
    DTRule(
        "DT010",
        "entropy-read",
        EFFECT_ENTROPY,
        "Shard-reachable code reads OS entropy (`os.urandom`, "
        "`uuid.uuid4`, `secrets.*`): irreproducible by construction.",
    )
)

_RULE_BY_EFFECT: dict[str, DTRule] = {
    rule.effect: rule for rule in DT_REGISTRY.values() if rule.effect
}


def rule_for_effect(effect: str) -> DTRule:
    """The DT rule policing ``effect``; unknown effects raise ``KeyError``."""
    return _RULE_BY_EFFECT[effect]


def dt_rule_table() -> list[tuple[str, str, str, str]]:
    """``(rule_id, name, effect, description)`` rows, sorted by rule ID."""
    return [
        (r.rule_id, r.name, r.effect, r.description)
        for r in sorted(DT_REGISTRY.values(), key=lambda r: r.rule_id)
    ]


def _escape(text: str) -> str:
    return text.replace("|", "\\|")


def dt_rule_table_markdown() -> str:
    """The DT rule catalogue as a GitHub-flavoured markdown table.

    Embedded in ``docs/static_analysis.md`` between generated-content
    markers; ``tests/analysis/sanitizer/test_docs_drift.py`` fails when
    they diverge.
    """
    lines = [
        "| ID | Name | Effect | Finding |",
        "|----|------|--------|---------|",
    ]
    for rule_id, name, effect, description in dt_rule_table():
        effect_cell = f"`{effect}`" if effect else "—"
        lines.append(
            f"| {rule_id} | `{name}` | {effect_cell} | {_escape(description)} |"
        )
    return "\n".join(lines)
