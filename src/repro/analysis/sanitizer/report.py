"""Typed audit results: findings, suppressions and the report object."""

from __future__ import annotations

import json
from dataclasses import dataclass

__all__ = ["AuditFinding", "AuditReport", "Suppression"]


@dataclass(frozen=True)
class AuditFinding:
    """One unsuppressed determinism/concurrency hazard.

    Attributes
    ----------
    rule:
        ``DTnnn`` rule ID.
    name:
        The rule's kebab-case name.
    module:
        Dotted module the finding is in.
    qualname:
        Enclosing function/method qualname, or ``<module>`` for
        module-level code.
    path / lineno:
        Source location.
    message:
        What was found, with enough detail to act on.
    """

    rule: str
    name: str
    module: str
    qualname: str
    path: str
    lineno: int
    message: str

    def location(self) -> str:
        return f"{self.path}:{self.lineno}"

    def as_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "name": self.name,
            "module": self.module,
            "qualname": self.qualname,
            "path": self.path,
            "lineno": self.lineno,
            "message": self.message,
        }


@dataclass(frozen=True)
class Suppression:
    """One finding silenced by a justified ``# repro: allow`` pragma."""

    rule: str
    module: str
    path: str
    lineno: int
    reason: str

    def as_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "module": self.module,
            "path": self.path,
            "lineno": self.lineno,
            "reason": self.reason,
        }


@dataclass(frozen=True)
class AuditReport:
    """The result of one audit run.

    ``findings`` are the live (unsuppressed, unallowed) hazards;
    ``suppressions`` record every pragma that actually silenced a
    finding, so the cost of each hole stays visible in reports.
    """

    findings: tuple[AuditFinding, ...]
    suppressions: tuple[Suppression, ...]
    n_files: int
    n_functions: int
    n_reachable: int
    entry_points: tuple[str, ...]

    @property
    def clean(self) -> bool:
        return not self.findings

    def counts_by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts

    def summary(self) -> str:
        if self.clean:
            status = "clean"
        else:
            per_rule = ", ".join(
                f"{rule} x{n}" for rule, n in sorted(self.counts_by_rule().items())
            )
            status = f"{len(self.findings)} finding(s): {per_rule}"
        return (
            f"audit over {self.n_files} file(s), {self.n_functions} "
            f"function(s) ({self.n_reachable} shard-reachable): {status}; "
            f"{len(self.suppressions)} justified suppression(s)"
        )

    def to_text(self) -> str:
        lines = [self.summary()]
        for f in self.findings:
            lines.append(
                f"  {f.rule} [{f.name}] {f.location()} ({f.qualname}): {f.message}"
            )
        if self.suppressions:
            lines.append("suppressed:")
            for s in self.suppressions:
                lines.append(f"  {s.rule} {s.path}:{s.lineno}: {s.reason}")
        return "\n".join(lines)

    def as_dict(self) -> dict[str, object]:
        return {
            "clean": self.clean,
            "n_files": self.n_files,
            "n_functions": self.n_functions,
            "n_reachable": self.n_reachable,
            "entry_points": list(self.entry_points),
            "counts_by_rule": self.counts_by_rule(),
            "findings": [f.as_dict() for f in self.findings],
            "suppressions": [s.as_dict() for s in self.suppressions],
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2)
