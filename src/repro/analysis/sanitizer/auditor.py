"""AST + call-graph determinism audit over the repository's own source.

The auditor parses every Python file under the given roots, builds a
name-resolution map per module (imports, local definitions, ``self``
methods), extracts *effect occurrences* (ambient RNG, clock reads,
environment reads, unordered iteration, ...) per function, links a
conservative call graph, and computes the set of functions transitively
reachable from the catalogue's shard entry points
(:data:`repro.analysis.sanitizer.effects.ENTRY_POINTS`).

Each occurrence is then judged against the closed-world policy:

* out of the rule's scope (e.g. a clock read in unreachable report
  code) — ignored;
* covered by a catalogue :class:`~repro.analysis.sanitizer.effects.Allowance`
  — sanctioned library-wide;
* covered by an inline ``# repro: allow[DTnnn] -- reason`` pragma —
  suppressed, and the justification is recorded in the report;
* otherwise — an :class:`~repro.analysis.sanitizer.report.AuditFinding`.

Call-graph conservatism: method calls that cannot be resolved
statically (``obj.foo()``) link to *every* scanned function named
``foo`` (minus a blocklist of ubiquitous builtin-shadowing names), so
reachability over-approximates — a hazard is never missed because the
receiver's type was unknown, at the cost of occasionally auditing a
function that a precise analysis would skip.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from .effects import (
    ALLOWANCES,
    EFFECT_AMBIENT_RNG,
    EFFECT_BUILTIN_HASH,
    EFFECT_CATALOG,
    EFFECT_ENTROPY,
    EFFECT_ENV_READ,
    EFFECT_FORK_UNSAFE,
    EFFECT_MODULE_STATE,
    EFFECT_NONATOMIC_WRITE,
    EFFECT_UNLOCKED_INSTALL,
    EFFECT_UNORDERED_ITER,
    EFFECT_WALL_CLOCK,
    ENTRY_POINTS,
    LOCK_HELPER_NAMES,
    SCOPE_EVERYWHERE,
    SCOPE_REACHABLE,
    SCOPE_SHARED_DISK,
    SHARED_DISK_MODULES,
    Allowance,
)
from .report import AuditFinding, AuditReport, Suppression
from .rules import DT_REGISTRY, PRAGMA_RULE_ID, rule_for_effect

__all__ = ["ModuleIndex", "audit_paths", "build_module_index", "discover_files"]

#: Pseudo-qualname for module-level code.
MODULE_UNIT = "<module>"

#: Clock-reading calls policed by DT002.
_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Entropy-reading calls policed by DT010.
_ENTROPY_CALLS = frozenset(
    {
        "os.urandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.token_urlsafe",
        "secrets.randbelow",
        "secrets.choice",
        "random.SystemRandom",
    }
)

#: ``numpy.random`` attributes that are deterministic when given an
#: explicit seed argument (constructors, not global-state draws).
_NP_RANDOM_SEEDED_OK = frozenset(
    {"default_rng", "Generator", "SeedSequence", "BitGenerator", "PCG64", "Philox"}
)

#: Bare method names never resolved through the global name-match pass:
#: they shadow builtin/stdlib container methods and would link half the
#: call graph to unrelated helpers.
_BARE_NAME_BLOCKLIST = frozenset(
    {
        "add",
        "append",
        "clear",
        "close",
        "copy",
        "count",
        "decode",
        "encode",
        "exists",
        "extend",
        "format",
        "get",
        "glob",
        "index",
        "insert",
        "items",
        "join",
        "keys",
        "lower",
        "mkdir",
        "open",
        "pop",
        "read",
        "remove",
        "replace",
        "sort",
        "split",
        "startswith",
        "stat",
        "strip",
        "unlink",
        "update",
        "upper",
        "values",
        "write",
    }
)

#: Mutable-container constructors recognised by DT005.
_MUTABLE_FACTORIES = frozenset({"dict", "list", "set", "defaultdict", "OrderedDict"})

_PRAGMA_RE = re.compile(
    r"#\s*repro:\s*allow\[(?P<rules>[^\]]*)\]\s*(?:--\s*(?P<reason>.*\S))?\s*$"
)
_RULE_ID_RE = re.compile(r"^(DT|DX)\d{3}$")


def _known_rule_ids() -> frozenset[str]:
    """Every rule ID a pragma may legally name: DT plus DX.

    Imported lazily: the portability registry lives in a sibling package
    that itself builds on this module's index machinery, so a module-level
    import would be circular.
    """
    from ..portability.rules import DX_REGISTRY

    return frozenset(DT_REGISTRY) | frozenset(DX_REGISTRY)


@dataclass(frozen=True)
class _Pragma:
    lineno: int
    rules: frozenset[str]
    reason: str
    problems: tuple[str, ...]


@dataclass
class _Occurrence:
    effect: str
    lineno: int
    detail: str
    qualname: str


@dataclass
class _Unit:
    """One analysed code unit: a function, method or the module body."""

    module: str
    qualname: str
    lineno: int
    calls_dotted: set[str] = field(default_factory=set)
    calls_bare: set[str] = field(default_factory=set)
    calls_internal: set[str] = field(default_factory=set)
    occurrences: list[_Occurrence] = field(default_factory=list)
    #: Every import-rooted dotted call with its line, for passes (the DX
    #: host-dependence rules) that judge calls the DT effects ignore.
    dotted_call_sites: list[tuple[str, int]] = field(default_factory=list)
    #: Absolute-path string literals (value, lineno) seen in this unit.
    abs_path_literals: list[tuple[str, int]] = field(default_factory=list)
    #: The function's AST, for field-use passes; ``None`` for ``<module>``.
    node: ast.FunctionDef | ast.AsyncFunctionDef | None = None

    @property
    def key(self) -> str:
        return f"{self.module}:{self.qualname}"


@dataclass(frozen=True)
class _FieldInfo:
    """One annotated class-body field (a dataclass field, typically)."""

    name: str
    annotation: ast.expr | None
    lineno: int


@dataclass
class _ClassInfo:
    """One class definition: its annotated fields and resolved-ish bases."""

    name: str
    lineno: int
    fields: tuple[_FieldInfo, ...]
    bases: tuple[str, ...]


@dataclass
class _Module:
    name: str
    path: Path
    units: dict[str, _Unit] = field(default_factory=dict)
    pragmas: dict[int, _Pragma] = field(default_factory=dict)
    imports: dict[str, str] = field(default_factory=dict)
    imported_modules: set[str] = field(default_factory=set)
    comment_lines: set[int] = field(default_factory=set)
    classes: dict[str, _ClassInfo] = field(default_factory=dict)
    tree: ast.Module | None = None


def discover_files(paths: Iterable[str | Path]) -> list[Path]:
    """All ``.py`` files under ``paths`` (files pass through), sorted."""
    found: set[Path] = set()
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            found.update(p.rglob("*.py"))
        elif p.suffix == ".py":
            found.add(p)
    return sorted(found)


def _module_name(path: Path) -> str:
    """Dotted module name from the package layout around ``path``."""
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else path.stem


def _scan_pragmas(module: _Module, source: str) -> None:
    if "repro:" not in source:
        # Tokenisation is the audit's single hottest phase and
        # `comment_lines` is only ever consulted next to a pragma in the
        # same module, so pragma-free files skip it wholesale.
        return
    lines = source.splitlines()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        lineno, col = tok.start
        line = lines[lineno - 1] if lineno <= len(lines) else ""
        if not line[:col].strip():
            module.comment_lines.add(lineno)
        match = _PRAGMA_RE.search(tok.string)
        if match is None:
            continue
        ids = frozenset(
            token.strip() for token in match.group("rules").split(",") if token.strip()
        )
        reason = (match.group("reason") or "").strip()
        problems: list[str] = []
        if not ids:
            problems.append("names no rule IDs")
        known = _known_rule_ids()
        unknown = sorted(i for i in ids if not _RULE_ID_RE.match(i) or i not in known)
        if unknown:
            problems.append(f"unknown rule ID(s) {', '.join(unknown)}")
        if not reason:
            problems.append("carries no `-- justification`")
        module.pragmas[lineno] = _Pragma(lineno, ids, reason, tuple(problems))


class _Scanner(ast.NodeVisitor):
    """Extracts units, imports, call edges and effect occurrences."""

    def __init__(self, module: _Module) -> None:
        self.module = module
        self._class_stack: list[str] = []
        self._unit_stack: list[_Unit] = []
        self._class_methods: dict[str, set[str]] = {}
        self._local_functions: dict[str, set[str]] = {MODULE_UNIT: set()}
        root = _Unit(module.name, MODULE_UNIT, 1)
        module.units[MODULE_UNIT] = root
        self._unit_stack.append(root)

    # -- helpers -------------------------------------------------------
    @property
    def unit(self) -> _Unit:
        return self._unit_stack[-1]

    def _resolve_root(self, name: str) -> str:
        return self.module.imports.get(name, name)

    def _dotted(self, node: ast.expr) -> str | None:
        """``a.b.c`` as a dotted string with the root import-resolved."""
        parts: list[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.insert(0, current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        parts.insert(0, self._resolve_root(current.id))
        return ".".join(parts)

    def _record(self, effect: str, node: ast.AST, detail: str) -> None:
        lineno = getattr(node, "lineno", self.unit.lineno)
        self.unit.occurrences.append(
            _Occurrence(effect, int(lineno), detail, self.unit.qualname)
        )

    # -- imports -------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.module.imports[alias.asname or alias.name.split(".")[0]] = (
                alias.name if alias.asname else alias.name.split(".")[0]
            )
            self.module.imported_modules.add(alias.name)
        self.generic_visit(node)

    def _import_base(self, level: int) -> str:
        if level == 0:
            return ""
        is_package = self.module.path.name == "__init__.py"
        parts = self.module.name.split(".")
        if not is_package:
            parts = parts[:-1]
        parts = parts[: len(parts) - (level - 1)]
        return ".".join(parts)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        base = self._import_base(node.level)
        source = ".".join(p for p in (base, node.module or "") if p)
        for alias in node.names:
            if alias.name == "*":
                continue
            qualified = f"{source}.{alias.name}" if source else alias.name
            self.module.imports[alias.asname or alias.name] = qualified
            # `from pkg import mod` imports a module too; recording the
            # candidate is safe — reachability only follows scanned names.
            self.module.imported_modules.add(qualified)
        if source:
            self.module.imported_modules.add(source)
        self.generic_visit(node)

    # -- definitions ---------------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        methods = {
            item.name
            for item in node.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        self._class_methods[node.name] = methods
        qualname = ".".join(self._class_stack)
        fields = tuple(
            _FieldInfo(item.target.id, item.annotation, item.lineno)
            for item in node.body
            if isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name)
        )
        bases = tuple(
            dotted for dotted in (self._dotted(base) for base in node.bases)
            if dotted is not None
        )
        self.module.classes[qualname] = _ClassInfo(qualname, node.lineno, fields, bases)
        for item in node.body:
            self.visit(item)
        self._class_stack.pop()

    def _visit_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        prefix = ".".join(self._class_stack)
        if self.unit.qualname != MODULE_UNIT:
            parent = f"{self.unit.qualname}.<locals>"
            qualname = f"{parent}.{node.name}"
            self._local_functions.setdefault(self.unit.qualname, set()).add(node.name)
            # A nested def runs (at most) when its parent runs.
            self.unit.calls_internal.add(qualname)
        else:
            qualname = f"{prefix}.{node.name}" if prefix else node.name
            self._local_functions[MODULE_UNIT].add(node.name)
        unit = _Unit(self.module.name, qualname, node.lineno, node=node)
        self.module.units[qualname] = unit
        self._unit_stack.append(unit)
        for item in node.body:
            self.visit(item)
        self._unit_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    # -- module-level mutable state (DT005) ----------------------------
    def _check_module_state(self, target: ast.expr, value: ast.expr | None) -> None:
        if self.unit.qualname != MODULE_UNIT or self._class_stack:
            return
        if not isinstance(target, ast.Name) or value is None:
            return
        # Dunder metadata (`__all__`, ...) is never mutated after import.
        if target.id.startswith("__") and target.id.endswith("__"):
            return
        mutable = isinstance(value, (ast.Dict, ast.List, ast.Set, ast.DictComp,
                                     ast.ListComp, ast.SetComp))
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in _MUTABLE_FACTORIES
        ):
            mutable = True
        if mutable:
            self.unit.occurrences.append(
                _Occurrence(
                    EFFECT_MODULE_STATE,
                    value.lineno,
                    f"module-level mutable container `{target.id}`",
                    target.id,
                )
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_module_state(target, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._check_module_state(node.target, node.value)
        self.generic_visit(node)

    # -- iteration order (DT004) ---------------------------------------
    @staticmethod
    def _is_set_expr(node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")
        )

    def _check_iteration(self, iter_node: ast.expr) -> None:
        if self._is_set_expr(iter_node):
            self._record(
                EFFECT_UNORDERED_ITER,
                iter_node,
                "iterates a set expression in hash order (wrap in sorted())",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    def _visit_comprehension(self, node: ast.expr, gens: list[ast.comprehension]) -> None:
        for gen in gens:
            self._check_iteration(gen.iter)
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_comprehension(node, node.generators)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._visit_comprehension(node, node.generators)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._visit_comprehension(node, node.generators)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._visit_comprehension(node, node.generators)

    # -- raw facts for other rule families -----------------------------
    def visit_Constant(self, node: ast.Constant) -> None:
        value = node.value
        if (
            isinstance(value, str)
            and len(value) > 1
            and value.startswith(("/", "~/"))
            and "\n" not in value
        ):
            self.unit.abs_path_literals.append((value, node.lineno))

    # -- environment reads (DT003) -------------------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        dotted = self._dotted(node)
        if dotted == "os.environ":
            self._record(EFFECT_ENV_READ, node, "reads os.environ")
        self.generic_visit(node)

    # -- calls: effects + graph edges ----------------------------------
    def _check_rng_call(self, dotted: str, node: ast.Call) -> bool:
        if dotted.startswith("numpy.random."):
            attr = dotted.removeprefix("numpy.random.")
            if attr in _NP_RANDOM_SEEDED_OK:
                if not node.args and not node.keywords:
                    self._record(
                        EFFECT_AMBIENT_RNG,
                        node,
                        f"`{attr}()` without a seed draws OS entropy; pass a "
                        "seed derived via repro.rng.derive_seed",
                    )
                    return True
                return False
            self._record(
                EFFECT_AMBIENT_RNG,
                node,
                f"`numpy.random.{attr}` uses the global numpy generator",
            )
            return True
        if dotted.startswith("random.") and dotted not in _ENTROPY_CALLS:
            attr = dotted.removeprefix("random.")
            if attr == "Random" and (node.args or node.keywords):
                return False
            self._record(
                EFFECT_AMBIENT_RNG,
                node,
                f"`random.{attr}` uses the global stdlib generator",
            )
            return True
        return False

    def _check_shared_disk_write(self, dotted: str | None, node: ast.Call) -> None:
        if self.module.name not in SHARED_DISK_MODULES:
            return
        mode = _write_mode(node, dotted)
        if mode is not None:
            self._record(
                EFFECT_NONATOMIC_WRITE,
                node,
                f"write-mode file open ({mode}) — requires write-to-temp "
                "+ os.replace in the same function",
            )
        if dotted in ("os.rename", "os.replace"):
            self._record(
                EFFECT_UNLOCKED_INSTALL,
                node,
                f"`{dotted}` install — requires the advisory entry lock "
                "in the same function",
            )

    def _check_submit(self, node: ast.Call) -> None:
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "submit"):
            return
        if not node.args:
            return
        target = node.args[0]
        problem: str | None = None
        if isinstance(target, ast.Lambda):
            problem = "a lambda"
        elif isinstance(target, ast.Attribute):
            problem = f"a bound method (`.{target.attr}`)"
        elif isinstance(target, ast.Name):
            enclosing = self.unit.qualname
            if target.id in self._local_functions.get(enclosing, set()):
                problem = f"a nested closure (`{target.id}`)"
        if problem is not None:
            self._record(
                EFFECT_FORK_UNSAFE,
                node,
                f"submits {problem} to a process pool; ship a module-level "
                "function instead",
            )

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        dotted: str | None = None
        if isinstance(func, ast.Name):
            name = func.id
            if name == "hash":
                self._record(
                    EFFECT_BUILTIN_HASH, node, "built-in hash() is salted per process"
                )
            resolved = self.module.imports.get(name)
            if resolved is not None:
                dotted = resolved
                self.unit.calls_dotted.add(resolved)
                self.unit.dotted_call_sites.append((resolved, node.lineno))
            elif name in self._local_functions[MODULE_UNIT]:
                self.unit.calls_internal.add(self._qualify_local(name))
            elif name not in _MUTABLE_FACTORIES:
                self.unit.calls_bare.add(name)
        elif isinstance(func, ast.Attribute):
            dotted = self._dotted(func)
            if dotted is not None and dotted.split(".", 1)[0] in ("self", "cls"):
                method = func.attr
                cls = self._class_stack[-1] if self._class_stack else None
                if cls is not None and method in self._class_methods.get(cls, set()):
                    self.unit.calls_internal.add(f"{cls}.{method}")
                else:
                    self.unit.calls_bare.add(method)
                dotted = None
            elif dotted is not None:
                self.unit.calls_dotted.add(dotted)
                self.unit.dotted_call_sites.append((dotted, node.lineno))
            else:
                self.unit.calls_bare.add(func.attr)
        if dotted is not None:
            if not self._check_rng_call(dotted, node):
                if dotted in _WALL_CLOCK_CALLS:
                    self._record(EFFECT_WALL_CLOCK, node, f"reads `{dotted}`")
                elif dotted in _ENTROPY_CALLS:
                    self._record(EFFECT_ENTROPY, node, f"reads OS entropy via `{dotted}`")
                elif dotted == "os.getenv":
                    self._record(EFFECT_ENV_READ, node, "reads os.getenv")
        if (
            isinstance(func, ast.Name)
            and func.id in ("list", "tuple")
            and node.args
            and self._is_set_expr(node.args[0])
        ):
            self._record(
                EFFECT_UNORDERED_ITER,
                node,
                f"materialises a set with {func.id}() in hash order "
                "(use sorted())",
            )
        self._check_shared_disk_write(dotted, node)
        self._check_submit(node)
        self.generic_visit(node)

    def _qualify_local(self, name: str) -> str:
        """Qualname of a top-level function/class method named ``name``."""
        if self._class_stack and name in self._class_methods.get(
            self._class_stack[-1], set()
        ):
            return f"{self._class_stack[-1]}.{name}"
        return name


def _write_mode(node: ast.Call, dotted: str | None) -> str | None:
    """The write/append mode string of a file-open call, if any."""
    func = node.func
    attr = func.attr if isinstance(func, ast.Attribute) else None
    is_open = (isinstance(func, ast.Name) and func.id == "open") or attr == "open"
    if attr in ("write_text", "write_bytes"):
        return f".{attr}"
    if not is_open:
        return None
    mode_node: ast.expr | None = None
    arg_index = 1 if isinstance(func, ast.Name) else 0
    if len(node.args) > arg_index:
        mode_node = node.args[arg_index]
    for keyword in node.keywords:
        if keyword.arg == "mode":
            mode_node = keyword.value
    if isinstance(mode_node, ast.Constant) and isinstance(mode_node.value, str):
        mode = mode_node.value
        if any(flag in mode for flag in ("w", "a", "x", "+")):
            return f"mode={mode!r}"
    return None


# ----------------------------------------------------------------------
# Graph construction and policy evaluation.


def _scan_module(path: Path) -> _Module | None:
    source = path.read_text(encoding="utf-8")
    module = _Module(_module_name(path), path)
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError:
        return None
    module.tree = tree
    _scan_pragmas(module, source)
    _Scanner(module).visit(tree)
    return module


@dataclass(frozen=True)
class ModuleIndex:
    """One parsed view of a source tree, shared between rule families.

    Building the index is the expensive part of an audit (file IO,
    ``ast.parse``, the scanner walk, call-graph linking).  ``repro audit``
    builds it once and hands the same instance to the DT determinism pass
    (:func:`audit_paths`) and the DX portability pass
    (:func:`repro.analysis.portability.audit_portability`), keeping the
    combined run single-parse.
    """

    files: tuple[Path, ...]
    modules: dict[str, _Module]
    function_index: dict[str, list[str]]
    edges: dict[str, set[str]]

    def reachable_units(self, entry_points: Sequence[str]) -> set[str]:
        """Unit keys transitively reachable from ``module:qualname`` roots."""
        return _reachable_units(self.modules, self.edges, entry_points)

    def reachable_modules(self, reachable: set[str]) -> set[str]:
        """Modules whose import-time code runs for ``reachable`` units."""
        return _reachable_modules(self.modules, reachable)


def build_module_index(paths: Iterable[str | Path]) -> ModuleIndex:
    """Parse every Python file under ``paths`` into a shared index."""
    files = discover_files(paths)
    modules: dict[str, _Module] = {}
    for path in files:
        scanned = _scan_module(path)
        if scanned is not None:
            modules[scanned.name] = scanned
    index = _function_index(modules)
    edges = _build_edges(modules, index)
    return ModuleIndex(
        files=tuple(files),
        modules=modules,
        function_index=index,
        edges=edges,
    )


def _function_index(modules: dict[str, _Module]) -> dict[str, list[str]]:
    """Final-name-component -> unit keys, for bare-name resolution."""
    index: dict[str, list[str]] = {}
    for module in modules.values():
        for qualname, unit in module.units.items():
            if qualname == MODULE_UNIT:
                continue
            leaf = qualname.split(".")[-1]
            index.setdefault(leaf, []).append(unit.key)
    return index


def _resolve_dotted(dotted: str, modules: dict[str, _Module]) -> list[str]:
    """Resolve an import-rooted dotted call to scanned unit keys."""
    parts = dotted.split(".")
    for i in range(len(parts) - 1, 0, -1):
        mod_name = ".".join(parts[:i])
        module = modules.get(mod_name)
        if module is None:
            continue
        rest = ".".join(parts[i:])
        if rest in module.units:
            return [module.units[rest].key]
        init = f"{rest}.__init__"
        if init in module.units:
            return [module.units[init].key]
        # A class whose methods are linked lazily via bare names.
        return []
    return []


def _build_edges(
    modules: dict[str, _Module], index: dict[str, list[str]]
) -> dict[str, set[str]]:
    edges: dict[str, set[str]] = {}
    for module in modules.values():
        for unit in module.units.values():
            out: set[str] = set()
            for qualname in unit.calls_internal:
                if qualname in module.units:
                    out.add(module.units[qualname].key)
            for dotted in unit.calls_dotted:
                out.update(_resolve_dotted(dotted, modules))
            for bare in unit.calls_bare:
                if bare in _BARE_NAME_BLOCKLIST:
                    continue
                out.update(index.get(bare, ()))
            edges[unit.key] = out
    return edges


def _reachable_units(
    modules: dict[str, _Module],
    edges: dict[str, set[str]],
    entry_points: Sequence[str],
) -> set[str]:
    queue: list[str] = []
    for entry in entry_points:
        mod_name, _, qualname = entry.partition(":")
        module = modules.get(mod_name)
        if module is not None and qualname in module.units:
            queue.append(module.units[qualname].key)
    seen: set[str] = set(queue)
    while queue:
        key = queue.pop()
        for nxt in edges.get(key, ()):
            if nxt not in seen:
                seen.add(nxt)
                queue.append(nxt)
    return seen


def _reachable_modules(
    modules: dict[str, _Module], reachable: set[str]
) -> set[str]:
    """Modules whose import-time code runs in a worker: those defining a
    reachable function, closed over their scanned imports."""
    seen = {key.split(":", 1)[0] for key in reachable}
    queue = list(seen)
    while queue:
        name = queue.pop()
        module = modules.get(name)
        if module is None:
            continue
        for imported in module.imported_modules:
            if imported in modules and imported not in seen:
                seen.add(imported)
                queue.append(imported)
    return seen


def _lock_disciplined(unit: _Unit) -> bool:
    helpers = set(LOCK_HELPER_NAMES)
    if unit.calls_bare & helpers or unit.calls_internal & helpers:
        return True
    return any(
        call.split(".")[-1] in helpers
        for call in unit.calls_dotted | unit.calls_internal
    )


def _allowed(
    occ: _Occurrence, module: str, allowances: Sequence[Allowance]
) -> bool:
    for allow in allowances:
        if allow.effect != occ.effect:
            continue
        if module != allow.module and not module.startswith(allow.module + "."):
            continue
        if allow.qualname is None:
            return True
        if occ.qualname == allow.qualname or occ.qualname.startswith(
            allow.qualname + "."
        ):
            return True
    return False


def _pragma_for_line(module: _Module, lineno: int) -> _Pragma | None:
    pragma = module.pragmas.get(lineno)
    if pragma is not None:
        return pragma
    previous = module.pragmas.get(lineno - 1)
    if previous is not None and previous.lineno in module.comment_lines:
        return previous
    return None


def audit_paths(
    paths: Iterable[str | Path] = (),
    entry_points: Sequence[str] | None = None,
    allowances: Sequence[Allowance] | None = None,
    disabled: frozenset[str] = frozenset(),
    index: ModuleIndex | None = None,
) -> AuditReport:
    """Audit every Python file under ``paths`` and return the report.

    Parameters
    ----------
    entry_points:
        ``module:qualname`` reachability roots; defaults to the
        catalogue's :data:`~repro.analysis.sanitizer.effects.ENTRY_POINTS`.
    allowances:
        The allowance policy; defaults to the catalogue's
        :data:`~repro.analysis.sanitizer.effects.ALLOWANCES`.
    disabled:
        Rule IDs to skip entirely (CLI ``--disable``).
    index:
        A prebuilt :class:`ModuleIndex` over the same ``paths`` (from
        :func:`build_module_index`); passing one makes a combined
        DT + DX audit single-parse.  ``None`` builds a fresh index.
    """
    roots = ENTRY_POINTS if entry_points is None else tuple(entry_points)
    policy = ALLOWANCES if allowances is None else tuple(allowances)
    if index is None:
        index = build_module_index(paths)
    files = index.files
    modules = index.modules
    reachable = index.reachable_units(roots)
    reachable_mods = index.reachable_modules(reachable)
    scope_by_effect = {spec.effect: spec.scope for spec in EFFECT_CATALOG}

    findings: list[AuditFinding] = []
    suppressions: list[Suppression] = []
    n_functions = 0
    for module in modules.values():
        findings.extend(_pragma_findings(module, disabled))
        for unit in module.units.values():
            if unit.qualname != MODULE_UNIT:
                n_functions += 1
            for occ in unit.occurrences:
                _judge(
                    occ,
                    module,
                    unit,
                    scope_by_effect,
                    reachable,
                    reachable_mods,
                    policy,
                    disabled,
                    findings,
                    suppressions,
                )
    findings.sort(key=lambda f: (f.rule, f.path, f.lineno))
    suppressions.sort(key=lambda s: (s.rule, s.path, s.lineno))
    return AuditReport(
        findings=tuple(findings),
        suppressions=tuple(suppressions),
        n_files=len(files),
        n_functions=n_functions,
        n_reachable=len(reachable),
        entry_points=tuple(roots),
    )


def _pragma_findings(
    module: _Module, disabled: frozenset[str]
) -> list[AuditFinding]:
    if PRAGMA_RULE_ID in disabled:
        return []
    rule = DT_REGISTRY[PRAGMA_RULE_ID]
    return [
        AuditFinding(
            rule=rule.rule_id,
            name=rule.name,
            module=module.name,
            qualname=MODULE_UNIT,
            path=str(module.path),
            lineno=pragma.lineno,
            message="malformed allow pragma: " + "; ".join(pragma.problems),
        )
        for pragma in sorted(module.pragmas.values(), key=lambda p: p.lineno)
        if pragma.problems
    ]


def _in_scope(
    occ: _Occurrence,
    module: _Module,
    unit: _Unit,
    scope: str,
    reachable: set[str],
    reachable_mods: set[str],
) -> bool:
    if scope == SCOPE_EVERYWHERE:
        return True
    if scope == SCOPE_SHARED_DISK:
        return module.name in SHARED_DISK_MODULES
    if scope == SCOPE_REACHABLE:
        if unit.qualname == MODULE_UNIT:
            return module.name in reachable_mods
        return unit.key in reachable
    raise AssertionError(f"unknown scope {scope!r}")


def _judge(
    occ: _Occurrence,
    module: _Module,
    unit: _Unit,
    scope_by_effect: dict[str, str],
    reachable: set[str],
    reachable_mods: set[str],
    policy: Sequence[Allowance],
    disabled: frozenset[str],
    findings: list[AuditFinding],
    suppressions: list[Suppression],
) -> None:
    rule = rule_for_effect(occ.effect)
    if rule.rule_id in disabled:
        return
    if occ.effect == EFFECT_UNLOCKED_INSTALL and _lock_disciplined(unit):
        return
    if occ.effect == EFFECT_NONATOMIC_WRITE and "os.replace" in unit.calls_dotted:
        return
    scope = scope_by_effect[occ.effect]
    if not _in_scope(occ, module, unit, scope, reachable, reachable_mods):
        return
    if _allowed(occ, module.name, policy):
        return
    pragma = _pragma_for_line(module, occ.lineno)
    if pragma is not None and not pragma.problems and rule.rule_id in pragma.rules:
        suppressions.append(
            Suppression(
                rule=rule.rule_id,
                module=module.name,
                path=str(module.path),
                lineno=occ.lineno,
                reason=pragma.reason,
            )
        )
        return
    findings.append(
        AuditFinding(
            rule=rule.rule_id,
            name=rule.name,
            module=module.name,
            qualname=occ.qualname,
            path=str(module.path),
            lineno=occ.lineno,
            message=occ.detail,
        )
    )
