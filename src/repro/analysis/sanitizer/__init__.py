"""Determinism & concurrency sanitizer: static shard-purity analysis.

The static half of the reproducibility story.  ``tests/parallel`` proves
the determinism invariant *empirically* (bitwise comparisons at several
worker counts); this package proves it *structurally*: an AST +
call-graph pass over the repository's own source verifies that no code
reachable from a shard entry point performs an uncatalogued ambient
effect (RNG, clocks, environment, hash-order iteration, unlocked shared
writes, ...).

* :mod:`~repro.analysis.sanitizer.effects` — the closed-world effect
  catalogue, entry points, and allowance policy;
* :mod:`~repro.analysis.sanitizer.rules` — the stable ``DTnnn`` rule
  registry and the generated docs table;
* :mod:`~repro.analysis.sanitizer.auditor` — the analysis engine
  (:func:`audit_paths`);
* :mod:`~repro.analysis.sanitizer.report` — typed findings and reports.

Exposed on the command line as ``repro audit`` and gated to zero
findings in ``scripts/check.sh``.  The *runtime* half — the cache race
detector enabled by ``REPRO_SANITIZE=1`` — lives in
:mod:`repro.parallel.sanitize`.
"""

from .auditor import ModuleIndex, audit_paths, build_module_index, discover_files
from .effects import (
    ALLOWANCES,
    EFFECT_CATALOG,
    ENTRY_POINTS,
    Allowance,
    EffectSpec,
    effect_catalogue_markdown,
)
from .report import AuditFinding, AuditReport, Suppression
from .rules import (
    DT_REGISTRY,
    DTRule,
    dt_rule_table,
    dt_rule_table_markdown,
    rule_for_effect,
)

__all__ = [
    "ALLOWANCES",
    "Allowance",
    "AuditFinding",
    "AuditReport",
    "DTRule",
    "DT_REGISTRY",
    "EFFECT_CATALOG",
    "ENTRY_POINTS",
    "EffectSpec",
    "ModuleIndex",
    "Suppression",
    "audit_paths",
    "build_module_index",
    "discover_files",
    "dt_rule_table",
    "dt_rule_table_markdown",
    "effect_catalogue_markdown",
    "rule_for_effect",
]
