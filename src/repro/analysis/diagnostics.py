"""Typed diagnostics and lint reports for netlist static analysis.

A :class:`Diagnostic` is one finding of one rule (stable ``NLxxx`` rule ID,
severity, human-readable message, the node ids or bus it concerns).  A
:class:`LintReport` is the ordered collection of findings for one netlist,
with text and JSON renderings and the gate predicate :meth:`LintReport.ok`.

Severities are ordered (``INFO < WARNING < ERROR``) so gate thresholds and
filters compare naturally.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field

from ..errors import AnalysisError

__all__ = ["Severity", "Diagnostic", "LintReport"]


class Severity(enum.IntEnum):
    """Diagnostic severity, ordered so ``ERROR > WARNING > INFO``."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @classmethod
    def parse(cls, value: "Severity | str") -> "Severity":
        """Coerce a severity name (case-insensitive) or instance."""
        if isinstance(value, Severity):
            return value
        try:
            return cls[str(value).upper()]
        except KeyError:
            raise AnalysisError(
                f"unknown severity {value!r}; expected one of "
                f"{[s.name.lower() for s in cls]}"
            ) from None

    def __str__(self) -> str:  # "error", not "Severity.ERROR"
        return self.name.lower()


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one lint rule.

    Attributes
    ----------
    rule:
        Stable rule ID, e.g. ``"NL002"``.
    name:
        Short rule slug, e.g. ``"dead-logic"``.
    severity:
        Effective severity (after any configuration overrides).
    message:
        Human-readable description of this specific finding.
    nodes:
        Node ids the finding anchors to (possibly empty).
    bus:
        Bus name the finding concerns, if any.
    """

    rule: str
    name: str
    severity: Severity
    message: str
    nodes: tuple[int, ...] = ()
    bus: str | None = None

    def format(self) -> str:
        """One-line rendering: ``error NL002 [dead-logic] <message>``."""
        loc = ""
        if self.nodes:
            ids = ", ".join(str(n) for n in self.nodes[:8])
            more = f", +{len(self.nodes) - 8} more" if len(self.nodes) > 8 else ""
            loc = f" (nodes {ids}{more})"
        if self.bus is not None:
            loc += f" (bus {self.bus!r})"
        return f"{self.severity.name.lower():7s} {self.rule} [{self.name}] {self.message}{loc}"

    def to_dict(self) -> dict:
        d: dict = {
            "rule": self.rule,
            "name": self.name,
            "severity": str(self.severity),
            "message": self.message,
        }
        if self.nodes:
            d["nodes"] = list(self.nodes)
        if self.bus is not None:
            d["bus"] = self.bus
        return d


@dataclass(frozen=True)
class LintReport:
    """All diagnostics the analyser produced for one netlist.

    Diagnostics are ordered most-severe first, then by rule ID, then by
    anchor nodes, so renderings are deterministic.
    """

    netlist: str
    n_nodes: int
    diagnostics: tuple[Diagnostic, ...] = field(default_factory=tuple)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return self.at_severity(Severity.ERROR)

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return self.at_severity(Severity.WARNING)

    @property
    def infos(self) -> tuple[Diagnostic, ...]:
        return self.at_severity(Severity.INFO)

    def at_severity(self, severity: Severity) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == severity)

    def by_rule(self, rule: str) -> tuple[Diagnostic, ...]:
        """All findings of one rule ID (e.g. ``"NL002"``)."""
        return tuple(d for d in self.diagnostics if d.rule == rule)

    @property
    def rule_ids(self) -> tuple[str, ...]:
        """Sorted unique rule IDs that fired."""
        return tuple(sorted({d.rule for d in self.diagnostics}))

    @property
    def max_severity(self) -> Severity | None:
        """Highest severity present, or ``None`` for a clean report."""
        if not self.diagnostics:
            return None
        return max(d.severity for d in self.diagnostics)

    def ok(self, fail_on: Severity = Severity.ERROR) -> bool:
        """True when no diagnostic reaches the ``fail_on`` threshold."""
        return not any(d.severity >= fail_on for d in self.diagnostics)

    @property
    def clean(self) -> bool:
        """True when the report has no diagnostics at all."""
        return not self.diagnostics

    # ------------------------------------------------------------------
    # renderings
    # ------------------------------------------------------------------
    def summary(self) -> str:
        counts = (
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s), "
            f"{len(self.infos)} info(s)"
        )
        return f"lint {self.netlist!r} ({self.n_nodes} nodes): {counts}"

    def to_text(self, min_severity: Severity = Severity.INFO) -> str:
        """Multi-line human-readable rendering."""
        lines = [self.summary()]
        for d in self.diagnostics:
            if d.severity >= min_severity:
                lines.append("  " + d.format())
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "netlist": self.netlist,
            "n_nodes": self.n_nodes,
            "counts": {
                "error": len(self.errors),
                "warning": len(self.warnings),
                "info": len(self.infos),
            },
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)
