"""Gibbs sampling of projection vectors (paper Sec. V, after ref. [9]).

Algorithm 1 estimates the projection matrix one column at a time; each
column is drawn from the posterior of a single-factor Bayesian model of
the *residual* data

``x_pi = lambda_p * f_i + e_pi``,  ``f_i ~ N(0, 1)``,  ``e_pi ~ N(0, psi_p)``

where the coefficients ``lambda_p`` live on the discrete sign-magnitude
grid of the current word-length and carry the over-clocking prior
``g(E(lambda, freq))`` of eq. (6).  Because the grid is finite, the
coefficient conditionals are *exact* categorical distributions: the
Gaussian conditional likelihood is evaluated on the grid, multiplied by
the prior mass, normalised and sampled — no Metropolis step is needed.

Gibbs sweep:

1. ``f | lambda, psi, X`` — Gaussian, sampled for all N cases at once;
2. ``lambda_p | f, psi, X`` — independent categorical per row ``p``
   (Gumbel-max sampling over the grid);
3. ``psi_p | lambda, f, X`` — inverse gamma.

After burn-in, thinned samples are scored with the local objective
(column reconstruction MSE plus the column's over-clocking variance
penalty) and the best-scoring sample is returned — the sampling-based
minimisation of T the paper describes in Sec. V-C.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import OptimizationError
from ..models.prior import CoefficientPrior

__all__ = ["GibbsConfig", "SampledProjection", "sample_projection_vector"]


@dataclass(frozen=True)
class GibbsConfig:
    """Sampler settings (Table I: burn-in 1000, 3000 samples).

    Attributes
    ----------
    burn_in:
        Discarded initial sweeps.
    n_samples:
        Post-burn-in sweeps.
    thin:
        Keep every ``thin``-th post-burn-in sample for scoring.
    a0, b0_scale:
        Inverse-gamma noise prior: shape ``a0``, scale
        ``b0_scale * row variance`` (weakly informative, data-scaled).
    """

    burn_in: int = 1000
    n_samples: int = 3000
    thin: int = 10
    a0: float = 2.0
    b0_scale: float = 0.5
    polish_passes: int = 4

    def __post_init__(self) -> None:
        if self.burn_in < 0 or self.n_samples < 1:
            raise OptimizationError("invalid burn-in / sample counts")
        if self.thin < 1:
            raise OptimizationError("thin must be >= 1")
        if self.a0 <= 1.0:
            raise OptimizationError("a0 must exceed 1 for a finite prior mean")
        if self.b0_scale <= 0:
            raise OptimizationError("b0_scale must be positive")
        if self.polish_passes < 0:
            raise OptimizationError("polish_passes must be non-negative")


@dataclass(frozen=True)
class SampledProjection:
    """Best-scoring projection vector from one Gibbs run.

    Attributes
    ----------
    values:
        Grid coefficient values, shape ``(P,)``.
    magnitudes, signs:
        Sign-magnitude decomposition.
    wordlength:
        Grid word-length.
    score:
        Local objective (column MSE + over-clocking penalty / P).
    mse:
        Column reconstruction MSE alone.
    oc_penalty:
        Over-clocking variance term alone.
    n_scored:
        Number of thinned samples that competed.
    """

    values: np.ndarray
    magnitudes: np.ndarray
    signs: np.ndarray
    wordlength: int
    score: float
    mse: float
    oc_penalty: float
    n_scored: int


def _oc_penalty(lam: np.ndarray, per_coeff_var: np.ndarray, p: int) -> float:
    """Column over-clocking penalty with dual-reconstruction amplification.

    The host-side dual reconstruction scales a column's factor error by
    ``1 / ||lambda||^2`` in energy, so the penalty is
    ``sum_p var(eps_p) / (P * ||lambda||^2)`` — for a unit-norm column this
    reduces to the paper's plain ``sum var / P``.
    """
    norm_sq = float(lam @ lam)
    return float(per_coeff_var.sum()) / (p * max(norm_sq, 1e-6))


def _polish(
    lam_idx: np.ndarray,
    x: np.ndarray,
    grid: np.ndarray,
    oc_var: np.ndarray,
    passes: int,
) -> np.ndarray:
    """Coordinate-descent refinement of a sampled column on the grid.

    Alternates an exact LS factor refit with per-coefficient exact grid
    minimisation of the local objective ``column_MSE + oc_penalty / P``.
    Both half-steps never increase the objective, so the refinement is a
    deterministic descent from the sampled start — the sampler explores,
    the polish lands each explored basin on its floor (the "designs that
    minimise the objective function T" of paper Sec. V-C).
    """
    p, n = x.shape
    idx = lam_idx.copy()
    for _ in range(passes):
        lam = grid[idx]
        denom = float(lam @ lam)
        if denom <= 0.0:
            f = np.zeros(n)
        else:
            f = (lam @ x) / denom
        sff = float(f @ f)
        if sff <= 0.0:
            break
        sxf = x @ f  # (P,)
        # ||x_p - v f||^2 = ||x_p||^2 - 2 v sxf_p + v^2 sff ; constant
        # terms drop from the argmin.  Objective per grid value v adds the
        # over-clocking penalty N * oc_var(v) / ||lambda||^2 (both sides
        # scaled by P*N; the dual amplification uses the current norm).
        cost = (
            -2.0 * sxf[:, None] * grid[None, :]
            + sff * grid[None, :] ** 2
            + n * oc_var[None, :] / max(denom, 1e-6)
        )
        new_idx = np.argmin(cost, axis=1)
        if np.array_equal(new_idx, idx):
            break
        idx = new_idx
    return idx


def _column_mse(lam: np.ndarray, x: np.ndarray) -> float:
    """Residual MSE after regressing ``x`` on the single column ``lam``."""
    denom = float(lam @ lam)
    if denom <= 0.0:
        return float((x**2).sum() / x.size)
    f = (lam @ x) / denom
    err = x - np.outer(lam, f)
    return float((err**2).sum() / err.size)


def sample_projection_vector(
    x: np.ndarray,
    prior: CoefficientPrior,
    oc_variance_per_value: np.ndarray,
    rng: np.random.Generator,
    config: GibbsConfig = GibbsConfig(),
) -> SampledProjection:
    """Draw one projection vector for residual data ``x`` (shape (P, N)).

    Parameters
    ----------
    x:
        Residual data matrix (P, N).
    prior:
        Coefficient prior over the signed grid (carries word-length and
        target frequency).
    oc_variance_per_value:
        Over-clocking variance (value units) for each grid entry, aligned
        with ``prior.values`` — used for sample scoring.
    rng:
        Randomness source.
    """
    x = np.asarray(x, dtype=float)
    if x.ndim != 2:
        raise OptimizationError(f"residual data must be (P, N), got {x.shape}")
    p, n = x.shape
    if n < 2:
        raise OptimizationError("need at least 2 training cases")
    grid = prior.values
    log_prior = prior.log_mass()
    oc_var = np.asarray(oc_variance_per_value, dtype=float)
    if oc_var.shape != grid.shape:
        raise OptimizationError(
            "oc_variance_per_value must align with the prior grid"
        )

    # --- initialisation -------------------------------------------------
    row_var = x.var(axis=1)
    psi = np.maximum(row_var, 1e-8)
    b0 = config.b0_scale * np.maximum(row_var, 1e-8) * (config.a0 - 1.0)

    # Start from the leading residual direction snapped to the grid.
    cov = (x @ x.T) / n
    v = np.ones(p) / np.sqrt(p)
    for _ in range(50):
        w = cov @ v
        norm = np.linalg.norm(w)
        if norm < 1e-12:
            break
        v = w / norm
    lam_idx = np.abs(grid[None, :] - v[:, None]).argmin(axis=1)
    lam = grid[lam_idx]

    best: tuple[float, np.ndarray, float, float] | None = None
    n_scored = 0
    total_iters = config.burn_in + config.n_samples

    for it in range(total_iters):
        # --- 1. factors -------------------------------------------------
        w_rows = lam / psi  # (P,)
        prec_f = 1.0 + float(lam @ w_rows)
        mean_f = (w_rows @ x) / prec_f  # (N,)
        f = mean_f + rng.normal(scale=prec_f**-0.5, size=n)

        # --- 2. coefficients (exact grid conditionals) ------------------
        sff = float(f @ f)
        sxf = x @ f  # (P,)
        prec_rows = sff / psi  # (P,)
        mu_rows = np.where(sff > 0, sxf / max(sff, 1e-300), 0.0)
        # log posterior over grid: (P, G)
        delta = grid[None, :] - mu_rows[:, None]
        logits = log_prior[None, :] - 0.5 * prec_rows[:, None] * delta**2
        gumbel = rng.gumbel(size=logits.shape)
        lam_idx = np.argmax(logits + gumbel, axis=1)
        lam = grid[lam_idx]

        # --- 3. noise ----------------------------------------------------
        resid = x - np.outer(lam, f)
        shape = config.a0 + 0.5 * n
        scale = b0 + 0.5 * (resid**2).sum(axis=1)
        psi = scale / rng.gamma(shape, 1.0, size=p)
        np.clip(psi, 1e-10, None, out=psi)

        # --- scoring -----------------------------------------------------
        if it >= config.burn_in and (it - config.burn_in) % config.thin == 0:
            mse = _column_mse(lam, x)
            oc = _oc_penalty(lam, oc_var[lam_idx], p)
            score = mse + oc
            n_scored += 1
            if best is None or score < best[0]:
                best = (score, lam_idx.copy(), mse, oc)

    if best is None:  # pragma: no cover - guarded by config validation
        raise OptimizationError("no samples were scored")

    score, idx, mse, oc = best
    if config.polish_passes:
        polished = _polish(idx, x, grid, oc_var, config.polish_passes)
        p_mse = _column_mse(grid[polished], x)
        p_oc = _oc_penalty(grid[polished], oc_var[polished], p)
        p_score = p_mse + p_oc
        if p_score < score:
            score, idx, mse, oc = p_score, polished, p_mse, p_oc
    values = grid[idx]
    mags = prior.magnitude_of(idx)
    signs = np.where(values < 0, -1, 1).astype(np.int64)
    signs = np.where(mags == 0, 1, signs)
    return SampledProjection(
        values=values,
        magnitudes=mags,
        signs=signs,
        wordlength=prior.wordlength,
        score=float(score),
        mse=float(mse),
        oc_penalty=float(oc),
        n_scored=n_scored,
    )
