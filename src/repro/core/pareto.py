"""Pareto extraction and Q-bin survivor selection (Algorithm 1).

Algorithm 1 keeps, at each dimension step, the candidate projections on
the (area, MSE) Pareto front ("min MSE for a given area"), splits the MSE
span into Q bins, and extracts the least-MSE candidate from each bin —
preserving diversity along the trade-off curve instead of keeping Q
near-identical best designs.
"""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

import numpy as np

from ..errors import OptimizationError

__all__ = ["pareto_front", "select_q_bins"]

T = TypeVar("T")


def pareto_front(
    items: Sequence[T],
    area_of: Callable[[T], float],
    mse_of: Callable[[T], float],
) -> list[T]:
    """Items not dominated in (area, mse), both minimised.

    Ties: an item is kept unless some other item is <= in both metrics
    and < in at least one.  Output is sorted by ascending area.
    """
    if not items:
        return []
    areas = np.asarray([area_of(i) for i in items], dtype=float)
    mses = np.asarray([mse_of(i) for i in items], dtype=float)
    if np.any(~np.isfinite(areas)) or np.any(~np.isfinite(mses)):
        raise OptimizationError("non-finite metric in Pareto extraction")
    order = np.lexsort((mses, areas))  # by area, then mse
    front: list[int] = []
    best_mse = np.inf
    for idx in order:
        if mses[idx] < best_mse:
            front.append(int(idx))
            best_mse = mses[idx]
    return [items[i] for i in front]


def select_q_bins(
    items: Sequence[T],
    q: int,
    mse_of: Callable[[T], float],
) -> list[T]:
    """Extract up to Q candidates, one per MSE bin (Alg. 1).

    Bins partition ``[MSE_min, MSE_max]`` evenly; from each non-empty bin
    the least-MSE item survives.  If fewer than Q bins are populated the
    selection is padded by the globally best remaining items, so exactly
    ``min(q, len(items))`` candidates return.
    """
    if q < 1:
        raise OptimizationError("Q must be >= 1 (Alg. 1 'Require' clause)")
    if not items:
        return []
    mses = np.asarray([mse_of(i) for i in items], dtype=float)
    if np.any(~np.isfinite(mses)):
        raise OptimizationError("non-finite MSE in bin selection")
    lo, hi = float(mses.min()), float(mses.max())
    if hi <= lo or len(items) <= q:
        order = np.argsort(mses)[: min(q, len(items))]
        return [items[int(i)] for i in order]

    edges = np.linspace(lo, hi, q + 1)
    bins = np.clip(np.digitize(mses, edges[1:-1]), 0, q - 1)
    chosen: list[int] = []
    for b in range(q):
        in_bin = np.nonzero(bins == b)[0]
        if in_bin.size:
            chosen.append(int(in_bin[np.argmin(mses[in_bin])]))
    if len(chosen) < q:
        rest = [i for i in np.argsort(mses) if int(i) not in set(chosen)]
        chosen.extend(int(i) for i in rest[: q - len(chosen)])
    return [items[i] for i in chosen[:q]]
