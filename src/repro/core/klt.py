"""KLT / PCA estimation (paper Sec. IV-A, eqs. 1-4).

Two equivalent estimators are provided:

* :func:`fit_klt` — eigendecomposition of the sample covariance (the
  standard numerical route);
* :func:`fit_klt_deflation` — the iterative deflation procedure the paper
  writes down in eqs. (3)-(4): find the direction maximising projected
  energy, deflate, repeat.

Both return a ``(P, K)`` basis with orthonormal columns ordered by
explained energy.  :func:`klt_reference_design` packages the classical
"KLT then quantise to wl bits" methodology the paper evaluates against.
"""

from __future__ import annotations

import numpy as np

from ..errors import DesignError
from .design import LinearProjectionDesign
from .quantize import quantize_coefficients

__all__ = ["fit_klt", "fit_klt_deflation", "klt_reference_design"]


def _check_data(x: np.ndarray, k: int) -> np.ndarray:
    x = np.asarray(x, dtype=float)
    if x.ndim != 2:
        raise DesignError(f"data must be (P, N), got shape {x.shape}")
    p, n = x.shape
    if not (1 <= k <= p):
        raise DesignError(f"require 1 <= K <= P, got K={k}, P={p}")
    if n < 2:
        raise DesignError("need at least 2 data cases")
    return x


def fit_klt(x: np.ndarray, k: int) -> np.ndarray:
    """Estimate the K-dimensional KLT basis of data ``x`` (shape (P, N)).

    The data is *not* re-centred: the paper's formulation projects the
    raw data (zero-mean data is the caller's responsibility, and the
    provided datasets are generated zero-mean).
    """
    x = _check_data(x, k)
    cov = (x @ x.T) / x.shape[1]
    eigvals, eigvecs = np.linalg.eigh(cov)
    order = np.argsort(eigvals)[::-1]
    basis = eigvecs[:, order[:k]]
    # Deterministic sign convention: largest-magnitude entry positive.
    for j in range(k):
        col = basis[:, j]
        lead = np.argmax(np.abs(col))
        if col[lead] < 0:
            basis[:, j] = -col
    return basis


def fit_klt_deflation(
    x: np.ndarray, k: int, n_iter: int = 200, tol: float = 1e-10
) -> np.ndarray:
    """Estimate the basis by the paper's deflation recurrence (eqs. 3-4).

    Each direction maximises ``E{(lambda^T X_{j-1})^2}`` via power
    iteration on the residual covariance, then the data is deflated:
    ``X_j = X - sum_{k<=j} lambda_k lambda_k^T X``.
    """
    x = _check_data(x, k)
    p, n = x.shape
    resid = x.copy()
    basis = np.zeros((p, k))
    for j in range(k):
        cov = (resid @ resid.T) / n
        v = np.ones(p) / np.sqrt(p)
        prev = np.inf
        for _ in range(n_iter):
            w = cov @ v
            norm = np.linalg.norm(w)
            if norm < tol:
                break  # residual energy exhausted
            v = w / norm
            if abs(norm - prev) < tol * max(1.0, norm):
                break
            prev = norm
        lead = np.argmax(np.abs(v))
        if v[lead] < 0:
            v = -v
        basis[:, j] = v
        resid = resid - np.outer(v, v @ resid)
    return basis


def klt_reference_design(
    x: np.ndarray,
    k: int,
    wordlength: int,
    w_data: int,
    freq_mhz: float,
    area_le: float | None = None,
) -> LinearProjectionDesign:
    """The existing-methodology baseline: KLT, then quantise (Sec. VI).

    The KLT basis is computed in floating point and each coefficient is
    quantised to a ``wordlength``-bit sign-magnitude value, with no
    knowledge of over-clocking behaviour — the "typical implementation
    methodology" of the paper's comparisons.
    """
    basis = fit_klt(x, k)
    q = quantize_coefficients(basis, wordlength)
    return LinearProjectionDesign(
        values=q.values,
        magnitudes=q.magnitudes,
        signs=q.signs,
        wordlengths=tuple([wordlength] * k),
        w_data=w_data,
        freq_mhz=freq_mhz,
        area_le=area_le,
        method="klt",
    )
