"""Design records: the artefacts Algorithm 1 produces and evaluates.

A :class:`LinearProjectionDesign` is a fully specified hardware-ready
projection: quantised coefficient values, their integer magnitudes and
signs (what the datapath's multipliers actually see), per-column
word-lengths, the data word-length and the target clock.

A :class:`DesignPoint` pairs a design with its evaluated metrics in one
evaluation domain (predicted / simulated / actual) for the Pareto plots
of Figs. 10-11.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..errors import DesignError

__all__ = ["LinearProjectionDesign", "DesignPoint"]


@dataclass(frozen=True)
class LinearProjectionDesign:
    """A quantised linear-projection design.

    Attributes
    ----------
    values:
        Quantised coefficient values, shape ``(P, K)``.
    magnitudes, signs:
        Sign-magnitude decomposition of ``values`` (integer magnitudes in
        the per-column word-length ranges; signs ``+-1``).
    wordlengths:
        Magnitude word-length per column, length ``K``.
    w_data:
        Input-data magnitude word-length.
    freq_mhz:
        Target clock frequency the design is meant to run at.
    area_le:
        Estimated (area-model) logic-element cost; ``None`` if not yet
        estimated.
    method:
        Provenance tag (``"klt"``, ``"of"``, ...).
    """

    values: np.ndarray
    magnitudes: np.ndarray
    signs: np.ndarray
    wordlengths: tuple[int, ...]
    w_data: int
    freq_mhz: float
    area_le: float | None = None
    method: str = "of"
    metadata: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        v = np.asarray(self.values)
        if v.ndim != 2:
            raise DesignError(f"values must be (P, K), got {v.shape}")
        p, k = v.shape
        if len(self.wordlengths) != k:
            raise DesignError(
                f"{k} columns but {len(self.wordlengths)} wordlengths"
            )
        if self.magnitudes.shape != (p, k) or self.signs.shape != (p, k):
            raise DesignError("magnitude/sign shapes do not match values")
        for j, wl in enumerate(self.wordlengths):
            if wl < 1:
                raise DesignError(f"column {j} has invalid wordlength {wl}")
            col = self.magnitudes[:, j]
            if col.size and (col.min() < 0 or col.max() >= (1 << wl)):
                raise DesignError(
                    f"column {j} magnitudes exceed {wl}-bit range"
                )
        if self.w_data < 1:
            raise DesignError("w_data must be >= 1")
        if self.freq_mhz <= 0:
            raise DesignError("freq_mhz must be positive")

    # ------------------------------------------------------------------
    @property
    def p(self) -> int:
        return int(self.values.shape[0])

    @property
    def k(self) -> int:
        return int(self.values.shape[1])

    @property
    def lambda_matrix(self) -> np.ndarray:
        """The quantised projection matrix (alias for ``values``)."""
        return self.values

    def column(self, j: int) -> np.ndarray:
        return self.values[:, j]

    def project(self, x: np.ndarray) -> np.ndarray:
        """Ideal (float) projection ``F = Lambda^T X`` (paper eq. 1)."""
        return self.values.T @ np.asarray(x, dtype=float)

    def reconstruct(self, f: np.ndarray) -> np.ndarray:
        """Ideal (float) reconstruction ``X_hat = Lambda F`` (eq. 2)."""
        return self.values @ np.asarray(f, dtype=float)

    def with_area(self, area_le: float) -> "LinearProjectionDesign":
        return replace(self, area_le=float(area_le))

    def describe(self) -> str:
        """One-line human summary."""
        wls = ",".join(str(w) for w in self.wordlengths)
        area = f"{self.area_le:.0f} LE" if self.area_le is not None else "?"
        return (
            f"<{self.method} design P={self.p} K={self.k} wl=[{wls}] "
            f"@ {self.freq_mhz:.0f} MHz, {area}>"
        )


@dataclass(frozen=True)
class DesignPoint:
    """A design with metrics from one evaluation domain."""

    design: LinearProjectionDesign
    domain: str
    mse: float
    area_le: float
    freq_mhz: float
    extra: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.mse < 0:
            raise DesignError("MSE cannot be negative")
        if self.area_le < 0:
            raise DesignError("area cannot be negative")
