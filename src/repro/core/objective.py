"""The objective function T (paper eq. 5 and Sec. V-A).

``T = tr E[(X - X_hat)^T (X - X_hat)]`` decomposes, for zero-mean
uncorrelated multiplier errors and an (approximately) orthonormal basis,
into

``T = reconstruction_MSE + sum_j var(epsilon_j)``

— the dimensionality-reduction error plus the total over-clocking error
variance, in one scalar, "without any need to formulate a problem using a
multi-objective function".

Unit convention: we report T normalised per matrix element (divide by
P*N), as Algorithm 1 does for its MSE term; the over-clocking term is then
``sum_j var(eps_j) / P``.  Variances from the error model are converted
from integer-product units to value units by ``2**(-2*(w_data + wl))``
(both operands are fixed-point fractions).
"""

from __future__ import annotations

import numpy as np

from ..errors import DesignError, ModelError
from ..models.error_model import ErrorModelSet
from .design import LinearProjectionDesign

__all__ = [
    "reconstruction_mse",
    "overclocking_variance",
    "objective_t",
    "ls_factors",
    "dual_gram_diagonal",
]


def ls_factors(lam: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Least-squares factors ``F = (Lambda^T Lambda)^-1 Lambda^T X``.

    This is Algorithm 1's factor estimate; it tolerates the slightly
    non-orthonormal bases that quantisation produces.
    """
    lam = np.asarray(lam, dtype=float)
    x = np.asarray(x, dtype=float)
    if lam.ndim != 2 or x.ndim != 2 or lam.shape[0] != x.shape[0]:
        raise DesignError(
            f"shape mismatch: Lambda {lam.shape} vs X {x.shape}"
        )
    gram = lam.T @ lam
    # Regularise all-zero columns so degenerate candidates evaluate
    # instead of crashing (they simply explain nothing).
    eps = 1e-12 * max(1.0, float(np.trace(gram)))
    gram = gram + eps * np.eye(gram.shape[0])
    return np.linalg.solve(gram, lam.T @ x)


def reconstruction_mse(lam: np.ndarray, x: np.ndarray) -> float:
    """Per-element reconstruction MSE of data ``x`` through basis ``lam``."""
    f = ls_factors(lam, x)
    err = x - lam @ f
    return float((err**2).sum() / err.size)


def magnitude_variances(
    magnitudes: np.ndarray,
    wordlength: int,
    w_data: int,
    freq_mhz: float,
    error_models: ErrorModelSet,
) -> np.ndarray:
    """Per-coefficient over-clocking variance in *value* units.

    ``magnitudes`` holds one column's integer magnitudes.
    """
    model = error_models.model(wordlength)
    if model.w_data != w_data:
        raise ModelError(
            f"error model characterised for w_data={model.w_data}, "
            f"design uses {w_data}"
        )
    var_int = model.query(np.asarray(magnitudes, dtype=np.int64), freq_mhz)
    scale = 2.0 ** (-2 * (w_data + wordlength))
    return var_int * scale


def overclocking_variance(
    design: LinearProjectionDesign,
    error_models: ErrorModelSet,
    freq_mhz: float | None = None,
) -> np.ndarray:
    """``var(epsilon_j)`` per column (value units), shape ``(K,)``.

    Multiplier errors are assumed uncorrelated (paper Sec. V-A), so a
    column's factor-error variance is the sum of its P per-coefficient
    variances.
    """
    f = design.freq_mhz if freq_mhz is None else freq_mhz
    out = np.empty(design.k)
    for j, wl in enumerate(design.wordlengths):
        per_coeff = magnitude_variances(
            design.magnitudes[:, j], wl, design.w_data, f, error_models
        )
        out[j] = per_coeff.sum()
    return out


def dual_gram_diagonal(lam: np.ndarray) -> np.ndarray:
    """Diagonal of ``(Lambda^T Lambda)^-1`` — the error amplification of
    the dual-basis reconstruction.

    For an orthonormal basis this is all ones and the objective reduces
    to the paper's eq. (5) form; quantised/sampled bases deviate slightly
    and the weight keeps the predicted over-clocking term faithful to
    what the host-side reconstruction actually amplifies.
    """
    lam = np.asarray(lam, dtype=float)
    gram = lam.T @ lam
    eps = 1e-12 * max(1.0, float(np.trace(gram)))
    return np.diag(np.linalg.inv(gram + eps * np.eye(gram.shape[0]))).copy()


def objective_t(
    design: LinearProjectionDesign,
    x: np.ndarray,
    error_models: ErrorModelSet,
    freq_mhz: float | None = None,
) -> dict[str, float]:
    """Evaluate the full objective T for a design on data ``x``.

    Returns the decomposition: per-element reconstruction MSE, the
    over-clocking term (per element, dual-amplification weighted), and
    their sum T.
    """
    x = np.asarray(x, dtype=float)
    mse = reconstruction_mse(design.values, x)
    var_cols = overclocking_variance(design, error_models, freq_mhz)
    amp = dual_gram_diagonal(design.values)
    oc_term = float((var_cols * amp).sum()) / design.p
    return {
        "reconstruction_mse": mse,
        "overclocking_term": oc_term,
        "objective_t": mse + oc_term,
    }
