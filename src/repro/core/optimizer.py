"""Algorithm 1: the linear-projection design optimisation framework.

Per output dimension ``d = 1..K`` and per word-length ``wl`` in the
configured sweep, a candidate projection vector is Gibbs-sampled from the
posterior shaped by the over-clocking prior; each candidate is scored with
its area-model estimate and its objective value; the (area, T) Pareto
front is extracted; Q bins over the objective span each surrender one
survivor; and the Q survivors seed the exploration of the next dimension.

The run also records the wall-clock cost of every projection-vector
sampling, which is exactly the quantity the paper's run-time model
(eqs. 7-8) predicts — the runtime bench refits the model on these records.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..config import TableISettings
from ..errors import OptimizationError
from ..models.area_model import AreaModel
from ..models.error_model import ErrorModelSet
from ..models.prior import CoefficientPrior
from ..obs import runtime as obs
from ..rng import SeedTree
from .bayesian import GibbsConfig, sample_projection_vector
from .design import LinearProjectionDesign
from .objective import reconstruction_mse
from .pareto import pareto_front, select_q_bins

__all__ = ["OptimizerConfig", "OptimizationResult", "optimize_designs"]


@dataclass(frozen=True)
class OptimizerConfig:
    """Everything Algorithm 1 needs besides the data.

    Attributes
    ----------
    settings:
        Case-study parameters (K, Q, freq, word-length sweep, Gibbs
        sample counts).
    error_models:
        Characterised E(m, f) per word-length.
    area_model:
        Fitted LE-vs-wordlength model.
    beta:
        Prior hyper-parameter for this run (Table I explores {4, 8}).
    """

    settings: TableISettings
    error_models: ErrorModelSet
    area_model: AreaModel
    beta: float = 4.0

    def __post_init__(self) -> None:
        if self.beta <= 0:
            raise OptimizationError("beta must be > 0 (Alg. 1 'Require' clause)")
        missing = [
            wl
            for wl in self.settings.coeff_wordlengths
            if wl not in self.error_models.wordlengths
        ]
        if missing:
            raise OptimizationError(
                f"no error model for word-length(s) {missing}; "
                f"characterise them first"
            )

    def gibbs_config(self) -> GibbsConfig:
        return GibbsConfig(
            burn_in=self.settings.burn_in, n_samples=self.settings.n_samples
        )


@dataclass(frozen=True)
class _Partial:
    """A partial design: columns chosen for dimensions 1..d."""

    columns: tuple[dict, ...]  # each: values/magnitudes/signs/wordlength
    area: float
    mse: float
    oc_term: float

    @property
    def objective(self) -> float:
        return self.mse + self.oc_term

    def lambda_matrix(self, p: int) -> np.ndarray:
        if not self.columns:
            return np.zeros((p, 0))
        return np.stack([c["values"] for c in self.columns], axis=1)


@dataclass
class OptimizationResult:
    """Q final designs plus the exploration record."""

    designs: list[LinearProjectionDesign]
    beta: float
    freq_mhz: float
    #: (dimension, wordlength, seconds) per sampling call — feeds the
    #: run-time model bench (paper Sec. VI-E).
    sampling_times: list[tuple[int, int, float]] = field(default_factory=list)
    #: candidate (area, objective) per dimension, for inspection.
    candidate_history: list[list[tuple[float, float]]] = field(default_factory=list)

    @property
    def total_sampling_seconds(self) -> float:
        return sum(t for _, _, t in self.sampling_times)

    def best_design(self) -> LinearProjectionDesign:
        """The design with the lowest recorded objective."""
        if not self.designs:
            raise OptimizationError("optimisation produced no designs")
        return min(self.designs, key=lambda d: d.metadata.get("objective_t", np.inf))


def _residual(x: np.ndarray, partial: _Partial) -> np.ndarray:
    """Data left unexplained by a partial design's columns (LS deflation)."""
    lam = partial.lambda_matrix(x.shape[0])
    if lam.shape[1] == 0:
        return x
    gram = lam.T @ lam + 1e-12 * np.eye(lam.shape[1])
    f = np.linalg.solve(gram, lam.T @ x)
    return x - lam @ f


def optimize_designs(
    x_train: np.ndarray,
    config: OptimizerConfig,
    seed: int = 0,
) -> OptimizationResult:
    """Run Algorithm 1 and return Q Pareto designs.

    Parameters
    ----------
    x_train:
        Training data, shape ``(P, N)``, scaled to [-1, 1] (the datasets
        module produces this form).
    config:
        Optimiser configuration.
    seed:
        Root seed; the run is fully deterministic given
        ``(x_train, config, seed)``.
    """
    x = np.asarray(x_train, dtype=float)
    s = config.settings
    if x.ndim != 2 or x.shape[0] != s.p:
        raise OptimizationError(
            f"training data must be ({s.p}, N), got {x.shape}"
        )
    if np.abs(x).max() > 1.0 + 1e-9:
        raise OptimizationError(
            "training data must be scaled to [-1, 1] (see repro.datasets)"
        )
    freq = s.clock_frequency_mhz
    tree = SeedTree(seed).child("optimizer", f"beta={config.beta}")
    gibbs = config.gibbs_config()

    # Per-wordlength prior and scoring tables (shared across dimensions).
    priors: dict[int, CoefficientPrior] = {}
    oc_tables: dict[int, np.ndarray] = {}
    col_areas: dict[int, float] = {}
    for wl in s.coeff_wordlengths:
        model = config.error_models.model(wl)
        prior = CoefficientPrior.from_error_model(model, freq, config.beta)
        priors[wl] = prior
        scale = 2.0 ** (-2 * (s.input_wordlength + wl))
        oc_tables[wl] = prior.variances * scale
        col_areas[wl] = float(config.area_model.predict(wl))

    survivors: list[_Partial] = [
        _Partial(columns=(), area=0.0, mse=float((x**2).mean()), oc_term=0.0)
    ]
    result = OptimizationResult(designs=[], beta=config.beta, freq_mhz=freq)

    with obs.span("optimize.run", beta=config.beta, k=s.k, q=s.q):
        for d in range(1, s.k + 1):
            with obs.span("optimize.dimension", dimension=d) as dim_span:
                candidates: list[_Partial] = []
                for qi, partial in enumerate(survivors):
                    resid = _residual(x, partial)
                    for wl in s.coeff_wordlengths:
                        rng = tree.rng("gibbs", f"d{d}", f"q{qi}", f"wl{wl}")
                        t0 = time.perf_counter()
                        with obs.span("gibbs.sample", dimension=d, q=qi, wl=wl):
                            samp = sample_projection_vector(
                                resid, priors[wl], oc_tables[wl], rng, gibbs
                            )
                        dt = time.perf_counter() - t0
                        result.sampling_times.append((d, wl, dt))
                        obs.counter_add("gibbs.draws")
                        obs.observe("gibbs.iteration_seconds", dt)
                        column = {
                            "values": samp.values,
                            "magnitudes": samp.magnitudes,
                            "signs": samp.signs,
                            "wordlength": wl,
                        }
                        columns = partial.columns + (column,)
                        lam = np.stack([c["values"] for c in columns], axis=1)
                        mse = reconstruction_mse(lam, x)
                        oc = partial.oc_term + samp.oc_penalty
                        area = partial.area + col_areas[wl]
                        candidates.append(
                            _Partial(columns=columns, area=area, mse=mse, oc_term=oc)
                        )
                front = pareto_front(
                    candidates, area_of=lambda c: c.area, mse_of=lambda c: c.objective
                )
                survivors = select_q_bins(front, s.q, mse_of=lambda c: c.objective)
                if not survivors:
                    raise OptimizationError(f"dimension {d}: no surviving candidates")
                # Alg. 1: "Create Q candidate projections from the Q extracted" —
                # when the front yields fewer than Q, cycle the survivors so every
                # dimension explores exactly Q branches (the eq.-7 cost structure);
                # duplicated branches diverge through their distinct Gibbs seeds.
                base = list(survivors)
                i = 0
                while len(survivors) < s.q:
                    survivors.append(base[i % len(base)])
                    i += 1
                result.candidate_history.append(
                    [(c.area, c.objective) for c in candidates]
                )
                dim_span.set(candidates=len(candidates))
                obs.counter_add("optimize.dimensions")
                obs.counter_add("optimize.candidates", len(candidates))

    for partial in survivors:
        values = partial.lambda_matrix(s.p)
        mags = np.stack([c["magnitudes"] for c in partial.columns], axis=1)
        signs = np.stack([c["signs"] for c in partial.columns], axis=1)
        wls = tuple(int(c["wordlength"]) for c in partial.columns)
        design = LinearProjectionDesign(
            values=values,
            magnitudes=mags,
            signs=signs,
            wordlengths=wls,
            w_data=s.input_wordlength,
            freq_mhz=freq,
            area_le=partial.area,
            method="of",
            metadata={
                "beta": config.beta,
                "train_mse": partial.mse,
                "overclocking_term": partial.oc_term,
                "objective_t": partial.objective,
            },
        )
        result.designs.append(design)
    return result
