"""Sign-magnitude fixed-point quantisation.

Coefficients and input data both use sign-magnitude representation: a
``wl``-bit *magnitude* plus a separate sign bit.  The magnitude is what
feeds the characterised unsigned generic multiplier, so the error model
E(m, f), indexed by magnitude, applies to both signs of a coefficient
(the sign path is a single XOR and never timing-critical).

Value convention: a magnitude ``m`` at word-length ``wl`` represents
``m / 2**wl``; representable values therefore span ``(-1, 1)`` with step
``2**-wl``, and an exact ±1.0 saturates to ±(2**wl - 1)/2**wl.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DesignError

__all__ = [
    "QuantizedMatrix",
    "quantize_coefficients",
    "quantize_data",
    "dequantize_magnitudes",
]


@dataclass(frozen=True)
class QuantizedMatrix:
    """A matrix quantised to sign-magnitude fixed point.

    Attributes
    ----------
    values:
        The representable values actually stored (floats).
    magnitudes:
        Integer magnitudes in ``[0, 2**wl)``.
    signs:
        ``+1``/``-1`` per entry (zero magnitudes keep sign ``+1``).
    wordlength:
        Magnitude word-length.
    """

    values: np.ndarray
    magnitudes: np.ndarray
    signs: np.ndarray
    wordlength: int

    def __post_init__(self) -> None:
        if not (self.values.shape == self.magnitudes.shape == self.signs.shape):
            raise DesignError("quantised matrix component shapes differ")
        if self.magnitudes.size and (
            self.magnitudes.min() < 0 or self.magnitudes.max() >= (1 << self.wordlength)
        ):
            raise DesignError("magnitudes outside word-length range")

    @property
    def quantization_step(self) -> float:
        return 2.0 ** (-self.wordlength)


def quantize_coefficients(values: np.ndarray, wordlength: int) -> QuantizedMatrix:
    """Quantise real values in [-1, 1] to ``wordlength``-bit sign-magnitude.

    Rounds to nearest; magnitudes saturate at ``2**wl - 1``.

    Raises
    ------
    DesignError
        If any |value| exceeds 1 by more than the saturation headroom
        (the projection formulation guarantees |lambda| <= 1).
    """
    if wordlength < 1:
        raise DesignError("wordlength must be >= 1")
    v = np.asarray(values, dtype=float)
    if v.size and np.abs(v).max() > 1.0 + 1e-9:
        raise DesignError(
            f"coefficients must lie in [-1, 1]; max |v| = {np.abs(v).max():.4f}"
        )
    scale = float(1 << wordlength)
    signs = np.where(v < 0, -1, 1).astype(np.int64)
    mags = np.rint(np.abs(v) * scale).astype(np.int64)
    np.clip(mags, 0, (1 << wordlength) - 1, out=mags)
    signs = np.where(mags == 0, 1, signs)
    return QuantizedMatrix(
        values=signs * mags / scale,
        magnitudes=mags,
        signs=signs,
        wordlength=wordlength,
    )


def quantize_data(x: np.ndarray, w_data: int) -> QuantizedMatrix:
    """Quantise input data to ``w_data``-bit sign-magnitude.

    The data is scaled by its own max-abs so the full input range maps
    onto [-1, 1) — the word-length assignment the paper fixes at 9 bits
    (Table I).  Zero data quantises to zeros.
    """
    if w_data < 1:
        raise DesignError("w_data must be >= 1")
    x = np.asarray(x, dtype=float)
    peak = float(np.abs(x).max()) if x.size else 0.0
    if peak == 0.0:
        z = np.zeros_like(x)
        return QuantizedMatrix(
            values=z,
            magnitudes=z.astype(np.int64),
            signs=np.ones_like(x, dtype=np.int64),
            wordlength=w_data,
        )
    scaled = x / peak
    q = quantize_coefficients(scaled, w_data)
    # Values are returned in the *original* data scale.
    return QuantizedMatrix(
        values=q.values * peak,
        magnitudes=q.magnitudes,
        signs=q.signs,
        wordlength=w_data,
    )


def dequantize_magnitudes(
    magnitudes: np.ndarray, signs: np.ndarray, wordlength: int
) -> np.ndarray:
    """Map integer magnitudes + signs back to real values."""
    if wordlength < 1:
        raise DesignError("wordlength must be >= 1")
    return np.asarray(signs) * np.asarray(magnitudes) / float(1 << wordlength)
