"""The paper's primary contribution: linear-projection design optimisation.

* :mod:`repro.core.klt` — classical KLT/PCA estimation (paper eqs. 1-4)
  and the reference "KLT then quantise" designs the paper compares against;
* :mod:`repro.core.quantize` — sign-magnitude fixed-point coefficient and
  data quantisation;
* :mod:`repro.core.bayesian` — the Gibbs sampler drawing projection
  vectors from the posterior shaped by the over-clocking prior;
* :mod:`repro.core.objective` — the single objective T combining
  reconstruction MSE and over-clocking error variance (paper eq. 5);
* :mod:`repro.core.pareto` — Pareto extraction and Q-bin candidate
  selection (Alg. 1's survivor scheme);
* :mod:`repro.core.optimizer` — Algorithm 1 end to end;
* :mod:`repro.core.design` — the design records everything else consumes.
"""

from .design import DesignPoint, LinearProjectionDesign
from .klt import fit_klt, fit_klt_deflation, klt_reference_design
from .quantize import (
    dequantize_magnitudes,
    quantize_coefficients,
    quantize_data,
    QuantizedMatrix,
)
from .bayesian import GibbsConfig, sample_projection_vector, SampledProjection
from .objective import objective_t, overclocking_variance, reconstruction_mse
from .pareto import pareto_front, select_q_bins
from .optimizer import OptimizerConfig, OptimizationResult, optimize_designs

__all__ = [
    "DesignPoint",
    "LinearProjectionDesign",
    "fit_klt",
    "fit_klt_deflation",
    "klt_reference_design",
    "quantize_coefficients",
    "quantize_data",
    "dequantize_magnitudes",
    "QuantizedMatrix",
    "GibbsConfig",
    "sample_projection_vector",
    "SampledProjection",
    "objective_t",
    "overclocking_variance",
    "reconstruction_mse",
    "pareto_front",
    "select_q_bins",
    "OptimizerConfig",
    "OptimizationResult",
    "optimize_designs",
]
