"""Observability for the characterisation → optimisation pipeline.

``repro.obs`` is a zero-dependency telemetry layer with three legs:

* **trace spans** (:mod:`repro.obs.trace`) — hierarchical, monotonic
  timings with structured attributes, exportable as a JSONL sidecar and
  as Chrome ``trace_event`` JSON;
* **metrics** (:mod:`repro.obs.metrics`) — counters, gauges and
  histograms with deterministic snapshot/export;
* **profiling** (:mod:`repro.obs.profile`) — per-stage wall/CPU time
  and peak RSS.

Every name the library can emit is declared in the closed-world
catalogue (:mod:`repro.obs.spec`), from which the reference tables in
``docs/observability.md`` are generated and drift-tested.

Telemetry is **off by default** and the disabled path is a shared no-op
(:mod:`repro.obs.runtime`), so instrumented pipelines remain
bit-identical and effectively free when nobody is watching.  Enable via
``repro-flow --trace/--metrics``, the ``REPRO_TRACE``/``REPRO_METRICS``
environment variables, or programmatically::

    from repro import obs

    with obs.observability() as observer:
        framework.characterize(...)
    observer.tracer.export_chrome("run.json")
    observer.metrics.snapshot().write("metrics.json")
"""

from .metrics import (
    DEFAULT_BOUNDARIES,
    METRICS_SCHEMA_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    load_metrics_snapshot,
)
from .profile import peak_rss_bytes, stage_profiler
from .runtime import (
    REPRO_METRICS_ENV,
    REPRO_TRACE_ENV,
    Observer,
    counter_add,
    default_metrics_path,
    disable_observability,
    enable_observability,
    export_trace_files,
    gauge_set,
    get_observer,
    metrics_enabled,
    observability,
    observe,
    profile_stage,
    set_observer,
    snapshot_metrics,
    span,
    trace_enabled,
    tracing_paths_from_env,
)
from .spec import (
    COUNTER,
    GAUGE,
    HISTOGRAM,
    METRIC_CATALOG,
    SPAN_CATALOG,
    MetricSpec,
    SpanSpec,
    metric_spec,
    metrics_table_markdown,
    span_spec,
    spans_table_markdown,
    telemetry_reference_markdown,
)
from .trace import (
    TRACE_SCHEMA_VERSION,
    Span,
    SpanRecord,
    Tracer,
    chrome_trace_from_records,
    load_trace_jsonl,
    summarize_spans,
)

__all__ = [
    "COUNTER",
    "DEFAULT_BOUNDARIES",
    "GAUGE",
    "HISTOGRAM",
    "METRICS_SCHEMA_VERSION",
    "METRIC_CATALOG",
    "REPRO_METRICS_ENV",
    "REPRO_TRACE_ENV",
    "SPAN_CATALOG",
    "TRACE_SCHEMA_VERSION",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricSpec",
    "MetricsRegistry",
    "MetricsSnapshot",
    "Observer",
    "Span",
    "SpanRecord",
    "SpanSpec",
    "Tracer",
    "chrome_trace_from_records",
    "counter_add",
    "default_metrics_path",
    "disable_observability",
    "enable_observability",
    "export_trace_files",
    "gauge_set",
    "get_observer",
    "load_metrics_snapshot",
    "load_trace_jsonl",
    "metric_spec",
    "metrics_enabled",
    "metrics_table_markdown",
    "observability",
    "observe",
    "peak_rss_bytes",
    "profile_stage",
    "set_observer",
    "snapshot_metrics",
    "span",
    "span_spec",
    "spans_table_markdown",
    "stage_profiler",
    "summarize_spans",
    "telemetry_reference_markdown",
    "trace_enabled",
    "tracing_paths_from_env",
]
