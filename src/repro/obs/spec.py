"""The telemetry catalogue: every span and metric the library can emit.

Observability names are **closed-world**: a span or metric that is not
declared here cannot be created while telemetry is enabled
(:class:`~repro.errors.ObservabilityError`).  That single constraint is
what makes ``docs/observability.md`` trustworthy — its reference tables
are *generated* from this catalogue (:func:`telemetry_reference_markdown`)
and a drift test (``tests/obs/test_docs_drift.py``) fails whenever the
document and the catalogue diverge, exactly like the lint-rule table in
``docs/static_analysis.md``.

Determinism flag
----------------
A metric is marked *deterministic* when its value on a fault-free run is
a pure function of the workload — invariant across worker counts
(``REPRO_JOBS``), cache temperature and retry scheduling.  Deterministic
metrics are the ones ``MetricsSnapshot.deterministic_counters`` exposes
and the parallel-determinism test pins across ``jobs`` values; wall-clock
histograms and process-local cache counters are explicitly not in that
set.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ObservabilityError

__all__ = [
    "COUNTER",
    "GAUGE",
    "HISTOGRAM",
    "METRIC_CATALOG",
    "MetricSpec",
    "SPAN_CATALOG",
    "SpanSpec",
    "metric_spec",
    "metrics_table_markdown",
    "span_spec",
    "spans_table_markdown",
    "telemetry_reference_markdown",
]

#: Metric kinds.
COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"


@dataclass(frozen=True)
class SpanSpec:
    """One hierarchical trace-span name the library may open.

    Attributes
    ----------
    name:
        Dotted span name (``stage.operation``).
    emitted_by:
        The module that opens the span.
    description:
        What one occurrence of the span covers.
    """

    name: str
    emitted_by: str
    description: str


@dataclass(frozen=True)
class MetricSpec:
    """One metric instrument the library may record.

    Attributes
    ----------
    kind:
        ``counter`` (monotonic), ``gauge`` (last-write-wins) or
        ``histogram`` (count/sum/min/max plus bucketed distribution).
    unit:
        Human-readable unit of the recorded values.
    deterministic:
        Value is workload-pure on fault-free runs: identical at any
        ``jobs`` worker count and cache temperature (see module docs).
    """

    name: str
    kind: str
    unit: str
    emitted_by: str
    deterministic: bool
    description: str


#: Catalogue of every span the library opens, sorted by name.
SPAN_CATALOG: tuple[SpanSpec, ...] = (
    SpanSpec(
        "audit.run",
        "repro.cli",
        "One `repro audit` invocation: shared module-index build plus the "
        "selected DT/DX passes or the wire-contract check.",
    ),
    SpanSpec(
        "cache.synthesize",
        "repro.parallel.cache",
        "Placed-design cache miss: one synthesis + placement rebuild of the keyed geometry.",
    ),
    SpanSpec(
        "characterize.sweep",
        "repro.characterization.harness",
        "One word-length's full characterisation sweep: planning, sharding, execution, grid assembly.",
    ),
    SpanSpec(
        "flow.characterize",
        "repro.framework",
        "OptimizationFramework.characterize: every word-length's sweep plus error-model fitting.",
    ),
    SpanSpec(
        "flow.evaluate",
        "repro.framework",
        "One design evaluated in one domain on the framework's device.",
    ),
    SpanSpec(
        "flow.fit_area_model",
        "repro.framework",
        "Area-model sample collection over synthesis runs plus the polynomial fit.",
    ),
    SpanSpec(
        "gibbs.sample",
        "repro.core.optimizer",
        "One Gibbs run drawing a candidate projection vector (burn-in + sampling + polish).",
    ),
    SpanSpec(
        "kernel.compile",
        "repro.kernels.plan",
        "Plan-cache miss: one netlist lowered to a bit-sliced execution plan (truth-table "
        "minimisation + level grouping + timing gathers).",
    ),
    SpanSpec(
        "kernel.eval",
        "repro.kernels.execute",
        "One bit-sliced plan execution; the consumer attribute tells evaluate / stream / tile apart.",
    ),
    SpanSpec(
        "optimize.dimension",
        "repro.core.optimizer",
        "One output dimension of Algorithm 1: Q survivors x word-length sweep of candidate draws.",
    ),
    SpanSpec(
        "optimize.run",
        "repro.core.optimizer",
        "One full Algorithm 1 run (all K dimensions) for one beta.",
    ),
    SpanSpec(
        "serve.job",
        "repro.serve.runner",
        "One served job start to terminal state: workspace wiring, stage execution, "
        "result installation.",
    ),
    SpanSpec(
        "sweep.executor",
        "repro.parallel.executors",
        "One distributed first-attempt pass: spool creation, worker fleet lifetime, "
        "outcome folding and lease requeues.",
    ),
    SpanSpec(
        "sweep.pool",
        "repro.parallel.executors",
        "The process-pool pass of a sweep: dispatch and harvest of every shard's first attempt.",
    ),
    SpanSpec(
        "sweep.run",
        "repro.parallel.engine",
        "Hardened execution of one sweep's shard set: pool pass, inline pass, retries, dispositions.",
    ),
    SpanSpec(
        "sweep.shard",
        "repro.parallel.engine",
        "One inline shard attempt: cached placement, transition simulation, batched capture, statistics.",
    ),
    SpanSpec(
        "synthesis.run",
        "repro.synthesis.flow",
        "SynthesisFlow.run: lint gate, placement, delay annotation, tool/area reports for one netlist.",
    ),
)

#: Catalogue of every metric the library records, sorted by name.
METRIC_CATALOG: tuple[MetricSpec, ...] = (
    MetricSpec(
        "audit.dx.contracts_checked",
        COUNTER,
        "runs",
        "repro.cli",
        True,
        "Wire-contract verification passes run by `repro audit` "
        "(--contracts or any DX-family run).",
    ),
    MetricSpec(
        "audit.dx.findings",
        COUNTER,
        "findings",
        "repro.cli",
        True,
        "DX portability findings reported by `repro audit`; a pure "
        "function of the audited source tree.",
    ),
    MetricSpec(
        "audit.dx.suppressions",
        COUNTER,
        "pragmas",
        "repro.cli",
        True,
        "Justified `# repro: allow[DXnnn]` suppressions honoured by "
        "`repro audit`; a pure function of the audited source tree.",
    ),
    MetricSpec(
        "cache.placed.corruptions",
        COUNTER,
        "entries",
        "repro.parallel.cache",
        False,
        "Damaged on-disk cache entries detected, logged and rebuilt from synthesis.",
    ),
    MetricSpec(
        "cache.placed.hits",
        COUNTER,
        "lookups",
        "repro.parallel.cache",
        False,
        "Placed-design cache hits (memory tier + disk tier) in this process.",
    ),
    MetricSpec(
        "cache.placed.misses",
        COUNTER,
        "lookups",
        "repro.parallel.cache",
        False,
        "Placed-design cache misses that fell through to a synthesis run in this process.",
    ),
    MetricSpec(
        "cache.placed.sanitizer_violations",
        COUNTER,
        "violations",
        "repro.parallel.sanitize",
        False,
        "Shared-cache discipline violations (lost updates, torn entries, unlocked installs) "
        "observed by the REPRO_SANITIZE runtime sanitizer.",
    ),
    MetricSpec(
        "cache.placed.stores",
        COUNTER,
        "entries",
        "repro.parallel.cache",
        False,
        "Freshly synthesised designs written back to the cache in this process.",
    ),
    MetricSpec(
        "capture.samples_per_second",
        HISTOGRAM,
        "samples/s",
        "repro.parallel.engine",
        False,
        "Capture throughput of one inline shard: (transitions x frequencies) / wall seconds.",
    ),
    MetricSpec(
        "characterize.sweep_seconds",
        HISTOGRAM,
        "s",
        "repro.characterization.harness",
        False,
        "Wall-clock of one word-length's full characterisation sweep.",
    ),
    MetricSpec(
        "characterize.sweeps",
        COUNTER,
        "sweeps",
        "repro.characterization.harness",
        True,
        "Characterisation sweeps completed (one per word-length geometry).",
    ),
    MetricSpec(
        "executor.leases.requeued",
        COUNTER,
        "leases",
        "repro.parallel.executors",
        False,
        "Stale spool leases reclaimed by the coordinator (worker death or stall) "
        "and requeued at the next generation.",
    ),
    MetricSpec(
        "executor.shards.dispatched",
        COUNTER,
        "shards",
        "repro.parallel.executors",
        False,
        "Shard descriptors enqueued into a file-queue spool by the coordinator.",
    ),
    MetricSpec(
        "executor.workers.spawned",
        COUNTER,
        "processes",
        "repro.parallel.executors",
        False,
        "Stateless `repro worker` processes launched by the file-queue coordinator.",
    ),
    MetricSpec(
        "gibbs.draws",
        COUNTER,
        "draws",
        "repro.core.optimizer",
        True,
        "Projection-vector Gibbs runs executed (dimension x survivor x word-length).",
    ),
    MetricSpec(
        "gibbs.iteration_seconds",
        HISTOGRAM,
        "s",
        "repro.core.optimizer",
        False,
        "Wall-clock of one Gibbs run — the quantity the paper's runtime model (eq. 8) predicts.",
    ),
    MetricSpec(
        "kernel.plan.cache_hits",
        COUNTER,
        "lookups",
        "repro.kernels.plan",
        False,
        "Execution-plan cache hits: netlists whose bit-sliced plan was already compiled "
        "in this process.",
    ),
    MetricSpec(
        "kernel.plan.cache_misses",
        COUNTER,
        "lookups",
        "repro.kernels.plan",
        False,
        "Execution-plan cache misses that ran a kernel.compile lowering in this process.",
    ),
    MetricSpec(
        "optimize.candidates",
        COUNTER,
        "designs",
        "repro.core.optimizer",
        True,
        "Candidate partial designs scored by Algorithm 1 across all dimensions.",
    ),
    MetricSpec(
        "optimize.dimensions",
        COUNTER,
        "dimensions",
        "repro.core.optimizer",
        True,
        "Output dimensions explored by Algorithm 1 (K per run).",
    ),
    MetricSpec(
        "serve.job.cancelled",
        COUNTER,
        "jobs",
        "repro.serve.runner",
        False,
        "Served jobs that reached the CANCELLED state (tenant cancel, queued or mid-run).",
    ),
    MetricSpec(
        "serve.job.degraded",
        COUNTER,
        "jobs",
        "repro.serve.runner",
        False,
        "Served jobs that finished with quarantined shards (results flagged DEGRADED).",
    ),
    MetricSpec(
        "serve.job.done",
        COUNTER,
        "jobs",
        "repro.serve.runner",
        False,
        "Served jobs that finished cleanly (every sweep complete).",
    ),
    MetricSpec(
        "serve.job.failed",
        COUNTER,
        "jobs",
        "repro.serve.runner",
        False,
        "Served jobs that failed; the job record carries the batch CLI's exit code "
        "(3 sweep-failed, 2 config).",
    ),
    MetricSpec(
        "serve.job.rejected",
        COUNTER,
        "jobs",
        "repro.serve.server",
        False,
        "Submissions bounced by admission control (queue-full or tenant-quota, "
        "HTTP-429 semantics).",
    ),
    MetricSpec(
        "serve.job.seconds",
        HISTOGRAM,
        "s",
        "repro.serve.runner",
        False,
        "Wall-clock of one served job from dispatch to terminal state.",
    ),
    MetricSpec(
        "serve.job.submitted",
        COUNTER,
        "jobs",
        "repro.serve.server",
        False,
        "Jobs admitted into the queue (rejected submissions are counted separately).",
    ),
    MetricSpec(
        "serve.queue.depth",
        GAUGE,
        "jobs",
        "repro.serve.server",
        False,
        "Current admission-queue depth (queued, not yet dispatched jobs).",
    ),
    MetricSpec(
        "sweep.attempts.total",
        COUNTER,
        "attempts",
        "repro.parallel.engine",
        False,
        "Shard attempts across the sweep, retries included (pool-failure paths add attempts).",
    ),
    MetricSpec(
        "sweep.pool.broken",
        COUNTER,
        "events",
        "repro.parallel.engine",
        False,
        "Process pools abandoned because a worker hard-crashed (BrokenExecutor).",
    ),
    MetricSpec(
        "sweep.pool.fallbacks",
        COUNTER,
        "events",
        "repro.parallel.engine",
        False,
        "Sweeps that abandoned the pool (timeout or breakage) and degraded to inline execution.",
    ),
    MetricSpec(
        "sweep.shard_seconds",
        HISTOGRAM,
        "s",
        "repro.parallel.engine",
        False,
        "Latency of every shard attempt, successful or not (pool wait or inline wall-clock).",
    ),
    MetricSpec(
        "sweep.shards.completed",
        COUNTER,
        "shards",
        "repro.parallel.engine",
        True,
        "Shards whose first attempt produced a valid result.",
    ),
    MetricSpec(
        "sweep.shards.quarantined",
        COUNTER,
        "shards",
        "repro.parallel.engine",
        True,
        "Shards that never produced a valid result after all retries (NaN grid cells when degraded).",
    ),
    MetricSpec(
        "sweep.shards.recovered",
        COUNTER,
        "shards",
        "repro.parallel.engine",
        True,
        "Shards that succeeded only after one or more retries (bit-identical to first-try results).",
    ),
    MetricSpec(
        "sweep.shards.retried",
        COUNTER,
        "shards",
        "repro.parallel.engine",
        True,
        "Shards that needed more than one attempt, whether they eventually recovered or not.",
    ),
    MetricSpec(
        "sweep.shards.total",
        COUNTER,
        "shards",
        "repro.parallel.engine",
        True,
        "Shards planned across all executed sweeps ((location, multiplicand-chunk) units).",
    ),
    MetricSpec(
        "synthesis.runs",
        COUNTER,
        "runs",
        "repro.synthesis.flow",
        False,
        "SynthesisFlow.run invocations (cache hits skip these, so the count is cache-dependent).",
    ),
)

_SPANS_BY_NAME = {s.name: s for s in SPAN_CATALOG}
_METRICS_BY_NAME = {m.name: m for m in METRIC_CATALOG}


def span_spec(name: str) -> SpanSpec:
    """The catalogue entry for span ``name``; unknown names raise."""
    try:
        return _SPANS_BY_NAME[name]
    except KeyError:
        raise ObservabilityError(
            f"span {name!r} is not in the telemetry catalogue "
            f"(repro.obs.spec.SPAN_CATALOG); declare it there so "
            f"docs/observability.md stays complete"
        ) from None


def metric_spec(name: str) -> MetricSpec:
    """The catalogue entry for metric ``name``; unknown names raise."""
    try:
        return _METRICS_BY_NAME[name]
    except KeyError:
        raise ObservabilityError(
            f"metric {name!r} is not in the telemetry catalogue "
            f"(repro.obs.spec.METRIC_CATALOG); declare it there so "
            f"docs/observability.md stays complete"
        ) from None


def _escape(text: str) -> str:
    return text.replace("|", "\\|")


def spans_table_markdown() -> str:
    """The span catalogue as a GitHub-flavoured markdown table."""
    lines = [
        "| Span | Emitted by | Covers |",
        "|---|---|---|",
    ]
    for s in sorted(SPAN_CATALOG, key=lambda s: s.name):
        lines.append(
            f"| `{s.name}` | `{s.emitted_by}` | {_escape(s.description)} |"
        )
    return "\n".join(lines)


def metrics_table_markdown() -> str:
    """The metric catalogue as a GitHub-flavoured markdown table."""
    lines = [
        "| Metric | Kind | Unit | Deterministic | Emitted by | Meaning |",
        "|---|---|---|---|---|---|",
    ]
    for m in sorted(METRIC_CATALOG, key=lambda m: m.name):
        det = "yes" if m.deterministic else "no"
        lines.append(
            f"| `{m.name}` | {m.kind} | {m.unit} | {det} "
            f"| `{m.emitted_by}` | {_escape(m.description)} |"
        )
    return "\n".join(lines)


def telemetry_reference_markdown() -> str:
    """Both reference tables, as embedded in ``docs/observability.md``.

    The document carries this block between generated-content markers;
    ``tests/obs/test_docs_drift.py`` fails when they diverge.
    """
    return (
        "### Trace spans\n\n"
        + spans_table_markdown()
        + "\n\n### Metrics\n\n"
        + metrics_table_markdown()
    )
