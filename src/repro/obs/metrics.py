"""Metrics registry: counters, gauges and histograms with deterministic export.

Instruments are created lazily by name through a :class:`MetricsRegistry`;
names are validated against the telemetry catalogue
(:mod:`repro.obs.spec`), so an undeclared metric cannot be recorded —
the guarantee behind the generated reference in ``docs/observability.md``.

Snapshots (:meth:`MetricsRegistry.snapshot`) are plain data with sorted
keys: two snapshots of the same registry state serialise byte-identically,
and the catalogue's ``deterministic`` flag carves out the subset whose
*values* are invariant across worker counts on fault-free runs
(:meth:`MetricsSnapshot.deterministic_counters` — pinned by
``tests/obs/test_determinism.py``).
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from ..errors import ObservabilityError
from .spec import COUNTER, GAUGE, HISTOGRAM, MetricSpec, metric_spec

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "load_metrics_snapshot",
]

METRICS_SCHEMA_VERSION = 1

#: Default histogram bucket upper bounds — log-spaced, wide enough for
#: both sub-millisecond captures and multi-minute sweeps (seconds) and
#: for rate-style values (samples/s).
DEFAULT_BOUNDARIES: tuple[float, ...] = (
    1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 60.0, 600.0, 3600.0, 1e6, 1e9,
)


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("spec", "value", "_lock")

    def __init__(self, spec: MetricSpec) -> None:
        self.spec = spec
        self.value = 0
        self._lock = threading.Lock()

    def add(self, n: int = 1) -> None:
        if n < 0:
            raise ObservabilityError(
                f"counter {self.spec.name!r} cannot decrease (add {n})"
            )
        with self._lock:
            self.value += n


class Gauge:
    """Last-write-wins value."""

    __slots__ = ("spec", "value")

    def __init__(self, spec: MetricSpec) -> None:
        self.spec = spec
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Bucketed distribution with exact count/sum/min/max."""

    __slots__ = ("spec", "boundaries", "bucket_counts", "count", "total",
                 "minimum", "maximum", "_lock")

    def __init__(
        self, spec: MetricSpec, boundaries: tuple[float, ...] = DEFAULT_BOUNDARIES
    ) -> None:
        if list(boundaries) != sorted(boundaries) or len(set(boundaries)) != len(
            boundaries
        ):
            raise ObservabilityError(
                f"histogram {spec.name!r} boundaries must be strictly increasing"
            )
        self.spec = spec
        self.boundaries = tuple(float(b) for b in boundaries)
        self.bucket_counts = [0] * (len(boundaries) + 1)  # +1: overflow bucket
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        v = float(value)
        idx = len(self.boundaries)
        for i, bound in enumerate(self.boundaries):
            if v <= bound:
                idx = i
                break
        with self._lock:
            self.bucket_counts[idx] += 1
            self.count += 1
            self.total += v
            self.minimum = min(self.minimum, v)
            self.maximum = max(self.maximum, v)

    def as_dict(self) -> dict[str, Any]:
        if self.count == 0:
            return {"count": 0, "sum": 0.0, "min": None, "max": None,
                    "boundaries": list(self.boundaries),
                    "bucket_counts": list(self.bucket_counts)}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "boundaries": list(self.boundaries),
            "bucket_counts": list(self.bucket_counts),
        }


@dataclass(frozen=True)
class MetricsSnapshot:
    """Point-in-time, JSON-ready view of one registry."""

    counters: dict[str, int]
    gauges: dict[str, float]
    histograms: dict[str, dict[str, Any]]
    profiles: tuple[dict[str, Any], ...]

    def deterministic_counters(self) -> dict[str, int]:
        """Counters whose catalogue entry is marked deterministic.

        On fault-free runs these values are invariant across ``jobs``
        worker counts and cache temperature — the subset the parallel
        determinism test compares.
        """
        return {
            name: value
            for name, value in self.counters.items()
            if metric_spec(name).deterministic
        }

    def as_dict(self) -> dict[str, Any]:
        return {
            "schema_version": METRICS_SCHEMA_VERSION,
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": dict(sorted(self.histograms.items())),
            "profiles": list(self.profiles),
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), sort_keys=True, indent=2)

    def write(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json() + "\n")
        return path


class MetricsRegistry:
    """Creates and holds instruments; every name must be catalogued."""

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}
        self._profiles: list[dict[str, Any]] = []
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _get(self, name: str, kind: str) -> Counter | Gauge | Histogram:
        inst = self._instruments.get(name)
        if inst is not None:
            if inst.spec.kind != kind:
                raise ObservabilityError(
                    f"metric {name!r} is a {inst.spec.kind}, not a {kind}"
                )
            return inst
        spec = metric_spec(name)
        if spec.kind != kind:
            raise ObservabilityError(
                f"metric {name!r} is catalogued as a {spec.kind}, not a {kind}"
            )
        with self._lock:
            inst = self._instruments.get(name)
            if inst is None:
                if kind == COUNTER:
                    inst = Counter(spec)
                elif kind == GAUGE:
                    inst = Gauge(spec)
                else:
                    inst = Histogram(spec)
                self._instruments[name] = inst
        return inst

    def counter(self, name: str) -> Counter:
        inst = self._get(name, COUNTER)
        assert isinstance(inst, Counter)
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self._get(name, GAUGE)
        assert isinstance(inst, Gauge)
        return inst

    def histogram(self, name: str) -> Histogram:
        inst = self._get(name, HISTOGRAM)
        assert isinstance(inst, Histogram)
        return inst

    # ------------------------------------------------------------------
    def record_profile(self, profile: dict[str, Any]) -> None:
        """Append one stage profile record (see :mod:`repro.obs.profile`)."""
        with self._lock:
            self._profiles.append(profile)

    def reset(self) -> None:
        with self._lock:
            self._instruments.clear()
            self._profiles.clear()

    def snapshot(self) -> MetricsSnapshot:
        """Deterministically ordered snapshot of every instrument."""
        counters: dict[str, int] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict[str, Any]] = {}
        with self._lock:
            items = sorted(self._instruments.items())
            profiles = tuple(dict(p) for p in self._profiles)
        for name, inst in items:
            if isinstance(inst, Counter):
                counters[name] = inst.value
            elif isinstance(inst, Gauge):
                gauges[name] = inst.value
            else:
                histograms[name] = inst.as_dict()
        return MetricsSnapshot(
            counters=counters,
            gauges=gauges,
            histograms=histograms,
            profiles=profiles,
        )


def load_metrics_snapshot(path: str | Path) -> dict[str, Any]:
    """Load an exported metrics snapshot back into a dict."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except OSError as exc:
        raise ObservabilityError(f"cannot read metrics {path}: {exc}") from None
    except json.JSONDecodeError as exc:
        raise ObservabilityError(f"{path}: not a metrics snapshot: {exc}") from None
    if not isinstance(payload, dict) or "counters" not in payload:
        raise ObservabilityError(f"{path}: not a metrics snapshot")
    return payload
