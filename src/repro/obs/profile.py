"""Lightweight stage profiling: wall/CPU time and peak RSS.

A stage profile is one dict record::

    {"stage": "characterize", "wall_s": 12.4, "cpu_s": 11.9,
     "peak_rss_bytes": 734003200}

collected by :func:`stage_profiler` (used through
:func:`repro.obs.runtime.profile_stage`) and exported inside the metrics
snapshot's ``profiles`` list.  Peak RSS comes from
``resource.getrusage`` — a high-water mark of the whole process, so a
stage's value reflects the maximum reached *up to the end of* that
stage, not an isolated per-stage peak (documented in
``docs/observability.md``).  On platforms without ``resource`` (the
module is POSIX-only) the field is 0 rather than an error.
"""

from __future__ import annotations

import sys
import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator

try:  # POSIX only; Windows runs with peak_rss_bytes=0.
    import resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    resource = None  # type: ignore[assignment]

__all__ = ["peak_rss_bytes", "stage_profiler"]


def peak_rss_bytes() -> int:
    """The process's peak resident-set size in bytes (0 if unavailable).

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; normalise.
    """
    if resource is None:  # pragma: no cover - non-POSIX platforms
        return 0
    raw = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - exercised on macOS only
        return int(raw)
    return int(raw) * 1024


@contextmanager
def stage_profiler(
    stage: str, sink: Callable[[dict[str, Any]], None]
) -> Iterator[None]:
    """Measure one stage and hand the finished record to ``sink``.

    Pure observation: wall clock (``perf_counter``), process CPU time
    (``process_time``) and the RSS high-water mark; no RNG, no numeric
    side effects.
    """
    t0 = time.perf_counter()
    c0 = time.process_time()
    try:
        yield
    finally:
        sink(
            {
                "stage": stage,
                "wall_s": round(time.perf_counter() - t0, 6),
                "cpu_s": round(time.process_time() - c0, 6),
                "peak_rss_bytes": peak_rss_bytes(),
            }
        )
