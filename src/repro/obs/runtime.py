"""The process-wide observability switchboard.

The library's hot paths call the module-level helpers here
(:func:`span`, :func:`counter_add`, :func:`observe`, :func:`gauge_set`,
:func:`profile_stage`).  By default observability is **off** and every
helper is a near-free early return sharing one stateless null span — no
tracer, no registry, no timing reads — so the instrumented code paths
are bit- and cost-identical to uninstrumented ones.  Enabling is
explicit (:func:`enable_observability`, the ``observability`` context
manager, or the ``REPRO_TRACE`` / ``REPRO_METRICS`` environment
variables consulted by the CLIs) and never touches RNG state, which is
what preserves bit-identical pipeline results with telemetry on.

Scope: the observer is **per process**.  Pool workers spawned by the
sweep engine run with observability disabled; the parent still traces
the dispatch/harvest of every shard and derives the shard-level counters
from the sweep outcome, so sweep telemetry is complete at any worker
count (see ``docs/observability.md``).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

from .metrics import MetricsRegistry, MetricsSnapshot
from .profile import stage_profiler
from .trace import Tracer

__all__ = [
    "Observer",
    "REPRO_METRICS_ENV",
    "REPRO_TRACE_ENV",
    "counter_add",
    "default_metrics_path",
    "enable_observability",
    "disable_observability",
    "export_trace_files",
    "gauge_set",
    "get_observer",
    "metrics_enabled",
    "observability",
    "observe",
    "profile_stage",
    "set_observer",
    "snapshot_metrics",
    "span",
    "trace_enabled",
    "tracing_paths_from_env",
]

#: Environment variables the CLIs consult: a path base for trace export
#: and a path for the metrics snapshot.  Setting them is how headless
#: runs (CI, cron sweeps) opt in without code changes.
REPRO_TRACE_ENV = "REPRO_TRACE"
REPRO_METRICS_ENV = "REPRO_METRICS"


class _NullSpan:
    """Shared do-nothing span for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None

    def set(self, **attrs: Any) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


@dataclass
class Observer:
    """One process's telemetry state: a tracer plus a metrics registry."""

    tracer: Tracer
    metrics: MetricsRegistry
    trace_on: bool = False
    metrics_on: bool = False

    @property
    def enabled(self) -> bool:
        return self.trace_on or self.metrics_on


def _fresh_observer() -> Observer:
    return Observer(tracer=Tracer(), metrics=MetricsRegistry())


_observer: Observer = _fresh_observer()


def get_observer() -> Observer:
    """The process-wide observer (disabled by default)."""
    return _observer


def set_observer(observer: Observer | None) -> Observer:
    """Replace the process-wide observer; returns the previous one.

    ``None`` installs a fresh disabled observer.
    """
    global _observer
    previous = _observer
    _observer = observer if observer is not None else _fresh_observer()
    return previous


def enable_observability(trace: bool = True, metrics: bool = True) -> Observer:
    """Install and return a fresh enabled observer."""
    observer = _fresh_observer()
    observer.trace_on = bool(trace)
    observer.metrics_on = bool(metrics)
    set_observer(observer)
    return observer


def disable_observability() -> Observer:
    """Install a fresh disabled observer; returns the previous one."""
    return set_observer(None)


@contextmanager
def observability(trace: bool = True, metrics: bool = True) -> Iterator[Observer]:
    """Temporarily enable telemetry (tests, benches)::

        with observability() as obs:
            characterize_multiplier(...)
        obs.metrics.snapshot()
    """
    observer = _fresh_observer()
    observer.trace_on = bool(trace)
    observer.metrics_on = bool(metrics)
    previous = set_observer(observer)
    try:
        yield observer
    finally:
        set_observer(previous)


# ----------------------------------------------------------------------
# Hot-path helpers.  Each is a tiny guard + dispatch; when the observer
# is disabled, cost is one attribute read and a truth test.
def trace_enabled() -> bool:
    return _observer.trace_on


def metrics_enabled() -> bool:
    return _observer.metrics_on


def span(name: str, **attrs: Any) -> Any:
    """A live span when tracing is on; the shared null span otherwise."""
    ob = _observer
    if not ob.trace_on:
        return _NULL_SPAN
    return ob.tracer.span(name, **attrs)


def counter_add(name: str, n: int = 1) -> None:
    ob = _observer
    if ob.metrics_on:
        ob.metrics.counter(name).add(n)


def gauge_set(name: str, value: float) -> None:
    ob = _observer
    if ob.metrics_on:
        ob.metrics.gauge(name).set(value)


def observe(name: str, value: float) -> None:
    ob = _observer
    if ob.metrics_on:
        ob.metrics.histogram(name).observe(value)


@contextmanager
def profile_stage(stage: str) -> Iterator[None]:
    """Record a wall/CPU/peak-RSS profile of ``stage`` when metrics are on."""
    ob = _observer
    if not ob.metrics_on:
        yield
        return
    with stage_profiler(stage, ob.metrics.record_profile):
        yield


# ----------------------------------------------------------------------
# Export plumbing shared by the CLIs and the quickstart example.
def tracing_paths_from_env(
    environ: dict[str, str] | None = None,
) -> tuple[str | None, str | None]:
    """``(trace_base, metrics_path)`` from ``REPRO_TRACE``/``REPRO_METRICS``."""
    env = os.environ if environ is None else environ
    return env.get(REPRO_TRACE_ENV) or None, env.get(REPRO_METRICS_ENV) or None


def _trace_base(path: str | Path) -> Path:
    base = Path(path)
    if base.suffix in (".json", ".jsonl"):
        base = base.with_suffix("")
    return base


def export_trace_files(trace_base: str | Path) -> tuple[Path, Path]:
    """Write ``<base>.jsonl`` (sidecar) and ``<base>.json`` (Chrome trace).

    ``trace_base`` may carry a ``.json``/``.jsonl`` suffix (it is
    stripped), so ``--trace out/run.json`` does the expected thing.
    Returns ``(jsonl_path, chrome_path)``.
    """
    base = _trace_base(trace_base)
    tracer = _observer.tracer
    return (
        tracer.export_jsonl(base.with_suffix(".jsonl")),
        tracer.export_chrome(base.with_suffix(".json")),
    )


def default_metrics_path(trace_base: str | Path) -> Path:
    """``<base>.metrics.json`` — where ``--trace`` alone puts the snapshot."""
    base = _trace_base(trace_base)
    return base.parent / (base.name + ".metrics.json")


def snapshot_metrics(path: str | Path | None = None) -> MetricsSnapshot:
    """Snapshot the current registry, optionally writing it to ``path``."""
    snap = _observer.metrics.snapshot()
    if path is not None:
        snap.write(path)
    return snap
