"""Hierarchical trace spans with JSONL and Chrome ``trace_event`` export.

A :class:`Tracer` records :class:`SpanRecord` entries — name, monotonic
start offset, duration, structured attributes, and the parent span —
through a context-manager API::

    with tracer.span("characterize.sweep", w_data=9, w_coeff=3) as sp:
        ...
        sp.set(n_shards=len(shards))

Span names are validated against the telemetry catalogue
(:mod:`repro.obs.spec`) so every span that can appear in a trace is
documented in ``docs/observability.md``.

Two export formats:

* **JSONL sidecar** (:meth:`Tracer.export_jsonl`): one JSON object per
  finished span, in completion order — greppable, streamable, diffable;
* **Chrome trace JSON** (:meth:`Tracer.export_chrome`): complete
  (``"ph": "X"``) events loadable by ``chrome://tracing`` / Perfetto for
  flamegraph viewing.

The formats round-trip: :func:`chrome_trace_from_records` rebuilds the
Chrome document from loaded JSONL records, byte-identical to the direct
export (``tests/obs/test_trace.py`` pins this).

Timing uses ``time.perf_counter`` (monotonic); recorded offsets are
relative to the tracer's construction so traces are machine-relocatable.
All of this is wall-clock *observation only* — no RNG is consumed and no
numeric path is touched, which is what keeps traced runs bit-identical
to untraced ones.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable

from ..errors import ObservabilityError
from .spec import span_spec

__all__ = [
    "SpanRecord",
    "Span",
    "Tracer",
    "chrome_trace_from_records",
    "load_trace_jsonl",
    "summarize_spans",
]

#: Schema version stamped into every JSONL record.
TRACE_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class SpanRecord:
    """One finished span.

    ``start_s`` is the offset from the tracer's origin in seconds;
    ``attrs`` holds the structured attributes (JSON-scalar values).
    """

    name: str
    span_id: int
    parent_id: int | None
    start_s: float
    duration_s: float
    attrs: dict[str, Any]
    pid: int

    def as_dict(self) -> dict[str, Any]:
        return {
            "schema_version": TRACE_SCHEMA_VERSION,
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "attrs": self.attrs,
            "pid": self.pid,
        }


class Span:
    """A live span; use as a context manager, set attributes via :meth:`set`."""

    __slots__ = ("_tracer", "name", "span_id", "parent_id", "attrs", "_t0")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        span_id: int,
        parent_id: int | None,
        attrs: dict[str, Any],
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self._t0 = 0.0

    def set(self, **attrs: Any) -> "Span":
        """Attach structured attributes to the span (JSON scalars)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self._tracer._stack_of_thread().append(self.span_id)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        duration = time.perf_counter() - self._t0
        stack = self._tracer._stack_of_thread()
        if stack and stack[-1] == self.span_id:
            stack.pop()
        self._tracer._finish(self, duration)


class Tracer:
    """Collects spans for one process; thread-safe, catalogue-validated."""

    def __init__(self) -> None:
        self._origin = time.perf_counter()
        self._records: list[SpanRecord] = []
        self._lock = threading.Lock()
        self._next_id = 1
        self._local = threading.local()
        self._pid = os.getpid()

    # ------------------------------------------------------------------
    def _stack_of_thread(self) -> list[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def span(self, name: str, **attrs: Any) -> Span:
        """Open a span named ``name``; the name must be catalogued."""
        span_spec(name)  # closed-world: uncatalogued spans raise
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        stack = self._stack_of_thread()
        parent_id = stack[-1] if stack else None
        return Span(self, name, span_id, parent_id, dict(attrs))

    def _finish(self, span: Span, duration_s: float) -> None:
        record = SpanRecord(
            name=span.name,
            span_id=span.span_id,
            parent_id=span.parent_id,
            start_s=span._t0 - self._origin,
            duration_s=duration_s,
            attrs=span.attrs,
            pid=self._pid,
        )
        with self._lock:
            self._records.append(record)

    # ------------------------------------------------------------------
    @property
    def records(self) -> tuple[SpanRecord, ...]:
        """Finished spans, in completion order."""
        with self._lock:
            return tuple(self._records)

    def reset(self) -> None:
        with self._lock:
            self._records.clear()
            self._next_id = 1
        self._origin = time.perf_counter()

    # ------------------------------------------------------------------
    def export_jsonl(self, path: str | Path) -> Path:
        """Write the JSONL sidecar: one record per line, completion order."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        lines = [json.dumps(r.as_dict(), sort_keys=True) for r in self.records]
        path.write_text("\n".join(lines) + ("\n" if lines else ""))
        return path

    def export_chrome(self, path: str | Path) -> Path:
        """Write the Chrome ``trace_event`` document for flamegraph viewing."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = chrome_trace_from_records(r.as_dict() for r in self.records)
        path.write_text(json.dumps(doc, sort_keys=True, indent=1) + "\n")
        return path


# ----------------------------------------------------------------------
def load_trace_jsonl(path: str | Path) -> list[dict[str, Any]]:
    """Load a JSONL trace sidecar back into record dicts."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise ObservabilityError(f"cannot read trace {path}: {exc}") from None
    records = []
    for i, line in enumerate(text.splitlines()):
        if not line.strip():
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ObservabilityError(
                f"{path}:{i + 1}: not a JSON trace record: {exc}"
            ) from None
        if not isinstance(rec, dict) or "name" not in rec:
            raise ObservabilityError(f"{path}:{i + 1}: not a span record")
        records.append(rec)
    return records


def chrome_trace_from_records(records: Iterable[dict[str, Any]]) -> dict[str, Any]:
    """Chrome ``trace_event`` document from JSONL-shaped records.

    Complete events (``"ph": "X"``), microsecond timestamps relative to
    the trace origin; span attributes ride in ``args`` (with the span
    identity, so the hierarchy survives the conversion).
    """
    events = []
    for rec in records:
        events.append(
            {
                "name": rec["name"],
                "cat": rec["name"].split(".", 1)[0],
                "ph": "X",
                "ts": round(float(rec["start_s"]) * 1e6, 3),
                "dur": round(float(rec["duration_s"]) * 1e6, 3),
                "pid": int(rec.get("pid", 0)),
                "tid": int(rec.get("pid", 0)),
                "args": {
                    **dict(rec.get("attrs", {})),
                    "span_id": rec.get("span_id"),
                    "parent_id": rec.get("parent_id"),
                },
            }
        )
    events.sort(key=lambda e: (e["ts"], e["args"]["span_id"] or 0))
    return {
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs", "schema_version": TRACE_SCHEMA_VERSION},
        "traceEvents": events,
    }


def summarize_spans(records: Iterable[dict[str, Any]]) -> list[dict[str, Any]]:
    """Per-name aggregate rows for trace inspection (``repro obs trace``).

    Returns rows sorted by total time descending:
    ``{"name", "count", "total_s", "mean_s", "max_s"}``.
    """
    agg: dict[str, list[float]] = {}
    for rec in records:
        agg.setdefault(str(rec["name"]), []).append(float(rec["duration_s"]))
    rows = [
        {
            "name": name,
            "count": len(durs),
            "total_s": round(sum(durs), 6),
            "mean_s": round(sum(durs) / len(durs), 6),
            "max_s": round(max(durs), 6),
        }
        for name, durs in agg.items()
    ]
    rows.sort(key=lambda r: (-r["total_s"], r["name"]))
    return rows
