"""Mini synthesis flow: place a netlist on a device and report timing/area.

This package plays the role of the vendor tool in the paper's Fig. 2 flow:
it produces (i) a placed, delay-annotated design that the timing simulator
can execute against the *actual* device, and (ii) the conservative reports
(Tool Fmax, LE count) that the paper's methodology deliberately outperforms.
"""

from .placer import Placement, place_netlist
from .timing_report import ToolTimingReport, tool_timing_report
from .area_report import AreaReport, area_report
from .flow import PlacedDesign, SynthesisFlow

__all__ = [
    "Placement",
    "place_netlist",
    "ToolTimingReport",
    "tool_timing_report",
    "AreaReport",
    "area_report",
    "PlacedDesign",
    "SynthesisFlow",
]
