"""Conservative "synthesis tool" timing report.

The vendor tool signs off every die of the family at the worst process
corner with a guard band on top (aging, voltage/temperature envelopes).
Its Fmax — fA in the paper's Fig. 1 — is therefore well below what a
specific, characterised die achieves (fB), which is the gap this whole
framework monetises.

The report runs STA on the same netlist structure but with family
worst-case delays instead of the die's actual delays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import period_ns_to_mhz
from ..netlist.core import CompiledNetlist
from ..timing.sta import static_timing
from .placer import Placement

__all__ = ["ToolTimingReport", "tool_timing_report"]


@dataclass(frozen=True)
class ToolTimingReport:
    """What the synthesis tool promises for a placed design."""

    fmax_mhz: float
    critical_path_ns: float
    guard_band: float
    slow_corner_factor: float

    @property
    def min_period_ns(self) -> float:
        return 1000.0 / self.fmax_mhz


def tool_timing_report(placement: Placement) -> ToolTimingReport:
    """Produce the conservative family-wide timing report for a placement.

    Uses worst-corner LUT delays uniformly (the tool has no idea where on
    the die the design will really be, let alone which die), worst-case
    routing delays, and the family guard band.
    """
    netlist: CompiledNetlist = placement.netlist
    family = placement.device.family
    timing_cfg = family.timing

    lut_mask = netlist.lut_mask
    node_delay = np.where(lut_mask, family.worst_case_lut_delay_ns(), 0.0)

    dist = placement.manhattan_edge_distances()
    fanout = placement.fanout_counts()
    fidx = netlist.fanin_idx
    edge_delay = family.routing.worst_case_delay(dist, fanout[fidx])
    # Zero routing charge into non-LUT nodes (inputs/consts have no fanins).
    edge_delay = np.where(lut_mask[:, None], edge_delay, 0.0)

    result = static_timing(
        netlist, node_delay, edge_delay, setup_ns=timing_cfg.register_setup_ns
    )
    guarded_period = result.min_period_ns * timing_cfg.tool_guard_band
    return ToolTimingReport(
        fmax_mhz=period_ns_to_mhz(guarded_period),
        critical_path_ns=result.critical_path_ns,
        guard_band=timing_cfg.tool_guard_band,
        slow_corner_factor=timing_cfg.slow_corner_factor,
    )
