"""End-to-end mini synthesis flow.

``SynthesisFlow.run`` takes a netlist and a device and produces a
:class:`PlacedDesign`: the placed netlist annotated with the *actual*
per-node/per-edge delays of that die (used by the timing simulator and by
device-true STA) together with the tool's conservative reports.

This is the single entry point the characterisation harness and the
projection-datapath builder use to get designs "onto the device".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis import check_netlist
from ..config import get_analysis_settings
from ..errors import PlacementError
from ..obs import runtime as obs
from ..fabric.device import FPGADevice
from ..netlist.core import CompiledNetlist, Netlist
from ..timing.sta import StaticTimingResult, static_timing
from .area_report import AreaReport, area_report
from .placer import Placement, place_netlist
from .timing_report import ToolTimingReport, tool_timing_report

__all__ = ["PlacedDesign", "SynthesisFlow"]


@dataclass(frozen=True)
class PlacedDesign:
    """A netlist placed and routed on a specific device.

    Attributes
    ----------
    node_delay:
        Actual per-node LUT delays on this die (ns), shape ``(n,)``.
    edge_delay:
        Actual per-fanin routing delays (ns), shape ``(n, 4)``.
    tool_report:
        The conservative vendor report (fA of Fig. 1).
    area:
        The synthesis-run area report.
    """

    netlist: CompiledNetlist
    device: FPGADevice
    placement: Placement
    node_delay: np.ndarray
    edge_delay: np.ndarray
    tool_report: ToolTimingReport
    area: AreaReport

    def device_sta(self) -> StaticTimingResult:
        """Device-true STA: the actual error-free bound of this placement.

        Corresponds to the paper's data-path Fmax (fB) as a worst-case-
        over-data bound.
        """
        return static_timing(
            self.netlist,
            self.node_delay,
            self.edge_delay,
            setup_ns=self.device.family.timing.register_setup_ns,
        )

    def sensitized_sta(self, assumptions: dict | None = None) -> StaticTimingResult:
        """Device-true STA with false paths pruned under input assumptions.

        Convenience wrapper over
        :func:`repro.analysis.sensitization.sensitized_sta` (lazy import:
        the analysis package imports this module for the lint gate).
        """
        from ..analysis.sensitization import sensitized_sta as _sensitized_sta

        return _sensitized_sta(self, assumptions)

    @property
    def setup_ns(self) -> float:
        return self.device.family.timing.register_setup_ns


class SynthesisFlow:
    """Synthesise (place + annotate + report) netlists onto a device."""

    def __init__(self, device: FPGADevice) -> None:
        self.device = device

    def run(
        self,
        netlist: Netlist | CompiledNetlist,
        anchor: tuple[int, int] = (0, 0),
        seed: int = 0,
        utilization: float = 0.55,
        lint: bool | None = None,
    ) -> PlacedDesign:
        """Place ``netlist`` at ``anchor`` and annotate actual delays.

        Parameters
        ----------
        anchor:
            Placement-region corner; the characterisation harness sweeps
            this to probe different parts of the die.
        seed:
            Synthesis-run seed (placement layout, routing noise, reported
            area scatter all derive from it).
        lint:
            Run the static-analysis gate before placement, raising
            :class:`~repro.errors.LintError` on error-severity findings
            (dead logic, malformed output buses, ...) and surfacing the
            rest as :class:`~repro.analysis.LintWarning`.  ``None`` defers
            to :func:`repro.config.get_analysis_settings` (on by default;
            the Fig. 2 flow runs it between "design entry" and placement).
        """
        obs.counter_add("synthesis.runs")
        with obs.span(
            "synthesis.run", anchor=f"{anchor[0]},{anchor[1]}", seed=seed
        ) as span:
            if lint is None:
                lint = get_analysis_settings().lint_synthesis
            if lint:
                check_netlist(netlist, context="synthesis flow")
            compiled = netlist.compile() if isinstance(netlist, Netlist) else netlist
            span.set(nodes=compiled.n_nodes, linted=bool(lint))
            placement = place_netlist(
                compiled, self.device, anchor=anchor, seed=seed, utilization=utilization
            )

            lut_mask = compiled.lut_mask
            node_delay = np.zeros(compiled.n_nodes)
            node_delay[lut_mask] = self.device.lut_delay_at(
                placement.xs[lut_mask], placement.ys[lut_mask]
            )

            dist = placement.manhattan_edge_distances()
            fanout = placement.fanout_counts()
            fidx = compiled.fanin_idx
            routing_rng = self.device.routing_rng(seed)
            edge_delay = self.device.family.routing.routed_delay(
                dist, fanout[fidx], routing_rng
            )
            # Condition scaling applies to interconnect as well as logic.
            edge_delay = edge_delay * self.device.conditions.delay_scale()
            edge_delay = np.where(lut_mask[:, None], edge_delay, 0.0)

            return PlacedDesign(
                netlist=compiled,
                device=self.device,
                placement=placement,
                node_delay=node_delay,
                edge_delay=edge_delay,
                tool_report=tool_timing_report(placement),
                area=area_report(compiled, seed=seed),
            )

    def available_anchors(
        self,
        netlist: Netlist | CompiledNetlist,
        n_locations: int,
        utilization: float = 0.55,
    ) -> list[tuple[int, int]]:
        """Evenly spaced anchors where ``netlist`` fits, for location sweeps.

        Raises
        ------
        PlacementError
            If not even one location fits.
        """
        import math

        compiled = netlist.compile() if isinstance(netlist, Netlist) else netlist
        side = max(2, math.ceil(math.sqrt(compiled.n_nodes / utilization)))
        max_x = self.device.cols - side
        max_y = self.device.rows - side
        if max_x < 0 or max_y < 0:
            raise PlacementError("design does not fit the device at all")
        if n_locations < 1:
            raise PlacementError("n_locations must be >= 1")
        per_axis = max(1, int(math.ceil(math.sqrt(n_locations))))
        xs = np.linspace(0, max_x, per_axis, dtype=int)
        ys = np.linspace(0, max_y, per_axis, dtype=int)
        anchors = [(int(x), int(y)) for y in ys for x in xs]
        return anchors[:n_locations]
