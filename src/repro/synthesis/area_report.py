"""Area (logic element) report.

One LUT maps to one logic element.  Real synthesis runs scatter a few
percent around that count — the tool merges some logic, duplicates other
logic for routability, and the exact outcome varies with the placement
seed.  The paper's Figs. 6 and 9 show exactly this scatter; the area
*model* (``repro.models.area_model``) is fitted on reports produced here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from ..netlist.core import CompiledNetlist

__all__ = ["AreaReport", "area_report"]

#: Relative sigma of run-to-run LE-count scatter observed in real flows.
_AREA_NOISE_SIGMA = 0.035


@dataclass(frozen=True)
class AreaReport:
    """Synthesis-reported resource usage for one run."""

    logic_elements: int
    structural_luts: int
    seed: int

    @property
    def optimisation_delta(self) -> int:
        """LEs added (positive) or saved (negative) by tool optimisation."""
        return self.logic_elements - self.structural_luts


def area_report(
    netlist: CompiledNetlist, seed: int = 0, noise_sigma: float = _AREA_NOISE_SIGMA
) -> AreaReport:
    """Report the LE count of a synthesis run of ``netlist``.

    Parameters
    ----------
    seed:
        Synthesis-run seed; different seeds give (slightly) different
        reported areas, as in the paper's Fig. 6 data collection.
    noise_sigma:
        Relative scatter; 0 gives the exact structural count.
    """
    if noise_sigma < 0:
        raise ConfigError("noise_sigma must be non-negative")
    structural = netlist.n_luts
    if noise_sigma == 0 or structural == 0:
        return AreaReport(logic_elements=structural, structural_luts=structural, seed=seed)
    rng = np.random.default_rng(seed)
    reported = int(round(structural * float(rng.normal(1.0, noise_sigma))))
    reported = max(1, reported)
    return AreaReport(logic_elements=reported, structural_luts=structural, seed=seed)
