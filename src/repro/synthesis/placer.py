"""Placement of a compiled netlist into a rectangular device region.

The placer assigns every node one logic element in a square-ish region
anchored at a caller-chosen location — the knob the paper's
characterisation sweeps ("placed at two different locations in the device",
Fig. 4).  Within the region, nodes are laid out level-by-level in a
serpentine order with a small seeded shuffle, approximating how a real
placer keeps connected logic local while still varying between runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import PlacementError
from ..fabric.device import FPGADevice
from ..netlist.core import CompiledNetlist

__all__ = ["Placement", "place_netlist"]


@dataclass(frozen=True)
class Placement:
    """A realised placement of a netlist on a device.

    Attributes
    ----------
    xs, ys:
        Per-node LE coordinates, shape ``(n_nodes,)``.
    anchor:
        Region anchor ``(x0, y0)``.
    region:
        Region size ``(width, height)`` in LEs.
    seed:
        Placement seed (also selects the routing-noise stream).
    """

    netlist: CompiledNetlist
    device: FPGADevice
    xs: np.ndarray
    ys: np.ndarray
    anchor: tuple[int, int]
    region: tuple[int, int]
    seed: int

    def manhattan_edge_distances(self) -> np.ndarray:
        """Per-fanin-edge Manhattan distances, shape ``(n_nodes, 4)``."""
        fidx = self.netlist.fanin_idx
        dx = np.abs(self.xs[fidx] - self.xs[:, None])
        dy = np.abs(self.ys[fidx] - self.ys[:, None])
        dist = (dx + dy).astype(np.float64)
        # Mask out padded fanins (beyond arity): zero distance.
        arity = self.netlist.arity
        for k in range(4):
            dist[arity <= k, k] = 0.0
        return dist

    def fanout_counts(self) -> np.ndarray:
        """Number of sinks per node (minimum 1 for delay-model purposes)."""
        n = self.netlist.n_nodes
        counts = np.zeros(n, dtype=np.int64)
        arity = self.netlist.arity
        fidx = self.netlist.fanin_idx
        for k in range(4):
            sel = arity > k
            np.add.at(counts, fidx[sel, k], 1)
        return np.maximum(counts, 1)


def place_netlist(
    netlist: CompiledNetlist,
    device: FPGADevice,
    anchor: tuple[int, int] = (0, 0),
    seed: int = 0,
    utilization: float = 0.55,
) -> Placement:
    """Place ``netlist`` on ``device`` in a region anchored at ``anchor``.

    Parameters
    ----------
    anchor:
        Bottom-left corner ``(x0, y0)`` of the placement region.
    seed:
        Varies the within-region layout (and downstream routing noise),
        modelling independent synthesis runs of the same circuit.
    utilization:
        Target LE utilisation of the region; lower values spread the
        design out (longer average nets).

    Raises
    ------
    PlacementError
        If the region does not fit on the device at the given anchor.
    """
    if not (0.05 <= utilization <= 1.0):
        raise PlacementError(f"utilization must be in [0.05, 1], got {utilization}")
    n = netlist.n_nodes
    side = max(2, math.ceil(math.sqrt(n / utilization)))
    x0, y0 = anchor
    if x0 < 0 or y0 < 0 or x0 + side > device.cols or y0 + side > device.rows:
        raise PlacementError(
            f"region {side}x{side} at ({x0},{y0}) does not fit device "
            f"{device.cols}x{device.rows}"
        )

    rng = np.random.default_rng(seed ^ (device.serial & 0x7FFFFFFF))

    # Serpentine cell order over the region: neighbours in order are
    # physically adjacent, so placing nodes in (jittered) level order keeps
    # connected logic close.
    cells = []
    for r in range(side):
        row = [(x0 + c, y0 + r) for c in range(side)]
        if r % 2:
            row.reverse()
        cells.extend(row)
    cells_arr = np.asarray(cells, dtype=np.int64)

    # Level-ordered node sequence with a small local shuffle per level.
    order = []
    levels = netlist.levels
    for lv in range(int(levels.max()) + 1):
        ids = np.nonzero(levels == lv)[0]
        if ids.size:
            ids = rng.permutation(ids)
            order.extend(ids.tolist())
    order_arr = np.asarray(order, dtype=np.int64)

    # Spread the nodes over the region cells with a seeded stride offset.
    offset = int(rng.integers(0, max(1, len(cells) - n + 1)))
    chosen = cells_arr[offset : offset + n]
    xs = np.empty(n, dtype=np.int64)
    ys = np.empty(n, dtype=np.int64)
    xs[order_arr] = chosen[:, 0]
    ys[order_arr] = chosen[:, 1]

    return Placement(
        netlist=netlist,
        device=device,
        xs=xs,
        ys=ys,
        anchor=anchor,
        region=(side, side),
        seed=seed,
    )
