"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to discriminate by subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigError(ReproError):
    """An invalid configuration value or combination was supplied."""


class NetlistError(ReproError):
    """A structural problem with a netlist (cycle, dangling net, bad arity)."""


class AnalysisError(ReproError):
    """The static-analysis subsystem was misconfigured or misused
    (unknown rule ID, invalid severity name, bad budget value)."""


class LintError(AnalysisError):
    """A netlist failed the lint gate.

    Raised by :func:`repro.analysis.check_netlist` (and therefore by the
    synthesis flow and the generator factory when linting is enabled) when a
    :class:`~repro.analysis.LintReport` contains diagnostics at or above the
    configured failure severity.  The offending report is attached as
    ``report``.
    """

    def __init__(self, message: str, report: object | None = None) -> None:
        super().__init__(message)
        self.report = report


class ProofError(AnalysisError):
    """An equivalence proof failed: the netlist computes something other
    than its golden specification.

    Raised by :meth:`repro.analysis.equivalence.EquivalenceCertificate.require`;
    the failing certificate (with its counterexample vector) is attached
    as ``certificate``.
    """

    def __init__(self, message: str, certificate: object | None = None) -> None:
        super().__init__(message)
        self.certificate = certificate


class KernelError(ReproError):
    """The bit-sliced kernel compiler failed an internal contract.

    Raised by :mod:`repro.kernels` when a truth-table lowering does not
    verify against its table, a plan is executed against a mismatched
    netlist, or the packed representation cannot be built on this
    platform.  User-input problems (unknown bus, bad shapes) keep
    raising :class:`NetlistError` exactly like the interpreted path.
    """


class PlacementError(ReproError):
    """Placement could not be completed (region too small, out of bounds)."""


class TimingError(ReproError):
    """A timing analysis or timing simulation precondition was violated."""


class CharacterizationError(ReproError):
    """The characterisation harness was misused or produced no data."""


class FaultPlanError(ConfigError):
    """A fault-injection plan is malformed (unknown kind, bad counts,
    unparseable ``REPRO_FAULTS`` value)."""


class InjectedFaultError(ReproError):
    """Raised *by* an armed crash fault inside a shard.

    This is the exception chaos plans throw on purpose; the resilience
    layer treats it exactly like any other shard failure, but tests can
    discriminate injected crashes from organic ones.
    """


class SweepFailedError(CharacterizationError):
    """A sharded sweep could not produce a usable result.

    Raised when shards remain quarantined after all retries and the
    caller did not opt into degraded results.  The full
    :class:`~repro.parallel.retry.SweepOutcome` is attached as
    ``outcome`` so callers can inspect per-shard attempt histories.
    """

    def __init__(self, message: str, outcome: object | None = None) -> None:
        super().__init__(message)
        self.outcome = outcome


class ObservabilityError(ReproError):
    """The observability subsystem was misused: an uncatalogued span or
    metric name, a kind mismatch against the telemetry catalogue, or an
    unreadable trace/metrics artefact.

    Telemetry names are closed-world on purpose — every span and metric the
    library can emit is declared in :mod:`repro.obs.spec`, which is what
    lets ``docs/observability.md`` be generated and drift-tested."""


class ServeError(ReproError):
    """The job server was misused: unknown op or job kind, malformed
    request payload, unknown job id, or a client/server protocol error."""


class JobRejectedError(ServeError):
    """A job submission was refused by admission control.

    Carries the machine-readable rejection ``reason`` (``"queue-full"``
    or ``"tenant-quota"``) and the HTTP status the server maps it to
    (``429`` — backpressure, the client should retry later)."""

    def __init__(self, message: str, reason: str, http_status: int = 429) -> None:
        super().__init__(message)
        self.reason = reason
        self.http_status = http_status


class ModelError(ReproError):
    """An analytical model (error/area/prior/runtime) was queried outside
    its supported domain or fitted from insufficient data."""


class OptimizationError(ReproError):
    """The design-space exploration (Algorithm 1) failed to make progress."""


class DesignError(ReproError):
    """A linear-projection design is structurally invalid or inconsistent."""
