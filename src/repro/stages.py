"""Shared stage implementations behind ``repro-flow`` and ``repro.serve``.

The batch CLI (:mod:`repro.cli_flow`) and the job server
(:mod:`repro.serve`) must produce *byte-identical* artefacts for the same
workspace and stage — that guarantee is only cheap to keep if both front
ends execute the very same code.  This module is that code: one function
per flow stage, operating on a :class:`~repro.workspace.Workspace`, with
front-end concerns (printing, job states, telemetry export) injected
through a ``progress`` callback instead of being baked in.

Progress events are plain dicts (``{"stage", "event", ...}``) so they can
be printed by the CLI, streamed over a socket by the server, or dropped.
A ``progress`` callback may raise to abort a stage between unit of works
(the server's cancellation path); whatever was already saved stays valid
on disk — every workspace write is atomic.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from .characterization.harness import CharacterizationConfig, characterize_multiplier
from .circuits.domains import Domain
from .config import ResilienceSettings, TableISettings
from .core.design import LinearProjectionDesign
from .core.optimizer import OptimizationResult
from .datasets import low_rank_gaussian
from .faults import FaultPlan
from .framework import default_frequency_grid
from .models.area_model import AreaModel, collect_area_samples, fit_area_model
from .parallel.cache import PlacedDesignCache
from .parallel.jobs import resolve_jobs
from .workspace import Workspace

__all__ = [
    "ProgressFn",
    "characterization_config",
    "characterize_workspace",
    "evaluate_workspace",
    "fit_area_workspace",
    "optimize_workspace",
    "training_data",
]

#: Stage progress callback: receives one plain-dict event per milestone.
ProgressFn = Callable[[dict], None]


def _emit(progress: ProgressFn | None, event: dict) -> None:
    if progress is not None:
        progress(event)


def characterization_config(settings: TableISettings) -> CharacterizationConfig:
    """The sweep configuration the flow derives from workspace settings.

    Single source of truth for both front ends: the frequency grid
    brackets the target clock, the sample count is Table I's (scaled),
    and two placement anchors are characterised per word-length.
    """
    return CharacterizationConfig(
        freqs_mhz=default_frequency_grid(settings.clock_frequency_mhz),
        n_samples=settings.n_characterization,
        n_locations=2,
    )


def characterize_workspace(
    ws: Workspace,
    jobs: int | None = None,
    resilience: ResilienceSettings | None = None,
    cache: PlacedDesignCache | None = None,
    faults: FaultPlan | None = None,
    progress: ProgressFn | None = None,
    executor: str | None = None,
) -> list[Path]:
    """Characterise every configured word-length and archive the sweeps.

    Deterministic in the workspace identity (device serial, settings,
    seed): the ``jobs`` worker count, the ``cache`` temperature, the
    ``executor`` topology (``pool``, ``serial`` or ``file-queue``) and
    the calling front end never change the archived bytes.
    ``cache=None`` uses the workspace's own disk-backed cache; a server
    passes its warm shared cache instead.  Returns the archive paths in
    sweep order.
    """
    device = ws.device()
    settings = ws.settings()
    n_jobs = resolve_jobs(jobs)
    placed = cache if cache is not None else ws.placed_cache()
    cfg = characterization_config(settings)
    paths: list[Path] = []
    for wl in settings.coeff_wordlengths:
        _emit(progress, {
            "stage": "characterize",
            "event": "wordlength.start",
            "w_data": settings.input_wordlength,
            "wl": wl,
        })
        result = characterize_multiplier(
            device,
            settings.input_wordlength,
            wl,
            cfg,
            seed=ws.seed(),
            jobs=n_jobs,
            cache=placed,
            resilience=resilience,
            faults=faults,
            executor=executor,
        )
        path = ws.save_characterization(wl, result)
        paths.append(path)
        status = result.outcome.status if result.outcome is not None else "complete"
        quarantined = (
            [list(shard) for shard in result.outcome.quarantined]
            if result.outcome is not None
            else []
        )
        _emit(progress, {
            "stage": "characterize",
            "event": "wordlength.done",
            "wl": wl,
            "path": str(path),
            "status": status,
            "quarantined": quarantined,
        })
    return paths


def fit_area_workspace(
    ws: Workspace,
    n_runs: int = 6,
    progress: ProgressFn | None = None,
) -> tuple[AreaModel, Path]:
    """Fit and archive the LE-cost model from synthesis samples."""
    settings = ws.settings()
    _emit(progress, {"stage": "fit_area", "event": "fit.start", "n_runs": n_runs})
    samples = collect_area_samples(
        ws.device(),
        settings.coeff_wordlengths,
        w_data=settings.input_wordlength,
        n_runs=n_runs,
        seed=ws.seed(),
    )
    degree = max(1, min(2, len(set(settings.coeff_wordlengths)) - 1))
    model = fit_area_model(samples, degree=degree)
    path = ws.save_area_model(model)
    _emit(progress, {
        "stage": "fit_area",
        "event": "fit.done",
        "path": str(path),
        "residual_sigma": model.residual_sigma,
    })
    return model, path


def training_data(ws: Workspace) -> tuple[np.ndarray, np.ndarray]:
    """The deterministic (train, test) split derived from the workspace seed."""
    settings = ws.settings()
    x = low_rank_gaussian(
        settings.p,
        settings.k,
        settings.n_train + settings.n_test,
        np.random.default_rng(ws.seed()),
        noise=0.02,
    )
    return x[:, : settings.n_train], x[:, settings.n_train :]


def optimize_workspace(
    ws: Workspace,
    name: str,
    beta: float,
    jobs: int | None = None,
    cache: PlacedDesignCache | None = None,
    progress: ProgressFn | None = None,
) -> tuple[OptimizationResult, Path]:
    """Run Algorithm 1 on the workspace's training data; archive the designs."""
    _emit(progress, {"stage": "optimize", "event": "optimize.start", "beta": beta})
    fw = ws.framework(jobs=resolve_jobs(jobs))
    if cache is not None:
        fw.cache = cache
    x_train, _ = training_data(ws)
    result = fw.optimize(x_train, beta=beta)
    path = ws.save_design_set(name, result.designs)
    _emit(progress, {
        "stage": "optimize",
        "event": "optimize.done",
        "name": name,
        "n_designs": len(result.designs),
        "path": str(path),
    })
    return result, path


def evaluate_workspace(
    ws: Workspace,
    name: str,
    domain: Domain,
    jobs: int | None = None,
    cache: PlacedDesignCache | None = None,
    progress: ProgressFn | None = None,
) -> list[dict]:
    """Evaluate a stored design set in one domain.

    Returns one row dict per design, sorted by area — the CLI renders
    them as a table, the server ships them back as the job result.
    """
    fw = ws.framework(jobs=resolve_jobs(jobs))
    if cache is not None:
        fw.cache = cache
    _, x_test = training_data(ws)
    designs: Sequence[LinearProjectionDesign] = ws.load_design_set(name)
    rows: list[dict] = []
    for d in sorted(designs, key=lambda d: d.area_le or 0):
        _emit(progress, {
            "stage": "evaluate",
            "event": "design.start",
            "wordlengths": list(d.wordlengths),
        })
        ev = fw.evaluate(d, x_test, domain)
        rows.append({
            "wordlengths": list(d.wordlengths),
            "area_le": float(ev.area_le),
            "mse": float(ev.mse),
            "domain": domain.value,
        })
    _emit(progress, {"stage": "evaluate", "event": "evaluate.done", "n_designs": len(rows)})
    return rows
