"""Device family and device-instance models.

A :class:`DeviceFamily` is what the synthesis tool knows: grid geometry and
*worst-case* timing for every die that will ever be sold.  An
:class:`FPGADevice` is one fabricated die: the family plus a realised
process-variation field and the operating conditions it currently sits in.

The gap between the family's conservative numbers and a specific die's
actual numbers is the entire opportunity the paper exploits (Fig. 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..config import TimingConfig
from ..errors import ConfigError
from ..rng import SeedTree
from .conditions import OperatingConditions
from .jitter import JitterModel
from .pll import PLL, PLLConfig
from .routing import RoutingModel
from .variation import VariationConfig, VariationField, generate_variation_field

__all__ = ["DeviceFamily", "FPGADevice", "CYCLONE_III_3C16", "make_device"]


@dataclass(frozen=True)
class DeviceFamily:
    """Family-wide (data-sheet) description of a device.

    Attributes
    ----------
    name:
        Marketing name, e.g. ``"Cyclone III EP3C16"``.
    rows, cols:
        Logic-element grid dimensions; ``rows * cols`` approximates the
        family's LE count.
    timing:
        Nominal delay constants and the tool's pessimism factors.
    variation:
        The statistical description of intra-die variation used when
        fabricating (i.e. sampling) a die of this family.
    routing:
        The routing-delay model shared by all dies of the family.
    pll:
        The PLL resource available on dies of this family.
    """

    name: str
    rows: int
    cols: int
    timing: TimingConfig = TimingConfig()
    variation: VariationConfig = VariationConfig()
    routing: RoutingModel = field(default_factory=RoutingModel)
    pll: PLL = field(default_factory=lambda: PLL(PLLConfig(), JitterModel()))

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ConfigError("device grid must be at least 1x1")

    @property
    def le_count(self) -> int:
        return self.rows * self.cols

    def worst_case_lut_delay_ns(self) -> float:
        """The per-LUT delay the synthesis tool assumes for the family.

        Slow process corner on top of nominal: no die the tool signs off
        may ever be slower than this.
        """
        return self.timing.lut_delay_ns * self.timing.slow_corner_factor


#: Preset approximating the Altera Cyclone III EP3C16 on a DE0 board
#: (15 408 LEs; we model a 120 x 128 = 15 360 LE grid).
CYCLONE_III_3C16 = DeviceFamily(name="Cyclone III EP3C16 (DE0)", rows=120, cols=128)


@dataclass(frozen=True)
class FPGADevice:
    """One fabricated die of a family, under specific operating conditions.

    Construct with :func:`make_device`; the ``serial`` seed selects the die
    (its variation field), so two devices with different serials genuinely
    differ — the premise of per-device optimisation.
    """

    family: DeviceFamily
    serial: int
    variation: VariationField
    conditions: OperatingConditions = field(
        default_factory=OperatingConditions.paper_characterization
    )

    @property
    def rows(self) -> int:
        return self.family.rows

    @property
    def cols(self) -> int:
        return self.family.cols

    def with_conditions(self, conditions: OperatingConditions) -> "FPGADevice":
        """The same die under different environmental conditions."""
        return replace(self, conditions=conditions)

    def lut_delay_at(self, x: int | np.ndarray, y: int | np.ndarray) -> np.ndarray:
        """Actual LUT delay(s) at grid location(s) ``(x, y)`` in ns.

        Combines the family nominal delay, this die's variation factor at
        the location, and the current operating-condition scaling.
        Vectorised over ``x``/``y`` arrays.
        """
        xa = np.asarray(x, dtype=int)
        ya = np.asarray(y, dtype=int)
        if np.any(xa < 0) or np.any(ya < 0) or np.any(xa >= self.cols) or np.any(ya >= self.rows):
            raise ConfigError("LE coordinates outside device grid")
        base = self.family.timing.lut_delay_ns
        scale = self.conditions.delay_scale()
        return base * self.variation.factors[ya, xa] * scale

    def routing_rng(self, placement_seed: int) -> np.random.Generator:
        """Deterministic routing-noise stream for one placement of this die."""
        return SeedTree(self.serial).rng("routing", str(placement_seed))

    def report(self) -> dict[str, object]:
        """Human-oriented summary (used by examples and the CLI)."""
        v = self.variation.summary()
        return {
            "family": self.family.name,
            "serial": self.serial,
            "grid": f"{self.cols}x{self.rows}",
            "le_count": self.family.le_count,
            "variation_std": v["std"],
            "variation_corner_to_corner": v["corner_to_corner"],
            "conditions": {
                "temperature_c": self.conditions.temperature_c,
                "vdd": self.conditions.vdd,
                "aging_years": self.conditions.aging_years,
            },
        }


def make_device(
    serial: int,
    family: DeviceFamily = CYCLONE_III_3C16,
    conditions: OperatingConditions | None = None,
) -> FPGADevice:
    """Fabricate die number ``serial`` of ``family``.

    The serial number seeds the variation field: it *is* the die identity.
    """
    tree = SeedTree(serial)
    fieldv = generate_variation_field(
        family.rows, family.cols, family.variation, tree.rng("fabric", "variation")
    )
    return FPGADevice(
        family=family,
        serial=serial,
        variation=fieldv,
        conditions=conditions or OperatingConditions.paper_characterization(),
    )
