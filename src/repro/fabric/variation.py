"""Intra-die process-variation field generation.

Process variation on a fabricated die decomposes into (paper Sec. I and
refs [3], [5]):

* a **systematic** component — a smooth, die-wide spatial trend (lens
  aberration, reticle effects), modelled here as a random low-order 2-D
  polynomial surface;
* a **correlated random** component — spatially correlated perturbations,
  modelled as white noise smoothed by a Gaussian kernel of configurable
  correlation length;
* a **white** component — per-LE independent noise (random dopant
  fluctuation).

The field is a multiplicative delay factor per logic element, centred at
1.0: ``delay(le) = nominal_delay * field[y, x]``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from ..errors import ConfigError

__all__ = ["VariationConfig", "VariationField", "generate_variation_field"]


@dataclass(frozen=True)
class VariationConfig:
    """Magnitudes of the three variation components.

    The defaults give a total sigma of roughly 4-6% with a systematic swing
    of ~8% corner-to-corner, in line with published 65 nm FPGA variability
    measurements (paper ref [5] reports delay spreads of this order).
    """

    systematic_amplitude: float = 0.04
    correlated_sigma: float = 0.025
    correlation_length: float = 8.0  # LEs
    white_sigma: float = 0.015
    polynomial_order: int = 2

    def __post_init__(self) -> None:
        if self.systematic_amplitude < 0 or self.correlated_sigma < 0 or self.white_sigma < 0:
            raise ConfigError("variation magnitudes must be non-negative")
        if self.correlation_length <= 0:
            raise ConfigError("correlation_length must be positive")
        if self.polynomial_order < 1:
            raise ConfigError("polynomial_order must be >= 1")


@dataclass(frozen=True)
class VariationField:
    """A realised per-LE multiplicative delay-factor field.

    Attributes
    ----------
    factors:
        Array of shape ``(rows, cols)``; ``factors[y, x]`` scales the
        nominal delay of the LE at column ``x``, row ``y``.
    config:
        The configuration that generated the field.
    """

    factors: np.ndarray
    config: VariationConfig

    @property
    def shape(self) -> tuple[int, int]:
        return self.factors.shape  # type: ignore[return-value]

    def factor_at(self, x: int, y: int) -> float:
        """Delay factor of the LE at column ``x``, row ``y``."""
        return float(self.factors[y, x])

    def window(self, x0: int, y0: int, width: int, height: int) -> np.ndarray:
        """Return the sub-field for a rectangular placement region."""
        rows, cols = self.factors.shape
        if not (0 <= x0 and 0 <= y0 and x0 + width <= cols and y0 + height <= rows):
            raise ConfigError(
                f"window ({x0},{y0},{width},{height}) outside device {cols}x{rows}"
            )
        return self.factors[y0 : y0 + height, x0 : x0 + width]

    def summary(self) -> dict[str, float]:
        """Spread statistics of the field (useful for device reports)."""
        f = self.factors
        return {
            "mean": float(f.mean()),
            "std": float(f.std()),
            "min": float(f.min()),
            "max": float(f.max()),
            "corner_to_corner": float(abs(f[0, 0] - f[-1, -1])),
        }


def _systematic_surface(
    rows: int, cols: int, order: int, amplitude: float, rng: np.random.Generator
) -> np.ndarray:
    """Random low-order polynomial surface normalised to ``amplitude``."""
    y, x = np.mgrid[0:rows, 0:cols]
    # Normalised coordinates in [-1, 1] so coefficients are comparable.
    xs = 2.0 * x / max(cols - 1, 1) - 1.0
    ys = 2.0 * y / max(rows - 1, 1) - 1.0
    surface = np.zeros((rows, cols))
    for i in range(order + 1):
        for j in range(order + 1 - i):
            if i == 0 and j == 0:
                continue  # constant handled by re-centering below
            coeff = rng.normal()
            surface += coeff * (xs**i) * (ys**j)
    surface -= surface.mean()
    peak = np.abs(surface).max()
    if peak > 0:
        surface *= amplitude / peak
    return surface


def generate_variation_field(
    rows: int,
    cols: int,
    config: VariationConfig,
    rng: np.random.Generator,
) -> VariationField:
    """Generate a device-specific variation field.

    Parameters
    ----------
    rows, cols:
        Device LE-grid dimensions.
    config:
        Component magnitudes.
    rng:
        Source of randomness; a fixed generator makes the device
        reproducible ("the same die").
    """
    if rows < 1 or cols < 1:
        raise ConfigError(f"device grid must be at least 1x1, got {cols}x{rows}")

    systematic = _systematic_surface(
        rows, cols, config.polynomial_order, config.systematic_amplitude, rng
    )

    white_for_corr = rng.normal(size=(rows, cols))
    correlated = ndimage.gaussian_filter(
        white_for_corr, sigma=config.correlation_length, mode="nearest"
    )
    cstd = correlated.std()
    if cstd > 0:
        correlated *= config.correlated_sigma / cstd
    else:  # degenerate 1x1 grid
        correlated = np.zeros((rows, cols))

    if config.white_sigma:
        white = rng.normal(scale=config.white_sigma, size=(rows, cols))
    else:
        white = np.zeros((rows, cols))

    factors = 1.0 + systematic + correlated + white
    # Physical delays cannot be arbitrarily fast; clip at a sane floor.
    np.clip(factors, 0.5, None, out=factors)
    return VariationField(factors=factors, config=config)
