"""Behavioural FPGA fabric model (the paper's device substrate).

This package stands in for the physical Cyclone III device of the paper: a
rectangular grid of logic elements whose delays carry device-specific
process variation, a routing-delay model, operating-condition scaling, and
clock generation (PLL + jitter).

The key property the rest of the library relies on is that *two devices
(seeds) differ* and *two locations on one device differ* — which is exactly
what makes per-device, per-location characterisation (paper Sec. III)
worthwhile.
"""

from .conditions import OperatingConditions
from .device import CYCLONE_III_3C16, DeviceFamily, FPGADevice, make_device
from .jitter import JitterModel
from .pll import PLL, PLLConfig
from .routing import RoutingModel
from .variation import VariationConfig, VariationField, generate_variation_field

__all__ = [
    "CYCLONE_III_3C16",
    "DeviceFamily",
    "FPGADevice",
    "make_device",
    "OperatingConditions",
    "JitterModel",
    "PLL",
    "PLLConfig",
    "RoutingModel",
    "VariationConfig",
    "VariationField",
    "generate_variation_field",
]
