"""Clock-jitter model.

The paper attributes the run-to-run variation of the error counts at high
frequencies to clock jitter (Sec. III-C).  We model cycle-to-cycle jitter as
a truncated Gaussian on the capture period: in cycle ``i`` the effective
period available to the data path is ``T - j_i`` with ``j_i ~ N(0, sigma)``
clipped to ``±bound``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError

__all__ = ["JitterModel"]


@dataclass(frozen=True)
class JitterModel:
    """Truncated-Gaussian cycle-to-cycle jitter.

    Attributes
    ----------
    sigma_ns:
        Standard deviation of the per-cycle jitter in nanoseconds.  The
        default (15 ps) is typical of an FPGA PLL output.
    bound_ns:
        Hard truncation bound (peak jitter).
    """

    sigma_ns: float = 0.015
    bound_ns: float = 0.060

    def __post_init__(self) -> None:
        if self.sigma_ns < 0 or self.bound_ns < 0:
            raise ConfigError("jitter parameters must be non-negative")
        if self.sigma_ns > 0 and self.bound_ns < self.sigma_ns:
            raise ConfigError("bound_ns should be at least sigma_ns")

    @classmethod
    def ideal(cls) -> "JitterModel":
        """A jitter-free clock (useful for deterministic tests)."""
        return cls(sigma_ns=0.0, bound_ns=0.0)

    def sample(self, n_cycles: int, rng: np.random.Generator) -> np.ndarray:
        """Sample per-cycle jitter values (ns), shape ``(n_cycles,)``.

        Positive values *shorten* the effective capture period.
        """
        if n_cycles < 0:
            raise ConfigError("n_cycles must be non-negative")
        if self.sigma_ns == 0.0:
            return np.zeros(n_cycles)
        j = rng.normal(scale=self.sigma_ns, size=n_cycles)
        np.clip(j, -self.bound_ns, self.bound_ns, out=j)
        return j

    def effective_periods(
        self, period_ns: float, n_cycles: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Per-cycle effective capture periods ``T - j_i`` (ns)."""
        if period_ns <= 0:
            raise ConfigError("period must be positive")
        return period_ns - self.sample(n_cycles, rng)
