"""Operating conditions (temperature, supply voltage, aging) → delay scaling.

The paper pins the device at 14 °C with a cooling element to suppress
thermal variation (Sec. III-C) and names voltage scaling as future work
(Sec. VII).  Both knobs are first-class here so the future-work experiment
is runnable: raising temperature or lowering Vdd slows the fabric, moving
the error-onset frequency fB downwards.

The models are standard first-order approximations:

* temperature: linear delay coefficient per Kelvin around a 25 °C nominal;
* voltage: alpha-power law ``delay ∝ Vdd / (Vdd - Vth)^alpha``;
* aging: NBTI-style saturating drift, a few percent over years (paper
  Sec. II: vendors add margin for aging; re-characterisation compensates).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigError

__all__ = ["OperatingConditions"]

_NOMINAL_TEMP_C = 25.0
_NOMINAL_VDD = 1.2  # Cyclone III core supply
_VTH = 0.4
_ALPHA = 1.3
_TEMP_COEFF_PER_C = 0.0012  # +0.12 %/°C
_AGING_MAX_FRACTION = 0.06  # saturating total slowdown
_AGING_TIME_CONSTANT_YEARS = 5.0


@dataclass(frozen=True)
class OperatingConditions:
    """A set of environmental conditions applied to a device.

    Attributes
    ----------
    temperature_c:
        Junction temperature in Celsius.  Paper's characterisation used a
        cooled 14 °C.
    vdd:
        Core supply voltage in volts (nominal 1.2 V for Cyclone III).
    aging_years:
        Equivalent years of stress; scales delays by a saturating drift.
    """

    temperature_c: float = 14.0
    vdd: float = _NOMINAL_VDD
    aging_years: float = 0.0

    def __post_init__(self) -> None:
        if not (-55.0 <= self.temperature_c <= 150.0):
            raise ConfigError(f"temperature out of range: {self.temperature_c} C")
        if not (_VTH + 0.05 <= self.vdd <= 2.0):
            raise ConfigError(f"vdd out of supported range: {self.vdd} V")
        if self.aging_years < 0:
            raise ConfigError("aging_years must be non-negative")

    @classmethod
    def nominal(cls) -> "OperatingConditions":
        """Data-sheet nominal conditions (25 °C, 1.2 V, fresh device)."""
        return cls(temperature_c=_NOMINAL_TEMP_C, vdd=_NOMINAL_VDD, aging_years=0.0)

    @classmethod
    def paper_characterization(cls) -> "OperatingConditions":
        """Paper Sec. III-C conditions: cooled to 14 °C, nominal supply."""
        return cls(temperature_c=14.0, vdd=_NOMINAL_VDD, aging_years=0.0)

    def temperature_scale(self) -> float:
        """Delay factor contributed by temperature alone."""
        return 1.0 + _TEMP_COEFF_PER_C * (self.temperature_c - _NOMINAL_TEMP_C)

    def voltage_scale(self) -> float:
        """Delay factor contributed by supply voltage (alpha-power law)."""
        nominal = _NOMINAL_VDD / (_NOMINAL_VDD - _VTH) ** _ALPHA
        actual = self.vdd / (self.vdd - _VTH) ** _ALPHA
        return actual / nominal

    def aging_scale(self) -> float:
        """Delay factor contributed by device aging (saturating drift)."""
        return 1.0 + _AGING_MAX_FRACTION * (
            1.0 - math.exp(-self.aging_years / _AGING_TIME_CONSTANT_YEARS)
        )

    def delay_scale(self) -> float:
        """Total multiplicative delay factor for these conditions."""
        return self.temperature_scale() * self.voltage_scale() * self.aging_scale()
