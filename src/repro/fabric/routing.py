"""Routing-delay model.

Every net from a driving logic element to a sinking logic element pays

``delay = base + per_hop * manhattan_distance + noise``

where the noise term is log-normal and *seeded per placement*, modelling the
paper's observation (Sec. III-C) that re-placing the same circuit yields a
different routing solution and therefore a different error pattern — the
router's choices are deterministic for one placement but effectively random
across placements.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import TimingConfig
from ..errors import ConfigError

__all__ = ["RoutingModel"]


@dataclass(frozen=True)
class RoutingModel:
    """Distance/fanout routing-delay model for a device family.

    Attributes
    ----------
    timing:
        Family nominal delay constants.
    noise_sigma:
        Sigma of the log-normal multiplicative noise applied to each net's
        variable (distance) component.
    fanout_penalty_ns:
        Extra delay per additional sink on the driving net (buffering).
    """

    timing: TimingConfig = TimingConfig()
    noise_sigma: float = 0.20
    fanout_penalty_ns: float = 0.008

    def __post_init__(self) -> None:
        if self.noise_sigma < 0 or self.fanout_penalty_ns < 0:
            raise ConfigError("routing noise/fanout parameters must be non-negative")

    def nominal_delay(
        self, distance: np.ndarray | float, fanout: np.ndarray | int = 1
    ) -> np.ndarray:
        """Deterministic (noise-free) net delay for given Manhattan distance.

        Vectorised over ``distance`` and ``fanout``.
        """
        d = np.asarray(distance, dtype=float)
        f = np.asarray(fanout, dtype=float)
        if np.any(d < 0) or np.any(f < 1):
            raise ConfigError("distance must be >= 0 and fanout >= 1")
        return (
            self.timing.routing_base_delay_ns
            + self.timing.routing_delay_per_hop_ns * d
            + self.fanout_penalty_ns * (f - 1.0)
        )

    def routed_delay(
        self,
        distance: np.ndarray | float,
        fanout: np.ndarray | int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Net delay with placement-specific routing noise.

        The noise multiplies only the variable component so zero-distance
        local nets keep their fixed local-interconnect delay.
        """
        d = np.asarray(distance, dtype=float)
        base = self.timing.routing_base_delay_ns
        variable = self.nominal_delay(d, fanout) - base
        if self.noise_sigma > 0:
            noise = rng.lognormal(mean=0.0, sigma=self.noise_sigma, size=variable.shape)
        else:
            noise = np.ones_like(variable)
        return base + variable * noise

    def worst_case_delay(
        self, distance: np.ndarray | float, fanout: np.ndarray | int = 1
    ) -> np.ndarray:
        """The family-wide pessimistic delay the synthesis tool assumes.

        Two-sigma log-normal upper bound on the variable component — the
        tool must cover essentially every routing outcome on every die.
        """
        base = self.timing.routing_base_delay_ns
        variable = self.nominal_delay(distance, fanout) - base
        return base + variable * float(np.exp(2.0 * self.noise_sigma))
