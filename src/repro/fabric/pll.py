"""PLL clock-synthesis model (the clock source of the paper's Fig. 3).

A DE0 board feeds the Cyclone III PLL with a 50 MHz reference.  The PLL can
synthesise ``f = f_ref * M / (N * C)`` for integer multiply/divide factors
within hardware ranges, so the characterisation harness can only request
frequencies on this grid.  ``PLL.synthesize`` returns the *achievable*
frequency closest to a request — the harness records the achieved value,
just as the real flow records the PLL's actual output.

The PLL also owns the jitter model for the clocks it generates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Iterable

from ..errors import ConfigError
from .jitter import JitterModel

__all__ = ["PLLConfig", "PLL", "SynthesizedClock"]


@dataclass(frozen=True)
class PLLConfig:
    """Integer-divider PLL parameter ranges (Cyclone III-like)."""

    reference_mhz: float = 50.0
    m_range: tuple[int, int] = (1, 512)
    n_range: tuple[int, int] = (1, 512)
    c_range: tuple[int, int] = (1, 512)
    vco_min_mhz: float = 600.0
    vco_max_mhz: float = 1300.0

    def __post_init__(self) -> None:
        if self.reference_mhz <= 0:
            raise ConfigError("reference frequency must be positive")
        for lo, hi in (self.m_range, self.n_range, self.c_range):
            if lo < 1 or hi < lo:
                raise ConfigError("invalid divider range")
        if not (0 < self.vco_min_mhz < self.vco_max_mhz):
            raise ConfigError("invalid VCO range")


@dataclass(frozen=True)
class SynthesizedClock:
    """A clock the PLL agreed to produce."""

    requested_mhz: float
    achieved_mhz: float
    m: int
    n: int
    c: int

    @property
    def period_ns(self) -> float:
        return 1000.0 / self.achieved_mhz

    @property
    def error_ppm(self) -> float:
        return 1e6 * abs(self.achieved_mhz - self.requested_mhz) / self.requested_mhz


@dataclass(frozen=True)
class PLL:
    """Integer PLL frequency synthesiser with attached jitter model."""

    config: PLLConfig = PLLConfig()
    jitter: JitterModel = field(default_factory=JitterModel)

    def synthesize(self, freq_mhz: float) -> SynthesizedClock:
        """Find the achievable output frequency closest to ``freq_mhz``.

        Searches ``f_ref * M / (N * C)`` subject to the VCO constraint
        ``vco_min <= f_ref * M / N <= vco_max``.  The search result is
        memoised per ``(config, frequency)`` — the characterisation sweep
        asks for the same handful of clocks thousands of times.

        Raises
        ------
        ConfigError
            If the request is non-positive or outside any achievable range.
        """
        if freq_mhz <= 0:
            raise ConfigError(f"requested frequency must be positive: {freq_mhz}")
        return _synthesize_search(self.config, float(freq_mhz))

    def achieved_grid(self, freqs_mhz: Iterable[float]) -> tuple[float, ...]:
        """Achieved frequencies for a batch of requests (memoised search)."""
        return tuple(self.synthesize(f).achieved_mhz for f in freqs_mhz)

    def frequency_grid(
        self, lo_mhz: float, hi_mhz: float, step_mhz: float
    ) -> list[SynthesizedClock]:
        """Synthesise a sweep of clocks covering ``[lo, hi]`` by ``step``."""
        if not (0 < lo_mhz <= hi_mhz) or step_mhz <= 0:
            raise ConfigError("invalid frequency sweep parameters")
        clocks = []
        f = lo_mhz
        while f <= hi_mhz + 1e-9:
            clocks.append(self.synthesize(f))
            f += step_mhz
        return clocks


@lru_cache(maxsize=4096)
def _synthesize_search(cfg: PLLConfig, freq_mhz: float) -> SynthesizedClock:
    """The divider grid search behind :meth:`PLL.synthesize`.

    Pure in ``(cfg, freq_mhz)`` and therefore safe to memoise; the
    returned :class:`SynthesizedClock` is frozen, so sharing one instance
    across callers is harmless.
    """
    best: SynthesizedClock | None = None
    best_err = float("inf")
    # Modest search: N small in practice; C chosen to land near target.
    for n in range(cfg.n_range[0], min(cfg.n_range[1], 16) + 1):
        # VCO constraint bounds M for this N.
        m_lo = max(cfg.m_range[0], int(cfg.vco_min_mhz * n / cfg.reference_mhz))
        m_hi = min(cfg.m_range[1], int(cfg.vco_max_mhz * n / cfg.reference_mhz))
        for m in range(m_lo, m_hi + 1):
            vco = cfg.reference_mhz * m / n
            if not (cfg.vco_min_mhz <= vco <= cfg.vco_max_mhz):
                continue
            c = max(cfg.c_range[0], min(cfg.c_range[1], round(vco / freq_mhz)))
            # Small-int set: hash(int) == int in CPython, so iteration is
            # value-ordered and PYTHONHASHSEED-independent; sorted() would
            # reorder the `err < best_err` tie-breaks and change achieved
            # frequencies archived in golden results.
            # repro: allow[DT004] -- int-set order is hashseed-free; sorted() flips tie-breaks
            for cc in {c, max(cfg.c_range[0], c - 1), min(cfg.c_range[1], c + 1)}:
                f = vco / cc
                err = abs(f - freq_mhz)
                if err < best_err:
                    best_err = err
                    best = SynthesizedClock(
                        requested_mhz=freq_mhz, achieved_mhz=f, m=m, n=n, c=cc
                    )
    if best is None:
        raise ConfigError(f"no PLL setting reaches {freq_mhz} MHz")
    return best
