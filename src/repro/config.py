"""Global configuration objects and the paper's Table I settings.

Units convention used throughout the library:

* **delay**: nanoseconds (ns)
* **frequency**: megahertz (MHz); a clock of frequency ``f`` MHz has period
  ``1000 / f`` ns
* **area**: logic elements (LEs)

The numeric defaults below were calibrated once so the simulated fabric
reproduces the paper's headline operating points: the synthesis tool reports
roughly 167 MHz for the 9-bit-coefficient KLT design while the placed design
is actually error-free to ~1.5x that and usable (error-prone) well beyond,
making the paper's 310 MHz target 1.85x the tool report (paper Sec. VI-D).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Iterator

from .errors import ConfigError

__all__ = [
    "TableISettings",
    "TimingConfig",
    "AnalysisSettings",
    "get_analysis_settings",
    "set_analysis_settings",
    "analysis_settings",
    "ResilienceSettings",
    "get_resilience_settings",
    "set_resilience_settings",
    "resilience_settings",
    "REPRO_SHARD_TIMEOUT_ENV",
    "REPRO_MAX_RETRIES_ENV",
    "REPRO_ALLOW_DEGRADED_ENV",
    "KERNEL_PACKED",
    "KERNEL_INTERP",
    "KERNEL_MODES",
    "REPRO_KERNEL_ENV",
    "get_kernel_mode",
    "set_kernel_mode",
    "kernel_mode",
    "mhz_to_period_ns",
    "period_ns_to_mhz",
    "DEFAULT_SEED",
]

#: Root seed used by examples and benches when the user does not supply one.
DEFAULT_SEED = 20140519  # IPDPSW 2014 week, entirely arbitrary but fixed.


def mhz_to_period_ns(freq_mhz: float) -> float:
    """Convert a clock frequency in MHz to a period in nanoseconds."""
    if freq_mhz <= 0:
        raise ConfigError(f"frequency must be positive, got {freq_mhz}")
    return 1000.0 / float(freq_mhz)


def period_ns_to_mhz(period_ns: float) -> float:
    """Convert a clock period in nanoseconds to a frequency in MHz."""
    if period_ns <= 0:
        raise ConfigError(f"period must be positive, got {period_ns}")
    return 1000.0 / float(period_ns)


@dataclass(frozen=True)
class TimingConfig:
    """Delay-model constants of the simulated fabric.

    Attributes
    ----------
    lut_delay_ns:
        Nominal combinational delay of one 4-input LUT cell at nominal
        conditions before variation scaling.
    routing_delay_per_hop_ns:
        Nominal routing delay per unit Manhattan distance between the
        driving and receiving logic elements.
    routing_base_delay_ns:
        Fixed component of every net's delay (local interconnect mux).
    register_setup_ns:
        Setup time charged against the capture register.
    tool_guard_band:
        Multiplicative pessimism of the synthesis tool's family-wide model
        relative to *nominal* delays (paper Fig. 1: fA well below fB).
    slow_corner_factor:
        Extra worst-case process-corner factor the tool stacks on top of the
        guard band.
    """

    lut_delay_ns: float = 0.092
    routing_delay_per_hop_ns: float = 0.006
    routing_base_delay_ns: float = 0.028
    register_setup_ns: float = 0.040
    tool_guard_band: float = 1.22
    slow_corner_factor: float = 1.25

    def __post_init__(self) -> None:
        for name in (
            "lut_delay_ns",
            "routing_delay_per_hop_ns",
            "routing_base_delay_ns",
            "register_setup_ns",
        ):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be non-negative")
        if self.tool_guard_band < 1.0 or self.slow_corner_factor < 1.0:
            raise ConfigError("tool pessimism factors must be >= 1.0")


def _env_flag(name: str, default: bool) -> bool:
    raw = os.environ.get(name)
    if raw is None:
        return default
    return raw.strip().lower() in ("1", "true", "yes", "on")


@dataclass(frozen=True)
class AnalysisSettings:
    """Library-wide switches for the netlist static-analysis subsystem.

    Attributes
    ----------
    lint_generated:
        Lint every netlist produced through the
        :func:`repro.netlist.generators.generate` factory and raise
        :class:`~repro.errors.LintError` on error-severity findings.
        Off by default (generators are covered by the synthesis gate and
        the test suite); enable for sweeps over untrusted generators.
        Env default: ``REPRO_LINT_GENERATED``.
    lint_synthesis:
        Gate :meth:`repro.synthesis.flow.SynthesisFlow.run` on the lint
        report of the incoming netlist: errors abort the run, warnings
        are surfaced via :mod:`warnings`.  On by default.
        Env default: ``REPRO_LINT_SYNTHESIS``.
    max_fanout / max_depth:
        Default budgets for the NL009 / NL010 passes.
    """

    lint_generated: bool = _env_flag("REPRO_LINT_GENERATED", False)
    lint_synthesis: bool = _env_flag("REPRO_LINT_SYNTHESIS", True)
    max_fanout: int = 32
    max_depth: int = 128

    def __post_init__(self) -> None:
        if self.max_fanout < 1 or self.max_depth < 1:
            raise ConfigError("analysis budgets must be >= 1")


_analysis_settings = AnalysisSettings()


def get_analysis_settings() -> AnalysisSettings:
    """The process-wide :class:`AnalysisSettings` currently in effect."""
    return _analysis_settings


def set_analysis_settings(settings: AnalysisSettings) -> AnalysisSettings:
    """Replace the process-wide analysis settings; returns the previous ones."""
    global _analysis_settings
    previous = _analysis_settings
    _analysis_settings = settings
    return previous


@contextmanager
def analysis_settings(**overrides: object) -> Iterator[AnalysisSettings]:
    """Temporarily override analysis settings (tests, sweeps)::

        with analysis_settings(lint_generated=True):
            nl = generate("ccm", 93, 8)   # linted
    """
    previous = get_analysis_settings()
    set_analysis_settings(replace(previous, **overrides))  # type: ignore[arg-type]
    try:
        yield get_analysis_settings()
    finally:
        set_analysis_settings(previous)


#: Environment knobs for the sweep-resilience layer (see docs/resilience.md).
REPRO_SHARD_TIMEOUT_ENV = "REPRO_SHARD_TIMEOUT"
REPRO_MAX_RETRIES_ENV = "REPRO_MAX_RETRIES"
REPRO_ALLOW_DEGRADED_ENV = "REPRO_ALLOW_DEGRADED"


@dataclass(frozen=True)
class ResilienceSettings:
    """Retry/timeout/degradation policy for sharded sweeps.

    Consumed by :func:`repro.parallel.engine.run_sweep`.  Every knob has a
    matching environment variable so deployments can harden a flow without
    code changes; explicit ``ResilienceSettings`` arguments always win.

    Attributes
    ----------
    shard_timeout_s:
        Wall-clock bound on waiting for one shard's result from a pool
        worker; ``None`` waits forever.  A timeout abandons the pool
        (hung workers cannot be preempted individually) and falls back to
        inline execution.  Timeouts are only enforceable on the pool
        path; inline shards run to completion.
    max_retries:
        Extra attempts granted to a failing shard after its first try.
        ``0`` restores the pre-resilience fail-fast behaviour.
    backoff_base_s / backoff_factor / backoff_max_s:
        Exponential-backoff schedule between attempts:
        ``min(max, base * factor**k)`` seconds before retry ``k``.
    backoff_jitter:
        Fraction of the delay spread deterministically (seeded off the
        sweep's seed tree) around the nominal schedule, so chaos runs are
        bit-reproducible while real deployments still decorrelate.
    allow_degraded:
        Accept sweeps in which some shards stayed quarantined after all
        retries; their grid cells are reported as NaN.  Off by default:
        a degraded sweep raises :class:`~repro.errors.SweepFailedError`.
    """

    shard_timeout_s: float | None = None
    max_retries: int = 2
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 2.0
    backoff_jitter: float = 0.5
    allow_degraded: bool = False

    def __post_init__(self) -> None:
        if self.shard_timeout_s is not None and self.shard_timeout_s <= 0:
            raise ConfigError("shard_timeout_s must be positive (or None)")
        if self.max_retries < 0:
            raise ConfigError("max_retries must be >= 0")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ConfigError("backoff delays must be non-negative")
        if self.backoff_factor < 1.0:
            raise ConfigError("backoff_factor must be >= 1.0")
        if not 0.0 <= self.backoff_jitter <= 1.0:
            raise ConfigError("backoff_jitter must be in [0, 1]")

    @classmethod
    def from_env(cls, environ: dict | None = None) -> "ResilienceSettings":
        """Settings with the ``REPRO_*`` environment overrides applied."""
        env = os.environ if environ is None else environ
        kwargs: dict = {}
        raw = env.get(REPRO_SHARD_TIMEOUT_ENV)
        if raw is not None:
            try:
                timeout = float(raw)
            except ValueError:
                raise ConfigError(
                    f"{REPRO_SHARD_TIMEOUT_ENV}={raw!r} is not a number"
                ) from None
            kwargs["shard_timeout_s"] = timeout if timeout > 0 else None
        raw = env.get(REPRO_MAX_RETRIES_ENV)
        if raw is not None:
            try:
                kwargs["max_retries"] = int(raw)
            except ValueError:
                raise ConfigError(
                    f"{REPRO_MAX_RETRIES_ENV}={raw!r} is not an integer"
                ) from None
        raw = env.get(REPRO_ALLOW_DEGRADED_ENV)
        if raw is not None:
            kwargs["allow_degraded"] = raw.strip().lower() in ("1", "true", "yes", "on")
        return cls(**kwargs)


_resilience_settings = ResilienceSettings.from_env()


def get_resilience_settings() -> ResilienceSettings:
    """The process-wide :class:`ResilienceSettings` currently in effect."""
    return _resilience_settings


def set_resilience_settings(settings: ResilienceSettings) -> ResilienceSettings:
    """Replace the process-wide resilience settings; returns the previous ones."""
    global _resilience_settings
    previous = _resilience_settings
    _resilience_settings = settings
    return previous


@contextmanager
def resilience_settings(**overrides: object) -> Iterator[ResilienceSettings]:
    """Temporarily override resilience settings (tests, chaos gates)::

        with resilience_settings(max_retries=0):
            characterize_multiplier(...)   # fail-fast
    """
    previous = get_resilience_settings()
    set_resilience_settings(replace(previous, **overrides))  # type: ignore[arg-type]
    try:
        yield get_resilience_settings()
    finally:
        set_resilience_settings(previous)


#: Environment knob selecting the netlist evaluation kernel
#: (see docs/performance.md, "The kernel compiler").
REPRO_KERNEL_ENV = "REPRO_KERNEL"

#: Bit-sliced execution plans: 64 stimuli per uint64 word (the default).
KERNEL_PACKED = "packed"
#: Per-sample truth-table gathers: the golden reference path.
KERNEL_INTERP = "interp"
#: All recognised kernel modes.
KERNEL_MODES = (KERNEL_PACKED, KERNEL_INTERP)


def _kernel_mode_from_env() -> str:
    raw = os.environ.get(REPRO_KERNEL_ENV)
    if raw is None:
        return KERNEL_PACKED
    mode = raw.strip().lower()
    if mode not in KERNEL_MODES:
        raise ConfigError(
            f"{REPRO_KERNEL_ENV}={raw!r} is not a kernel mode; "
            f"expected one of {KERNEL_MODES}"
        )
    return mode


_kernel_mode = _kernel_mode_from_env()


def get_kernel_mode() -> str:
    """The netlist-evaluation kernel currently in effect.

    ``"packed"`` routes :meth:`CompiledNetlist.evaluate` and
    :func:`simulate_transitions` through the bit-sliced execution plans
    of :mod:`repro.kernels`; ``"interp"`` keeps the original per-sample
    truth-table interpreter (the golden reference the packed kernel is
    proven bit-identical to).
    """
    return _kernel_mode


def set_kernel_mode(mode: str) -> str:
    """Replace the process-wide kernel mode; returns the previous one."""
    global _kernel_mode
    if mode not in KERNEL_MODES:
        raise ConfigError(
            f"unknown kernel mode {mode!r}; expected one of {KERNEL_MODES}"
        )
    previous = _kernel_mode
    _kernel_mode = mode
    return previous


@contextmanager
def kernel_mode(mode: str) -> Iterator[str]:
    """Temporarily select a kernel mode (tests, A/B benches)::

        with kernel_mode("interp"):
            golden = cn.evaluate(bits)
    """
    previous = set_kernel_mode(mode)
    try:
        yield mode
    finally:
        set_kernel_mode(previous)


@dataclass(frozen=True)
class TableISettings:
    """The case-study settings of the paper's Table I.

    These are the *library defaults* for the end-to-end experiments.  Tests
    and benches scale the sample counts down (documented per experiment in
    EXPERIMENTS.md) to keep wall-clock time sane, but the full settings stay
    available as ``TableISettings()``.
    """

    p: int = 6  # original dimensionality (Z^6)
    k: int = 3  # projected dimensionality (Z^3)
    n_characterization: int = 4900  # cases per characterisation run
    n_train: int = 100  # OF training cases
    n_test: int = 5000  # test cases
    betas: tuple[float, ...] = (4.0, 8.0)  # prior hyper-parameter values
    q: int = 5  # designs kept per iteration
    clock_frequency_mhz: float = 310.0  # target clock frequency
    input_wordlength: int = 9  # input-data word-length (bits)
    min_coeff_wordlength: int = 3  # smallest lambda word-length explored
    max_coeff_wordlength: int = 9  # largest lambda word-length explored
    burn_in: int = 1000  # Gibbs burn-in samples
    n_samples: int = 3000  # Gibbs samples per projection vector

    def __post_init__(self) -> None:
        if self.p < 1 or self.k < 1 or self.k > self.p:
            raise ConfigError(f"require 1 <= k <= p, got p={self.p}, k={self.k}")
        if self.q < 1:
            raise ConfigError("Q must be >= 1 (Alg. 1 'Require' clause)")
        if not all(b > 0 for b in self.betas):
            raise ConfigError("beta must be > 0 (Alg. 1 'Require' clause)")
        if self.clock_frequency_mhz <= 0:
            raise ConfigError("freq must be > 0 (Alg. 1 'Require' clause)")
        if not (1 <= self.min_coeff_wordlength <= self.max_coeff_wordlength):
            raise ConfigError("invalid coefficient word-length range")
        for name in ("n_characterization", "n_train", "n_test", "burn_in", "n_samples"):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be non-negative")

    @property
    def coeff_wordlengths(self) -> tuple[int, ...]:
        """The word-length sweep wl_min..wl_max of Algorithm 1."""
        return tuple(range(self.min_coeff_wordlength, self.max_coeff_wordlength + 1))

    def scaled(self, factor: float) -> "TableISettings":
        """Return a copy with all sample counts scaled by ``factor``.

        Used by tests/benches to run the same experiment shape at a
        fraction of the paper's sample counts.  Counts are floored at small
        positive minima so the pipeline stays exercised end to end.
        """
        if factor <= 0:
            raise ConfigError("scale factor must be positive")

        def s(n: int, lo: int) -> int:
            return max(lo, int(round(n * factor)))

        return TableISettings(
            p=self.p,
            k=self.k,
            n_characterization=s(self.n_characterization, 50),
            n_train=s(self.n_train, 20),
            n_test=s(self.n_test, 50),
            betas=self.betas,
            q=self.q,
            clock_frequency_mhz=self.clock_frequency_mhz,
            input_wordlength=self.input_wordlength,
            min_coeff_wordlength=self.min_coeff_wordlength,
            max_coeff_wordlength=self.max_coeff_wordlength,
            burn_in=s(self.burn_in, 5),
            n_samples=s(self.n_samples, 10),
        )
