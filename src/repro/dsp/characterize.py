"""Characterisation of embedded DSP-block multipliers.

Reuses the Sec.-III procedure (fixed multiplicand, uniform random stream,
frequency sweep, several block locations) against the hard-macro model
and emits the same :class:`~repro.characterization.results.CharacterizationResult`
container, so the existing error-model / prior machinery consumes DSP
characterisation transparently — the "easily extended" claim of the paper,
made concrete.
"""

from __future__ import annotations

import numpy as np

from ..characterization.harness import CharacterizationConfig
from ..characterization.results import CharacterizationResult
from ..errors import CharacterizationError
from ..fabric.device import FPGADevice
from ..rng import SeedTree
from .block import DspBlockModel

__all__ = ["characterize_dsp_multiplier"]


def characterize_dsp_multiplier(
    device: FPGADevice,
    w_data: int,
    w_coeff: int,
    config: CharacterizationConfig = CharacterizationConfig(),
    seed: int = 0,
) -> CharacterizationResult:
    """Sweep frequency x location x multiplicand for a DSP-block DUT.

    ``w_data``/``w_coeff`` only bound the stimulus ranges — the hard macro
    is the same silicon regardless (its delay does not shrink with
    narrower operands).
    """
    width = max(w_data, w_coeff)
    if width > DspBlockModel.MAX_WIDTH:
        raise CharacterizationError(
            f"operands exceed the {DspBlockModel.MAX_WIDTH}-bit embedded block"
        )
    tree = SeedTree(seed).child("dsp-characterization", f"{w_data}x{w_coeff}")

    if config.multiplicands is None:
        multiplicands = np.arange(1 << w_coeff, dtype=np.int64)
    else:
        multiplicands = np.asarray(config.multiplicands, dtype=np.int64)
        if multiplicands.min() < 0 or multiplicands.max() >= (1 << w_coeff):
            raise CharacterizationError("multiplicands outside coefficient range")

    # DSP columns sit at fixed x positions; probe evenly spaced rows.
    ys = np.linspace(0, device.rows - 1, config.n_locations, dtype=int)
    locations = tuple((device.cols // 2, int(y)) for y in ys)

    pll = device.family.pll
    achieved = []
    seen: set[float] = set()
    for f in sorted(config.freqs_mhz):
        af = pll.synthesize(f).achieved_mhz
        key = round(af, 6)
        if key not in seen:
            seen.add(key)
            achieved.append(af)

    n_l, n_m, n_f = len(locations), multiplicands.shape[0], len(achieved)
    variance = np.zeros((n_l, n_m, n_f))
    mean = np.zeros((n_l, n_m, n_f))
    rate = np.zeros((n_l, n_m, n_f))

    for li, loc in enumerate(locations):
        block = DspBlockModel(device, width=width, location=loc)
        stim_rng = tree.rng("stimulus", str(loc))
        for mi, m in enumerate(multiplicands):
            a = stim_rng.integers(0, 1 << w_data, size=config.n_samples + 1)
            b = np.full(config.n_samples + 1, m)
            for fi, f in enumerate(achieved):
                run = block.run(
                    a, b, f, tree.rng("jitter", str(loc), f"{m}", f"{f}")
                )
                variance[li, mi, fi] = run.error_variance
                mean[li, mi, fi] = float(run.errors.mean())
                rate[li, mi, fi] = run.error_rate

    return CharacterizationResult(
        w_data=w_data,
        w_coeff=w_coeff,
        device_serial=device.serial,
        freqs_mhz=np.asarray(achieved),
        multiplicands=multiplicands,
        locations=locations,
        variance=variance,
        mean=mean,
        error_rate=rate,
        n_samples=config.n_samples,
    )
