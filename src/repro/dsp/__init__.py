"""Embedded DSP-block multiplier extension.

The paper focuses on LUT-based generic multipliers but notes (Sec. I) the
framework "can be easily extended to accommodate embedded DSP blocks
currently available in modern FPGAs", and (Sec. VI) that "embedded
multipliers perform multiplications with large word-lengths faster, but
they are out of scope of the present work".  This package supplies that
extension: a behavioural hard-macro multiplier with its own timing
and over-clocking model, plus a characterisation harness compatible with
the error-model machinery.
"""

from .block import DspBlockModel, DspCaptureResult
from .characterize import characterize_dsp_multiplier

__all__ = ["DspBlockModel", "DspCaptureResult", "characterize_dsp_multiplier"]
