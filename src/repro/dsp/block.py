"""Behavioural model of an embedded (hard-macro) multiplier block.

A Cyclone III embedded 18x18 multiplier is a fixed silicon macro: much
faster than a LUT array of the same width, with a *mostly* data-independent
internal critical path.  The over-clocking model therefore differs from
the LUT netlist's:

* the settle time of a multiplication is the macro's intrinsic delay
  (scaled by the die's variation factor at the block's location and the
  operating conditions) plus a small data-dependent component driven by
  the output Hamming activity of the transition — hard macros still show
  input-dependent path excitation, just far less of it than ripple arrays;
* when the (jittered) capture window closes early the *whole word*
  mis-latches to the previous product — internal nodes of a macro are not
  individually observable, so the stale-capture granularity is the word,
  MSbs and LSbs alike.

The numbers are calibrated so that an 18x18 block clocks roughly 1.6x
faster than the equivalent LUT-based multiplier on the same die — the
relation the paper alludes to.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import mhz_to_period_ns, period_ns_to_mhz
from ..errors import TimingError
from ..fabric.device import FPGADevice
from ..fabric.jitter import JitterModel

__all__ = ["DspBlockModel", "DspCaptureResult"]

#: Intrinsic 18x18 macro delay at nominal conditions (ns).
_BASE_DELAY_NS = 1.95
#: Additional delay per bit of output Hamming distance (ns) — the small
#: data-dependent component.
_ACTIVITY_DELAY_NS = 0.012
#: Registers/interface setup charged on capture (ns).
_SETUP_NS = 0.04


@dataclass(frozen=True)
class DspCaptureResult:
    """Captured outputs of a DSP-block multiplication stream."""

    freq_mhz: float
    captured: np.ndarray
    expected: np.ndarray

    @property
    def errors(self) -> np.ndarray:
        return self.captured - self.expected

    @property
    def error_rate(self) -> float:
        return float((self.captured != self.expected).mean()) if self.captured.size else 0.0

    @property
    def error_variance(self) -> float:
        return float(self.errors.var()) if self.captured.size else 0.0


class DspBlockModel:
    """One embedded multiplier block placed at a device location.

    Parameters
    ----------
    device:
        The hosting die (supplies variation and operating conditions).
    width:
        Operand width (the hard macro supports up to 18 bits; narrower
        operands use the same silicon, so the delay does not shrink —
        a defining difference from LUT multipliers).
    location:
        Grid location of the DSP column the block sits in.
    """

    MAX_WIDTH = 18

    def __init__(
        self,
        device: FPGADevice,
        width: int = 18,
        location: tuple[int, int] = (0, 0),
    ) -> None:
        if not (1 <= width <= self.MAX_WIDTH):
            raise TimingError(f"DSP block supports 1..{self.MAX_WIDTH} bits, got {width}")
        self.device = device
        self.width = int(width)
        self.location = location
        factor = device.variation.factor_at(*location)
        scale = device.conditions.delay_scale()
        self.intrinsic_delay_ns = _BASE_DELAY_NS * factor * scale
        self.activity_delay_ns = _ACTIVITY_DELAY_NS * factor * scale

    # ------------------------------------------------------------------
    def sta_fmax_mhz(self) -> float:
        """Worst-case (all output bits toggling) error-free bound."""
        worst = self.intrinsic_delay_ns + self.activity_delay_ns * 2 * self.width
        return period_ns_to_mhz(worst + _SETUP_NS)

    def settle_times(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Per-transition settle times for a multiplication stream."""
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        if a.shape != b.shape or a.ndim != 1 or a.shape[0] < 2:
            raise TimingError("need aligned 1-D streams of length >= 2")
        hi = 1 << self.width
        if a.min() < 0 or a.max() >= hi or b.min() < 0 or b.max() >= hi:
            raise TimingError(f"operands outside {self.width}-bit range")
        products = a * b
        flips = products[1:] ^ products[:-1]
        # Vectorised popcount of the output transition.
        activity = np.zeros(flips.shape[0], dtype=np.int64)
        tmp = flips.copy()
        while tmp.any():
            activity += tmp & 1
            tmp >>= 1
        settle = np.where(
            flips == 0,
            0.0,
            self.intrinsic_delay_ns + self.activity_delay_ns * activity,
        )
        return settle

    def run(
        self,
        a: np.ndarray,
        b: np.ndarray,
        freq_mhz: float,
        rng: np.random.Generator,
        jitter: JitterModel | None = None,
    ) -> DspCaptureResult:
        """Clock a multiplication stream through the block at ``freq_mhz``."""
        if freq_mhz <= 0:
            raise TimingError("frequency must be positive")
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        settle = self.settle_times(a, b)
        products = a * b
        expected = products[1:]
        stale = products[:-1]
        period = mhz_to_period_ns(freq_mhz)
        j = jitter if jitter is not None else self.device.family.pll.jitter
        eff = j.effective_periods(period, settle.shape[0], rng)
        window = eff - _SETUP_NS
        captured = np.where(settle <= window, expected, stale)
        return DspCaptureResult(
            freq_mhz=float(freq_mhz), captured=captured, expected=expected
        )
