"""Placed-design cache: stop re-synthesising geometry already placed.

Every placed multiplier in the flow — the characterisation circuit's DUT,
the projection datapath's MAC lanes, area-model sample runs — is fully
determined by ``(device identity, geometry, anchor, seed)``.  The cache
memoises :class:`~repro.synthesis.flow.PlacedDesign` instances on that
key, in memory for the current process and optionally on disk so later
sessions (and pool workers) skip :class:`~repro.synthesis.flow.SynthesisFlow`
entirely.

The device identity includes the operating conditions: the same die at a
different temperature or Vdd has different delays and must not alias.

Disk layout (one pickle per entry, written atomically)::

    <directory>/
      <sha256-of-key>.pkl     {"version", "key", "sha256", "placed"}
      <sha256-of-key>.lock    advisory fcntl lock serialising installs
      .sanitizer/             violation journal (REPRO_SANITIZE=1 only)

Entries are installed write-to-temp + ``os.replace`` under a per-entry
advisory ``fcntl`` lock, so any number of concurrent processes can share
one directory: racing same-key writers serialise, and the pure build
path guarantees whoever wins installed bit-identical bytes.  With
``REPRO_SANITIZE=1`` a :class:`~repro.parallel.sanitize.CacheSanitizer`
verifies both claims at runtime.

``placed`` is the pickled design as bytes and ``sha256`` its checksum:
a truncated, torn, bit-flipped or otherwise corrupt entry is *detected*
(not just unpicklable-by-luck), logged, removed, and transparently
rebuilt from synthesis — the build path is pure in the key, so a rebuild
is bit-identical to the lost entry.
"""

from __future__ import annotations

import fcntl
import hashlib
import logging
import os
import pickle
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from typing import Iterator

from ..analysis import check_netlist
from ..fabric.device import FPGADevice
from ..obs import runtime as obs
from ..netlist.core import CompiledNetlist
from ..netlist.multipliers import unsigned_array_multiplier
from ..synthesis.flow import PlacedDesign, SynthesisFlow
from .sanitize import CacheSanitizer, sanitize_enabled

logger = logging.getLogger(__name__)

__all__ = [
    "CacheStats",
    "PlacedDesignCache",
    "PlacedKey",
    "REPRO_CACHE_DIR_ENV",
    "get_default_cache",
    "multiplier_netlist",
    "set_default_cache",
]

#: Environment variable giving the default on-disk cache directory.
REPRO_CACHE_DIR_ENV = "REPRO_CACHE_DIR"

_DISK_VERSION = 2  # v2: checksummed payload (v1 entries rebuild as stale)


@lru_cache(maxsize=None)
def multiplier_netlist(w_data: int, w_coeff: int) -> CompiledNetlist:
    """Compiled (and linted) generic multiplier, built once per geometry.

    Shared by the characterisation circuit and the datapath lanes: the
    netlist is frozen per ``(w_data, w_coeff)``; placement is what varies
    per instantiation.
    """
    netlist = unsigned_array_multiplier(w_data, w_coeff)
    check_netlist(netlist, context=f"multiplier {w_data}x{w_coeff}")
    return netlist.compile()


@dataclass(frozen=True)
class PlacedKey:
    """Identity of one placed multiplier geometry on one die.

    ``temperature_c``/``vdd``/``aging_years`` pin the operating
    conditions — condition scaling is baked into the placed delay
    annotations, so the same die under different conditions is a
    different cache entry.
    """

    family: str
    serial: int
    w_data: int
    w_coeff: int
    anchor: tuple[int, int]
    seed: int
    temperature_c: float
    vdd: float
    aging_years: float

    @classmethod
    def for_device(
        cls,
        device: FPGADevice,
        w_data: int,
        w_coeff: int,
        anchor: tuple[int, int],
        seed: int,
    ) -> "PlacedKey":
        cond = device.conditions
        return cls(
            family=device.family.name,
            serial=int(device.serial),
            w_data=int(w_data),
            w_coeff=int(w_coeff),
            anchor=(int(anchor[0]), int(anchor[1])),
            seed=int(seed),
            temperature_c=float(cond.temperature_c),
            vdd=float(cond.vdd),
            aging_years=float(cond.aging_years),
        )

    def digest(self) -> str:
        parts = (
            self.family,
            self.serial,
            self.w_data,
            self.w_coeff,
            self.anchor,
            self.seed,
            self.temperature_c,
            self.vdd,
            self.aging_years,
        )
        return hashlib.sha256(repr(parts).encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss counters of one cache instance plus its disk footprint."""

    memory_hits: int
    disk_hits: int
    misses: int
    stores: int
    corruptions: int
    memory_entries: int
    disk_entries: int
    disk_bytes: int
    directory: str | None
    sanitizer_violations: int = 0

    @property
    def requests(self) -> int:
        return self.memory_hits + self.disk_hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.requests
        if total == 0:
            return 0.0
        return (self.memory_hits + self.disk_hits) / total

    def as_dict(self) -> dict:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "stores": self.stores,
            "corruptions": self.corruptions,
            "memory_entries": self.memory_entries,
            "disk_entries": self.disk_entries,
            "disk_bytes": self.disk_bytes,
            "hit_rate": self.hit_rate,
            "directory": self.directory,
            "sanitizer_violations": self.sanitizer_violations,
        }


class PlacedDesignCache:
    """In-memory + optional on-disk cache of placed multiplier designs.

    Parameters
    ----------
    directory:
        On-disk cache directory; ``None`` keeps the cache memory-only.
        The directory is created lazily on the first store.
    """

    def __init__(self, directory: str | Path | None = None) -> None:
        self.directory = Path(directory) if directory is not None else None
        # One handle may be shared by concurrent in-process jobs (the
        # serve front-end's worker threads); the mutex guards the memory
        # tier and the counters.  Cross-process safety is the per-entry
        # fcntl lock's job, not this one's.
        self._mutex = threading.Lock()
        self._memory: dict[PlacedKey, PlacedDesign] = {}
        self._memory_hits = 0
        self._disk_hits = 0
        self._misses = 0
        self._stores = 0
        self._corruptions = 0
        self._sanitizer: CacheSanitizer | None = None
        if self.directory is not None and sanitize_enabled():
            self._sanitizer = CacheSanitizer(self.directory)

    @property
    def sanitizer(self) -> CacheSanitizer | None:
        """The runtime sanitizer, when ``REPRO_SANITIZE=1`` and disk-backed."""
        return self._sanitizer

    # ------------------------------------------------------------------
    def _entry_path(self, key: PlacedKey) -> Path | None:
        if self.directory is None:
            return None
        return self.directory / f"{key.digest()}.pkl"

    def _reject_entry(self, path: Path, reason: str) -> None:
        """Drop a damaged disk entry; the caller's miss path rebuilds it.

        Never silent: corruption is counted (``CacheStats.corruptions``)
        and logged, because a torn or bit-rotten entry is an operational
        signal (dying disk, concurrent-writer bug) even though the cache
        recovers from it transparently.
        """
        with self._mutex:
            self._corruptions += 1
        obs.counter_add("cache.placed.corruptions")
        logger.warning(
            "placed-design cache entry %s: %s; rebuilding from synthesis",
            path.name,
            reason,
        )
        try:
            path.unlink(missing_ok=True)
        except OSError:
            pass  # unreadable *and* undeletable: the rebuild still proceeds

    def _load_disk(self, key: PlacedKey) -> PlacedDesign | None:
        path = self._entry_path(key)
        if path is None or not path.exists():
            return None
        try:
            with path.open("rb") as fh:
                payload = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            self._reject_entry(path, "unreadable entry (truncated or torn write)")
            return None
        if not isinstance(payload, dict) or payload.get("version") != _DISK_VERSION:
            version = payload.get("version") if isinstance(payload, dict) else None
            self._reject_entry(path, f"stale or foreign entry (version {version!r})")
            return None
        if payload.get("key") != key:
            self._reject_entry(path, "key mismatch (hash collision or tampering)")
            return None
        blob = payload.get("placed")
        if (
            not isinstance(blob, bytes)
            or hashlib.sha256(blob).hexdigest() != payload.get("sha256")
        ):
            self._reject_entry(path, "checksum mismatch (bit rot or tampering)")
            return None
        try:
            placed = pickle.loads(blob)
        except (pickle.UnpicklingError, EOFError, AttributeError):
            self._reject_entry(path, "payload undecodable despite valid checksum")
            return None
        if not isinstance(placed, PlacedDesign):
            self._reject_entry(path, f"payload is {type(placed).__name__}, not PlacedDesign")
            return None
        return placed

    @contextmanager
    def _entry_lock(self, path: Path) -> Iterator[None]:
        """Advisory per-entry ``fcntl`` lock serialising installs.

        Concurrent processes sharing the directory block here instead of
        racing their ``os.replace`` calls; the lock file rides alongside
        the entry so locking never touches entry bytes.  Advisory only —
        readers stay lock-free (the atomic replace keeps them safe).
        """
        lock_path = path.with_suffix(".lock")
        fd = os.open(lock_path, os.O_CREAT | os.O_RDWR, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            if self._sanitizer is not None:
                self._sanitizer.lock_acquired(path.stem)
            try:
                yield
            finally:
                if self._sanitizer is not None:
                    self._sanitizer.lock_released(path.stem)
                fcntl.flock(fd, fcntl.LOCK_UN)
        finally:
            os.close(fd)

    def _store_disk(self, key: PlacedKey, placed: PlacedDesign) -> None:
        path = self._entry_path(key)
        if path is None:
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        blob = pickle.dumps(placed, protocol=pickle.HIGHEST_PROTOCOL)
        sha256 = hashlib.sha256(blob).hexdigest()
        payload = {
            "version": _DISK_VERSION,
            "key": key,
            "sha256": sha256,
            "placed": blob,
        }
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with self._entry_lock(path):
            if self._sanitizer is not None:
                self._sanitizer.check_install(path, key, sha256)
            try:
                with tmp.open("wb") as fh:
                    pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)  # atomic: readers never see a torn entry
            finally:
                tmp.unlink(missing_ok=True)
            if self._sanitizer is not None:
                self._sanitizer.verify_install(path, sha256)

    # ------------------------------------------------------------------
    def get_or_place(
        self,
        device: FPGADevice,
        w_data: int,
        w_coeff: int,
        anchor: tuple[int, int],
        seed: int,
    ) -> PlacedDesign:
        """The placed multiplier for this key, synthesising on a miss.

        Deterministic: the build path is
        :func:`multiplier_netlist` + :meth:`SynthesisFlow.run`, which is
        pure in the key, so a hit is bit-identical to a rebuild.
        """
        key = PlacedKey.for_device(device, w_data, w_coeff, anchor, seed)
        with self._mutex:
            hit = self._memory.get(key)
            if hit is not None:
                self._memory_hits += 1
        if hit is not None:
            obs.counter_add("cache.placed.hits")
            return hit
        placed = self._load_disk(key)
        if placed is not None:
            with self._mutex:
                self._disk_hits += 1
                self._memory[key] = placed
            obs.counter_add("cache.placed.hits")
            return placed
        with self._mutex:
            self._misses += 1
        obs.counter_add("cache.placed.misses")
        with obs.span(
            "cache.synthesize",
            w_data=w_data,
            w_coeff=w_coeff,
            anchor=f"{anchor[0]},{anchor[1]}",
        ):
            netlist = multiplier_netlist(w_data, w_coeff)
            # The netlist was linted when built; skip the per-placement gate.
            placed = SynthesisFlow(device).run(
                netlist, anchor=anchor, seed=seed, lint=False
            )
        # Racing same-key threads both reach here; the build is pure in
        # the key, so both built bit-identical designs and either install
        # order is fine (the disk install additionally serialises under
        # the entry lock).
        with self._mutex:
            self._memory[key] = placed
        self._store_disk(key, placed)
        with self._mutex:
            self._stores += 1
        obs.counter_add("cache.placed.stores")
        return placed

    # ------------------------------------------------------------------
    def disk_entries(self) -> list[Path]:
        if self.directory is None or not self.directory.exists():
            return []
        return sorted(self.directory.glob("*.pkl"))

    def verify(self) -> list[dict[str, str]]:
        """Read-only integrity walk of the content-addressed disk tier.

        Checks every entry's envelope version, that its filename matches
        its key's digest (the content address), and that the payload
        checksum holds — the same taxonomy :meth:`_load_disk` enforces —
        but never unlinks, rebuilds or counts corruptions: this is the
        fleet health check behind ``repro cache verify``, safe to run
        against a store that live workers are sharing.

        Returns one ``{"entry", "problem"}`` dict per damaged entry
        (empty list: store is clean).
        """
        problems = []
        for path in self.disk_entries():
            problem = self._verify_entry(path)
            if problem is not None:
                problems.append({"entry": path.name, "problem": problem})
        return problems

    @staticmethod
    def _verify_entry(path: Path) -> str | None:
        try:
            with path.open("rb") as fh:
                payload = pickle.load(fh)
        except OSError:
            return "unreadable (I/O error)"
        except (pickle.UnpicklingError, EOFError, AttributeError):
            return "undecodable envelope (truncated or torn write)"
        if not isinstance(payload, dict) or payload.get("version") != _DISK_VERSION:
            version = payload.get("version") if isinstance(payload, dict) else None
            return f"stale or foreign entry (version {version!r})"
        key = payload.get("key")
        if not isinstance(key, PlacedKey):
            return "missing or malformed key"
        if key.digest() != path.stem:
            return "entry name does not match its key digest (misfiled entry)"
        blob = payload.get("placed")
        if not isinstance(blob, bytes):
            return "payload is not bytes"
        if hashlib.sha256(blob).hexdigest() != payload.get("sha256"):
            return "checksum mismatch (bit rot or tampering)"
        return None

    def stats(self) -> CacheStats:
        entries = self.disk_entries()
        with self._mutex:
            return CacheStats(
                memory_hits=self._memory_hits,
                disk_hits=self._disk_hits,
                misses=self._misses,
                stores=self._stores,
                corruptions=self._corruptions,
                memory_entries=len(self._memory),
                disk_entries=len(entries),
                disk_bytes=sum(p.stat().st_size for p in entries),
                directory=str(self.directory) if self.directory is not None else None,
                sanitizer_violations=(
                    len(self._sanitizer.violations) if self._sanitizer is not None else 0
                ),
            )

    def clear(self, disk: bool = True) -> int:
        """Drop all entries; returns the number of disk entries removed.

        Lock files are removed alongside their entries; the sanitizer
        journal (an audit trail, not an entry) is left in place.
        """
        with self._mutex:
            self._memory.clear()
        removed = 0
        if disk:
            for path in self.disk_entries():
                path.unlink(missing_ok=True)
                removed += 1
            if self.directory is not None and self.directory.exists():
                for lock in self.directory.glob("*.lock"):
                    lock.unlink(missing_ok=True)
        return removed


_default_cache: PlacedDesignCache | None = None


def get_default_cache() -> PlacedDesignCache:
    """The process-wide cache (disk-backed iff ``REPRO_CACHE_DIR`` is set)."""
    global _default_cache
    if _default_cache is None:
        directory = os.environ.get(REPRO_CACHE_DIR_ENV)
        _default_cache = PlacedDesignCache(directory or None)
    return _default_cache


def set_default_cache(cache: PlacedDesignCache | None) -> None:
    """Replace the process-wide cache (``None`` resets to lazy creation)."""
    global _default_cache
    _default_cache = cache
