"""Pluggable shard executors: *where* a sweep's first attempts run.

:func:`repro.parallel.engine.run_sweep` splits execution into a
first-attempt pass and an inline retry loop.  The retry loop — backoff,
quarantine, DEGRADED bookkeeping — always runs in the parent and is
identical for every topology; only the first-attempt pass is pluggable,
through the :class:`ShardExecutor` interface:

``pool``
    The default: fork a :class:`~concurrent.futures.ProcessPoolExecutor`
    and dispatch shards to it (no-op at ``jobs=1``, where the inline
    loop simply performs the first attempts itself).
``serial``
    The reference executor: defers everything to the inline loop, i.e.
    the exact ``jobs=1`` semantics regardless of ``jobs``.
``file-queue``
    A coordinator that spools DX009-frozen shard descriptors into a
    directory (:mod:`repro.parallel.spool`) and spawns N stateless
    ``repro worker`` processes that lease shards via atomic rename,
    share one checksummed content-addressed placed-design cache, and
    write outcome sidecars the coordinator folds back into the retry
    ledger.  Workers are separately spawnable and host-agnostic: any
    process that can see the spool directory can drain it.

The project invariant holds across all three: shard numerics are pure in
``(device, plan, shard)`` with pre-drawn stimulus, so artefacts are
byte-identical for any executor, worker count, or worker join/leave
timing — the executor only moves wall-clock around.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import sys
import tempfile
import time
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path

from ..config import ResilienceSettings, get_kernel_mode
from ..errors import ConfigError
from ..fabric.device import FPGADevice
from ..faults import FaultInjector, FaultPlan
from ..obs import runtime as obs
from . import spool
from .cache import PlacedDesignCache
from .engine import (
    Shard,
    SweepPlan,
    _harvest_future,
    _init_worker,
    _run_shard_in_worker,
    _SweepState,
)
from .retry import ATTEMPT_ERROR, ATTEMPT_OK

__all__ = [
    "EXECUTOR_CATALOG",
    "EXECUTOR_NAMES",
    "ExecutorInfo",
    "FileQueueExecutor",
    "PoolExecutor",
    "REPRO_EXECUTOR_ENV",
    "SerialExecutor",
    "ShardExecutor",
    "SweepContext",
    "executors_table_markdown",
    "resolve_executor",
]

#: Environment variable naming the default executor (``run_sweep``'s
#: ``executor=None``); unset means ``pool``.
REPRO_EXECUTOR_ENV = "REPRO_EXECUTOR"


@dataclass
class SweepContext:
    """Everything an executor needs for one first-attempt pass.

    Assembled by :func:`~repro.parallel.engine.run_sweep`; executors
    record attempts into ``state`` (via ``record_at``/``accept_at``) and
    must never raise for per-shard failures — an unrecorded shard simply
    falls through to the inline loop, a recorded failure is retried.
    """

    device: FPGADevice
    plan: SweepPlan
    shards: list[Shard]
    jobs: int
    cache: PlacedDesignCache
    settings: ResilienceSettings
    faults: FaultPlan | None
    injector: FaultInjector | None
    state: _SweepState


class ShardExecutor(ABC):
    """Strategy for the first-attempt pass of a sweep.

    Implementations execute (some or all) shards exactly once each,
    recording outcomes into ``ctx.state``.  Retries never happen here:
    the engine's inline loop owns every attempt after the first, so all
    executors share one backoff/quarantine/DEGRADED policy.
    """

    name = "abstract"

    @abstractmethod
    def run_pass(self, ctx: SweepContext) -> None:
        """Run the first attempt of every shard this executor covers."""


class SerialExecutor(ShardExecutor):
    """Reference executor: everything runs in the engine's inline loop.

    ``run_pass`` is deliberately a no-op — the inline loop performs first
    attempts for any shard without a recorded attempt, which at this
    point is all of them.  This is byte-for-byte the ``jobs=1`` path and
    the ground truth the other executors are diffed against.
    """

    name = "serial"

    def run_pass(self, ctx: SweepContext) -> None:
        return None


class PoolExecutor(ShardExecutor):
    """One host, N forked processes (the historical ``jobs > 1`` path).

    Dispatches every shard to a :class:`ProcessPoolExecutor` whose
    workers hold the sweep-invariant state from the pool initializer.  A
    hung shard (timeout) or a broken pool abandons the pass: finished
    futures are harvested, everything else falls through to the inline
    loop — the sweep degrades to serial rather than aborting.
    """

    name = "pool"

    def run_pass(self, ctx: SweepContext) -> None:
        n = len(ctx.shards)
        if ctx.jobs <= 1 or n <= 1:
            return  # the inline loop is strictly better at this size
        state = ctx.state
        with obs.span("sweep.pool", jobs=min(ctx.jobs, n), shards=n) as pool_span:
            directory = (
                str(ctx.cache.directory) if ctx.cache.directory is not None else None
            )
            pool = ProcessPoolExecutor(
                max_workers=min(ctx.jobs, n),
                initializer=_init_worker,
                initargs=(ctx.device, ctx.plan, directory, ctx.faults),
            )
            abandon = None
            try:
                futures = [
                    pool.submit(_run_shard_in_worker, shard, 0)
                    for shard in ctx.shards
                ]
                for i, future in enumerate(futures):
                    abandon = _harvest_future(
                        state, ctx.plan, ctx.shards, i, future,
                        ctx.settings.shard_timeout_s,
                    )
                    if abandon is not None:
                        break
                if abandon is not None:
                    state.fallback_inline = True
                    state.pool_broken = abandon == "broken"
                    # Harvest whatever already finished without waiting on the
                    # sick pool; everything else retries inline.
                    for j, future in enumerate(futures):
                        if not state.attempts[j] and future.done():
                            _harvest_future(state, ctx.plan, ctx.shards, j, future, 0)
            finally:
                # wait=True would block forever on a hung worker; leaked
                # workers either finish their (finite) injected hang or die
                # with the parent.
                pool.shutdown(wait=not state.fallback_inline, cancel_futures=True)
            pool_span.set(abandoned=abandon or "")


class FileQueueExecutor(ShardExecutor):
    """Coordinator + N spawnable ``repro worker`` processes over a spool.

    The coordinator materialises a spool directory
    (:mod:`repro.parallel.spool`), spawns ``workers`` stateless worker
    processes against it, then polls: folding worker outcome sidecars
    into the sweep state as they appear and requeueing leases that
    outlive ``lease_timeout_s`` (a worker killed mid-shard leaves its
    lease behind; the bumped generation lets another worker redo the
    shard without re-firing ``times``-bounded chaos faults).  If the
    whole fleet exits with shards unaccounted for, those shards get a
    recorded error attempt and the inline retry loop finishes them — the
    same degrade-to-serial guarantee the pool gives.

    Parameters
    ----------
    workers:
        Worker processes to spawn; ``None`` uses the sweep's ``jobs``.
    spool_dir:
        Spool location; ``None`` creates (and afterwards removes) a
        temporary directory.  Pass a path to keep the spool for
        inspection or to point externally-launched workers at it.
    lease_timeout_s:
        Age at which a lease is presumed dead and requeued; ``None``
        uses the sweep's ``shard_timeout_s`` (and 30 s when that is
        unset).
    poll_s:
        Coordinator poll interval.
    """

    name = "file-queue"

    def __init__(
        self,
        workers: int | None = None,
        spool_dir: str | Path | None = None,
        lease_timeout_s: float | None = None,
        poll_s: float = 0.05,
    ) -> None:
        self.workers = workers
        self.spool_dir = spool_dir
        self.lease_timeout_s = lease_timeout_s
        self.poll_s = poll_s
        self.last_stats: dict[str, int] = {}

    def run_pass(self, ctx: SweepContext) -> None:
        n = len(ctx.shards)
        if n == 0:
            return
        workers = self.workers if self.workers is not None else ctx.jobs
        workers = max(1, min(int(workers), n))
        with obs.span(
            "sweep.executor", executor=self.name, workers=workers, shards=n
        ) as span:
            created = self.spool_dir is None
            root = (
                Path(tempfile.mkdtemp(prefix="repro-spool-"))
                if created
                else Path(self.spool_dir)  # type: ignore[arg-type]
            )
            try:
                stats = self._coordinate(ctx, root, workers)
            finally:
                if created:
                    shutil.rmtree(root, ignore_errors=True)
            span.set(**stats)
            self.last_stats = stats

    # ------------------------------------------------------------------
    def _coordinate(
        self, ctx: SweepContext, root: Path, workers: int
    ) -> dict[str, int]:
        n = len(ctx.shards)
        cache_dir = (
            str(ctx.cache.directory) if ctx.cache.directory is not None
            else str(root / "cache")  # memory-only parent: workers still share
        )
        spool.create_spool(
            root, ctx.device, ctx.plan, ctx.shards,
            cache_dir=cache_dir, faults=ctx.faults, kernel=get_kernel_mode(),
        )
        obs.counter_add("executor.shards.dispatched", n)
        timeout = self.lease_timeout_s
        if timeout is None:
            timeout = ctx.settings.shard_timeout_s
        if timeout is None:
            timeout = 30.0
        procs = [self._spawn_worker(root, i) for i in range(workers)]
        obs.counter_add("executor.workers.spawned", len(procs))
        folded: set[int] = set()
        lease_first_seen: dict[str, float] = {}
        requeued = 0
        try:
            while True:
                self._fold_new_outcomes(ctx, root, folded)
                if len(folded) >= n:
                    break
                requeued += self._requeue_stale(root, lease_first_seen, timeout)
                if all(proc.poll() is not None for proc in procs):
                    # Fleet gone.  Harvest stragglers' sidecars, then record
                    # an error attempt for anything unaccounted — the inline
                    # retry loop finishes those shards in the parent.
                    self._fold_new_outcomes(ctx, root, folded)
                    for i in range(n):
                        if i not in folded:
                            ctx.state.record_at(
                                i, ATTEMPT_ERROR, 0.0,
                                "worker fleet exited before executing shard",
                            )
                            folded.add(i)
                    ctx.state.fallback_inline = True
                    break
                time.sleep(self.poll_s)
        finally:
            spool.request_stop(root)
            self._reap(procs)
        return {"workers": workers, "requeued": requeued, "folded": len(folded)}

    def _spawn_worker(self, root: Path, index: int) -> "subprocess.Popen[bytes]":
        """Launch one ``repro worker`` child against the spool.

        The exact command any operator could run by hand on another host
        sharing the directory — the coordinator has no private channel to
        its workers beyond the spool itself.  The child's ``PYTHONPATH``
        is prefixed with the directory this very ``repro`` package was
        imported from, so a source checkout that is on ``sys.path`` but
        not installed (benchmarks, ``PYTHONPATH``-less shells) still
        spawns importable workers instead of a silently dead fleet.
        """
        log_dir = root / "workers"
        log_dir.mkdir(exist_ok=True)
        pkg_root = str(Path(__file__).resolve().parents[2])
        env = os.environ.copy()
        current = env.get("PYTHONPATH")
        if current is None:
            env["PYTHONPATH"] = pkg_root
        elif pkg_root not in current.split(os.pathsep):
            env["PYTHONPATH"] = pkg_root + os.pathsep + current
        with (log_dir / f"w{index}.log").open("ab") as log:
            return subprocess.Popen(
                [
                    sys.executable, "-m", "repro.cli", "worker", str(root),
                    "--worker-id", f"w{index}",
                ],
                stdout=log,
                stderr=subprocess.STDOUT,
                env=env,
            )

    def _fold_new_outcomes(
        self, ctx: SweepContext, root: Path, folded: set[int]
    ) -> None:
        """Fold unseen worker sidecars into the sweep state.

        At most one outcome per shard counts toward the first-attempt
        pass: a requeue can race a slow-but-alive worker into executing a
        shard twice, but both produce bit-identical results, so the first
        sidecar observed wins and the duplicate is ignored.
        """
        for outcome in spool.read_outcomes(root):
            if outcome.index in folded or not 0 <= outcome.index < len(ctx.shards):
                continue
            folded.add(outcome.index)
            if outcome.outcome == ATTEMPT_OK:
                result = spool.read_result(root, outcome.index)
                if result is None:
                    ctx.state.record_at(
                        outcome.index, ATTEMPT_ERROR, outcome.latency_s,
                        "worker reported ok but wrote no result",
                    )
                else:
                    ctx.state.accept_at(
                        ctx.plan, ctx.shards, outcome.index, result,
                        outcome.latency_s,
                    )
            else:
                ctx.state.record_at(
                    outcome.index, ATTEMPT_ERROR, outcome.latency_s,
                    outcome.detail or "worker reported failure",
                )

    def _requeue_stale(
        self, root: Path, first_seen: dict[str, float], timeout: float
    ) -> int:
        """Requeue leases older (by coordinator clock) than the timeout."""
        now = time.perf_counter()
        current = spool.leased_names(root)
        requeued = 0
        for name in current:
            seen = first_seen.setdefault(name, now)
            if now - seen > timeout:
                first_seen.pop(name, None)
                if spool.requeue_lease(root, name) is not None:
                    requeued += 1
                    obs.counter_add("executor.leases.requeued")
        for name in list(first_seen):
            if name not in current:  # finished or already requeued
                first_seen.pop(name, None)
        return requeued

    def _reap(self, procs: list["subprocess.Popen[bytes]"]) -> None:
        """Collect workers; escalate terminate → kill on the unresponsive."""
        for proc in procs:
            try:
                proc.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                proc.terminate()
                try:
                    proc.wait(timeout=2.0)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()


# ----------------------------------------------------------------------
# Registry.

@dataclass(frozen=True)
class ExecutorInfo:
    """One row of the executor reference (docs generator input)."""

    name: str
    topology: str
    description: str


EXECUTOR_CATALOG: tuple[ExecutorInfo, ...] = (
    ExecutorInfo(
        "pool",
        "one host, N forked processes",
        "Default.  First attempts fan out over a `ProcessPoolExecutor`; "
        "timeouts or a broken pool degrade the sweep to the inline loop. "
        "No-op at `jobs=1`.",
    ),
    ExecutorInfo(
        "serial",
        "one host, one process",
        "Reference semantics: every attempt runs in the engine's inline "
        "loop (`jobs=1` behaviour regardless of `jobs`) — the ground "
        "truth other executors are byte-diffed against.",
    ),
    ExecutorInfo(
        "file-queue",
        "coordinator + N spawnable `repro worker` processes",
        "Shard descriptors spool to a directory; stateless workers lease "
        "them by atomic rename, share one checksummed placed-design "
        "cache, and write outcome sidecars.  Stale leases (killed or "
        "stalled workers) are requeued; a vanished fleet degrades to the "
        "inline loop.",
    ),
)

EXECUTOR_NAMES: tuple[str, ...] = tuple(info.name for info in EXECUTOR_CATALOG)


def resolve_executor(spec: "str | ShardExecutor | None") -> ShardExecutor:
    """The executor to use for a sweep.

    ``None`` consults ``REPRO_EXECUTOR`` and falls back to ``pool`` —
    exactly the historical behaviour.  Strings name catalogue entries;
    an already-constructed :class:`ShardExecutor` passes through, which
    is how callers tune file-queue knobs (worker count, spool location,
    lease timeout).
    """
    if isinstance(spec, ShardExecutor):
        return spec
    if spec is None:
        spec = os.environ.get(REPRO_EXECUTOR_ENV) or "pool"
    if spec == "pool":
        return PoolExecutor()
    if spec == "serial":
        return SerialExecutor()
    if spec == "file-queue":
        return FileQueueExecutor()
    raise ConfigError(
        f"unknown shard executor {spec!r}; expected one of {EXECUTOR_NAMES}"
    )


def executors_table_markdown() -> str:
    """The executor catalogue as a markdown table (docs generator)."""
    lines = [
        "| Executor | Topology | Semantics |",
        "|---|---|---|",
    ]
    for info in EXECUTOR_CATALOG:
        lines.append(f"| `{info.name}` | {info.topology} | {info.description} |")
    return "\n".join(lines) + "\n"
