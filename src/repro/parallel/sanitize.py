"""Runtime cache-race sanitizer: the dynamic half of the determinism story.

Enabled by ``REPRO_SANITIZE=1``, this module instruments the
:class:`~repro.parallel.cache.PlacedDesignCache` disk tier with a
lost-update / lock-order checker.  The static auditor
(:mod:`repro.analysis.sanitizer`) proves the install *discipline* exists
(write-to-temp + ``os.replace`` under the advisory entry lock); the
runtime sanitizer verifies the discipline actually *holds* when N
processes share one cache directory:

* **unlocked-install** — an entry install observed while the advisory
  lock for that digest is not held by this process;
* **lost-update** — an install would replace a valid entry for the same
  key whose payload bytes differ.  The build path is pure in the key, so
  two racing writers must produce bit-identical payloads; a difference
  means nondeterministic synthesis or a clobbered foreign entry;
* **torn-entry** — the entry re-read immediately after install does not
  match what was written (torn replace, interleaved writer without the
  lock, or dying disk).

Violations are logged, counted on the ``cache.placed.sanitizer_violations``
telemetry counter, and appended to a shared JSONL journal under
``<cache-dir>/.sanitizer/`` so the stress test (and operators) can
aggregate across all participating processes.  The sanitizer only
observes: results are bit-identical with it on or off.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from ..obs import runtime as obs

logger = logging.getLogger(__name__)

__all__ = [
    "CacheSanitizer",
    "REPRO_SANITIZE_ENV",
    "SanitizerViolation",
    "read_journal",
    "sanitize_enabled",
]

#: Environment variable enabling the runtime sanitizer.
REPRO_SANITIZE_ENV = "REPRO_SANITIZE"

#: Journal subdirectory and file inside the cache directory.
_JOURNAL_DIR = ".sanitizer"
_JOURNAL_FILE = "journal.jsonl"


def sanitize_enabled() -> bool:
    """Whether ``REPRO_SANITIZE`` requests the runtime sanitizer."""
    value = os.environ.get(REPRO_SANITIZE_ENV, "").strip().lower()
    return value not in ("", "0", "false", "no", "off")


@dataclass(frozen=True)
class SanitizerViolation:
    """One observed violation of the shared-cache install discipline."""

    kind: str
    digest: str
    detail: str
    pid: int

    def as_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "digest": self.digest,
            "detail": self.detail,
            "pid": self.pid,
        }


def journal_path(directory: Path) -> Path:
    """The shared violation journal for a cache directory."""
    return directory / _JOURNAL_DIR / _JOURNAL_FILE


def read_journal(directory: Path) -> list[dict[str, Any]]:
    """All violation records journalled by any process sharing ``directory``."""
    path = journal_path(directory)
    if not path.exists():
        return []
    records: list[dict[str, Any]] = []
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            # A torn journal line is itself evidence of an interleaved
            # writer; surface it rather than hiding it.
            record = {"kind": "torn-journal-line", "detail": line[:120]}
        records.append(record)
    return records


class CacheSanitizer:
    """Observes disk-tier installs of one :class:`PlacedDesignCache`.

    The cache calls :meth:`lock_acquired`/:meth:`lock_released` from its
    advisory-lock context manager and brackets each install with
    :meth:`check_install` (pre-``os.replace``) and :meth:`verify_install`
    (post).  All checks are read-only with respect to cache entries.
    """

    def __init__(self, directory: Path) -> None:
        self.directory = directory
        self.violations: list[SanitizerViolation] = []
        self._held: set[str] = set()

    # -- lock-order tracking -------------------------------------------
    def lock_acquired(self, digest: str) -> None:
        self._held.add(digest)

    def lock_released(self, digest: str) -> None:
        self._held.discard(digest)

    def holds_lock(self, digest: str) -> bool:
        return digest in self._held

    # -- install checks ------------------------------------------------
    def check_install(self, path: Path, expected_key: object, new_sha: str) -> None:
        """Pre-install check: lock discipline + lost-update detection."""
        digest = path.stem
        if digest not in self._held:
            self._record(
                "unlocked-install",
                digest,
                "entry install attempted without the advisory entry lock",
            )
        existing = self._read_payload(path)
        if existing is None:
            return
        if existing.get("key") != expected_key:
            self._record(
                "lost-update",
                digest,
                "install would clobber a valid entry for a *different* key "
                "(digest collision)",
            )
        elif existing.get("sha256") != new_sha:
            self._record(
                "lost-update",
                digest,
                "install would replace a valid same-key entry with different "
                f"payload bytes (theirs {existing.get('sha256')!r:.12}..., "
                f"ours {new_sha[:8]}...): the build path is not pure in the key",
            )

    def verify_install(self, path: Path, new_sha: str) -> None:
        """Post-install check: the entry on disk matches what was written.

        Under the entry lock no other writer can interleave, and the pure
        build path means even a racing same-key writer outside the lock
        would land identical bytes — so any mismatch here is a real torn
        or clobbered entry.
        """
        payload = self._read_payload(path)
        if payload is None:
            self._record(
                "torn-entry",
                path.stem,
                "entry unreadable immediately after its own atomic install",
            )
            return
        blob = payload.get("placed")
        stored_sha = payload.get("sha256")
        actual_sha = (
            hashlib.sha256(blob).hexdigest() if isinstance(blob, bytes) else None
        )
        if stored_sha != new_sha or actual_sha != new_sha:
            self._record(
                "torn-entry",
                path.stem,
                f"entry re-read after install has sha {stored_sha!r} "
                f"(payload {actual_sha!r}), expected {new_sha!r}",
            )

    # -- plumbing ------------------------------------------------------
    @staticmethod
    def _read_payload(path: Path) -> dict[str, Any] | None:
        """The entry's payload dict, or ``None`` if absent/unreadable."""
        try:
            with path.open("rb") as fh:
                payload = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            return None
        return payload if isinstance(payload, dict) else None

    def _record(self, kind: str, digest: str, detail: str) -> None:
        violation = SanitizerViolation(
            kind=kind, digest=digest, detail=detail, pid=os.getpid()
        )
        self.violations.append(violation)
        obs.counter_add("cache.placed.sanitizer_violations")
        logger.error(
            "cache sanitizer: %s on entry %s: %s", kind, digest, detail
        )
        self._journal(violation)

    def _journal(self, violation: SanitizerViolation) -> None:
        path = journal_path(self.directory)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            line = json.dumps(violation.as_dict(), sort_keys=True)
            # repro: allow[DT006] -- append-only journal; whole-line records, append semantics
            with path.open("a", encoding="utf-8") as fh:
                fh.write(line + "\n")
        except OSError:
            logger.exception("cache sanitizer: journal write failed")
