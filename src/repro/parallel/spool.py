"""On-disk spool: the work queue behind the file-queue shard executor.

A spool directory is the entire coordination surface between a sweep's
coordinator and its stateless ``repro worker`` processes — there is no
socket, no broker, no shared memory.  Every file is installed atomically
(write-to-temp + ``os.replace``) and every payload is canonical JSON
(sorted keys, no whitespace), so any number of processes on any hosts
sharing the directory observe only whole, byte-stable artefacts::

    <spool>/
      manifest.json                  sweep-invariant header (plan, cache, faults, kernel)
      device.pkl                     pickled FPGADevice snapshot
      pending/shard-NNNNN.gG.json    claimable shard descriptors (G = lease generation)
      leased/shard-NNNNN.gG.json     in-flight leases (claimed via atomic rename)
      results/shard-NNNNN.json       canonical ShardResult records
      outcomes/shard-NNNNN.gG.json   per-lease WorkerOutcome sidecars
      stop                           sentinel: idle workers exit when present

The lease protocol is a single ``os.rename`` from ``pending/`` to
``leased/``: the filesystem guarantees exactly one claimant wins each
descriptor, losers observe ``FileNotFoundError`` and move on.  A worker
that dies mid-shard leaves its lease in ``leased/``; the coordinator
renames stale leases back to ``pending/`` with a bumped generation
suffix.  The generation lives in the *filename*, never in the descriptor
bytes — the descriptor payload stays exactly the frozen DX009
``shard.descriptor.v1`` shape — and doubles as the fault-injection
attempt number, so ``times``-bounded chaos faults fire once per shard
across requeues, exactly like pool/inline retries.

Determinism: shard numerics never pass through this module — descriptors
carry the parent's pre-drawn stimulus as exact int64 lists, results carry
float64 statistics as ``repr`` round-trippable JSON numbers, so a result
read back from the spool is bit-identical to one computed in process.
"""

from __future__ import annotations

import json
import os
import pickle
import re
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..fabric.device import FPGADevice
from ..faults import FaultPlan
from .engine import Shard, ShardResult, SweepPlan

__all__ = [
    "SPOOL_VERSION",
    "SpoolEntry",
    "SPOOL_LAYOUT",
    "WorkerOutcome",
    "canonical_json",
    "claim_next",
    "create_spool",
    "descriptor_fields_markdown",
    "descriptor_name",
    "load_device",
    "parse_descriptor_name",
    "plan_descriptor",
    "plan_from_descriptor",
    "read_manifest",
    "read_outcomes",
    "read_result",
    "release_lease",
    "requeue_lease",
    "request_stop",
    "result_record",
    "result_from_record",
    "shard_descriptor",
    "shard_from_descriptor",
    "spool_layout_markdown",
    "stop_requested",
    "write_manifest",
    "write_outcome",
    "write_result",
]

#: Spool wire-format version; a worker refuses a spool it cannot speak.
SPOOL_VERSION = 1

MANIFEST_NAME = "manifest.json"
DEVICE_NAME = "device.pkl"
STOP_NAME = "stop"
PENDING_DIR = "pending"
LEASED_DIR = "leased"
RESULTS_DIR = "results"
OUTCOMES_DIR = "outcomes"

_DESCRIPTOR_NAME_RE = re.compile(r"^shard-(\d{5})\.g(\d+)\.json$")


# ----------------------------------------------------------------------
# Canonical serialisation.

def canonical_json(obj: object) -> str:
    """Canonical JSON: sorted keys, no whitespace, trailing newline.

    Byte-stable across writers — two processes serialising the same value
    produce identical bytes, which is what makes duplicate installs (a
    requeued shard executed twice) harmless.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":")) + "\n"


def shard_descriptor(shard: Shard) -> dict:
    """JSON-ready form of one shard (the frozen ``shard.descriptor.v1``).

    Integer payloads are exact in JSON; :func:`shard_from_descriptor`
    restores the int64 arrays bit for bit.
    """
    return {
        "li": int(shard.li),
        "location": [int(shard.location[0]), int(shard.location[1])],
        "start": int(shard.start),
        "multiplicands": [int(v) for v in shard.multiplicands],
        "stimulus": [int(v) for v in shard.stimulus],
    }


def shard_from_descriptor(data: dict) -> Shard:
    return Shard(
        li=int(data["li"]),
        location=(int(data["location"][0]), int(data["location"][1])),
        start=int(data["start"]),
        multiplicands=np.asarray(data["multiplicands"], dtype=np.int64),
        stimulus=np.asarray(data["stimulus"], dtype=np.int64),
    )


def plan_descriptor(plan: SweepPlan) -> dict:
    """JSON-ready form of the sweep-invariant plan (manifest payload)."""
    return {
        "w_data": int(plan.w_data),
        "w_coeff": int(plan.w_coeff),
        "seed": int(plan.seed),
        "freqs_mhz": [float(f) for f in plan.freqs_mhz],
        "achieved_mhz": [float(f) for f in plan.achieved_mhz],
        "n_samples": int(plan.n_samples),
        "max_stream_depth": int(plan.max_stream_depth),
    }


def plan_from_descriptor(data: dict) -> SweepPlan:
    return SweepPlan(
        w_data=int(data["w_data"]),
        w_coeff=int(data["w_coeff"]),
        seed=int(data["seed"]),
        freqs_mhz=tuple(float(f) for f in data["freqs_mhz"]),
        achieved_mhz=tuple(float(f) for f in data["achieved_mhz"]),
        n_samples=int(data["n_samples"]),
        max_stream_depth=int(data["max_stream_depth"]),
    )


def result_record(result: ShardResult) -> dict:
    """JSON-ready form of one shard result.

    Python's shortest-``repr`` float serialisation round-trips every
    float64 exactly (including the NaN a ``corrupt`` chaos fault plants),
    so a spooled result is bit-identical to the in-process original.
    """
    return {
        "li": int(result.li),
        "start": int(result.start),
        "variance": [[float(v) for v in row] for row in result.variance],
        "mean": [[float(v) for v in row] for row in result.mean],
        "error_rate": [[float(v) for v in row] for row in result.error_rate],
    }


def result_from_record(data: dict) -> ShardResult:
    return ShardResult(
        li=int(data["li"]),
        start=int(data["start"]),
        variance=np.asarray(data["variance"], dtype=np.float64),
        mean=np.asarray(data["mean"], dtype=np.float64),
        error_rate=np.asarray(data["error_rate"], dtype=np.float64),
    )


@dataclass(frozen=True)
class WorkerOutcome:
    """Sidecar a worker writes after finishing (or failing) one lease.

    ``outcome`` uses the :mod:`repro.parallel.retry` attempt vocabulary
    (``ok``/``error``); the coordinator folds these into the same retry
    ledger the pool and inline paths feed, so dispositions and DEGRADED
    semantics are executor-independent.  ``worker`` is a coordinator-
    assigned label (``w0``, ``w1``, …) — never a hostname or pid, so
    outcome bytes stay host-independent.
    """

    index: int
    generation: int
    outcome: str
    latency_s: float
    detail: str = ""
    worker: str = ""

    def as_dict(self) -> dict:
        return {
            "index": self.index,
            "generation": self.generation,
            "outcome": self.outcome,
            "latency_s": self.latency_s,
            "detail": self.detail,
            "worker": self.worker,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WorkerOutcome":
        return cls(
            index=int(data["index"]),
            generation=int(data["generation"]),
            outcome=str(data["outcome"]),
            latency_s=float(data["latency_s"]),
            detail=str(data.get("detail", "")),
            worker=str(data.get("worker", "")),
        )


# ----------------------------------------------------------------------
# Atomic installs.

def _writer_tag() -> str:
    """Per-process temp-name disambiguator (never reaches artefact bytes)."""
    return str(os.getpid())


def _write_atomic(path: Path, data: bytes) -> None:
    """Install ``data`` at ``path`` atomically.

    Concurrent writers cannot collide on the temp name (it carries the
    writer tag) and readers see either the old file or the new one, never
    a torn write.  Duplicate installs are benign: every spool artefact is
    bit-deterministic in its name, so last-writer-wins installs identical
    bytes.
    """
    tmp = path.with_name(f".{path.name}.tmp.{_writer_tag()}")
    with tmp.open("wb") as fh:
        fh.write(data)
    # repro: allow[DT007] -- artefacts are bit-deterministic in their name, so racing installs replace identical bytes
    os.replace(tmp, path)


# ----------------------------------------------------------------------
# Spool creation and the manifest.

def write_manifest(
    root: Path,
    plan: SweepPlan,
    n_shards: int,
    cache_dir: str | None,
    faults: FaultPlan | None,
    kernel: str,
) -> None:
    """Install the sweep-invariant spool header."""
    manifest = {
        "version": SPOOL_VERSION,
        "plan": plan_descriptor(plan),
        "n_shards": int(n_shards),
        "cache_dir": cache_dir,
        "faults": faults.as_dict() if faults is not None else None,
        "kernel": kernel,
    }
    _write_atomic(Path(root) / MANIFEST_NAME, canonical_json(manifest).encode("utf-8"))


def read_manifest(root: Path) -> dict:
    return json.loads((Path(root) / MANIFEST_NAME).read_text("utf-8"))


def load_device(root: Path) -> FPGADevice:
    return pickle.loads((Path(root) / DEVICE_NAME).read_bytes())


def create_spool(
    root: Path,
    device: FPGADevice,
    plan: SweepPlan,
    shards: list[Shard],
    cache_dir: str | None,
    faults: FaultPlan | None,
    kernel: str,
) -> None:
    """Materialise a complete spool: layout, header, device, descriptors.

    Descriptors land in ``pending/`` at generation 0, in shard order; the
    manifest is installed last so a worker that sees it can rely on the
    rest of the spool being in place.
    """
    root = Path(root)
    for sub in (PENDING_DIR, LEASED_DIR, RESULTS_DIR, OUTCOMES_DIR):
        (root / sub).mkdir(parents=True, exist_ok=True)
    _write_atomic(
        root / DEVICE_NAME, pickle.dumps(device, protocol=pickle.HIGHEST_PROTOCOL)
    )
    for index, shard in enumerate(shards):
        _write_atomic(
            root / PENDING_DIR / descriptor_name(index, 0),
            canonical_json(shard_descriptor(shard)).encode("utf-8"),
        )
    write_manifest(root, plan, len(shards), cache_dir, faults, kernel)


# ----------------------------------------------------------------------
# The lease protocol.

def descriptor_name(index: int, generation: int) -> str:
    return f"shard-{index:05d}.g{generation}.json"


def parse_descriptor_name(name: str) -> tuple[int, int] | None:
    """``(index, generation)`` of a descriptor filename, else ``None``."""
    match = _DESCRIPTOR_NAME_RE.match(name)
    if match is None:
        return None
    return int(match.group(1)), int(match.group(2))


def pending_names(root: Path) -> list[str]:
    return _listing(Path(root) / PENDING_DIR)


def leased_names(root: Path) -> list[str]:
    return _listing(Path(root) / LEASED_DIR)


def _listing(directory: Path) -> list[str]:
    try:
        return sorted(
            p.name for p in directory.iterdir()
            if parse_descriptor_name(p.name) is not None
        )
    except FileNotFoundError:
        return []


def claim_next(root: Path) -> tuple[int, int, Path] | None:
    """Lease the lowest-numbered pending shard via atomic rename.

    Returns ``(index, generation, leased_path)``, or ``None`` when
    nothing is claimable.  Racing claimants all attempt the same rename;
    the filesystem lets exactly one win, the rest observe
    ``FileNotFoundError`` and try the next descriptor.
    """
    root = Path(root)
    for name in pending_names(root):
        parsed = parse_descriptor_name(name)
        if parsed is None:
            continue
        target = root / LEASED_DIR / name
        try:
            # repro: allow[DT007] -- the rename IS the lock: one claimant wins, losers get FileNotFoundError
            os.rename(root / PENDING_DIR / name, target)
        except FileNotFoundError:
            continue
        return parsed[0], parsed[1], target
    return None


def requeue_lease(root: Path, name: str) -> tuple[int, int] | None:
    """Return a (presumed dead) lease to ``pending/``, generation + 1.

    Returns the new ``(index, generation)``, or ``None`` if the lease
    vanished first (its worker finished or another requeue won).  The
    bumped generation keeps ``times``-bounded chaos faults from re-firing
    on the re-executed shard, mirroring retry-attempt numbering.
    """
    parsed = parse_descriptor_name(name)
    if parsed is None:
        return None
    index, generation = parsed
    root = Path(root)
    try:
        # repro: allow[DT007] -- rename-as-lock: a finished worker's unlink or racing requeue makes this a no-op, never a tear
        os.rename(
            root / LEASED_DIR / name,
            root / PENDING_DIR / descriptor_name(index, generation + 1),
        )
    except FileNotFoundError:
        return None
    return index, generation + 1


def release_lease(root: Path, name: str) -> None:
    """Drop a finished lease; a concurrent requeue winning is fine."""
    (Path(root) / LEASED_DIR / name).unlink(missing_ok=True)


# ----------------------------------------------------------------------
# Results and outcomes.

def result_name(index: int) -> str:
    return f"shard-{index:05d}.json"


def write_result(root: Path, index: int, result: ShardResult) -> None:
    _write_atomic(
        Path(root) / RESULTS_DIR / result_name(index),
        canonical_json(result_record(result)).encode("utf-8"),
    )


def read_result(root: Path, index: int) -> ShardResult | None:
    path = Path(root) / RESULTS_DIR / result_name(index)
    try:
        return result_from_record(json.loads(path.read_text("utf-8")))
    except FileNotFoundError:
        return None


def write_outcome(root: Path, outcome: WorkerOutcome) -> None:
    _write_atomic(
        Path(root) / OUTCOMES_DIR / descriptor_name(outcome.index, outcome.generation),
        canonical_json(outcome.as_dict()).encode("utf-8"),
    )


def read_outcomes(root: Path) -> list[WorkerOutcome]:
    """All outcome sidecars, sorted by ``(index, generation)`` filename."""
    directory = Path(root) / OUTCOMES_DIR
    outcomes = []
    for name in _listing(directory):
        outcomes.append(
            WorkerOutcome.from_dict(json.loads((directory / name).read_text("utf-8")))
        )
    return outcomes


# ----------------------------------------------------------------------
# The stop sentinel.

def request_stop(root: Path) -> None:
    """Tell idle workers to exit (claimed shards still finish)."""
    _write_atomic(Path(root) / STOP_NAME, b"stop\n")


def stop_requested(root: Path) -> bool:
    return (Path(root) / STOP_NAME).exists()


# ----------------------------------------------------------------------
# Generated documentation (drift-tested in docs/distributed.md).

@dataclass(frozen=True)
class SpoolEntry:
    """One row of the spool-directory layout reference."""

    path: str
    writer: str
    description: str


SPOOL_LAYOUT: tuple[SpoolEntry, ...] = (
    SpoolEntry(
        "manifest.json",
        "coordinator",
        "Sweep-invariant header: spool version, plan descriptor, shard "
        "count, shared cache directory, fault plan, kernel mode. "
        "Installed last, so its presence implies a complete spool.",
    ),
    SpoolEntry(
        "device.pkl",
        "coordinator",
        "Pickled `FPGADevice` snapshot every worker characterises "
        "against (same payload the in-process pool ships to forked "
        "workers).",
    ),
    SpoolEntry(
        "pending/shard-NNNNN.gG.json",
        "coordinator (`g0`; requeues bump `G`)",
        "Claimable shard descriptors in canonical JSON — exactly the "
        "frozen `shard.descriptor.v1` payload; the lease generation `G` "
        "lives in the filename, never in the bytes.",
    ),
    SpoolEntry(
        "leased/shard-NNNNN.gG.json",
        "worker (atomic rename from `pending/`)",
        "In-flight leases.  The rename is the mutual exclusion: exactly "
        "one claimant wins each descriptor.  A lease that outlives the "
        "lease timeout is presumed dead and requeued.",
    ),
    SpoolEntry(
        "results/shard-NNNNN.json",
        "worker",
        "Canonical-JSON `ShardResult` record; bit-identical no matter "
        "which worker, host or lease generation produced it.",
    ),
    SpoolEntry(
        "outcomes/shard-NNNNN.gG.json",
        "worker",
        "`WorkerOutcome` sidecar per executed lease (ok/error, latency, "
        "worker label) that the coordinator folds into the retry ledger.",
    ),
    SpoolEntry(
        "stop",
        "coordinator",
        "Stop sentinel: workers exit once it exists and nothing is "
        "claimable.",
    ),
)


def spool_layout_markdown() -> str:
    """The spool-directory layout as a markdown table (docs generator)."""
    lines = [
        "| Path | Written by | Contents |",
        "|---|---|---|",
    ]
    for entry in SPOOL_LAYOUT:
        lines.append(f"| `{entry.path}` | {entry.writer} | {entry.description} |")
    return "\n".join(lines) + "\n"


def descriptor_fields_markdown() -> str:
    """Shard-descriptor field reference as a markdown table (docs generator).

    Field names and order come straight from the :class:`Shard` dataclass
    — the same source the frozen ``shard.descriptor.v1`` wire contract is
    derived from — so this table cannot drift from the code.
    """
    import dataclasses

    encodings = {
        "li": "JSON integer — location index within the sweep's anchor list.",
        "location": "two-element JSON array `[row, col]` — placement anchor.",
        "start": "JSON integer — first multiplicand index of this chunk.",
        "multiplicands": "JSON array of exact integers (int64 round-trip).",
        "stimulus": (
            "JSON array of exact integers — the parent's pre-drawn "
            "stimulus stream, so workers never touch an RNG."
        ),
    }
    lines = [
        "| Field | Encoding |",
        "|---|---|",
    ]
    for field in dataclasses.fields(Shard):
        lines.append(f"| `{field.name}` | {encodings[field.name]} |")
    return "\n".join(lines) + "\n"
