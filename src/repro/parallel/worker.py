"""Stateless file-queue worker: drain shards from a spool directory.

The execution half of the file-queue executor
(:class:`repro.parallel.executors.FileQueueExecutor`), runnable as
``repro worker SPOOL`` from any process — including on another host —
that can see the spool directory.  A worker is stateless and
host-agnostic: everything it needs (device snapshot, sweep plan, cache
directory, fault plan, kernel mode) comes from the spool manifest, and
everything it produces (results, outcome sidecars) is canonical JSON
whose bytes are pure in the shard descriptor.

Drain loop: claim the lowest-numbered pending shard by atomic rename,
execute it through :func:`repro.parallel.engine.run_shard` against the
shared placed-design cache, install the result then the outcome sidecar
(in that order, so an ``ok`` sidecar always has its result on disk),
release the lease, repeat.  When nothing is claimable the worker polls
until the coordinator writes the ``stop`` sentinel.  The lease
generation from the descriptor filename is passed to the fault injector
as the attempt number, so ``times``-bounded chaos faults behave across
requeues exactly as they do across retries.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from pathlib import Path

from ..config import set_kernel_mode
from ..errors import ConfigError
from ..faults import FaultInjector, FaultPlan
from ..netlist.core import EvalScratch
from . import spool
from .cache import PlacedDesignCache
from .engine import run_shard
from .retry import ATTEMPT_ERROR, ATTEMPT_OK

__all__ = ["drain_spool", "worker_main"]


def drain_spool(
    root: str | Path,
    worker_id: str = "w0",
    poll_s: float = 0.05,
    max_shards: int | None = None,
) -> int:
    """Claim/execute/report until the spool stops; returns shards executed.

    ``worker_id`` is a caller-assigned label stamped into outcome
    sidecars (never a hostname or pid — artefact bytes stay
    host-independent).  ``max_shards`` bounds the drain for tests and
    scale-down drills.
    """
    root = Path(root)
    try:
        manifest = spool.read_manifest(root)
    except FileNotFoundError:
        raise ConfigError(f"no spool manifest at {root}")
    if manifest.get("version") != spool.SPOOL_VERSION:
        raise ConfigError(
            f"spool speaks version {manifest.get('version')!r}, "
            f"this worker speaks {spool.SPOOL_VERSION}"
        )
    plan = spool.plan_from_descriptor(manifest["plan"])
    device = spool.load_device(root)
    set_kernel_mode(manifest["kernel"])
    cache = PlacedDesignCache(manifest.get("cache_dir"))
    injector = None
    faults_dict = manifest.get("faults")
    if faults_dict is not None:
        fault_plan = FaultPlan.from_dict(faults_dict)
        if not fault_plan.is_empty:
            injector = FaultInjector(fault_plan)

    scratch = EvalScratch()
    executed = 0
    while True:
        claim = spool.claim_next(root)
        if claim is None:
            if spool.stop_requested(root):
                break
            time.sleep(poll_s)
            continue
        index, generation, lease = claim
        try:
            shard = spool.shard_from_descriptor(
                json.loads(lease.read_text("utf-8"))
            )
        except Exception as exc:
            # A torn or foreign descriptor must not kill the worker: report
            # it like any failed attempt and let the retry ledger decide.
            spool.write_outcome(root, spool.WorkerOutcome(
                index=index, generation=generation, outcome=ATTEMPT_ERROR,
                latency_s=0.0,
                detail=f"unreadable descriptor — {type(exc).__name__}: {exc}",
                worker=worker_id,
            ))
            spool.release_lease(root, lease.name)
            continue
        if injector is not None:
            action = injector.worker_action(shard, generation)
            if action == "worker-exit":
                # Abrupt mid-shard death (the chaos stand-in for SIGKILL /
                # host loss): the lease stays behind for the coordinator's
                # stale-lease requeue to recover.
                os._exit(17)
            if action == "lease-stall":
                # Stuck-worker drill: abandon the lease without a result
                # and move on; only the requeue can free the shard.
                continue
        t0 = time.perf_counter()
        try:
            result = run_shard(
                device, plan, shard, cache,
                injector=injector, attempt=generation, scratch=scratch,
            )
        except Exception as exc:
            spool.write_outcome(root, spool.WorkerOutcome(
                index=index, generation=generation, outcome=ATTEMPT_ERROR,
                latency_s=time.perf_counter() - t0,
                detail=f"{type(exc).__name__}: {exc}", worker=worker_id,
            ))
            spool.release_lease(root, lease.name)
            continue
        spool.write_result(root, index, result)
        spool.write_outcome(root, spool.WorkerOutcome(
            index=index, generation=generation, outcome=ATTEMPT_OK,
            latency_s=time.perf_counter() - t0, worker=worker_id,
        ))
        spool.release_lease(root, lease.name)
        executed += 1
        if max_shards is not None and executed >= max_shards:
            break
    return executed


def worker_main(argv: list[str] | None = None) -> int:
    """``repro worker`` — drain one spool directory, then exit.

    Exit codes: 0 drained until stop (or ``--max-shards``), 2 unusable
    spool (missing manifest, version mismatch).
    """
    parser = argparse.ArgumentParser(
        prog="repro worker",
        description=(
            "Stateless file-queue sweep worker: lease shard descriptors "
            "from SPOOL, execute them against the shared placed-design "
            "cache, write results and outcome sidecars."
        ),
    )
    parser.add_argument(
        "spool", help="spool directory created by the file-queue coordinator"
    )
    parser.add_argument(
        "--worker-id", default="w0",
        help="label stamped into outcome sidecars (default: w0)",
    )
    parser.add_argument(
        "--poll", type=float, default=0.05, metavar="SECONDS",
        help="idle poll interval while waiting for claimable shards",
    )
    parser.add_argument(
        "--max-shards", type=int, default=None, metavar="N",
        help="exit after executing N shards (default: drain until stop)",
    )
    args = parser.parse_args(argv)
    try:
        executed = drain_spool(
            args.spool, worker_id=args.worker_id,
            poll_s=args.poll, max_shards=args.max_shards,
        )
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"worker {args.worker_id}: executed {executed} shard(s)")
    return 0
