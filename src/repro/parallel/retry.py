"""Retry bookkeeping and typed sweep outcomes for the shard engine.

The engine's hardened execution path (:func:`repro.parallel.engine.run_sweep`)
records every attempt at every shard into a :class:`SweepOutcome` so
callers can distinguish *complete* (every shard produced a result),
*degraded* (some shards quarantined after exhausting retries) and
*failed* (nothing usable) sweeps without parsing logs.

Backoff delays are deterministic: the jitter is hashed from the sweep
seed and the shard identity through :func:`repro.rng.derive_seed`, so a
chaos run replays with identical timing decisions (the delays themselves
are wall-clock, the *choices* are reproducible).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..config import ResilienceSettings
from ..errors import SweepFailedError
from ..rng import derive_seed

if TYPE_CHECKING:
    from .engine import ShardResult

__all__ = [
    "ShardAttempt",
    "ShardReport",
    "SweepOutcome",
    "backoff_delay",
]

#: Attempt outcomes recorded by the engine.
ATTEMPT_OK = "ok"
ATTEMPT_ERROR = "error"
ATTEMPT_TIMEOUT = "timeout"
ATTEMPT_INVALID = "invalid"

#: Shard dispositions after the sweep finished.
DISPOSITION_COMPLETED = "completed"
DISPOSITION_RECOVERED = "recovered"
DISPOSITION_QUARANTINED = "quarantined"


def backoff_delay(
    settings: ResilienceSettings, seed: int, retry: int, *path: str
) -> float:
    """Delay in seconds before retry ``retry`` (0-based) of one shard.

    Exponential schedule capped at ``backoff_max_s``, spread by a
    deterministic jitter factor in ``[1 - j, 1 + j]`` hashed from
    ``(seed, path, retry)`` — reproducible, yet decorrelated across
    shards so a pool of retries does not stampede.
    """
    delay = min(
        settings.backoff_max_s,
        settings.backoff_base_s * settings.backoff_factor**retry,
    )
    if settings.backoff_jitter > 0.0 and delay > 0.0:
        u = derive_seed(seed, "backoff", *path, str(retry)) / float(2**63)
        delay *= 1.0 + settings.backoff_jitter * (2.0 * u - 1.0)
    return max(0.0, delay)


@dataclass(frozen=True)
class ShardAttempt:
    """One try at one shard: what happened and how long it took."""

    attempt: int
    outcome: str  # ok | error | timeout | invalid
    latency_s: float
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.outcome == ATTEMPT_OK

    def as_dict(self) -> dict:
        return {
            "attempt": self.attempt,
            "outcome": self.outcome,
            "latency_s": self.latency_s,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class ShardReport:
    """The full attempt history and final disposition of one shard."""

    index: int
    li: int
    start: int
    attempts: tuple[ShardAttempt, ...]
    disposition: str  # completed | recovered | quarantined

    @property
    def ok(self) -> bool:
        return self.disposition != DISPOSITION_QUARANTINED

    @property
    def n_attempts(self) -> int:
        return len(self.attempts)

    def as_dict(self) -> dict:
        return {
            "index": self.index,
            "li": self.li,
            "start": self.start,
            "disposition": self.disposition,
            "attempts": [a.as_dict() for a in self.attempts],
        }


@dataclass(frozen=True)
class SweepOutcome:
    """Typed result of one hardened sweep execution.

    Attributes
    ----------
    results:
        Per-shard results in shard order; ``None`` marks a quarantined
        shard.  (Typed loosely to keep this module import-light.)
    reports:
        Per-shard attempt histories, same order.
    fallback_inline:
        The pool was abandoned mid-sweep (timeout or broken pool) and the
        remaining shards ran inline in the parent process.
    pool_broken:
        The process pool died (worker crash killing the executor).
    """

    results: tuple["ShardResult | None", ...]
    reports: tuple[ShardReport, ...]
    fallback_inline: bool = False
    pool_broken: bool = False

    # ------------------------------------------------------------------
    @property
    def status(self) -> str:
        """``complete`` | ``degraded`` | ``failed``."""
        if not self.reports:
            return "complete"
        ok = sum(1 for r in self.reports if r.ok)
        if ok == len(self.reports):
            return "complete"
        return "degraded" if ok > 0 else "failed"

    @property
    def quarantined(self) -> tuple[tuple[int, int], ...]:
        """``(li, start)`` of every quarantined shard, in shard order."""
        return tuple(
            (r.li, r.start)
            for r in self.reports
            if r.disposition == DISPOSITION_QUARANTINED
        )

    @property
    def total_attempts(self) -> int:
        return sum(r.n_attempts for r in self.reports)

    @property
    def retried(self) -> tuple[tuple[int, int], ...]:
        """Shards that needed more than one attempt (recovered or not)."""
        return tuple(
            (r.li, r.start) for r in self.reports if r.n_attempts > 1
        )

    # ------------------------------------------------------------------
    def raise_for_status(self, allow_degraded: bool = False) -> None:
        """Raise :class:`~repro.errors.SweepFailedError` on unusable sweeps."""
        status = self.status
        if status == "complete":
            return
        if status == "degraded" and allow_degraded:
            return
        quarantined = ", ".join(
            f"(li={li}, start={start})" for li, start in self.quarantined
        )
        raise SweepFailedError(
            f"sweep {status}: {len(self.quarantined)}/{len(self.reports)} "
            f"shard(s) quarantined after retries: {quarantined}",
            outcome=self,
        )

    def completed_results(self) -> list["ShardResult"]:
        """All shard results, raising if any shard was quarantined."""
        self.raise_for_status(allow_degraded=False)
        return [r for r in self.results if r is not None]

    def as_dict(self) -> dict:
        """JSON-ready summary (persisted next to workspace artefacts)."""
        return {
            "status": self.status,
            "n_shards": len(self.reports),
            "n_quarantined": len(self.quarantined),
            "quarantined": [list(q) for q in self.quarantined],
            "total_attempts": self.total_attempts,
            "fallback_inline": self.fallback_inline,
            "pool_broken": self.pool_broken,
            "reports": [r.as_dict() for r in self.reports],
        }
