"""Worker-count resolution for the parallel characterisation engine.

One knob, three sources, in priority order: an explicit ``jobs`` argument
(CLI ``--jobs``), the ``REPRO_JOBS`` environment variable, and a default
of 1 — so serial behaviour is unchanged unless parallelism is asked for.
"""

from __future__ import annotations

import os

from ..errors import ConfigError

__all__ = ["REPRO_JOBS_ENV", "resolve_jobs"]

#: Environment variable consulted when no explicit ``jobs`` is given.
REPRO_JOBS_ENV = "REPRO_JOBS"


def resolve_jobs(jobs: int | None = None) -> int:
    """Resolve a worker count from an argument or the environment.

    Parameters
    ----------
    jobs:
        Explicit worker count; ``None`` falls back to ``REPRO_JOBS`` and
        then to 1 (serial).

    Raises
    ------
    ConfigError
        If the resolved value is not a positive integer.
    """
    source = "jobs"
    if jobs is None:
        raw = os.environ.get(REPRO_JOBS_ENV)
        if raw is None:
            return 1
        source = REPRO_JOBS_ENV
        try:
            jobs = int(raw)
        except ValueError:
            raise ConfigError(
                f"{REPRO_JOBS_ENV}={raw!r} is not an integer"
            ) from None
    if isinstance(jobs, bool) or not isinstance(jobs, int):
        raise ConfigError(f"{source} must be an integer, got {jobs!r}")
    if jobs < 1:
        raise ConfigError(f"{source} must be >= 1, got {jobs}")
    return jobs
