"""Performance layer: process-pool sweeps and the placed-design cache.

Three coordinated pieces (see ``docs/performance.md``):

* :func:`resolve_jobs` / ``REPRO_JOBS`` — one worker-count knob shared by
  the library, the CLIs and the benchmarks (default 1: serial);
* :class:`PlacedDesignCache` — memory + disk memoisation of
  :class:`~repro.synthesis.flow.PlacedDesign` keyed by device identity,
  geometry, anchor and seed;
* :mod:`repro.parallel.engine` — deterministic ``(location, chunk)``
  sharding of characterisation sweeps over a ``ProcessPoolExecutor``,
  bit-identical to the serial path at any worker count;
* :mod:`repro.parallel.retry` — the resilience layer's bookkeeping:
  per-shard attempt histories, quarantine dispositions and the typed
  :class:`SweepOutcome` returned by :func:`run_sweep` (see
  ``docs/resilience.md``);
* :mod:`repro.parallel.sanitize` — the ``REPRO_SANITIZE=1`` runtime
  cache-race detector guarding the shared disk tier (see
  ``docs/static_analysis.md``).
"""

from .cache import (
    REPRO_CACHE_DIR_ENV,
    CacheStats,
    PlacedDesignCache,
    PlacedKey,
    get_default_cache,
    multiplier_netlist,
    set_default_cache,
)
from .engine import (
    Shard,
    ShardResult,
    SweepPlan,
    execute_shards,
    run_shard,
    run_sweep,
)
from .jobs import REPRO_JOBS_ENV, resolve_jobs
from .retry import ShardAttempt, ShardReport, SweepOutcome, backoff_delay
from .sanitize import (
    REPRO_SANITIZE_ENV,
    CacheSanitizer,
    SanitizerViolation,
    read_journal,
    sanitize_enabled,
)

__all__ = [
    "REPRO_CACHE_DIR_ENV",
    "REPRO_JOBS_ENV",
    "REPRO_SANITIZE_ENV",
    "CacheSanitizer",
    "SanitizerViolation",
    "read_journal",
    "sanitize_enabled",
    "CacheStats",
    "PlacedDesignCache",
    "PlacedKey",
    "Shard",
    "ShardAttempt",
    "ShardReport",
    "ShardResult",
    "SweepOutcome",
    "SweepPlan",
    "backoff_delay",
    "execute_shards",
    "get_default_cache",
    "multiplier_netlist",
    "resolve_jobs",
    "run_shard",
    "run_sweep",
    "set_default_cache",
]
