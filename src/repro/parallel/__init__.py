"""Performance layer: pluggable sweep executors and the placed-design cache.

Coordinated pieces (see ``docs/performance.md`` and ``docs/distributed.md``):

* :func:`resolve_jobs` / ``REPRO_JOBS`` — one worker-count knob shared by
  the library, the CLIs and the benchmarks (default 1: serial);
* :class:`PlacedDesignCache` — memory + disk memoisation of
  :class:`~repro.synthesis.flow.PlacedDesign` keyed by device identity,
  geometry, anchor and seed; the disk tier is a checksummed
  content-addressed store any number of processes (or hosts sharing the
  directory) can use concurrently;
* :mod:`repro.parallel.engine` — deterministic ``(location, chunk)``
  sharding of characterisation sweeps, bit-identical to the serial path
  at any worker count and executor topology;
* :mod:`repro.parallel.executors` — the pluggable :class:`ShardExecutor`
  interface behind :func:`run_sweep` (``pool`` / ``serial`` /
  ``file-queue``, selectable via ``REPRO_EXECUTOR`` or ``--executor``);
* :mod:`repro.parallel.spool` + :mod:`repro.parallel.worker` — the
  file-queue wire: atomic-rename shard leases in a spool directory and
  the stateless ``repro worker`` CLI that drains them;
* :mod:`repro.parallel.retry` — the resilience layer's bookkeeping:
  per-shard attempt histories, quarantine dispositions and the typed
  :class:`SweepOutcome` returned by :func:`run_sweep` (see
  ``docs/resilience.md``);
* :mod:`repro.parallel.sanitize` — the ``REPRO_SANITIZE=1`` runtime
  cache-race detector guarding the shared disk tier (see
  ``docs/static_analysis.md``).
"""

from .cache import (
    REPRO_CACHE_DIR_ENV,
    CacheStats,
    PlacedDesignCache,
    PlacedKey,
    get_default_cache,
    multiplier_netlist,
    set_default_cache,
)
from .engine import (
    Shard,
    ShardResult,
    SweepPlan,
    execute_shards,
    run_shard,
    run_sweep,
)
from .executors import (
    EXECUTOR_CATALOG,
    EXECUTOR_NAMES,
    REPRO_EXECUTOR_ENV,
    ExecutorInfo,
    FileQueueExecutor,
    PoolExecutor,
    SerialExecutor,
    ShardExecutor,
    SweepContext,
    executors_table_markdown,
    resolve_executor,
)
from .jobs import REPRO_JOBS_ENV, resolve_jobs
from .retry import ShardAttempt, ShardReport, SweepOutcome, backoff_delay
from .sanitize import (
    REPRO_SANITIZE_ENV,
    CacheSanitizer,
    SanitizerViolation,
    read_journal,
    sanitize_enabled,
)
from .spool import WorkerOutcome
from .worker import drain_spool, worker_main

__all__ = [
    "EXECUTOR_CATALOG",
    "EXECUTOR_NAMES",
    "REPRO_CACHE_DIR_ENV",
    "REPRO_EXECUTOR_ENV",
    "REPRO_JOBS_ENV",
    "REPRO_SANITIZE_ENV",
    "CacheSanitizer",
    "ExecutorInfo",
    "FileQueueExecutor",
    "PoolExecutor",
    "SanitizerViolation",
    "SerialExecutor",
    "ShardExecutor",
    "SweepContext",
    "WorkerOutcome",
    "read_journal",
    "sanitize_enabled",
    "CacheStats",
    "PlacedDesignCache",
    "PlacedKey",
    "Shard",
    "ShardAttempt",
    "ShardReport",
    "ShardResult",
    "SweepOutcome",
    "SweepPlan",
    "backoff_delay",
    "drain_spool",
    "execute_shards",
    "executors_table_markdown",
    "get_default_cache",
    "multiplier_netlist",
    "resolve_executor",
    "resolve_jobs",
    "run_shard",
    "run_sweep",
    "set_default_cache",
    "worker_main",
]
