"""Process-pool execution of characterisation sweeps.

The sweep of :func:`repro.characterization.harness.characterize_multiplier`
is embarrassingly parallel across ``(location, multiplicand-chunk)``
shards: each shard owns its stimulus stream (drawn up front by the parent
from the per-location :class:`~repro.rng.SeedTree` stream, preserving the
serial draw order) and derives its capture-jitter generators from explicit
seed paths.  Shard results are therefore bit-identical whether a shard
runs inline (``jobs=1``) or in any worker of a ``ProcessPoolExecutor`` —
the worker count only changes wall-clock, never numbers.

Workers re-place the (cheap) characterisation circuit through the
placed-design cache; handing the pool a disk-backed cache lets all
workers share one synthesis result per location.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

import numpy as np

from ..fabric.device import FPGADevice
from ..netlist.core import bits_from_ints
from ..rng import SeedTree
from ..timing.simulator import simulate_transitions
from .cache import PlacedDesignCache, get_default_cache

__all__ = ["Shard", "ShardResult", "SweepPlan", "execute_shards", "run_shard"]


@dataclass(frozen=True)
class SweepPlan:
    """Shard-invariant description of one characterisation sweep.

    Attributes
    ----------
    freqs_mhz:
        Requested capture frequencies after PLL dedupe (these name the
        capture seed paths, exactly as the serial sweep always has).
    achieved_mhz:
        The matching PLL-achieved frequencies (synthesised once by the
        planner, not per shard).
    """

    w_data: int
    w_coeff: int
    seed: int
    freqs_mhz: tuple[float, ...]
    achieved_mhz: tuple[float, ...]
    n_samples: int
    max_stream_depth: int


@dataclass(frozen=True)
class Shard:
    """One ``(location, multiplicand-chunk)`` unit of sweep work."""

    li: int
    location: tuple[int, int]
    start: int
    multiplicands: np.ndarray  # (C,) int64
    stimulus: np.ndarray  # (C * (n_samples + 1),) int64


@dataclass(frozen=True)
class ShardResult:
    """Per-chunk statistic blocks, ``(C, F)`` each."""

    li: int
    start: int
    variance: np.ndarray
    mean: np.ndarray
    error_rate: np.ndarray


def _segment_statistics(
    errors: np.ndarray, n_segments: int, seg_len: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-segment variance/mean/rate over fused capture errors.

    ``errors`` is ``(F, n_tr)`` int64 with ``n_tr = n_segments*seg_len - 1``;
    each segment's first transition after a boundary (the artificial
    multiplicand switch) is masked out, leaving exactly ``seg_len - 1``
    valid capture cycles per segment.  One :func:`np.add.reduceat` pass per
    statistic replaces the per-frequency × per-segment Python loop.

    Returns ``(variance, mean, rate)`` of shape ``(C, F)``.
    """
    n_tr = errors.shape[1]
    n_valid = seg_len - 1
    valid = np.ones(n_tr, dtype=bool)
    valid[np.arange(1, n_segments) * seg_len - 1] = False
    starts = np.arange(n_segments) * seg_len
    seg_of_transition = np.arange(n_tr) // seg_len

    masked = np.where(valid[None, :], errors, 0)
    sums = np.add.reduceat(masked, starts, axis=1)  # exact: int64 all the way
    mean = sums / n_valid
    dev = np.where(valid[None, :], errors - mean[:, seg_of_transition], 0.0)
    variance = np.add.reduceat(dev * dev, starts, axis=1) / n_valid
    wrong = ((errors != 0) & valid[None, :]).astype(np.int64)
    rate = np.add.reduceat(wrong, starts, axis=1) / n_valid
    return variance.T, mean.T, rate.T


def run_shard(
    device: FPGADevice,
    plan: SweepPlan,
    shard: Shard,
    cache: PlacedDesignCache | None = None,
) -> ShardResult:
    """Execute one shard: place (via cache), simulate once, capture batch.

    Deterministic in ``(device identity, plan, shard)`` — all randomness
    comes from the pre-drawn stimulus and the explicit capture seed paths.
    """
    from ..characterization.circuit import CharacterizationCircuit

    seg_len = plan.n_samples + 1
    chunk = shard.multiplicands
    circuit = CharacterizationCircuit(
        device,
        plan.w_data,
        plan.w_coeff,
        anchor=shard.location,
        seed=plan.seed + shard.li,
        max_stream_depth=plan.max_stream_depth,
        cache=cache,
    )
    inputs = {
        "a": bits_from_ints(shard.stimulus, plan.w_data),
        "b": bits_from_ints(np.repeat(chunk, seg_len), plan.w_coeff),
    }
    timing = simulate_transitions(
        circuit.placed.netlist,
        inputs,
        circuit.placed.node_delay,
        circuit.placed.edge_delay,
    )
    tree = SeedTree(plan.seed).child(
        "characterization", f"{plan.w_data}x{plan.w_coeff}"
    )
    rngs = [
        tree.rng("capture", str(shard.location), f"{f}", str(shard.start))
        for f in plan.freqs_mhz
    ]
    batch = circuit.capture_batch(timing, plan.achieved_mhz, rngs)
    variance, mean, rate = _segment_statistics(
        batch.errors(), chunk.shape[0], seg_len
    )
    return ShardResult(
        li=shard.li, start=shard.start, variance=variance, mean=mean, error_rate=rate
    )


# ----------------------------------------------------------------------
# Pool plumbing.  Workers hold the sweep-invariant state in module globals
# (set once by the pool initializer) so each dispatched shard only ships
# its own stimulus and multiplicands.
_worker_device: FPGADevice | None = None
_worker_plan: SweepPlan | None = None
_worker_cache: PlacedDesignCache | None = None


def _init_worker(
    device: FPGADevice, plan: SweepPlan, cache_directory: str | None
) -> None:
    global _worker_device, _worker_plan, _worker_cache
    _worker_device = device
    _worker_plan = plan
    _worker_cache = PlacedDesignCache(cache_directory)


def _run_shard_in_worker(shard: Shard) -> ShardResult:
    assert _worker_device is not None and _worker_plan is not None
    return run_shard(_worker_device, _worker_plan, shard, _worker_cache)


def execute_shards(
    device: FPGADevice,
    plan: SweepPlan,
    shards: list[Shard],
    jobs: int = 1,
    cache: PlacedDesignCache | None = None,
) -> list[ShardResult]:
    """Run all shards, inline (``jobs=1``) or over a process pool.

    The result list is ordered like ``shards`` regardless of completion
    order, and every entry is bit-identical across worker counts.
    """
    if cache is None:
        cache = get_default_cache()
    if jobs <= 1 or len(shards) <= 1:
        return [run_shard(device, plan, shard, cache) for shard in shards]
    directory = str(cache.directory) if cache.directory is not None else None
    workers = min(jobs, len(shards))
    with ProcessPoolExecutor(
        max_workers=workers,
        initializer=_init_worker,
        initargs=(device, plan, directory),
    ) as pool:
        chunksize = max(1, len(shards) // (4 * workers))
        return list(pool.map(_run_shard_in_worker, shards, chunksize=chunksize))
