"""Process-pool execution of characterisation sweeps.

The sweep of :func:`repro.characterization.harness.characterize_multiplier`
is embarrassingly parallel across ``(location, multiplicand-chunk)``
shards: each shard owns its stimulus stream (drawn up front by the parent
from the per-location :class:`~repro.rng.SeedTree` stream, preserving the
serial draw order) and derives its capture-jitter generators from explicit
seed paths.  Shard results are therefore bit-identical whether a shard
runs inline (``jobs=1``), in any worker of a ``ProcessPoolExecutor``, or
in a separately-spawned file-queue worker on another host — the executor
topology only changes wall-clock, never numbers.  The first-attempt pass
is pluggable through :mod:`repro.parallel.executors`; this module owns
the retry loop and the pool worker plumbing.

Workers re-place the (cheap) characterisation circuit through the
placed-design cache; handing workers a disk-backed cache lets all of
them share one synthesis result per location.
"""

from __future__ import annotations

import time
from concurrent.futures import BrokenExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..config import ResilienceSettings, get_resilience_settings
from ..fabric.device import FPGADevice
from ..obs import runtime as obs
from ..faults import FaultInjector, FaultPlan
from ..netlist.core import EvalScratch, bits_from_ints
from ..rng import SeedTree
from ..timing.simulator import simulate_transitions
from .cache import PlacedDesignCache, get_default_cache
from .retry import (
    ATTEMPT_ERROR,
    ATTEMPT_INVALID,
    ATTEMPT_OK,
    ATTEMPT_TIMEOUT,
    DISPOSITION_COMPLETED,
    DISPOSITION_QUARANTINED,
    DISPOSITION_RECOVERED,
    ShardAttempt,
    ShardReport,
    SweepOutcome,
    backoff_delay,
)

if TYPE_CHECKING:  # circularity guard: executors imports this module eagerly
    from .executors import ShardExecutor

__all__ = [
    "Shard",
    "ShardResult",
    "SweepPlan",
    "execute_shards",
    "run_shard",
    "run_sweep",
]


@dataclass(frozen=True)
class SweepPlan:
    """Shard-invariant description of one characterisation sweep.

    Attributes
    ----------
    freqs_mhz:
        Requested capture frequencies after PLL dedupe (these name the
        capture seed paths, exactly as the serial sweep always has).
    achieved_mhz:
        The matching PLL-achieved frequencies (synthesised once by the
        planner, not per shard).
    """

    w_data: int
    w_coeff: int
    seed: int
    freqs_mhz: tuple[float, ...]
    achieved_mhz: tuple[float, ...]
    n_samples: int
    max_stream_depth: int


@dataclass(frozen=True)
class Shard:
    """One ``(location, multiplicand-chunk)`` unit of sweep work."""

    li: int
    location: tuple[int, int]
    start: int
    multiplicands: np.ndarray  # (C,) int64
    stimulus: np.ndarray  # (C * (n_samples + 1),) int64


@dataclass(frozen=True)
class ShardResult:
    """Per-chunk statistic blocks, ``(C, F)`` each."""

    li: int
    start: int
    variance: np.ndarray
    mean: np.ndarray
    error_rate: np.ndarray


def _segment_statistics(
    errors: np.ndarray, n_segments: int, seg_len: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-segment variance/mean/rate over fused capture errors.

    ``errors`` is ``(F, n_tr)`` int64 with ``n_tr = n_segments*seg_len - 1``;
    each segment's first transition after a boundary (the artificial
    multiplicand switch) is masked out, leaving exactly ``seg_len - 1``
    valid capture cycles per segment.  One :func:`np.add.reduceat` pass per
    statistic replaces the per-frequency × per-segment Python loop.

    Returns ``(variance, mean, rate)`` of shape ``(C, F)``.
    """
    n_tr = errors.shape[1]
    n_valid = seg_len - 1
    valid = np.ones(n_tr, dtype=bool)
    valid[np.arange(1, n_segments) * seg_len - 1] = False
    starts = np.arange(n_segments) * seg_len
    seg_of_transition = np.arange(n_tr) // seg_len

    masked = np.where(valid[None, :], errors, 0)
    sums = np.add.reduceat(masked, starts, axis=1)  # exact: int64 all the way
    mean = sums / n_valid
    dev = np.where(valid[None, :], errors - mean[:, seg_of_transition], 0.0)
    variance = np.add.reduceat(dev * dev, starts, axis=1) / n_valid
    wrong = ((errors != 0) & valid[None, :]).astype(np.int64)
    rate = np.add.reduceat(wrong, starts, axis=1) / n_valid
    return variance.T, mean.T, rate.T


def run_shard(
    device: FPGADevice,
    plan: SweepPlan,
    shard: Shard,
    cache: PlacedDesignCache | None = None,
    injector: FaultInjector | None = None,
    attempt: int = 0,
    scratch: EvalScratch | None = None,
) -> ShardResult:
    """Execute one shard: place (via cache), simulate once, capture batch.

    Deterministic in ``(device identity, plan, shard)`` — all randomness
    comes from the pre-drawn stimulus and the explicit capture seed paths.
    In particular the result does not depend on ``attempt``: a retried
    shard reproduces the first attempt bit for bit, which is what makes
    the resilience layer's recovery invisible in the numbers.

    ``injector``/``attempt`` arm a chaos plan for this attempt (see
    :mod:`repro.faults`); production sweeps leave them at their defaults.
    ``scratch`` reuses simulation temporaries across same-shape shards
    (one pool per worker / per inline loop) without affecting results.
    """
    from ..characterization.circuit import CharacterizationCircuit

    if injector is not None:
        injector.fire_pre(device, plan, shard, attempt, cache)
    seg_len = plan.n_samples + 1
    chunk = shard.multiplicands
    circuit = CharacterizationCircuit(
        device,
        plan.w_data,
        plan.w_coeff,
        anchor=shard.location,
        seed=plan.seed + shard.li,
        max_stream_depth=plan.max_stream_depth,
        cache=cache,
    )
    inputs = {
        "a": bits_from_ints(shard.stimulus, plan.w_data),
        "b": bits_from_ints(np.repeat(chunk, seg_len), plan.w_coeff),
    }
    timing = simulate_transitions(
        circuit.placed.netlist,
        inputs,
        circuit.placed.node_delay,
        circuit.placed.edge_delay,
        scratch=scratch,
    )
    tree = SeedTree(plan.seed).child(
        "characterization", f"{plan.w_data}x{plan.w_coeff}"
    )
    rngs = [
        tree.rng("capture", str(shard.location), f"{f}", str(shard.start))
        for f in plan.freqs_mhz
    ]
    do_metrics = obs.metrics_enabled()
    t_capture = time.perf_counter() if do_metrics else 0.0
    batch = circuit.capture_batch(timing, plan.achieved_mhz, rngs)
    if do_metrics:
        dt = time.perf_counter() - t_capture
        if dt > 0.0:
            n_transitions = shard.stimulus.shape[0] - 1
            obs.observe(
                "capture.samples_per_second",
                n_transitions * len(plan.freqs_mhz) / dt,
            )
    variance, mean, rate = _segment_statistics(
        batch.errors(), chunk.shape[0], seg_len
    )
    result = ShardResult(
        li=shard.li, start=shard.start, variance=variance, mean=mean, error_rate=rate
    )
    if injector is not None:
        result = injector.mutate_result(result, shard, attempt)
    return result


# ----------------------------------------------------------------------
# Pool plumbing.  Workers hold the sweep-invariant state in module globals
# (set once by the pool initializer) so each dispatched shard only ships
# its own stimulus and multiplicands.
_worker_device: FPGADevice | None = None
_worker_plan: SweepPlan | None = None
_worker_cache: PlacedDesignCache | None = None
_worker_injector: FaultInjector | None = None
_worker_scratch: EvalScratch | None = None


def _init_worker(
    device: FPGADevice,
    plan: SweepPlan,
    cache_directory: str | None,
    faults: FaultPlan | None = None,
) -> None:
    global _worker_device, _worker_plan, _worker_cache, _worker_injector
    global _worker_scratch
    _worker_device = device
    _worker_plan = plan
    _worker_cache = PlacedDesignCache(cache_directory)
    _worker_injector = (
        FaultInjector(faults) if faults is not None and not faults.is_empty else None
    )
    # Per-worker-process simulation buffer pool: shards of one sweep share
    # shapes, so the pool amortises every allocation after the first shard.
    # Results are copied out of scratch space before returning, so reuse
    # cannot leak across shards.
    _worker_scratch = EvalScratch()


def _run_shard_in_worker(shard: Shard, attempt: int = 0) -> ShardResult:
    assert _worker_device is not None and _worker_plan is not None
    return run_shard(
        _worker_device,
        _worker_plan,
        shard,
        _worker_cache,
        injector=_worker_injector,
        attempt=attempt,
        scratch=_worker_scratch,
    )


def _validate_result(plan: SweepPlan, shard: Shard, result: object) -> str | None:
    """Sanity-check a shard result; returns a problem description or None.

    Guards against corrupted returns (chaos ``corrupt`` faults, but also
    any real serialisation damage on the pool path): wrong identity,
    wrong block shapes, or non-finite statistics are all rejected so the
    retry loop re-runs the shard instead of polluting the grids.
    """
    if not isinstance(result, ShardResult):
        return f"not a ShardResult: {type(result).__name__}"
    if result.li != shard.li or result.start != shard.start:
        return (
            f"identity mismatch: got (li={result.li}, start={result.start}), "
            f"expected (li={shard.li}, start={shard.start})"
        )
    expected = (shard.multiplicands.shape[0], len(plan.freqs_mhz))
    for name in ("variance", "mean", "error_rate"):
        block = getattr(result, name)
        if not isinstance(block, np.ndarray) or block.shape != expected:
            return f"{name} block has shape {getattr(block, 'shape', None)}, expected {expected}"
        if not np.all(np.isfinite(block)):
            return f"{name} block contains non-finite values"
    return None


class _SweepState:
    """Mutable bookkeeping shared by the executor pass and the inline loop."""

    def __init__(self, n: int) -> None:
        self.results: list[ShardResult | None] = [None] * n
        self.attempts: list[list[ShardAttempt]] = [[] for _ in range(n)]
        self.fallback_inline = False
        self.pool_broken = False

    def record_at(self, i: int, outcome: str, latency_s: float,
                  detail: str = "") -> None:
        """Record one attempt with an externally-measured latency.

        Executors whose attempts ran elsewhere (file-queue workers report
        their own latency in the outcome sidecar) land here directly; the
        in-process paths go through :meth:`record`.
        """
        obs.observe("sweep.shard_seconds", latency_s)
        self.attempts[i].append(
            ShardAttempt(
                attempt=len(self.attempts[i]),
                outcome=outcome,
                latency_s=latency_s,
                detail=detail,
            )
        )

    def record(self, i: int, outcome: str, t0: float, detail: str = "") -> None:
        self.record_at(i, outcome, time.perf_counter() - t0, detail)

    def accept_at(self, plan: SweepPlan, shards: list[Shard], i: int,
                  result: object, latency_s: float) -> None:
        """Validate and (if sound) keep a result, recording its attempt."""
        problem = _validate_result(plan, shards[i], result)
        if problem is None:
            self.results[i] = result  # type: ignore[assignment]
            self.record_at(i, ATTEMPT_OK, latency_s)
        else:
            self.record_at(i, ATTEMPT_INVALID, latency_s, problem)

    def accept(self, plan: SweepPlan, shards: list[Shard], i: int,
               result: object, t0: float) -> None:
        self.accept_at(plan, shards, i, result, time.perf_counter() - t0)


def _harvest_future(state: _SweepState, plan: SweepPlan, shards: list[Shard],
                    i: int, future, timeout: float | None) -> str | None:
    """Wait for one pool future; returns 'timeout'/'broken' on pool-fatal
    conditions, None otherwise (success or a retryable shard failure)."""
    t0 = time.perf_counter()
    try:
        result = future.result(timeout=timeout)
    except FuturesTimeoutError:
        state.record(
            i, ATTEMPT_TIMEOUT, t0,
            f"no result within {timeout}s; abandoning pool",
        )
        return "timeout"
    except BrokenExecutor as exc:
        state.record(i, ATTEMPT_ERROR, t0, f"process pool broke: {exc}")
        return "broken"
    except Exception as exc:  # shard raised inside the worker
        state.record(i, ATTEMPT_ERROR, t0, f"{type(exc).__name__}: {exc}")
        return None
    state.accept(plan, shards, i, result, t0)
    return None


def run_sweep(
    device: FPGADevice,
    plan: SweepPlan,
    shards: list[Shard],
    jobs: int = 1,
    cache: PlacedDesignCache | None = None,
    resilience: ResilienceSettings | None = None,
    faults: FaultPlan | None = None,
    executor: "str | ShardExecutor | None" = None,
) -> SweepOutcome:
    """Run all shards with retries, timeouts and quarantine bookkeeping.

    The hardened execution path: every shard gets ``1 + max_retries``
    attempts; failures (exceptions, pool timeouts, invalid results) back
    off exponentially with deterministic jitter and re-run; shards that
    never succeed are quarantined and reported — not raised — in the
    returned :class:`~repro.parallel.retry.SweepOutcome`.

    Execution strategy: the first attempt of every shard is dispatched
    through the selected :class:`~repro.parallel.executors.ShardExecutor`
    (default: the in-process pool when ``jobs > 1``); retries run inline
    in the parent, where failure modes are directly observable.  If the
    executor degrades (broken pool, hung worker, vanished file-queue
    fleet), every unfinished shard continues inline — the sweep degrades
    to serial execution rather than aborting.  Results are bit-identical
    on every path, so none of this machinery can perturb the numbers.

    Parameters
    ----------
    resilience:
        Retry/timeout policy; ``None`` uses the process-wide
        :func:`repro.config.get_resilience_settings`.
    faults:
        Chaos plan to inject; ``None`` consults ``REPRO_FAULTS`` (an
        unset variable injects nothing).
    executor:
        First-attempt execution strategy — a catalogue name (``pool``,
        ``serial``, ``file-queue``), a constructed executor instance, or
        ``None`` to consult ``REPRO_EXECUTOR`` (default ``pool``).
    """
    from .executors import resolve_executor  # local: executors imports engine

    executor_obj = resolve_executor(executor)
    with obs.span(
        "sweep.run",
        shards=len(shards),
        jobs=jobs,
        w_data=plan.w_data,
        w_coeff=plan.w_coeff,
        executor=executor_obj.name,
    ) as sweep_span:
        outcome = _run_sweep_body(
            device, plan, shards, jobs=jobs, cache=cache,
            resilience=resilience, faults=faults, executor=executor_obj,
        )
        sweep_span.set(
            status=outcome.status,
            attempts=outcome.total_attempts,
            fallback_inline=outcome.fallback_inline,
        )
    _record_sweep_metrics(outcome)
    return outcome


def _record_sweep_metrics(outcome: SweepOutcome) -> None:
    """Derive the sweep counters from the finished outcome.

    Counted in the parent from the shard reports — not inside workers —
    so the deterministic ``sweep.shards.*`` values are identical at any
    ``jobs`` worker count on fault-free runs.
    """
    if not obs.metrics_enabled():
        return
    by_disposition = {
        DISPOSITION_COMPLETED: 0,
        DISPOSITION_RECOVERED: 0,
        DISPOSITION_QUARANTINED: 0,
    }
    for report in outcome.reports:
        by_disposition[report.disposition] += 1
    obs.counter_add("sweep.shards.total", len(outcome.reports))
    obs.counter_add("sweep.shards.completed", by_disposition[DISPOSITION_COMPLETED])
    obs.counter_add("sweep.shards.recovered", by_disposition[DISPOSITION_RECOVERED])
    obs.counter_add(
        "sweep.shards.quarantined", by_disposition[DISPOSITION_QUARANTINED]
    )
    obs.counter_add("sweep.shards.retried", len(outcome.retried))
    obs.counter_add("sweep.attempts.total", outcome.total_attempts)
    if outcome.fallback_inline:
        obs.counter_add("sweep.pool.fallbacks")
    if outcome.pool_broken:
        obs.counter_add("sweep.pool.broken")


def _run_sweep_body(
    device: FPGADevice,
    plan: SweepPlan,
    shards: list[Shard],
    jobs: int = 1,
    cache: PlacedDesignCache | None = None,
    resilience: ResilienceSettings | None = None,
    faults: FaultPlan | None = None,
    executor: "str | ShardExecutor | None" = None,
) -> SweepOutcome:
    from .executors import SweepContext, resolve_executor

    if cache is None:
        cache = get_default_cache()
    settings = resilience if resilience is not None else get_resilience_settings()
    if faults is None:
        faults = FaultPlan.from_env()
    injector = (
        FaultInjector(faults) if faults is not None and not faults.is_empty else None
    )
    n = len(shards)
    state = _SweepState(n)

    # ---- executor pass: first attempt of every shard ----------------
    # Any shard the executor leaves unrecorded (serial executor, pool at
    # jobs=1, abandoned pool, vanished worker fleet) simply gets its
    # first attempt in the inline loop below.
    if n > 0:
        resolve_executor(executor).run_pass(SweepContext(
            device=device, plan=plan, shards=shards, jobs=jobs, cache=cache,
            settings=settings, faults=faults, injector=injector, state=state,
        ))

    # ---- inline pass: first attempts not taken by the executor, then
    # ---- all retries ------------------------------------------------
    inline_scratch = EvalScratch()
    for i, shard in enumerate(shards):
        while state.results[i] is None and len(state.attempts[i]) <= settings.max_retries:
            attempt = len(state.attempts[i])
            if attempt > 0:
                time.sleep(
                    backoff_delay(
                        settings, plan.seed, attempt - 1,
                        str(shard.li), str(shard.start),
                    )
                )
            t0 = time.perf_counter()
            with obs.span(
                "sweep.shard", li=shard.li, start=shard.start, attempt=attempt
            ):
                try:
                    result = run_shard(
                        device, plan, shard, cache, injector=injector,
                        attempt=attempt, scratch=inline_scratch,
                    )
                except Exception as exc:
                    state.record(i, ATTEMPT_ERROR, t0, f"{type(exc).__name__}: {exc}")
                    continue
                state.accept(plan, shards, i, result, t0)

    # ---- dispositions ----------------------------------------------
    reports = []
    for i, shard in enumerate(shards):
        if state.results[i] is None:
            disposition = DISPOSITION_QUARANTINED
        elif len(state.attempts[i]) > 1:
            disposition = DISPOSITION_RECOVERED
        else:
            disposition = DISPOSITION_COMPLETED
        reports.append(
            ShardReport(
                index=i,
                li=shard.li,
                start=shard.start,
                attempts=tuple(state.attempts[i]),
                disposition=disposition,
            )
        )
    return SweepOutcome(
        results=tuple(state.results),
        reports=tuple(reports),
        fallback_inline=state.fallback_inline,
        pool_broken=state.pool_broken,
    )


def execute_shards(
    device: FPGADevice,
    plan: SweepPlan,
    shards: list[Shard],
    jobs: int = 1,
    cache: PlacedDesignCache | None = None,
    resilience: ResilienceSettings | None = None,
    faults: FaultPlan | None = None,
    executor: "str | ShardExecutor | None" = None,
) -> list[ShardResult]:
    """Run all shards, inline (``jobs=1``) or through a shard executor.

    The result list is ordered like ``shards`` regardless of completion
    order, and every entry is bit-identical across worker counts and
    executor topologies.  This is the strict wrapper over
    :func:`run_sweep`: any shard still quarantined after retries raises
    :class:`~repro.errors.SweepFailedError`.  Callers that can use
    partial results should call :func:`run_sweep` directly.
    """
    outcome = run_sweep(
        device, plan, shards, jobs=jobs, cache=cache,
        resilience=resilience, faults=faults, executor=executor,
    )
    return outcome.completed_results()
