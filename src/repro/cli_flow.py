"""Shell workflow for the per-device flow: ``repro-flow``.

The paper's deployment story as shell steps, with artefacts persisted in a
:class:`~repro.workspace.Workspace` so each stage can run in its own
session (or on another machine):

::

    repro-flow init      WS --serial 42 --scale 0.1
    repro-flow characterize WS --jobs 4
    repro-flow fit-area  WS
    repro-flow optimize  WS --beta 4.0 --name run1
    repro-flow evaluate  WS --name run1 --domain actual
    repro-flow status    WS

``--jobs`` (or ``REPRO_JOBS``) fans the characterisation sweeps out over
a process pool; results are identical at any worker count.  ``--executor``
(or ``REPRO_EXECUTOR``) picks the shard topology — ``pool``, ``serial``
or the spool-backed ``file-queue`` (see ``docs/distributed.md``) — and
never changes the archived bytes either.  Placed designs are cached
under ``WS/cache/placed`` and reused across stages and sessions.

Telemetry: the top-level ``--trace PATH`` / ``--metrics PATH`` flags (or
``REPRO_TRACE`` / ``REPRO_METRICS``) enable :mod:`repro.obs` for the
invoked stage — ``--trace`` writes both a JSONL sidecar and a Chrome
``trace_event`` file (and, unless ``--metrics`` names its own path, a
metrics snapshot next to them).  Telemetry never changes the numbers;
see ``docs/observability.md``.
"""

from __future__ import annotations

import argparse
import os
import sys

from dataclasses import replace

from .circuits.domains import Domain
from .config import (
    KERNEL_MODES,
    REPRO_KERNEL_ENV,
    TableISettings,
    get_resilience_settings,
    set_kernel_mode,
)
from .errors import ConfigError, SweepFailedError
from .eval.report import render_table
from .fabric.device import make_device
from .obs import runtime as obs
from .parallel.executors import EXECUTOR_NAMES
from .stages import (
    characterize_workspace,
    evaluate_workspace,
    fit_area_workspace,
    optimize_workspace,
)
from .workspace import Workspace

__all__ = ["export_telemetry", "main", "resolve_telemetry_paths"]


def _add_jobs_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes (default: $REPRO_JOBS or 1; must be >= 1)",
    )


def _cmd_init(args: argparse.Namespace) -> int:
    ws = Workspace(args.workspace)
    settings = TableISettings().scaled(args.scale)
    device = make_device(args.serial)
    ws.initialize(device, settings, seed=args.serial)
    print(f"initialised workspace {ws.root} for device serial {args.serial} "
          f"({settings.n_characterization} characterisation cases/cell)")
    return 0


def _resilience_from_args(args: argparse.Namespace):
    """The active resilience policy with any CLI overrides applied.

    Flags layer on top of the process-wide settings (which already folded
    in ``REPRO_SHARD_TIMEOUT`` / ``REPRO_MAX_RETRIES`` /
    ``REPRO_ALLOW_DEGRADED``), so a flag always wins over its env var.
    """
    settings = get_resilience_settings()
    overrides = {}
    if getattr(args, "shard_timeout", None) is not None:
        overrides["shard_timeout_s"] = args.shard_timeout
    if getattr(args, "max_retries", None) is not None:
        overrides["max_retries"] = args.max_retries
    if getattr(args, "allow_degraded", False):
        overrides["allow_degraded"] = True
    return replace(settings, **overrides) if overrides else settings


def _print_characterize_progress(event: dict) -> None:
    """Render stage progress events exactly as the flow CLI always has."""
    if event["event"] == "wordlength.start":
        print(f"characterising {event['w_data']}x{event['wl']} ...", flush=True)
    elif event["event"] == "wordlength.done":
        print(f"  -> {event['path']}")
        if event["status"] != "complete":
            quarantined = ", ".join(
                f"(li={li}, start={start})" for li, start in event["quarantined"]
            )
            print(
                f"  WARNING: sweep degraded — quarantined shards: {quarantined}; "
                f"the affected grid cells are NaN",
                flush=True,
            )


def _cmd_characterize(args: argparse.Namespace) -> int:
    ws = Workspace(args.workspace)
    characterize_workspace(
        ws,
        jobs=args.jobs,
        resilience=_resilience_from_args(args),
        progress=_print_characterize_progress,
        executor=args.executor,
    )
    return 0


def _cmd_fit_area(args: argparse.Namespace) -> int:
    ws = Workspace(args.workspace)
    model, path = fit_area_workspace(ws)
    print(f"fitted area model (relative sigma {model.residual_sigma:.1%}) -> {path}")
    return 0


def _cmd_optimize(args: argparse.Namespace) -> int:
    ws = Workspace(args.workspace)
    result, path = optimize_workspace(ws, args.name, args.beta, jobs=args.jobs)
    print(f"Algorithm 1 produced {len(result.designs)} designs "
          f"(beta={args.beta}) -> {path}")
    for d in sorted(result.designs, key=lambda d: d.area_le or 0):
        print(f"  {d.describe()} T={d.metadata['objective_t']:.3e}")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    ws = Workspace(args.workspace)
    domain = Domain(args.domain)
    rows = evaluate_workspace(ws, args.name, domain, jobs=args.jobs)
    print(render_table(
        ["wordlengths", "area LE", f"{domain.value} MSE"],
        [(str(tuple(r["wordlengths"])), f"{r['area_le']:.0f}", r["mse"]) for r in rows],
        title=f"design set {args.name!r} @ {ws.settings().clock_frequency_mhz:.0f} MHz",
    ))
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    ws = Workspace(args.workspace)
    meta = ws.device().report()
    print(f"workspace: {ws.root}")
    print(f"device: {meta['family']} serial {meta['serial']}")
    wls = ws.characterized_wordlengths()
    print(f"characterised word-lengths: {wls or 'none'}")
    health = ws.sweep_health()
    degraded = {wl: h for wl, h in health.items() if h["status"] != "complete"}
    if degraded:
        print("DEGRADED characterisation data:")
        for wl, h in sorted(degraded.items()):
            cells = ", ".join(
                f"(li={li}, start={start})" for li, start in h["quarantined"]
            )
            print(f"  wl{wl:02d}: {h['n_quarantined']} shard(s) quarantined "
                  f"[{cells}] — affected grid cells are NaN")
    print(f"area model: {'fitted' if ws.area_model_path.exists() else 'missing'}")
    print(f"design sets: {ws.design_sets() or 'none'}")
    stats = ws.placed_cache().stats()
    print(f"placed-design cache: {stats.disk_entries} entries, "
          f"{stats.disk_bytes} bytes ({ws.cache_dir})")
    return 0


def resolve_telemetry_paths(
    trace: str | None, metrics: str | None
) -> tuple[str | None, str | None]:
    """Final (trace_base, metrics_path): flags first, then env vars.

    A trace request without a metrics path still snapshots metrics, next
    to the trace files (``<base>.metrics.json``) — a trace without its
    counters is half a story.
    """
    env_trace, env_metrics = obs.tracing_paths_from_env()
    trace = trace or env_trace
    metrics = metrics or env_metrics
    if trace and not metrics:
        metrics = str(obs.default_metrics_path(trace))
    return trace, metrics


def export_telemetry(trace: str | None, metrics: str | None) -> None:
    """Write whatever telemetry was requested; report the paths on stderr."""
    if trace:
        jsonl_path, chrome_path = obs.export_trace_files(trace)
        print(
            f"trace written: {jsonl_path} (JSONL), {chrome_path} (chrome://tracing)",
            file=sys.stderr,
        )
    if metrics:
        obs.snapshot_metrics(metrics)
        print(f"metrics written: {metrics}", file=sys.stderr)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-flow",
        description="Per-device optimisation flow with persistent artefacts.",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="trace the run: writes PATH.jsonl and PATH.json (Chrome "
        "trace_event) plus a metrics snapshot (default: $REPRO_TRACE)",
    )
    parser.add_argument(
        "--metrics",
        default=None,
        metavar="PATH",
        help="write a metrics snapshot of the run to PATH "
        "(default: $REPRO_METRICS)",
    )
    parser.add_argument(
        "--kernel",
        choices=sorted(KERNEL_MODES),
        default=None,
        help="netlist evaluation kernel: bit-sliced 'packed' or the "
        "interpreted golden reference (default: $REPRO_KERNEL or packed; "
        "results are bit-identical either way)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("init", help="create a workspace for one device")
    p.add_argument("workspace")
    p.add_argument("--serial", type=int, default=42)
    p.add_argument("--scale", type=float, default=0.05,
                   help="fraction of Table I's sample counts")
    p.set_defaults(fn=_cmd_init)

    p = sub.add_parser("characterize", help="run the multiplier characterisation")
    p.add_argument("workspace")
    _add_jobs_argument(p)
    p.add_argument(
        "--shard-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-shard timeout on the pool path "
             "(default: $REPRO_SHARD_TIMEOUT or none)",
    )
    p.add_argument(
        "--max-retries",
        type=int,
        default=None,
        metavar="N",
        help="inline retries per failing shard "
             "(default: $REPRO_MAX_RETRIES or 2)",
    )
    p.add_argument(
        "--allow-degraded",
        action="store_true",
        help="accept sweeps with quarantined shards (NaN cells) instead "
             "of failing (default: $REPRO_ALLOW_DEGRADED)",
    )
    p.add_argument(
        "--executor",
        choices=sorted(EXECUTOR_NAMES),
        default=None,
        help="shard execution topology "
             "(default: $REPRO_EXECUTOR or pool; see docs/distributed.md)",
    )
    p.set_defaults(fn=_cmd_characterize)

    p = sub.add_parser("fit-area", help="fit the LE-cost model")
    p.add_argument("workspace")
    p.set_defaults(fn=_cmd_fit_area)

    p = sub.add_parser("optimize", help="run Algorithm 1")
    p.add_argument("workspace")
    p.add_argument("--beta", type=float, default=4.0)
    p.add_argument("--name", default="run1", help="design-set name")
    _add_jobs_argument(p)
    p.set_defaults(fn=_cmd_optimize)

    p = sub.add_parser("evaluate", help="evaluate a stored design set")
    p.add_argument("workspace")
    p.add_argument("--name", default="run1")
    p.add_argument("--domain", choices=[d.value for d in Domain], default="actual")
    _add_jobs_argument(p)
    p.set_defaults(fn=_cmd_evaluate)

    p = sub.add_parser("status", help="show workspace contents")
    p.add_argument("workspace")
    p.set_defaults(fn=_cmd_status)

    args = parser.parse_args(argv)
    if args.kernel is not None:
        # The env var makes worker processes (and any spawn-started
        # subprocess) agree with the parent's kernel choice.
        os.environ[REPRO_KERNEL_ENV] = args.kernel
        set_kernel_mode(args.kernel)
    trace_path, metrics_path = resolve_telemetry_paths(args.trace, args.metrics)
    if trace_path or metrics_path:
        obs.enable_observability(
            trace=bool(trace_path), metrics=bool(metrics_path)
        )
    try:
        return args.fn(args)
    except SweepFailedError as exc:
        print(f"error: {exc}", file=sys.stderr)
        print(
            "hint: raise --max-retries, or pass --allow-degraded to accept "
            "NaN cells for the quarantined shards",
            file=sys.stderr,
        )
        return 3
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if trace_path or metrics_path:
            # Export even on a failed stage: a trace of the failure is
            # exactly when you want the telemetry.
            export_telemetry(trace_path, metrics_path)
            obs.disable_observability()


if __name__ == "__main__":
    sys.exit(main())
