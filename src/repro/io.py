"""Persistence for designs and characterisation artefacts.

Characterisation results already persist via
:meth:`repro.characterization.results.CharacterizationResult.save`; this
module adds JSON round-tripping for :class:`LinearProjectionDesign` so a
design produced by one session (or one machine) can be evaluated by
another — the deployment story of a per-device optimisation flow.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .core.design import LinearProjectionDesign
from .errors import DesignError

__all__ = ["save_design", "load_design", "save_designs", "load_designs"]

_FORMAT_VERSION = 1


def design_to_dict(design: LinearProjectionDesign) -> dict:
    """JSON-serialisable form of a design."""
    return {
        "format_version": _FORMAT_VERSION,
        "values": design.values.tolist(),
        "magnitudes": design.magnitudes.tolist(),
        "signs": design.signs.tolist(),
        "wordlengths": list(design.wordlengths),
        "w_data": design.w_data,
        "freq_mhz": design.freq_mhz,
        "area_le": design.area_le,
        "method": design.method,
        "metadata": {
            k: (float(v) if isinstance(v, (np.floating, float, int)) else v)
            for k, v in design.metadata.items()
        },
    }


def design_from_dict(d: dict) -> LinearProjectionDesign:
    """Inverse of :func:`design_to_dict`."""
    version = d.get("format_version")
    if version != _FORMAT_VERSION:
        raise DesignError(f"unsupported design format version {version!r}")
    return LinearProjectionDesign(
        values=np.asarray(d["values"], dtype=float),
        magnitudes=np.asarray(d["magnitudes"], dtype=np.int64),
        signs=np.asarray(d["signs"], dtype=np.int64),
        wordlengths=tuple(int(w) for w in d["wordlengths"]),
        w_data=int(d["w_data"]),
        freq_mhz=float(d["freq_mhz"]),
        area_le=None if d.get("area_le") is None else float(d["area_le"]),
        method=str(d.get("method", "of")),
        metadata=dict(d.get("metadata", {})),
    )


def save_design(design: LinearProjectionDesign, path: str | Path) -> None:
    """Write one design to a JSON file."""
    Path(path).write_text(json.dumps(design_to_dict(design), indent=2))


def load_design(path: str | Path) -> LinearProjectionDesign:
    """Read one design from a JSON file."""
    p = Path(path)
    if not p.exists():
        raise DesignError(f"no design file at {p}")
    return design_from_dict(json.loads(p.read_text()))


def save_designs(designs: list[LinearProjectionDesign], path: str | Path) -> None:
    """Write a design list (e.g. Algorithm 1's Q outputs) to one file."""
    payload = {
        "format_version": _FORMAT_VERSION,
        "designs": [design_to_dict(d) for d in designs],
    }
    Path(path).write_text(json.dumps(payload, indent=2))


def load_designs(path: str | Path) -> list[LinearProjectionDesign]:
    """Inverse of :func:`save_designs`."""
    p = Path(path)
    if not p.exists():
        raise DesignError(f"no design file at {p}")
    payload = json.loads(p.read_text())
    if payload.get("format_version") != _FORMAT_VERSION:
        raise DesignError("unsupported designs-file format version")
    return [design_from_dict(d) for d in payload["designs"]]
