"""Deterministic fault plans for chaos-testing sharded sweeps.

The paper operates hardware past its guaranteed envelope and reasons
about the induced errors; this module does the same to the *software*
stack.  A :class:`FaultPlan` names, ahead of time, which shards of a
characterisation sweep misbehave, how, and on which attempts.  Plans are
pure data — seeded off the same integer seed space as the sweep's
:class:`~repro.rng.SeedTree` — so a chaos run is bit-reproducible: the
same plan fires the same faults at the same shards every time.

Arming
------
Programmatically (pass a plan to ``run_sweep``/``characterize_multiplier``)
or via the ``REPRO_FAULTS`` environment variable, which accepts inline
JSON or ``@/path/to/plan.json``::

    REPRO_FAULTS='{"seed": 7, "specs": [{"kind": "crash", "li": 0, "start": 0}]}'
    REPRO_FAULTS='[{"kind": "corrupt", "times": 1}]'        # bare spec list
    REPRO_FAULTS=@chaos/plan.json
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

from ..errors import FaultPlanError

__all__ = [
    "FAULT_KINDS",
    "WORKER_FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "REPRO_FAULTS_ENV",
]

#: Environment variable arming a process-wide fault plan.
REPRO_FAULTS_ENV = "REPRO_FAULTS"

#: The fault taxonomy (docs/resilience.md maps each to a hardware analogue).
FAULT_KINDS = (
    "crash", "hang", "corrupt", "poison-cache", "worker-exit", "lease-stall",
)

#: Kinds that only a file-queue worker process can act on (the in-process
#: paths have no lease to abandon or process of their own to kill); they
#: are inert — matched but never fired — everywhere else.
WORKER_FAULT_KINDS = ("worker-exit", "lease-stall")


@dataclass(frozen=True)
class FaultSpec:
    """One fault rule: what goes wrong, where, and how often.

    Attributes
    ----------
    kind:
        ``crash`` raises :class:`~repro.errors.InjectedFaultError` before
        the shard computes; ``hang`` sleeps ``hang_s`` seconds before
        computing (long enough to trip a pool timeout); ``corrupt``
        replaces the shard's statistic blocks with NaN after computing;
        ``poison-cache`` overwrites the shard's on-disk placed-design
        cache entry with garbage before placement.  Two kinds target the
        distributed fabric and fire only inside file-queue workers:
        ``worker-exit`` kills the worker process mid-shard (``os._exit``,
        the SIGKILL/host-loss drill) and ``lease-stall`` makes the worker
        abandon its claimed lease without executing it (the stuck-worker
        drill); both leave a stale lease for the coordinator to requeue.
        The lease generation plays the attempt role for ``times``/
        ``rate``, so a requeued shard stops misbehaving exactly like a
        retried one.
    li / start:
        Target shard coordinates (location index, multiplicand-chunk
        start); ``None`` matches any value — a spec with both ``None``
        fires on every shard.
    times:
        Fire on the first ``times`` attempts of each matching shard, so a
        retried shard eventually succeeds; ``-1`` means persistent (every
        attempt), which exercises quarantine.
    rate:
        Deterministic thinning in ``(0, 1]``: the fault fires only when a
        hash of ``(plan seed, spec, shard, attempt)`` falls below
        ``rate``.  1.0 (default) always fires on matching attempts.
    hang_s:
        Sleep duration of a ``hang`` fault.
    """

    kind: str
    li: int | None = None
    start: int | None = None
    times: int = 1
    rate: float = 1.0
    hang_s: float = 0.25

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.li is not None and self.li < 0:
            raise FaultPlanError(f"li must be >= 0 or None, got {self.li}")
        if self.start is not None and self.start < 0:
            raise FaultPlanError(f"start must be >= 0 or None, got {self.start}")
        if self.times == 0 or self.times < -1:
            raise FaultPlanError(
                f"times must be a positive attempt count or -1 (persistent), got {self.times}"
            )
        if not 0.0 < self.rate <= 1.0:
            raise FaultPlanError(f"rate must be in (0, 1], got {self.rate}")
        if self.hang_s <= 0:
            raise FaultPlanError(f"hang_s must be positive, got {self.hang_s}")

    @property
    def persistent(self) -> bool:
        """Does this spec fire on every attempt (quarantine material)?"""
        return self.times < 0

    def matches_shard(self, li: int, start: int) -> bool:
        """Does this spec target the shard at ``(li, start)`` (any attempt)?"""
        if self.li is not None and self.li != li:
            return False
        if self.start is not None and self.start != start:
            return False
        return True

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "li": self.li,
            "start": self.start,
            "times": self.times,
            "rate": self.rate,
            "hang_s": self.hang_s,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        if not isinstance(data, dict):
            raise FaultPlanError(f"fault spec must be an object, got {data!r}")
        unknown = set(data) - {"kind", "li", "start", "times", "rate", "hang_s"}
        if unknown:
            raise FaultPlanError(f"unknown fault-spec fields {sorted(unknown)}")
        if "kind" not in data:
            raise FaultPlanError("fault spec is missing 'kind'")
        return cls(**data)


@dataclass(frozen=True)
class FaultPlan:
    """An ordered set of :class:`FaultSpec` rules plus the chaos seed.

    The seed feeds the deterministic ``rate`` thinning and the retry
    backoff jitter; two runs of the same plan over the same sweep fire
    bit-identically.
    """

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        # Tolerate lists from JSON decoding without breaking frozen-ness.
        if not isinstance(self.specs, tuple):
            object.__setattr__(self, "specs", tuple(self.specs))

    @property
    def is_empty(self) -> bool:
        return not self.specs

    def persistent_specs(self) -> tuple[FaultSpec, ...]:
        return tuple(s for s in self.specs if s.persistent)

    def as_dict(self) -> dict:
        return {"seed": self.seed, "specs": [s.as_dict() for s in self.specs]}

    def describe(self) -> str:
        """Human-readable one-line-per-spec rendering."""
        if self.is_empty:
            return "empty fault plan (no specs)"
        lines = [f"fault plan: {len(self.specs)} spec(s), seed {self.seed}"]
        for i, s in enumerate(self.specs):
            where = (
                f"li={'*' if s.li is None else s.li}"
                f" start={'*' if s.start is None else s.start}"
            )
            when = "persistent" if s.persistent else f"first {s.times} attempt(s)"
            extra = f" rate={s.rate}" if s.rate < 1.0 else ""
            extra += f" hang_s={s.hang_s}" if s.kind == "hang" else ""
            lines.append(f"  [{i}] {s.kind:<12} {where:<18} {when}{extra}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, data: object) -> "FaultPlan":
        """Build a plan from decoded JSON: an object or a bare spec list."""
        if isinstance(data, list):
            data = {"specs": data}
        if not isinstance(data, dict):
            raise FaultPlanError(
                f"fault plan must be a JSON object or spec list, got {type(data).__name__}"
            )
        unknown = set(data) - {"seed", "specs"}
        if unknown:
            raise FaultPlanError(f"unknown fault-plan fields {sorted(unknown)}")
        specs = data.get("specs", [])
        if not isinstance(specs, (list, tuple)):
            raise FaultPlanError("'specs' must be a list")
        seed = data.get("seed", 0)
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise FaultPlanError(f"'seed' must be an integer, got {seed!r}")
        return cls(
            specs=tuple(FaultSpec.from_dict(s) for s in specs), seed=seed
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"fault plan is not valid JSON: {exc}") from None
        return cls.from_dict(data)

    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Parse a CLI/env value: inline JSON or ``@path`` to a JSON file."""
        spec = spec.strip()
        if not spec:
            return cls()
        if spec.startswith("@"):
            path = spec[1:]
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    spec = fh.read()
            except OSError as exc:
                raise FaultPlanError(f"cannot read fault plan {path!r}: {exc}") from None
        return cls.from_json(spec)

    @classmethod
    def from_env(cls, environ: dict | None = None) -> "FaultPlan | None":
        """The plan armed via ``REPRO_FAULTS``, or ``None`` when unset."""
        env = os.environ if environ is None else environ
        raw = env.get(REPRO_FAULTS_ENV)
        if raw is None or not raw.strip():
            return None
        return cls.from_spec(raw)
