"""Fault injection for the parallel characterisation engine.

The paper's premise is running hardware past its guaranteed envelope and
modelling the resulting errors; :mod:`repro.faults` applies the same
discipline to this software stack.  A deterministic
:class:`FaultPlan` — armed programmatically or via ``REPRO_FAULTS`` —
makes chosen sweep shards crash, hang, return corrupted statistics, or
hit poisoned cache entries, and the resilience layer in
:mod:`repro.parallel` must absorb it.  Because plans are seeded like the
sweep itself, every chaos run is bit-reproducible and a recovered sweep
is bit-identical to the fault-free one (asserted in ``tests/faults/``).

See ``docs/resilience.md`` for the fault taxonomy and the degraded-result
contract.
"""

from .injector import FaultInjector
from .plan import (
    FAULT_KINDS,
    REPRO_FAULTS_ENV,
    WORKER_FAULT_KINDS,
    FaultPlan,
    FaultSpec,
)

__all__ = [
    "FAULT_KINDS",
    "WORKER_FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "REPRO_FAULTS_ENV",
]
