"""Arming and firing of :class:`~repro.faults.plan.FaultPlan` rules.

The :class:`FaultInjector` is the only piece of the chaos machinery the
execution engine talks to.  It is deliberately stateless between calls:
every firing decision is a pure function of ``(plan, shard, attempt)``,
hashed through :func:`repro.rng.derive_seed`, so pool workers and the
inline path agree on what fires without any shared mutable state.

Injection points inside :func:`repro.parallel.engine.run_shard`:

* ``fire_pre`` — before placement: ``poison-cache`` (corrupt the shard's
  on-disk placed-design entry), then ``hang`` (sleep), then ``crash``
  (raise :class:`~repro.errors.InjectedFaultError`);
* ``mutate_result`` — after computation: ``corrupt`` replaces the
  statistic blocks with NaN, which the engine's result validation
  detects and treats as a failed attempt.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import TYPE_CHECKING

import numpy as np

from ..errors import InjectedFaultError
from ..rng import derive_seed
from .plan import FaultPlan, FaultSpec

if TYPE_CHECKING:  # circularity guard: parallel imports faults eagerly
    from ..fabric.device import FPGADevice
    from ..parallel.cache import PlacedDesignCache
    from ..parallel.engine import Shard, ShardResult, SweepPlan

__all__ = ["FaultInjector"]

#: Bytes written over a poisoned cache entry — short enough to also look
#: like a torn/truncated write to the loader.
_POISON_BYTES = b"repro-chaos-poisoned-entry"


class FaultInjector:
    """Fires the faults of one plan deterministically."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan

    # ------------------------------------------------------------------
    def _fires(self, spec: FaultSpec, li: int, start: int, attempt: int) -> bool:
        """Pure firing decision for one spec on one shard attempt."""
        if not spec.matches_shard(li, start):
            return False
        if not spec.persistent and attempt >= spec.times:
            return False
        if spec.rate < 1.0:
            u = derive_seed(
                self.plan.seed,
                "faults",
                spec.kind,
                str(spec.li),
                str(spec.start),
                str(li),
                str(start),
                str(attempt),
            ) / float(2**63)
            if u >= spec.rate:
                return False
        return True

    def active(self, li: int, start: int, attempt: int) -> tuple[FaultSpec, ...]:
        """All specs firing on this ``(shard, attempt)`` — for tests/CLI."""
        return tuple(
            s for s in self.plan.specs if self._fires(s, li, start, attempt)
        )

    def worker_action(self, shard: "Shard", attempt: int) -> str | None:
        """First firing worker-context kind, if any (file-queue only).

        ``worker-exit``/``lease-stall`` describe process-level mischief
        only a file-queue worker can perform, so the worker drain loop
        asks here before executing a lease; the in-process engine paths
        never consult this, leaving those kinds inert there.  ``attempt``
        is the lease generation — requeued shards stop misbehaving under
        ``times``-bounded specs exactly like retried ones.
        """
        from .plan import WORKER_FAULT_KINDS

        for spec in self.plan.specs:
            if spec.kind in WORKER_FAULT_KINDS and self._fires(
                spec, shard.li, shard.start, attempt
            ):
                return spec.kind
        return None

    # ------------------------------------------------------------------
    def _poison_cache_entry(
        self,
        device: "FPGADevice",
        plan: "SweepPlan",
        shard: "Shard",
        cache: "PlacedDesignCache | None",
    ) -> None:
        """Overwrite the shard's on-disk placed-design entry with garbage.

        Mirrors the key derivation of the characterisation circuit
        (anchor = shard location, seed = sweep seed + location index), so
        exactly this shard's placement is poisoned.  Memory-only caches
        and not-yet-written entries are left alone — there is nothing on
        disk to corrupt.
        """
        from ..parallel.cache import PlacedKey

        if cache is None or cache.directory is None:
            return
        key = PlacedKey.for_device(
            device, plan.w_data, plan.w_coeff, shard.location, plan.seed + shard.li
        )
        path = cache.directory / f"{key.digest()}.pkl"
        if path.exists():
            path.write_bytes(_POISON_BYTES)
        # The worker's in-memory tier may already hold the entry; evict it
        # so the poisoned disk entry is actually exercised.
        cache._memory.pop(key, None)

    def fire_pre(
        self,
        device: "FPGADevice",
        plan: "SweepPlan",
        shard: "Shard",
        attempt: int,
        cache: "PlacedDesignCache | None",
    ) -> None:
        """Fire the pre-computation faults for this shard attempt."""
        for spec in self.plan.specs:
            if spec.kind == "poison-cache" and self._fires(
                spec, shard.li, shard.start, attempt
            ):
                self._poison_cache_entry(device, plan, shard, cache)
        for spec in self.plan.specs:
            if spec.kind == "hang" and self._fires(
                spec, shard.li, shard.start, attempt
            ):
                time.sleep(spec.hang_s)
        for spec in self.plan.specs:
            if spec.kind == "crash" and self._fires(
                spec, shard.li, shard.start, attempt
            ):
                raise InjectedFaultError(
                    f"injected crash: shard (li={shard.li}, start={shard.start}) "
                    f"attempt {attempt}"
                )

    def mutate_result(
        self, result: "ShardResult", shard: "Shard", attempt: int
    ) -> "ShardResult":
        """Apply any active ``corrupt`` fault to a computed result."""
        for spec in self.plan.specs:
            if spec.kind == "corrupt" and self._fires(
                spec, shard.li, shard.start, attempt
            ):
                return replace(
                    result,
                    variance=np.full_like(result.variance, np.nan),
                    mean=np.full_like(result.mean, np.nan),
                    error_rate=np.full_like(result.error_rate, np.nan),
                )
        return result
