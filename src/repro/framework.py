"""The Optimisation Framework (OF) — the paper's Fig. 2 design flow, end to end.

``OptimizationFramework`` wires the whole pipeline together for a single
device:

1. :meth:`characterize` — run the multiplier characterisation for every
   coefficient word-length in the sweep and distil the error models;
2. :meth:`fit_area_model` — synthesise MAC blocks across word-lengths and
   locations and fit the LE-cost model;
3. :meth:`optimize` — run Algorithm 1 for a given beta on training data;
4. :meth:`klt_baselines` — the existing-methodology designs (KLT then
   quantise) for comparison;
5. :meth:`evaluate` — measure designs on test data in any of the three
   domains.

Everything is deterministic in ``(device.serial, seed)``.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from .characterization.harness import CharacterizationConfig, characterize_multiplier
from .characterization.results import CharacterizationResult
from .circuits.domains import Domain
from .circuits.executor import DomainEvaluation, evaluate_design, evaluate_domains
from .config import ResilienceSettings, TableISettings
from .core.design import DesignPoint, LinearProjectionDesign
from .core.klt import klt_reference_design
from .core.optimizer import OptimizationResult, OptimizerConfig, optimize_designs
from .errors import OptimizationError
from .fabric.device import FPGADevice
from .models.area_model import AreaModel, collect_area_samples, fit_area_model
from .models.error_model import ErrorModel, ErrorModelSet, build_error_model
from .obs import runtime as obs
from .parallel.cache import PlacedDesignCache
from .parallel.jobs import resolve_jobs

__all__ = ["OptimizationFramework", "default_frequency_grid"]


def _characterize_one_wordlength(
    device: FPGADevice,
    w_data: int,
    wl: int,
    config: CharacterizationConfig,
    seed: int,
    cache_directory: str | None,
    resilience: ResilienceSettings | None = None,
) -> CharacterizationResult:
    """Pool-friendly wrapper: one word-length's sweep, serial inside.

    Runs at module level so it pickles; the outer fan-out already claims
    the workers, so the inner sweep stays at ``jobs=1``.  The resilience
    policy ships explicitly — workers must not depend on the parent's
    process-wide settings.
    """
    cache = PlacedDesignCache(cache_directory) if cache_directory else None
    return characterize_multiplier(
        device, w_data, wl, config, seed=seed, jobs=1, cache=cache,
        resilience=resilience,
    )


def default_frequency_grid(target_mhz: float) -> tuple[float, ...]:
    """A characterisation frequency grid bracketing a target clock.

    Covers from well below the error onset to well above the target so the
    error model can answer queries across the whole over-clocking regime.
    """
    lo = max(40.0, target_mhz * 0.7)
    hi = target_mhz * 1.35
    step = max(10.0, (hi - lo) / 8)
    grid = [lo]
    while grid[-1] + step < hi:
        grid.append(grid[-1] + step)
    grid.append(hi)
    if not any(abs(g - target_mhz) < 1e-6 for g in grid):
        grid.append(target_mhz)
    return tuple(sorted(grid))


@dataclass
class OptimizationFramework:
    """End-to-end per-device optimisation flow (paper Fig. 2).

    Parameters
    ----------
    device:
        The target die.
    settings:
        Case-study settings; defaults to the paper's Table I.
    char_config:
        Characterisation sweep settings; ``None`` derives a default from
        ``settings`` (full multiplicand enumeration, Table I sample count,
        a frequency grid bracketing the target clock).
    seed:
        Root seed of the whole flow.
    jobs:
        Worker processes for the characterisation sweeps (``None``
        consults ``REPRO_JOBS``; 1 = serial).  Results are identical at
        any worker count.
    cache:
        Placed-design cache shared by characterisation and actual-domain
        evaluation; ``None`` uses the process-wide default.
    resilience:
        Retry/degradation policy for the characterisation sweeps;
        ``None`` uses the process-wide settings.  After
        :meth:`characterize`, :meth:`sweep_health` reports each
        word-length's sweep status so callers can tell complete from
        degraded data.
    """

    device: FPGADevice
    settings: TableISettings = field(default_factory=TableISettings)
    char_config: CharacterizationConfig | None = None
    seed: int = 0
    jobs: int | None = None
    cache: PlacedDesignCache | None = None
    resilience: ResilienceSettings | None = None
    _error_models: ErrorModelSet | None = field(default=None, repr=False)
    _area_model: AreaModel | None = field(default=None, repr=False)
    _sweep_outcomes: dict = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------
    def _characterization_config(self) -> CharacterizationConfig:
        if self.char_config is not None:
            return self.char_config
        return CharacterizationConfig(
            freqs_mhz=default_frequency_grid(self.settings.clock_frequency_mhz),
            n_samples=self.settings.n_characterization,
            multiplicands=None,  # full enumeration, as in the paper
            n_locations=2,
        )

    def characterize(self, verbose: bool = False) -> ErrorModelSet:
        """Characterise every word-length's multiplier geometry (cached).

        With ``jobs > 1`` the per-word-length sweeps fan out over a
        process pool (one word-length per worker — the sweeps are fully
        independent); the numbers are identical to the serial order.
        """
        if self._error_models is not None:
            return self._error_models
        cfg = self._characterization_config()
        wordlengths = list(self.settings.coeff_wordlengths)
        n_jobs = resolve_jobs(self.jobs)
        w_data = self.settings.input_wordlength
        with obs.span(
            "flow.characterize", wordlengths=len(wordlengths), jobs=n_jobs
        ), obs.profile_stage("characterize"):
            if n_jobs > 1 and len(wordlengths) > 1:
                cache_dir = (
                    str(self.cache.directory)
                    if self.cache is not None and self.cache.directory is not None
                    else None
                )
                with ProcessPoolExecutor(
                    max_workers=min(n_jobs, len(wordlengths))
                ) as pool:
                    results = list(
                        pool.map(
                            _characterize_one_wordlength,
                            [self.device] * len(wordlengths),
                            [w_data] * len(wordlengths),
                            wordlengths,
                            [cfg] * len(wordlengths),
                            [self.seed] * len(wordlengths),
                            [cache_dir] * len(wordlengths),
                            [self.resilience] * len(wordlengths),
                        )
                    )
            else:
                results = []
                for wl in wordlengths:
                    if verbose:
                        print(f"[characterize] {w_data}x{wl} ...")
                    results.append(
                        characterize_multiplier(
                            self.device,
                            w_data,
                            wl,
                            cfg,
                            seed=self.seed,
                            jobs=n_jobs,
                            cache=self.cache,
                            resilience=self.resilience,
                        )
                    )
            self._sweep_outcomes = {
                wl: result.outcome for wl, result in zip(wordlengths, results)
            }
            models: dict[int, ErrorModel] = {
                wl: build_error_model(result)
                for wl, result in zip(wordlengths, results)
            }
            self._error_models = ErrorModelSet(models)
        return self._error_models

    def sweep_health(self) -> dict[int, str]:
        """Per-word-length sweep status after :meth:`characterize`.

        ``{wl: 'complete' | 'degraded'}`` — failed sweeps never get here
        (they raise).  Word-lengths rehydrated from a workspace (no live
        outcome) report ``'complete'``: their archives were gated on the
        same policy when produced.
        """
        return {
            wl: (outcome.status if outcome is not None else "complete")
            for wl, outcome in self._sweep_outcomes.items()
        }

    def fit_area_model(self, n_runs: int = 6) -> AreaModel:
        """Fit the LE-cost model from synthesis runs (cached)."""
        if self._area_model is not None:
            return self._area_model
        with obs.span(
            "flow.fit_area_model", n_runs=n_runs
        ), obs.profile_stage("fit_area_model"):
            samples = collect_area_samples(
                self.device,
                self.settings.coeff_wordlengths,
                w_data=self.settings.input_wordlength,
                n_runs=n_runs,
                seed=self.seed,
            )
            # A narrow word-length sweep cannot support the default quadratic.
            degree = min(2, len(set(self.settings.coeff_wordlengths)) - 1)
            self._area_model = fit_area_model(samples, degree=max(1, degree))
        return self._area_model

    # ------------------------------------------------------------------
    def optimize(self, x_train: np.ndarray, beta: float | None = None) -> OptimizationResult:
        """Run Algorithm 1 on training data (characterises/fits if needed)."""
        betas = self.settings.betas
        b = beta if beta is not None else betas[0]
        config = OptimizerConfig(
            settings=self.settings,
            error_models=self.characterize(),
            area_model=self.fit_area_model(),
            beta=b,
        )
        return optimize_designs(x_train, config, seed=self.seed)

    def optimize_all_betas(self, x_train: np.ndarray) -> list[OptimizationResult]:
        """One Algorithm-1 run per configured beta (Table I: {4, 8})."""
        return [self.optimize(x_train, beta=b) for b in self.settings.betas]

    def klt_baselines(self, x_train: np.ndarray) -> list[LinearProjectionDesign]:
        """The existing-methodology designs: KLT quantised at each wl."""
        area = self.fit_area_model()
        designs = []
        for wl in self.settings.coeff_wordlengths:
            d = klt_reference_design(
                x_train,
                self.settings.k,
                wl,
                self.settings.input_wordlength,
                self.settings.clock_frequency_mhz,
                area_le=area.design_area(wl, self.settings.k),
            )
            designs.append(d)
        return designs

    # ------------------------------------------------------------------
    def evaluate(
        self,
        design: LinearProjectionDesign,
        x_test: np.ndarray,
        domain: Domain,
        anchor: tuple[int, int] = (0, 0),
    ) -> DomainEvaluation:
        """Evaluate one design in one domain on this framework's device."""
        with obs.span("flow.evaluate", domain=domain.value):
            return evaluate_design(
                design,
                x_test,
                domain,
                error_models=self.characterize(),
                device=self.device,
                anchor=anchor,
                seed=self.seed,
                cache=self.cache,
            )

    def evaluate_all_domains(
        self,
        design: LinearProjectionDesign,
        x_test: np.ndarray,
        anchor: tuple[int, int] = (0, 0),
    ) -> dict[Domain, DomainEvaluation]:
        """Predicted / simulated / actual evaluations (paper Fig. 10)."""
        return evaluate_domains(
            design,
            x_test,
            self.characterize(),
            self.device,
            anchor=anchor,
            seed=self.seed,
            cache=self.cache,
        )

    def design_points(
        self,
        designs: list[LinearProjectionDesign],
        x_test: np.ndarray,
        domain: Domain,
    ) -> list[DesignPoint]:
        """Evaluate many designs into plottable (area, MSE) points."""
        if not designs:
            raise OptimizationError("no designs to evaluate")
        points = []
        for d in designs:
            ev = self.evaluate(d, x_test, domain)
            points.append(
                DesignPoint(
                    design=d,
                    domain=domain.value,
                    mse=ev.mse,
                    area_le=ev.area_le,
                    freq_mhz=ev.freq_mhz,
                    extra=ev.extra,
                )
            )
        return points
