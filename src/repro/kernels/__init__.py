"""Bit-sliced kernel compiler for the LUT-DAG hot path.

This package turns a :class:`~repro.netlist.core.CompiledNetlist` into a
cached :class:`~repro.kernels.plan.ExecutionPlan`: every ≤4-input LUT
truth table is lowered once to a minimal boolean expression
(:mod:`~repro.kernels.lower`), node values are packed 64 samples per
``uint64`` word, and evaluation becomes a short sequence of whole-array
bitwise operations (:mod:`~repro.kernels.execute`).

The kernel is selected process-wide via
:func:`repro.config.get_kernel_mode` (``REPRO_KERNEL={packed,interp}``);
the interpreted path remains the golden reference and the packed kernel
is proven bit-identical to it by the test suite and the
``BENCH_compile`` contract.  See docs/performance.md, "The kernel
compiler".
"""

from .execute import evaluate_packed, evaluate_tile, pack_bits, stream_values, unpack_plane
from .lower import LoweredLUT, lower_tt
from .plan import (
    ExecutionPlan,
    clear_plan_cache,
    netlist_fingerprint,
    plan_cache_size,
    plan_for,
)

__all__ = [
    "ExecutionPlan",
    "LoweredLUT",
    "clear_plan_cache",
    "evaluate_packed",
    "evaluate_tile",
    "lower_tt",
    "netlist_fingerprint",
    "pack_bits",
    "plan_cache_size",
    "plan_for",
    "stream_values",
    "unpack_plane",
]
