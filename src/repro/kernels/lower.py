"""Truth-table lowering: each LUT becomes a minimal boolean expression.

The interpreted evaluator resolves every LUT with a per-sample
``take_along_axis`` gather into its 16-row table.  The bit-sliced kernel
instead evaluates 64 samples per ``uint64`` word, which requires each
truth table to be expressed as bitwise operations over the fanin words.
This module performs that lowering **once per distinct ``(arity, tt)``
pair** at plan-compile time:

1. the function is projected onto its true support (padded or vacuous
   fanins disappear — a BUF-of-anything becomes a copy);
2. constants, single literals and parities (XOR/XNOR chains) are
   recognised structurally — parity would otherwise explode into a
   worst-case sum of products;
3. everything else goes through a small Quine–McCluskey pass: prime
   implicants over at most 4 variables, essential implicants first,
   then a greedy deterministic cover.

Every lowered form is re-evaluated over all ``2**arity`` rows and
checked against the original table before it is accepted
(:func:`lower_tt` raises :class:`~repro.errors.KernelError` on any
mismatch), so a lowering bug cannot silently corrupt results — the
packed kernel is bit-identical to the table by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..errors import KernelError

__all__ = [
    "OP_AND",
    "OP_CONST",
    "OP_LITERAL",
    "OP_OR",
    "OP_SOP",
    "OP_XOR",
    "Literal",
    "LoweredLUT",
    "Term",
    "eval_lowered",
    "lower_tt",
]

#: Lowered-operation kinds (also the group keys of the execution plan).
OP_CONST = "const"  # constant 0/1
OP_LITERAL = "lit"  # one (possibly negated) fanin
OP_XOR = "xor"  # parity over >= 2 fanins, possibly inverted
OP_AND = "and"  # single product term over >= 2 literals
OP_OR = "or"  # single sum term over >= 2 literals
OP_SOP = "sop"  # OR of >= 2 product terms


@dataclass(frozen=True)
class Literal:
    """One fanin occurrence: fanin slot ``var`` (0..3), negated or not."""

    var: int
    negated: bool


#: One product term of a sum-of-products: a tuple of literals.
Term = tuple[Literal, ...]


@dataclass(frozen=True)
class LoweredLUT:
    """One truth table lowered to a bitwise expression.

    Attributes
    ----------
    kind:
        One of the ``OP_*`` constants.
    value:
        The constant value for ``OP_CONST`` (0 or 1); unused otherwise.
    invert:
        For ``OP_XOR``: complement the parity (XNOR chain).
    literal:
        For ``OP_LITERAL``: the single fanin occurrence.
    vars:
        For ``OP_XOR``: the fanin slots xored together, ascending.
    terms:
        For ``OP_AND``/``OP_OR``: one term (the ``OP_OR`` term holds the
        *sum* literals).  For ``OP_SOP``: all product terms.
    """

    kind: str
    value: int = 0
    invert: bool = False
    literal: Literal | None = None
    vars: tuple[int, ...] = ()
    terms: tuple[Term, ...] = ()

    @property
    def group_key(self) -> tuple[object, ...]:
        """Hashable structure key: nodes sharing it execute as one batch."""
        if self.kind == OP_CONST:
            return (self.kind, self.value)
        if self.kind == OP_LITERAL:
            assert self.literal is not None
            return (self.kind, self.literal.var, self.literal.negated)
        if self.kind == OP_XOR:
            return (self.kind, self.vars, self.invert)
        return (self.kind, self.terms)

    @property
    def n_ops(self) -> int:
        """Rough bitwise-op count of one word evaluation (for diagnostics)."""
        if self.kind == OP_CONST:
            return 1
        if self.kind == OP_LITERAL:
            return 1 + int(self.literal.negated if self.literal else 0)
        if self.kind == OP_XOR:
            return len(self.vars) - 1 + int(self.invert)
        return sum(
            len(t) - 1 + sum(1 for lit in t if lit.negated) for t in self.terms
        ) + max(0, len(self.terms) - 1)


def _support(tt: int, arity: int) -> list[int]:
    """Fanin slots the function actually depends on."""
    rows = 1 << arity
    support = []
    for k in range(arity):
        bit = 1 << k
        if any(
            ((tt >> r) & 1) != ((tt >> (r ^ bit)) & 1) for r in range(rows)
        ):
            support.append(k)
    return support


def _project(tt: int, arity: int, support: list[int]) -> int:
    """The function restricted to ``support`` (non-support inputs at 0)."""
    g = 0
    for rp in range(1 << len(support)):
        r = 0
        for j, k in enumerate(support):
            if (rp >> j) & 1:
                r |= 1 << k
        if (tt >> r) & 1:
            g |= 1 << rp
    return g


def _parity_form(g: int, s: int) -> bool | None:
    """``False``/``True`` for XOR/XNOR over all ``s`` vars, else ``None``."""
    for invert in (False, True):
        if all(
            ((g >> r) & 1) == ((bin(r).count("1") & 1) ^ int(invert))
            for r in range(1 << s)
        ):
            return invert
    return None


# ----------------------------------------------------------------------
# Quine–McCluskey on <= 4 variables.  An implicant is (value, care): it
# covers row r iff (r & care) == (value & care).
def _prime_implicants(minterms: list[int], s: int) -> list[tuple[int, int]]:
    full_care = (1 << s) - 1
    current = {(m, full_care) for m in minterms}
    primes: set[tuple[int, int]] = set()
    while current:
        merged: set[tuple[int, int]] = set()
        used: set[tuple[int, int]] = set()
        pairs = sorted(current)
        for i, (v1, c1) in enumerate(pairs):
            for v2, c2 in pairs[i + 1 :]:
                if c1 != c2:
                    continue
                diff = (v1 ^ v2) & c1
                if diff and (diff & (diff - 1)) == 0:  # differ in one care bit
                    merged.add((v1 & ~diff & c1, c1 & ~diff))
                    used.add((v1, c1))
                    used.add((v2, c2))
        primes.update(current - used)
        current = merged
    return sorted(primes)


def _cover(minterms: list[int], primes: list[tuple[int, int]]) -> list[tuple[int, int]]:
    """Essential-first greedy cover; deterministic by sorted tie-break."""

    def covers(imp: tuple[int, int], m: int) -> bool:
        value, care = imp
        return (m & care) == (value & care)

    remaining = set(minterms)
    chosen: list[tuple[int, int]] = []
    # Essential primes: sole cover of some minterm.
    for m in sorted(remaining):
        coverers = [p for p in primes if covers(p, m)]
        if len(coverers) == 1 and coverers[0] not in chosen:
            chosen.append(coverers[0])
    for imp in chosen:
        remaining -= {m for m in remaining if covers(imp, m)}
    # Greedy: most newly-covered minterms, ties by implicant order.
    while remaining:
        best = max(
            primes,
            key=lambda p: (len({m for m in remaining if covers(p, m)}), p),
        )
        gain = {m for m in remaining if covers(best, m)}
        if not gain:  # pragma: no cover - primes always cover all minterms
            raise KernelError("QM cover failed to make progress")
        chosen.append(best)
        remaining -= gain
    return chosen


def _implicant_term(
    imp: tuple[int, int], s: int, varmap: list[int]
) -> Term:
    value, care = imp
    return tuple(
        Literal(varmap[j], negated=not ((value >> j) & 1))
        for j in range(s)
        if (care >> j) & 1
    )


def _sop_form(g: int, s: int, varmap: list[int]) -> LoweredLUT:
    minterms = [r for r in range(1 << s) if (g >> r) & 1]
    maxterms = [r for r in range(1 << s) if not ((g >> r) & 1)]
    if len(minterms) == 1:
        return LoweredLUT(
            kind=OP_AND, terms=(_implicant_term((minterms[0], (1 << s) - 1), s, varmap),)
        )
    if len(maxterms) == 1:
        # Single zero row: OR of literals (De Morgan of the lone maxterm).
        m = maxterms[0]
        sum_term = tuple(
            Literal(varmap[j], negated=bool((m >> j) & 1)) for j in range(s)
        )
        return LoweredLUT(kind=OP_OR, terms=(sum_term,))
    primes = _prime_implicants(minterms, s)
    cover = _cover(minterms, primes)
    terms = tuple(_implicant_term(imp, s, varmap) for imp in cover)
    if len(terms) == 1:
        term = terms[0]
        if len(term) == 1:  # pragma: no cover - support reduction catches this
            return LoweredLUT(kind=OP_LITERAL, literal=term[0])
        return LoweredLUT(kind=OP_AND, terms=terms)
    return LoweredLUT(kind=OP_SOP, terms=terms)


def eval_lowered(lowered: LoweredLUT, inputs: tuple[int, ...], mask: int) -> int:
    """Evaluate a lowered form on packed integer planes (test/verify path).

    ``inputs[k]`` carries one bit per sample; ``mask`` limits the result
    width.  This mirrors exactly what the vectorised executor does with
    ``uint64`` planes, so verifying against it certifies the execution
    semantics, not just the lowering.
    """

    def lit(literal: Literal) -> int:
        word = inputs[literal.var]
        return (~word & mask) if literal.negated else (word & mask)

    if lowered.kind == OP_CONST:
        return mask if lowered.value else 0
    if lowered.kind == OP_LITERAL:
        assert lowered.literal is not None
        return lit(lowered.literal)
    if lowered.kind == OP_XOR:
        acc = 0
        for var in lowered.vars:
            acc ^= inputs[var]
        if lowered.invert:
            acc = ~acc
        return acc & mask
    if lowered.kind == OP_AND:
        acc = mask
        for literal in lowered.terms[0]:
            acc &= lit(literal)
        return acc
    if lowered.kind == OP_OR:
        acc = 0
        for literal in lowered.terms[0]:
            acc |= lit(literal)
        return acc
    acc = 0
    for term in lowered.terms:
        t = mask
        for literal in term:
            t &= lit(literal)
        acc |= t
    return acc


def _verify(lowered: LoweredLUT, tt: int, arity: int) -> None:
    rows = 1 << arity
    mask = (1 << rows) - 1
    planes = tuple(
        sum(1 << r for r in range(rows) if (r >> k) & 1) for k in range(4)
    )
    got = eval_lowered(lowered, planes, mask)
    want = tt & mask
    if got != want:
        raise KernelError(
            f"lowering of tt={tt:#x} arity={arity} produced {got:#x}, "
            f"want {want:#x} ({lowered})"
        )


@lru_cache(maxsize=4096)
def lower_tt(arity: int, tt: int) -> LoweredLUT:
    """Lower truth table ``tt`` over ``arity`` fanins; verified exact.

    The result is memoised per ``(arity, tt)`` — netlists reuse a small
    vocabulary of gates, so almost every plan compile is pure lookups.
    """
    if not (1 <= arity <= 4):
        raise KernelError(f"LUT arity must be 1..4, got {arity}")
    rows = 1 << arity
    if not (0 <= tt < (1 << rows)):
        raise KernelError(f"truth table {tt:#x} out of range for arity {arity}")

    support = _support(tt, arity)
    if not support:
        lowered = LoweredLUT(kind=OP_CONST, value=tt & 1)
        _verify(lowered, tt, arity)
        return lowered
    g = _project(tt, arity, support)
    s = len(support)
    if s == 1:
        # g over one var is 0b10 (buffer) or 0b01 (inverter).
        lowered = LoweredLUT(
            kind=OP_LITERAL, literal=Literal(support[0], negated=(g == 0b01))
        )
        _verify(lowered, tt, arity)
        return lowered
    parity = _parity_form(g, s)
    if parity is not None:
        lowered = LoweredLUT(kind=OP_XOR, vars=tuple(support), invert=parity)
        _verify(lowered, tt, arity)
        return lowered
    lowered = _sop_form(g, s, support)
    _verify(lowered, tt, arity)
    return lowered
