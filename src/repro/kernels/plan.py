"""Netlist → execution-plan compiler with a content-hash memo cache.

An :class:`ExecutionPlan` is everything the packed executor needs that
can be computed once per netlist instead of once per evaluation:

* **Functional op groups** — within each topological level, LUT nodes
  are bucketed by their lowered boolean structure
  (:attr:`~repro.kernels.lower.LoweredLUT.group_key`), and each bucket's
  fanin columns are pre-gathered into index arrays.  Executing a bucket
  is then a handful of whole-array bitwise ops over ``(g, W)`` uint64
  planes — no per-sample gathers, no ``astype(np.intp)`` temporaries.
* **Timing gathers** — the settle-propagation loop of
  :func:`repro.timing.simulator.simulate_transitions` re-derives
  ``arity > k`` masks and fanin columns per call; the plan precomputes
  per-level ``(rows_k, ids_k, srcs_k)`` index triples that select
  exactly the populated fanin slots while preserving the float32
  operation order (bit-identity with the interpreted path).

Plans are memoised in a module-level cache keyed by a **content hash**
of the compiled arrays (:func:`netlist_fingerprint`), not by object
identity: :class:`~repro.netlist.core.CompiledNetlist` instances travel
through pickles (the placed-design cache, pool workers) and lose
identity on the way, while structurally identical netlists — every
shard of a sweep evaluates the same placed design — should share one
plan.  The cache is guarded by a lock and is append-only: a key is
computed from immutable arrays, so concurrent writers can only ever
install equal values (safe under the PR 6 sanitizer's shared-state
rules; see the ``_PLAN_CACHE`` allowance in the effect catalogue).
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass
from typing import cast

import numpy as np

from ..errors import KernelError
from ..netlist.core import _KIND_CONST, _KIND_LUT, CompiledNetlist
from ..obs import runtime as obs
from .lower import OP_CONST, OP_LITERAL, OP_XOR, Term, lower_tt

__all__ = [
    "ExecutionPlan",
    "OpGroup",
    "TimingLevel",
    "clear_plan_cache",
    "netlist_fingerprint",
    "plan_cache_size",
    "plan_for",
]


@dataclass(frozen=True)
class OpGroup:
    """Same-level LUT nodes sharing one lowered boolean structure.

    Attributes
    ----------
    kind:
        ``"const"``, ``"xor"`` or ``"sop"`` (literals and single AND/OR
        terms are degenerate sums of products and run on the SOP path).
    out_ids:
        Node ids this group writes, ``(g,)`` intp.
    value:
        The constant for ``kind == "const"``.
    invert:
        For ``kind == "xor"``: complement the parity.
    var_srcs:
        For ``kind == "xor"``: one ``(g,)`` fanin-id array per xored
        variable.
    terms:
        For ``kind == "sop"``: per product term, a tuple of
        ``(src_ids, negated)`` literals with ``src_ids`` of shape
        ``(g,)``.
    """

    kind: str
    out_ids: np.ndarray
    value: int = 0
    invert: bool = False
    var_srcs: tuple[np.ndarray, ...] = ()
    terms: tuple[tuple[tuple[np.ndarray, bool], ...], ...] = ()


@dataclass(frozen=True)
class TimingLevel:
    """Precomputed index arrays for one level of settle propagation.

    ``gathers`` holds one ``(k, rows_k, ids_k, srcs_k)`` quadruple per
    populated fanin slot ``k``: ``rows_k`` are the positions within
    ``ids`` whose arity exceeds ``k``, ``ids_k = ids[rows_k]`` and
    ``srcs_k = fanin_idx[ids_k, k]``.
    """

    ids: np.ndarray
    gathers: tuple[tuple[int, np.ndarray, np.ndarray, np.ndarray], ...]


@dataclass(frozen=True)
class ExecutionPlan:
    """One netlist's compiled bit-sliced execution recipe."""

    fingerprint: str
    n_nodes: int
    const_zero_ids: np.ndarray  # _KIND_CONST nodes with value 0, (c0,) intp
    const_one_ids: np.ndarray  # _KIND_CONST nodes with value 1, (c1,) intp
    levels: tuple[tuple[OpGroup, ...], ...]
    timing_levels: tuple[TimingLevel, ...]

    @property
    def n_groups(self) -> int:
        """Total op groups across all levels (plan-size diagnostic)."""
        return sum(len(lv) for lv in self.levels)


def netlist_fingerprint(cn: CompiledNetlist) -> str:
    """Content hash of everything evaluation semantics depend on.

    Two netlists with equal fingerprints are evaluation-equivalent node
    for node (same kinds, fanins, truth tables, constants and buses), so
    they can share one :class:`ExecutionPlan`.  ``hashlib`` rather than
    built-in ``hash()``: the fingerprint must agree across pool workers
    regardless of ``PYTHONHASHSEED`` (rule DT009).
    """
    h = hashlib.sha256()
    for arr in (cn.kinds, cn.arity, cn.fanin_idx, cn.tt_bits, cn.const_values):
        h.update(np.ascontiguousarray(arr).tobytes())
    for role, buses in (("in", cn.input_buses), ("out", cn.output_buses)):
        for name, ids in buses.items():
            h.update(f"{role}:{name}:".encode())
            h.update(np.ascontiguousarray(ids).tobytes())
    return h.hexdigest()


def _node_lowered(cn: CompiledNetlist, nid: int) -> tuple[object, ...]:
    """Lower node ``nid``'s truth table; returns its structure key."""
    a = int(cn.arity[nid])
    rows = 1 << a
    tt = 0
    for r in range(rows):
        if cn.tt_bits[nid, r]:
            tt |= 1 << r
    return lower_tt(a, tt).group_key


def _build_group(
    cn: CompiledNetlist, key: tuple[object, ...], nids: list[int]
) -> OpGroup:
    out_ids = np.asarray(nids, dtype=np.intp)
    kind = cast(str, key[0])
    if kind == OP_CONST:
        return OpGroup(kind="const", out_ids=out_ids, value=cast(int, key[1]))
    fidx = cn.fanin_idx
    if kind == OP_LITERAL:
        var, negated = cast(int, key[1]), cast(bool, key[2])
        srcs = fidx[out_ids, var].astype(np.intp)
        return OpGroup(
            kind="sop", out_ids=out_ids, terms=(((srcs, negated),),)
        )
    if kind == OP_XOR:
        var_srcs = tuple(
            fidx[out_ids, var].astype(np.intp)
            for var in cast("tuple[int, ...]", key[1])
        )
        return OpGroup(
            kind="xor",
            out_ids=out_ids,
            invert=cast(bool, key[2]),
            var_srcs=var_srcs,
        )
    # AND / OR / SOP all share the generic sum-of-products executor: an
    # AND is one term, an OR is a sum of single-literal terms.
    if kind in ("and", "sop"):
        term_specs = cast("tuple[Term, ...]", key[1])
        terms = tuple(
            tuple(
                (fidx[out_ids, lit.var].astype(np.intp), lit.negated)
                for lit in term
            )
            for term in term_specs
        )
        return OpGroup(kind="sop", out_ids=out_ids, terms=terms)
    if kind == "or":
        sum_term = cast("tuple[Term, ...]", key[1])[0]
        terms = tuple(
            ((fidx[out_ids, lit.var].astype(np.intp), lit.negated),)
            for lit in sum_term
        )
        return OpGroup(kind="sop", out_ids=out_ids, terms=terms)
    raise KernelError(f"unknown lowered kind {kind!r}")  # pragma: no cover


def _compile_plan(cn: CompiledNetlist, fingerprint: str) -> ExecutionPlan:
    const_mask = cn.kinds == _KIND_CONST
    const_zero = np.nonzero(const_mask & (cn.const_values == 0))[0]
    const_one = np.nonzero(const_mask & (cn.const_values != 0))[0]

    levels: list[tuple[OpGroup, ...]] = []
    timing_levels: list[TimingLevel] = []
    for ids in cn.level_groups:
        # Functional groups: bucket by lowered structure, preserving the
        # first-seen order within the level (dicts iterate in insertion
        # order, so the grouping is deterministic).
        buckets: dict[tuple[object, ...], list[int]] = {}
        for nid in ids.tolist():
            if cn.kinds[nid] != _KIND_LUT:  # pragma: no cover - levels>0 are LUTs
                raise KernelError(f"non-LUT node {nid} in a level group")
            buckets.setdefault(_node_lowered(cn, nid), []).append(nid)
        levels.append(
            tuple(_build_group(cn, key, nids) for key, nids in buckets.items())
        )
        # Timing gathers: positions per populated fanin slot.
        a = cn.arity[ids]
        gathers: list[tuple[int, np.ndarray, np.ndarray, np.ndarray]] = []
        for k in range(int(a.max()) if ids.size else 0):
            rows_k = np.nonzero(a > k)[0]
            if not rows_k.size:
                break
            ids_k = ids[rows_k].astype(np.intp)
            srcs_k = cn.fanin_idx[ids_k, k].astype(np.intp)
            gathers.append((k, rows_k, ids_k, srcs_k))
        timing_levels.append(
            TimingLevel(ids=ids.astype(np.intp), gathers=tuple(gathers))
        )

    return ExecutionPlan(
        fingerprint=fingerprint,
        n_nodes=cn.n_nodes,
        const_zero_ids=const_zero.astype(np.intp),
        const_one_ids=const_one.astype(np.intp),
        levels=tuple(levels),
        timing_levels=tuple(timing_levels),
    )


# Plan memo cache.  Append-only under the lock; keys are content hashes
# of immutable arrays, so racing writers can only install equal plans.
_PLAN_CACHE: dict[str, ExecutionPlan] = {}
_PLAN_CACHE_LOCK = threading.Lock()


def plan_for(cn: CompiledNetlist) -> ExecutionPlan:
    """The memoised :class:`ExecutionPlan` for ``cn`` (compiled on miss)."""
    fingerprint = netlist_fingerprint(cn)
    with _PLAN_CACHE_LOCK:
        plan = _PLAN_CACHE.get(fingerprint)
    if plan is not None:
        obs.counter_add("kernel.plan.cache_hits")
        return plan
    obs.counter_add("kernel.plan.cache_misses")
    with obs.span("kernel.compile", netlist=cn.name, n_nodes=cn.n_nodes):
        plan = _compile_plan(cn, fingerprint)
    with _PLAN_CACHE_LOCK:
        return _PLAN_CACHE.setdefault(fingerprint, plan)


def plan_cache_size() -> int:
    """Number of distinct netlist fingerprints currently cached."""
    with _PLAN_CACHE_LOCK:
        return len(_PLAN_CACHE)


def clear_plan_cache() -> None:
    """Drop all memoised plans (tests and memory-pressure escapes)."""
    with _PLAN_CACHE_LOCK:
        _PLAN_CACHE.clear()
