"""Bit-sliced plan execution: 64 stimuli per uint64 word.

The packed value representation is a ``(n_nodes, W)`` uint64 plane with
``W = ceil(batch / 64)``: bit ``b`` of word ``w`` in row ``nid`` is node
``nid``'s value on sample ``64*w + b``.  One whole-array AND/OR/XOR over
a row group therefore evaluates 64 samples for every node in the group
at once — this is what replaces the per-sample ``take_along_axis``
gather of the interpreted path.

Packing uses ``np.packbits``/``np.unpackbits`` with
``bitorder="little"`` through a ``uint8`` view of the word plane.  All
word-level operations are purely bitwise (never arithmetic), so the
byte order inside each word is irrelevant: unpacking applies the exact
inverse permutation of packing on any platform.

Entry points
------------
* :func:`evaluate_packed` — drop-in core of
  :meth:`CompiledNetlist.evaluate`.
* :func:`stream_values` — full node-value plane for the transition
  simulator (which also needs intermediate nodes, not just outputs).
* :func:`evaluate_tile` — an ``(M multiplicands × S samples)`` sweep
  that pins one bus per row as packed constants and shares the streamed
  buses across rows; used by characterisation-style sweeps and the
  equivalence family prover instead of per-row python loops.

All user-facing validation (unknown bus, bad shape, missing buses)
raises :class:`~repro.errors.NetlistError` with the same messages as
the interpreted path, so callers cannot tell the kernels apart except
by speed.
"""

from __future__ import annotations

import numpy as np

from ..errors import NetlistError
from ..netlist.core import (
    CompiledNetlist,
    EvalScratch,
    bits_from_ints,
    ints_from_bits,
)
from ..obs import runtime as obs
from .plan import ExecutionPlan, OpGroup, plan_for

__all__ = [
    "evaluate_packed",
    "evaluate_tile",
    "pack_bits",
    "stream_values",
    "unpack_plane",
]

WORD_BITS = 64
_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack ``(batch, width)`` uint8 bits into a ``(width, W)`` uint64 plane."""
    b = np.ascontiguousarray(bits, dtype=np.uint8)
    batch, width = b.shape
    n_words = (batch + WORD_BITS - 1) // WORD_BITS
    packed = np.packbits(b.T, axis=1, bitorder="little")  # (width, ceil(batch/8))
    buf = np.zeros((width, n_words * 8), dtype=np.uint8)
    buf[:, : packed.shape[1]] = packed
    return buf.view(np.uint64)


def unpack_plane(words: np.ndarray, batch: int) -> np.ndarray:
    """Unpack a ``(rows, W)`` uint64 plane into ``(rows, batch)`` uint8 bits."""
    u8 = np.ascontiguousarray(words).view(np.uint8)
    if batch == 0:
        return np.zeros((words.shape[0], 0), dtype=np.uint8)
    return np.unpackbits(u8, axis=1, bitorder="little", count=batch)


def _run_group(group: OpGroup, vals: np.ndarray) -> None:
    if group.kind == "const":
        vals[group.out_ids] = _ALL_ONES if group.value else np.uint64(0)
        return
    if group.kind == "xor":
        acc = vals[group.var_srcs[0]]  # fancy index: a fresh buffer
        for srcs in group.var_srcs[1:]:
            acc ^= vals[srcs]
        if group.invert:
            np.invert(acc, out=acc)
        vals[group.out_ids] = acc
        return
    # Sum of products (also literals / single AND / single OR).
    total: np.ndarray | None = None
    for term in group.terms:
        src0, neg0 = term[0]
        t = vals[src0]  # fancy index: a fresh buffer
        if neg0:
            np.invert(t, out=t)
        for srcs, negated in term[1:]:
            lit = vals[srcs]
            if negated:
                np.invert(lit, out=lit)
            t &= lit
        if total is None:
            total = t
        else:
            total |= t
    assert total is not None  # groups always hold >= 1 term
    vals[group.out_ids] = total


def _run_plan(plan: ExecutionPlan, vals: np.ndarray) -> None:
    for level in plan.levels:
        for group in level:
            _run_group(group, vals)


def _packed_plane(
    cn: CompiledNetlist,
    plan: ExecutionPlan,
    inputs: dict[str, np.ndarray],
    scratch: EvalScratch | None,
) -> tuple[np.ndarray, int]:
    """Validate + bind + execute; returns the word plane and batch size."""
    first = next(iter(inputs.values()))
    batch = int(np.asarray(first).shape[0])
    n_words = (batch + WORD_BITS - 1) // WORD_BITS
    if scratch is not None:
        vals = scratch.array("kernel.vals", (cn.n_nodes, n_words), np.uint64)
        vals.fill(0)
    else:
        vals = np.zeros((cn.n_nodes, n_words), dtype=np.uint64)
    vals[plan.const_one_ids] = _ALL_ONES
    for name, bits in inputs.items():
        if name not in cn.input_buses:
            raise NetlistError(f"unknown input bus {name!r}")
        ids = cn.input_buses[name]
        b = np.asarray(bits, dtype=np.uint8)
        if b.ndim != 2 or b.shape[1] != ids.shape[0]:
            raise NetlistError(
                f"input {name!r}: expected shape (batch, {ids.shape[0]}), got {b.shape}"
            )
        if b.shape[0] != batch:
            raise NetlistError(
                f"input {name!r}: batch {b.shape[0]} disagrees with {batch}"
            )
        vals[ids] = pack_bits(b)
    missing = set(cn.input_buses) - set(inputs)
    if missing:
        raise NetlistError(f"missing input buses: {sorted(missing)}")
    _run_plan(plan, vals)
    return vals, batch


def evaluate_packed(
    cn: CompiledNetlist,
    inputs: dict[str, np.ndarray],
    scratch: EvalScratch | None = None,
) -> dict[str, np.ndarray]:
    """Functional evaluation via the bit-sliced plan.

    Same contract (and same :class:`~repro.errors.NetlistError`
    messages) as the interpreted :meth:`CompiledNetlist.evaluate`; the
    results are proven bit-identical by the kernel test suite.
    """
    plan = plan_for(cn)
    with obs.span("kernel.eval", netlist=cn.name, consumer="evaluate"):
        vals, batch = _packed_plane(cn, plan, inputs, scratch)
        out: dict[str, np.ndarray] = {}
        for name, ids in cn.output_buses.items():
            bits = unpack_plane(vals[ids], batch)  # (width, batch)
            if scratch is None:
                out[name] = np.ascontiguousarray(bits.T)
            else:
                buf = scratch.array(
                    f"kernel.out.{name}", (batch, ids.shape[0]), np.uint8
                )
                np.copyto(buf, bits.T)
                out[name] = buf
        return out


def stream_values(
    cn: CompiledNetlist,
    inputs: dict[str, np.ndarray],
    scratch: EvalScratch | None = None,
) -> np.ndarray:
    """Full ``(n_nodes, N)`` uint8 value plane for a stimulus stream.

    The transition simulator consumes every node's values (to form the
    ``changed`` masks), so this unpacks the whole word plane rather than
    just the output rows.
    """
    plan = plan_for(cn)
    with obs.span("kernel.eval", netlist=cn.name, consumer="stream"):
        vals, batch = _packed_plane(cn, plan, inputs, scratch)
        return unpack_plane(vals, batch)


#: Target samples per chunked tile evaluation: large enough to amortise
#: the per-level python overhead, small enough to keep the word plane in
#: cache-friendly territory (~64k samples ≈ 1k words per node row).
_TILE_CHUNK_SAMPLES = 65536


def evaluate_tile(
    cn: CompiledNetlist,
    fixed: dict[str, np.ndarray],
    streamed: dict[str, np.ndarray],
    signed_out: bool = False,
    scratch: EvalScratch | None = None,
) -> dict[str, np.ndarray]:
    """Evaluate an ``(M, S)`` tile of (fixed value × streamed sample) pairs.

    Parameters
    ----------
    fixed:
        Bus name → ``(M,)`` integers.  Row ``m`` of the tile pins these
        buses to their ``m``-th value.
    streamed:
        Bus name → ``(S,)`` integers, shared by every row.
    signed_out:
        Interpret output buses as two's complement.
    scratch:
        Optional buffer pool reused across the tile's chunks.

    Returns
    -------
    dict
        Output bus name → ``(M, S)`` int64 values.

    Together ``fixed`` and ``streamed`` must cover the input buses
    exactly.  Rows are processed in chunks whose combined batch is
    ~:data:`_TILE_CHUNK_SAMPLES`, each chunk evaluated as one broadcast
    batch (fixed values repeated across the sample axis, streamed
    samples tiled across rows).  One plan execution then covers many
    rows, which is what replaces per-multiplicand python loops over
    :meth:`CompiledNetlist.evaluate_ints` in characterisation-style
    sweeps.  Evaluation goes through :meth:`CompiledNetlist.evaluate`,
    so the tile honours ``REPRO_KERNEL`` and is bit-identical across
    kernels like every other consumer.
    """
    for name in list(fixed) + list(streamed):
        if name not in cn.input_buses:
            raise NetlistError(f"unknown input bus {name!r}")
    overlap = set(fixed) & set(streamed)
    if overlap:
        raise NetlistError(f"buses both fixed and streamed: {sorted(overlap)}")
    missing = set(cn.input_buses) - set(fixed) - set(streamed)
    if missing:
        raise NetlistError(f"missing input buses: {sorted(missing)}")
    if not fixed:
        raise NetlistError("evaluate_tile needs at least one fixed bus")
    if not streamed:
        raise NetlistError("evaluate_tile needs at least one streamed bus")

    fixed_vals = {k: np.atleast_1d(np.asarray(v)) for k, v in fixed.items()}
    n_rows = {int(v.shape[0]) for v in fixed_vals.values()}
    if len(n_rows) != 1:
        raise NetlistError(f"fixed buses disagree on row count: {sorted(n_rows)}")
    m_count = n_rows.pop()
    stream_vals = {k: np.atleast_1d(np.asarray(v)) for k, v in streamed.items()}
    s_counts = {int(v.shape[0]) for v in stream_vals.values()}
    if len(s_counts) != 1:
        raise NetlistError(
            f"streamed buses disagree on sample count: {sorted(s_counts)}"
        )
    s_count = s_counts.pop()

    # Pre-expand each bus to bits once; chunks slice the row axis.
    fixed_bits = {
        name: bits_from_ints(ints, cn.input_buses[name].shape[0])
        for name, ints in fixed_vals.items()
    }  # (M, width)
    stream_bits = {
        name: bits_from_ints(ints, cn.input_buses[name].shape[0])
        for name, ints in stream_vals.items()
    }  # (S, width)

    rows_per_chunk = max(1, _TILE_CHUNK_SAMPLES // max(1, s_count))
    out = {
        name: np.empty((m_count, s_count), dtype=np.int64)
        for name in cn.output_buses
    }
    with obs.span(
        "kernel.eval", netlist=cn.name, consumer="tile", rows=m_count
    ):
        for lo in range(0, m_count, rows_per_chunk):
            hi = min(m_count, lo + rows_per_chunk)
            rows = hi - lo
            batch_inputs = {}
            for name, bits in fixed_bits.items():
                # Row values repeat across the sample axis.
                batch_inputs[name] = np.repeat(bits[lo:hi], s_count, axis=0)
            for name, bits in stream_bits.items():
                # Samples tile across the chunk's rows.
                batch_inputs[name] = np.tile(bits, (rows, 1))
            res = cn.evaluate(batch_inputs, scratch=scratch)
            for name, obits in res.items():
                ints = ints_from_bits(obits, signed=signed_out)
                out[name][lo:hi] = ints.reshape(rows, s_count)
    return out
