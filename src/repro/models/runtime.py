"""Run-time model of the optimisation framework (paper eqs. 7-8).

The paper models the wall-clock cost of a full design-space exploration:

``R(wl)   = 0.4266 * exp(0.6427 * wl)``                        (eq. 8)
``Time    = (1 + Q*(K-1)) * sum_HP sum_Freqs sum_wl R(wl)``    (eq. 7)

both in seconds on the authors' Core-i7.  The worked example in Sec. VI-E
(#Freqs=1, K=3, Q=5, #HP=2, wl=3..9 -> "1 hour and 44 minutes") pins the
constants: with these values eq. 7 gives ~6 400 s ~ 1 h 47 m, matching the
paper's quote to within rounding.

:class:`RuntimeModel` also supports refitting the two constants of eq. 8
from measured per-word-length sampling times, so the bench can compare the
paper's model shape against this reproduction's actual runtimes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ModelError

__all__ = ["RuntimeModel", "predict_runtime_seconds", "PAPER_RUNTIME_MODEL"]


@dataclass(frozen=True)
class RuntimeModel:
    """Exponential per-word-length sampling-cost model (eq. 8)."""

    scale: float = 0.4266
    rate: float = 0.6427

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ModelError("runtime scale must be positive")

    def vector_seconds(self, wordlength: int | np.ndarray) -> np.ndarray:
        """R(wl): seconds to sample one projection vector at ``wl``."""
        wl = np.asarray(wordlength, dtype=float)
        if np.any(wl < 1):
            raise ModelError("wordlength must be >= 1")
        return self.scale * np.exp(self.rate * wl)

    def total_seconds(
        self,
        wordlengths: Sequence[int],
        k: int,
        q: int,
        n_hyperparams: int,
        n_freqs: int,
    ) -> float:
        """Time (eq. 7) for a complete exploration."""
        if k < 1 or q < 1 or n_hyperparams < 1 or n_freqs < 1:
            raise ModelError("K, Q, #HP and #Freqs must all be >= 1")
        if not wordlengths:
            raise ModelError("empty word-length sweep")
        inner = float(self.vector_seconds(np.asarray(wordlengths)).sum())
        return (1 + q * (k - 1)) * n_hyperparams * n_freqs * inner

    @classmethod
    def fit(cls, wordlengths: Sequence[int], seconds: Sequence[float]) -> "RuntimeModel":
        """Fit (scale, rate) from measured per-vector times.

        Log-linear least squares; needs at least two distinct word-lengths
        and strictly positive times.
        """
        wl = np.asarray(wordlengths, dtype=float)
        t = np.asarray(seconds, dtype=float)
        if wl.shape != t.shape or wl.size < 2:
            raise ModelError("need >= 2 (wordlength, time) pairs")
        if np.any(t <= 0):
            raise ModelError("measured times must be positive")
        if np.unique(wl).size < 2:
            raise ModelError("need at least two distinct word-lengths")
        rate, log_scale = np.polyfit(wl, np.log(t), 1)
        return cls(scale=float(np.exp(log_scale)), rate=float(rate))


#: The paper's fitted constants.
PAPER_RUNTIME_MODEL = RuntimeModel()


def predict_runtime_seconds(
    wordlengths: Sequence[int],
    k: int,
    q: int,
    n_hyperparams: int,
    n_freqs: int,
    model: RuntimeModel = PAPER_RUNTIME_MODEL,
) -> float:
    """Convenience wrapper around :meth:`RuntimeModel.total_seconds`."""
    return model.total_seconds(wordlengths, k, q, n_hyperparams, n_freqs)
