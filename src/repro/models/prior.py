"""Coefficient prior formation (paper eq. 6, Fig. 7).

The prior injects the characterised over-clocking behaviour into the
Bayesian estimation of the projection matrix: coefficient values whose
multiplications err badly at the target frequency get low prior mass,

``g(E(lambda, f)) = cE * (1 + E(lambda, f))^(-beta)``

with ``cE`` normalising the mass to 1 over the coefficient grid and the
hyper-parameter ``beta`` scaling how hard errors are penalised (beta~0.1:
nearly flat; beta=4: error-prone values effectively excluded — Fig. 7).

Coefficients are sign-magnitude fixed point: a word-length ``wl`` grid is
``{ s * m / 2**wl : m in [0, 2**wl), s in {-1, +1} }``; the sign costs an
XOR and does not affect timing, so both signs of a magnitude share the
characterised ``E(m, f)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..errors import ModelError
from .error_model import ErrorModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..analysis.sensitization import CoefficientTimingProfile

__all__ = ["CoefficientPrior", "prior_over_magnitudes"]


def _mirror_signed(
    mags: np.ndarray, variance: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Signed grid: negative magnitudes mirrored, zero not duplicated."""
    if mags[0] == 0:
        neg_m, neg_v = -mags[::-1][:-1], variance[::-1][:-1]
    else:
        neg_m, neg_v = -mags[::-1], variance[::-1]
    return np.concatenate([neg_m, mags]), np.concatenate([neg_v, variance])


def prior_over_magnitudes(
    variance: np.ndarray, beta: float
) -> np.ndarray:
    """Normalised prior mass over a magnitude grid from variances.

    Pure function implementing eq. (6); exposed for tests and plots.
    """
    if beta <= 0:
        raise ModelError("beta must be > 0 (Alg. 1 'Require' clause)")
    v = np.asarray(variance, dtype=float)
    if np.any(v < 0):
        raise ModelError("variances must be non-negative")
    mass = np.power(1.0 + v, -beta)
    total = mass.sum()
    if not np.isfinite(total) or total <= 0:
        raise ModelError("degenerate prior: no coefficient has positive mass")
    return mass / total


@dataclass(frozen=True)
class CoefficientPrior:
    """The prior over the signed coefficient grid of one word-length.

    Attributes
    ----------
    wordlength:
        Magnitude word-length ``wl``.
    freq_mhz:
        Target clock frequency the prior was formed for.
    beta:
        Error-penalty hyper-parameter.
    magnitudes:
        Integer magnitude grid ``[0, 2**wl)``.
    values:
        The full signed coefficient grid in [-1, 1), ascending.
    mass:
        Prior probability per entry of ``values`` (sums to 1).
    """

    wordlength: int
    freq_mhz: float
    beta: float
    magnitudes: np.ndarray
    values: np.ndarray
    mass: np.ndarray
    #: Characterised error variance (integer-product units) aligned with
    #: ``values`` — kept so downstream scoring reuses exactly the data the
    #: prior was formed from.
    variances: np.ndarray | None = None

    @classmethod
    def from_error_model(
        cls,
        model: ErrorModel,
        freq_mhz: float,
        beta: float,
        wordlength: int | None = None,
    ) -> "CoefficientPrior":
        """Form the prior for ``freq_mhz``/``beta`` from an error model.

        The magnitude grid is the model's characterised multiplicand set
        (the paper enumerates the full range, so normally ``[0, 2**wl)``).
        """
        wl = wordlength if wordlength is not None else model.w_coeff
        mags = model.multiplicands
        variance = model.variance_at(freq_mhz)
        signed_m, signed_var = _mirror_signed(mags, variance)
        mass = prior_over_magnitudes(signed_var, beta)
        return cls(
            wordlength=wl,
            freq_mhz=float(freq_mhz),
            beta=float(beta),
            magnitudes=mags,
            values=signed_m / float(1 << wl),
            mass=mass,
            variances=signed_var,
        )

    @classmethod
    def from_static_profile(
        cls,
        profile: "CoefficientTimingProfile",
        freq_mhz: float,
        beta: float,
        wordlength: int | None = None,
    ) -> "CoefficientPrior":
        """Form the prior from static timing instead of measurements.

        The variance surface is the sensitisation-aware STA's worst-case
        squared product error per coefficient
        (:meth:`~repro.analysis.sensitization.CoefficientTimingProfile.variance_proxy_at`)
        — same units and the same eq.-(6) shaping as
        :meth:`from_error_model`, but available before any hardware
        characterisation sweep.  The sign-magnitude mirroring is shared:
        both signs of a magnitude have identical timing (the sign XOR is
        off the multiplier's critical path).
        """
        mags = np.asarray(profile.multiplicands, dtype=np.int64)
        if wordlength is None:
            wordlength = max(1, int(mags.max()).bit_length())
        variance = profile.variance_proxy_at(freq_mhz)
        signed_m, signed_var = _mirror_signed(mags, variance)
        mass = prior_over_magnitudes(signed_var, beta)
        return cls(
            wordlength=wordlength,
            freq_mhz=float(freq_mhz),
            beta=float(beta),
            magnitudes=mags,
            values=signed_m / float(1 << wordlength),
            mass=mass,
            variances=signed_var,
        )

    def __post_init__(self) -> None:
        if self.values.shape != self.mass.shape:
            raise ModelError("prior grid/mass shape mismatch")
        if abs(float(self.mass.sum()) - 1.0) > 1e-9:
            raise ModelError("prior mass must sum to 1")
        if np.any(np.diff(self.values) <= 0):
            raise ModelError("coefficient grid must be strictly ascending")

    @property
    def n_values(self) -> int:
        return int(self.values.shape[0])

    def log_mass(self) -> np.ndarray:
        """Log prior mass with -inf for zero-mass entries."""
        with np.errstate(divide="ignore"):
            return np.log(self.mass)

    def entropy(self) -> float:
        """Shannon entropy (nats); flat priors (small beta) maximise it."""
        m = self.mass[self.mass > 0]
        return float(-(m * np.log(m)).sum())

    def magnitude_of(self, value_index: int | np.ndarray) -> np.ndarray:
        """Integer magnitude of grid entr(y/ies) by index."""
        return np.abs(np.rint(self.values[value_index] * (1 << self.wordlength))).astype(np.int64)
