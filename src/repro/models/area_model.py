"""Area model: LE cost of a generic multiplier vs word-length.

The optimiser explores word-lengths without synthesising every candidate;
it queries a model fitted once from synthesis reports (paper Sec. V-B2:
"possible due to the finite number of word-lengths that are considered").
Fig. 6 is the raw data (LE vs wl across placements/synthesis runs), Fig. 9
the predicted-vs-actual validation with a 95% confidence band.

The fit is polynomial least squares (default quadratic — an ``w_data x wl``
array multiplier grows essentially linearly in wl for fixed data width,
with a mild quadratic term from the carry structure), with a residual
sigma for the confidence interval.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from ..errors import ModelError
from ..fabric.device import FPGADevice
from ..netlist.mac import mac_block
from ..synthesis.flow import SynthesisFlow

__all__ = ["AreaSample", "AreaModel", "collect_area_samples", "fit_area_model"]


@dataclass(frozen=True)
class AreaSample:
    """One synthesis-run area observation."""

    wordlength: int
    logic_elements: int
    seed: int
    location: tuple[int, int]


@dataclass(frozen=True)
class AreaModel:
    """Fitted LE-vs-wordlength model with confidence intervals.

    Attributes
    ----------
    coeffs:
        Polynomial coefficients, highest degree first (``numpy.polyval``
        convention).
    residual_sigma:
        Standard deviation of *relative* fit residuals
        (``(observed - predicted) / predicted``).  Synthesis-run scatter is
        proportional to design size, so the confidence band scales with
        the prediction — without this the band under-covers large designs
        and over-covers small ones.
    wl_range:
        Word-length span the fit saw; queries outside raise in strict
        mode.
    """

    coeffs: np.ndarray
    residual_sigma: float
    wl_range: tuple[int, int]
    n_samples: int

    @property
    def _t95(self) -> float:
        """Two-sided 95% Student-t quantile at the fit's residual dof."""
        dof = max(1, self.n_samples - len(self.coeffs))
        return float(stats.t.ppf(0.975, dof))

    def predict(self, wordlength: int | np.ndarray, strict: bool = False) -> np.ndarray:
        """Predicted LE count for word-length(s)."""
        wl = np.asarray(wordlength, dtype=float)
        if strict and (np.any(wl < self.wl_range[0]) or np.any(wl > self.wl_range[1])):
            raise ModelError(
                f"word-length {wordlength} outside fitted range {self.wl_range}"
            )
        return np.polyval(self.coeffs, wl)

    def confidence_interval(self, wordlength: int | np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """95% band around the prediction (width proportional to size)."""
        mid = self.predict(wordlength)
        half = self._t95 * self.residual_sigma * np.abs(mid)
        return mid - half, mid + half

    def within_interval(self, wordlength: int, observed: int) -> bool:
        """Is an observed area inside the 95% band? (Fig. 9's criterion.)"""
        lo, hi = self.confidence_interval(wordlength)
        return bool(lo <= observed <= hi)

    def design_area(self, wordlength: int, k: int, overhead_le: int = 0) -> float:
        """Area of a K-output projection datapath at one word-length.

        One MAC per output dimension plus fixed control overhead — the
        high-level model of paper Sec. V-B2 ("the overall area of the
        design is estimated through a high-level model").
        """
        if k < 1:
            raise ModelError("k must be >= 1")
        return float(k * self.predict(wordlength) + overhead_le)


def collect_area_samples(
    device: FPGADevice,
    wordlengths: tuple[int, ...],
    w_data: int = 9,
    n_runs: int = 6,
    seed: int = 0,
) -> list[AreaSample]:
    """Synthesise MAC blocks across word-lengths/locations/seeds (Fig. 6).

    Each sample is one synthesis run of the ``w_data x wl`` MAC block at
    one location with one seed — the paper's "multiple placement and
    synthesis steps".
    """
    if n_runs < 1:
        raise ModelError("n_runs must be >= 1")
    if not wordlengths:
        raise ModelError("no wordlengths supplied")
    flow = SynthesisFlow(device)
    samples: list[AreaSample] = []
    for wl in wordlengths:
        if wl < 1:
            raise ModelError(f"invalid wordlength {wl}")
        netlist = mac_block(w_data, wl).compile()
        anchors = flow.available_anchors(netlist, n_runs)
        for run in range(n_runs):
            anchor = anchors[run % len(anchors)]
            placed = flow.run(netlist, anchor=anchor, seed=seed + 1000 * wl + run)
            samples.append(
                AreaSample(
                    wordlength=wl,
                    logic_elements=placed.area.logic_elements,
                    seed=seed + 1000 * wl + run,
                    location=anchor,
                )
            )
    return samples


def fit_area_model(samples: list[AreaSample], degree: int = 2) -> AreaModel:
    """Least-squares polynomial fit of LE count vs word-length."""
    if len(samples) < degree + 2:
        raise ModelError(
            f"need at least {degree + 2} samples for a degree-{degree} fit"
        )
    wl = np.asarray([s.wordlength for s in samples], dtype=float)
    le = np.asarray([s.logic_elements for s in samples], dtype=float)
    if np.unique(wl).size < degree + 1:
        raise ModelError("not enough distinct word-lengths for the fit degree")
    coeffs = np.polyfit(wl, le, deg=degree)
    predicted = np.polyval(coeffs, wl)
    if np.any(predicted <= 0):
        raise ModelError("area fit predicts non-positive LE counts")
    rel_residuals = (le - predicted) / predicted
    dof = max(1, len(samples) - (degree + 1))
    sigma = float(np.sqrt((rel_residuals**2).sum() / dof))
    return AreaModel(
        coeffs=coeffs,
        residual_sigma=sigma,
        wl_range=(int(wl.min()), int(wl.max())),
        n_samples=len(samples),
    )
