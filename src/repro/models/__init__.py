"""Analytical models distilled from characterisation and synthesis data.

* :mod:`repro.models.error_model` — the E(m, f) over-clocking error
  variance structure (paper Fig. 5, Sec. V-B1);
* :mod:`repro.models.area_model` — LE cost vs coefficient word-length
  (paper Figs. 6 and 9, Sec. V-B2);
* :mod:`repro.models.prior` — the coefficient prior
  ``g(E) = cE (1 + E)^-beta`` (paper eq. 6, Fig. 7);
* :mod:`repro.models.runtime` — the optimisation-framework run-time model
  (paper eqs. 7-8, Sec. VI-E).
"""

from .error_model import ErrorModel, ErrorModelSet, build_error_model
from .area_model import AreaModel, AreaSample, fit_area_model, collect_area_samples
from .prior import CoefficientPrior, prior_over_magnitudes
from .runtime import RuntimeModel, predict_runtime_seconds

__all__ = [
    "ErrorModel",
    "ErrorModelSet",
    "build_error_model",
    "AreaModel",
    "AreaSample",
    "fit_area_model",
    "collect_area_samples",
    "CoefficientPrior",
    "prior_over_magnitudes",
    "RuntimeModel",
    "predict_runtime_seconds",
]
