"""The over-clocking error model E(m, f) (paper Sec. V-B1, Fig. 5).

``E(m, f)`` is the variance of the error at the output of a generic
multiplier when a uniform random stream is multiplied by the constant
``m`` with the circuit clocked at ``f`` — exactly what the
characterisation framework measures.  The model also keeps the error
*mean* so the datapath can centre epsilon to zero mean, the trick the
paper uses to drop the cross terms of the objective (Sec. V-A: "by
imposing epsilon to have zero mean, which is achieved by subtracting a
constant in the circuit").

Frequency queries between characterised points interpolate linearly;
queries outside the characterised span clamp (with strict mode available).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..characterization.results import CharacterizationResult
from ..errors import ModelError

__all__ = ["ErrorModel", "ErrorModelSet", "build_error_model"]


@dataclass(frozen=True)
class ErrorModel:
    """E(m, f) for one multiplier geometry on one die.

    Attributes
    ----------
    w_data, w_coeff:
        Multiplier geometry the model describes.
    multiplicands:
        Characterised fixed-operand values, shape ``(M,)``, ascending.
    freqs_mhz:
        Characterised frequencies, shape ``(F,)``, ascending.
    variance, mean:
        Statistic grids, shape ``(M, F)``.
    """

    w_data: int
    w_coeff: int
    device_serial: int
    multiplicands: np.ndarray
    freqs_mhz: np.ndarray
    variance: np.ndarray
    mean: np.ndarray

    def __post_init__(self) -> None:
        m, f = self.multiplicands.shape[0], self.freqs_mhz.shape[0]
        if self.variance.shape != (m, f) or self.mean.shape != (m, f):
            raise ModelError("error-model grid shapes inconsistent")
        if np.any(np.diff(self.freqs_mhz) <= 0):
            raise ModelError("frequencies must be strictly ascending")
        if np.any(np.diff(self.multiplicands) <= 0):
            raise ModelError("multiplicands must be strictly ascending")
        if np.any(self.variance < 0):
            raise ModelError("variance cannot be negative")

    # ------------------------------------------------------------------
    def _freq_weights(self, freq_mhz: float, strict: bool) -> tuple[int, int, float]:
        """Bracketing indices and interpolation weight for a frequency."""
        f = self.freqs_mhz
        if freq_mhz < f[0] or freq_mhz > f[-1]:
            if strict:
                raise ModelError(
                    f"frequency {freq_mhz} MHz outside characterised span "
                    f"[{f[0]}, {f[-1]}]"
                )
            freq_mhz = float(np.clip(freq_mhz, f[0], f[-1]))
        hi = int(np.searchsorted(f, freq_mhz))
        if hi == 0:
            return 0, 0, 0.0
        if hi >= f.shape[0]:
            return f.shape[0] - 1, f.shape[0] - 1, 0.0
        lo = hi - 1
        t = (freq_mhz - f[lo]) / (f[hi] - f[lo])
        return lo, hi, float(t)

    def _grid_at(self, grid: np.ndarray, freq_mhz: float, strict: bool) -> np.ndarray:
        lo, hi, t = self._freq_weights(freq_mhz, strict)
        return (1.0 - t) * grid[:, lo] + t * grid[:, hi]

    def variance_at(self, freq_mhz: float, strict: bool = False) -> np.ndarray:
        """E(m, f) for all characterised multiplicands, shape ``(M,)``."""
        return self._grid_at(self.variance, freq_mhz, strict)

    def mean_at(self, freq_mhz: float, strict: bool = False) -> np.ndarray:
        """Error means for all multiplicands at ``freq_mhz``."""
        return self._grid_at(self.mean, freq_mhz, strict)

    def query(
        self, multiplicand: int | np.ndarray, freq_mhz: float, strict: bool = False
    ) -> np.ndarray:
        """E(m, f) for specific multiplicand value(s).

        Requires exact multiplicand membership (the characterisation
        enumerated the coefficient grid; there is nothing between grid
        points to interpolate to).
        """
        col = self.variance_at(freq_mhz, strict)
        idx = np.searchsorted(self.multiplicands, multiplicand)
        idx_arr = np.atleast_1d(idx)
        m_arr = np.atleast_1d(multiplicand)
        if np.any(idx_arr >= self.multiplicands.shape[0]) or np.any(
            self.multiplicands[np.minimum(idx_arr, self.multiplicands.shape[0] - 1)]
            != m_arr
        ):
            raise ModelError(f"multiplicand(s) {multiplicand} not characterised")
        out = col[idx]
        return out if isinstance(multiplicand, np.ndarray) else np.asarray(out)

    def error_free_fmax(self, multiplicand: int, tol: float = 0.0) -> float:
        """Highest characterised frequency with variance <= ``tol``.

        Returns the lowest characterised frequency if even that errs —
        callers should characterise deeper if they hit this.
        """
        row = self.query_row(multiplicand)
        ok = np.nonzero(row <= tol)[0]
        if ok.size == 0:
            return float(self.freqs_mhz[0])
        return float(self.freqs_mhz[ok[-1]])

    def query_row(self, multiplicand: int) -> np.ndarray:
        """Variance over all frequencies for one multiplicand, ``(F,)``."""
        idx = int(np.searchsorted(self.multiplicands, multiplicand))
        if idx >= self.multiplicands.shape[0] or self.multiplicands[idx] != multiplicand:
            raise ModelError(f"multiplicand {multiplicand} not characterised")
        return self.variance[idx]

    def heatmap(self) -> np.ndarray:
        """The full (M, F) variance grid — the data behind paper Fig. 5."""
        return self.variance.copy()


def build_error_model(
    result: CharacterizationResult,
    location: tuple[int, int] | None = None,
) -> ErrorModel:
    """Distil a characterisation result into an :class:`ErrorModel`.

    ``location=None`` pools all characterised locations (model of "the
    device"); a specific location gives a placement-specific model.
    """
    return ErrorModel(
        w_data=result.w_data,
        w_coeff=result.w_coeff,
        device_serial=result.device_serial,
        multiplicands=np.asarray(result.multiplicands),
        freqs_mhz=np.asarray(result.freqs_mhz),
        variance=result.variance_grid(location),
        mean=result.mean_grid(location),
    )


class ErrorModelSet:
    """Error models for a family of multiplier geometries (one per wl).

    Algorithm 1 sweeps the coefficient word-length; each word-length is a
    different multiplier geometry with its own characterisation.  The set
    maps ``w_coeff -> ErrorModel`` and answers the optimiser's queries.
    """

    def __init__(self, models: dict[int, ErrorModel]) -> None:
        if not models:
            raise ModelError("empty error-model set")
        serials = {m.device_serial for m in models.values()}
        if len(serials) != 1:
            raise ModelError(
                f"error models from different devices pooled: serials {serials}"
            )
        datas = {m.w_data for m in models.values()}
        if len(datas) != 1:
            raise ModelError("error models with inconsistent data widths")
        for wl, m in models.items():
            if m.w_coeff != wl:
                raise ModelError(f"model keyed {wl} has w_coeff {m.w_coeff}")
        self._models = dict(sorted(models.items()))

    @property
    def wordlengths(self) -> tuple[int, ...]:
        return tuple(self._models)

    def model(self, w_coeff: int) -> ErrorModel:
        try:
            return self._models[w_coeff]
        except KeyError:
            raise ModelError(
                f"no error model for word-length {w_coeff}; have {self.wordlengths}"
            ) from None

    def variance_at(self, w_coeff: int, freq_mhz: float) -> np.ndarray:
        """E(m, f) over all magnitudes of one word-length."""
        return self.model(w_coeff).variance_at(freq_mhz)

    def mean_at(self, w_coeff: int, freq_mhz: float) -> np.ndarray:
        return self.model(w_coeff).mean_at(freq_mhz)
