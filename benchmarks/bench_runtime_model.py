"""Sec. VI-E bench: the run-time model, eqs. (7)-(8).

Checks the paper's worked example ("1 hour and 44 minutes"), measures this
reproduction's per-word-length sampling times, refits the exponential
model and asserts the *shape* transfers: sampling cost grows with
word-length and eq. 7's structural factor holds exactly.
"""

from repro.eval.report import render_table
from repro.eval.tables import runtime_model_table

from .conftest import run_once


def test_runtime_model(ctx, benchmark):
    result = run_once(benchmark, runtime_model_table, ctx)

    print()
    rows = sorted(result["measured_vector_seconds_by_wl"].items())
    print(
        render_table(
            ["wordlength", "measured seconds / projection vector"],
            rows,
            title="Run-time investigation (Sec. VI-E)",
        )
    )
    print(
        f"paper model R(wl) = {result['paper_model']['scale']} * "
        f"exp({result['paper_model']['rate']} * wl); worked example = "
        f"{result['paper_example_seconds']:.0f} s (quote: {result['paper_example_quote']})"
    )
    if result["fitted_model"]:
        fm = result["fitted_model"]
        print(
            f"fitted on this machine: R(wl) = {fm['scale']:.4g} * exp({fm['rate']:.4g} * wl)"
        )
    print(
        f"measured total sampling time: {result['measured_total_seconds']:.2f} s "
        f"over {result['n_vector_samplings']} vector samplings"
    )

    # Eq. 7 worked example reproduces the paper's quoted duration.
    assert abs(result["paper_example_seconds"] - 6240) / 6240 < 0.05
    # Eq. 7 structure: #wl * (1 + Q(K-1)) samplings, exactly.
    assert result["n_vector_samplings"] == result["expected_vector_samplings"]
    # Shape: cost grows with word-length (grid doubles per extra bit).
    times = [t for _, t in rows]
    assert times[-1] > times[0]
    assert result["fitted_model"] is not None
    assert result["fitted_model"]["rate"] > 0
