"""Fig. 9 bench: area-model predictions vs fresh synthesis observations.

Prints predicted vs actual LE counts with the 95% band verdict and asserts
the paper's criterion: "most of the data points fall inside the 95%
confidence interval".
"""

from repro.eval.figures import fig9
from repro.eval.report import render_table

from .conftest import run_once


def test_fig9_area_model_validation(ctx, benchmark):
    result = run_once(benchmark, fig9, ctx, n_validation_runs=6)

    print()
    rows = [
        (r["wordlength"], r["predicted_le"], r["actual_le"], r["within_95ci"])
        for r in result["rows"]
    ]
    print(
        render_table(
            ["wl", "predicted LE", "actual LE", "within 95% CI"],
            rows,
            title="Fig. 9: area model vs actual circuit area",
        )
    )
    print(
        f"coverage = {result['coverage']:.2f}  "
        f"(relative residual sigma = {result['residual_sigma']:.3f})"
    )

    # "Most of the data points fall inside the 95% confidence interval."
    assert result["coverage"] >= 0.75
    # The model is accurate, not merely covered: predictions within ~15%.
    for r in result["rows"]:
        rel = abs(r["predicted_le"] - r["actual_le"]) / r["actual_le"]
        assert rel < 0.15
