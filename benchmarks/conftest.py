"""Shared benchmark fixtures.

The figure benches share one :class:`ExperimentContext` at ``BENCH_SCALE``
of the paper's Table-I sample counts (EXPERIMENTS.md records the scale
next to every reported number).  Set ``REPRO_BENCH_SCALE`` to run closer
to the paper's full experiment.
"""

from __future__ import annotations

import os

import pytest

from repro.eval.context import ExperimentContext

#: Fraction of Table I's sample counts used by the benches by default.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.05"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "42"))


@pytest.fixture(scope="session")
def ctx():
    return ExperimentContext.get(seed=BENCH_SEED, scale=BENCH_SCALE, n_char_locations=2)


def run_once(benchmark, fn, *args, **kwargs):
    """Run a figure driver exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
