"""Fig. 5 bench: the E(m, f) error-model heat map of an 8x8 multiplier.

Prints the mean variance per frequency and per multiplicand popcount and
asserts the paper's two observations: variance grows with frequency, and
multiplicands with few '1' bits err less.
"""

import numpy as np

from repro.eval.figures import fig5
from repro.eval.report import render_table

from .conftest import run_once


def test_fig5_error_model_structure(ctx, benchmark):
    result = run_once(benchmark, fig5, ctx)

    print()
    print(
        render_table(
            ["freq MHz", "mean variance over all multiplicands"],
            list(zip(result["freqs_mhz"], result["mean_variance_per_freq"])),
            title="Fig. 5: E(m, f) frequency profile",
        )
    )
    print(
        render_table(
            ["popcount(m)", "mean variance (top freq)"],
            sorted(result["mean_variance_by_popcount"].items()),
            title="Fig. 5: popcount effect",
        )
    )

    per_freq = result["mean_variance_per_freq"]
    assert per_freq[-1] > per_freq[0]
    assert all(a <= b + 1e-9 for a, b in zip(per_freq, per_freq[1:]))

    by_pop = result["mean_variance_by_popcount"]
    assert by_pop[8] > by_pop[1]
    # Broad monotone trend over popcount (paper: "multiplicands with few
    # '1' bits in their binary representation have less errors").
    lows = np.mean([by_pop[c] for c in (0, 1, 2)])
    highs = np.mean([by_pop[c] for c in (6, 7, 8)])
    assert highs > 2 * lows

    grid = result["variance_grid"]
    assert grid.shape == (256, len(result["freqs_mhz"]))
    assert np.all(grid >= 0)
