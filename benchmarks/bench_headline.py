"""The abstract's headline claim, as one table.

"Experiments demonstrate that the proposed framework is able to generate
Linear Projection designs that achieve higher throughput (up to 1.85
times) while producing less errors than typical implementation
methodologies."

Three operating points on the same device and data: the 9-bit KLT design
at its safe (tool-signed) clock, the same design forced to the 310 MHz
target, and the optimisation framework's best design at the target.
"""

from repro.eval.figures import headline
from repro.eval.report import render_table

from .conftest import run_once


def test_headline_throughput_and_errors(ctx, benchmark):
    result = run_once(benchmark, headline, ctx)

    print()
    print(
        render_table(
            ["configuration", "clock MHz", "actual MSE", "area LE", "worst lane err rate"],
            [
                (
                    r["configuration"],
                    r["freq_mhz"],
                    r["mse"],
                    r["area_le"],
                    r["worst_lane_error_rate"],
                )
                for r in result["rows"]
            ],
            title="Headline: throughput vs errors (paper: 1.85x, fewer errors)",
        )
    )
    print(
        f"throughput gain over the tool-limited design: "
        f"{result['throughput_gain']:.2f}x (paper: up to 1.85x); "
        f"at the target clock the OF design's MSE is "
        f"{result['of_vs_klt_at_target_mse_ratio']:.1f}x lower than the KLT's"
    )

    safe, klt_fast, of_fast = result["rows"]

    # Deep over-clock factor in the paper's regime.
    assert 1.5 < result["throughput_gain"] < 2.6
    # The safe KLT point is error-free (that is what "safe" means)...
    assert safe["worst_lane_error_rate"] == 0.0
    # ...the same design at the target clock errs...
    assert klt_fast["worst_lane_error_rate"] > 0.0
    assert klt_fast["mse"] > safe["mse"]
    # ...and the OF design at the SAME fast clock produces fewer errors
    # ("less errors than typical implementation methodologies").
    assert of_fast["mse"] < klt_fast["mse"]
    assert of_fast["worst_lane_error_rate"] <= klt_fast["worst_lane_error_rate"]
    # Its quality at 2x the clock stays comparable to the safe baseline.
    assert of_fast["mse"] < 10 * safe["mse"]
