"""Ablation: constant-coefficient multipliers (the predecessor [7]'s
component) vs generic multipliers (this paper's component).

Quantifies the scaling argument of paper Sec. II: a CCM's structure
depends on the coefficient value, so a CCM-based flow must characterise
one circuit per coefficient value per word-length, while the generic-
multiplier flow characterises one circuit per word-length and covers all
values by enumeration of the fixed operand.
"""

from repro.eval.report import render_table
from repro.netlist.ccm import ccm_multiplier
from repro.netlist.multipliers import unsigned_array_multiplier
from repro.synthesis import SynthesisFlow

from .conftest import run_once


def test_ccm_vs_generic_characterisation_cost(ctx, benchmark):
    wordlengths = ctx.settings.coeff_wordlengths
    w_data = ctx.settings.input_wordlength

    def run():
        flow = SynthesisFlow(ctx.device)
        rows = []
        for wl in wordlengths:
            generic = flow.run(
                unsigned_array_multiplier(w_data, wl), anchor=(0, 0), seed=0
            )
            # CCM structure varies per coefficient: sample the spread.
            ccm_areas = []
            ccm_fmax = []
            for coeff in {1, (1 << wl) - 1, (1 << wl) // 2, (1 << (wl - 1)) + 1}:
                placed = flow.run(ccm_multiplier(coeff, w_data), anchor=(0, 0), seed=0)
                ccm_areas.append(placed.area.logic_elements)
                ccm_fmax.append(placed.device_sta().fmax_mhz)
            rows.append(
                {
                    "wl": wl,
                    "ccm_circuits_needed": 1 << wl,
                    "generic_circuits_needed": 1,
                    "generic_le": generic.area.logic_elements,
                    "ccm_le_min": min(ccm_areas),
                    "ccm_le_max": max(ccm_areas),
                    "ccm_fmax_spread": max(ccm_fmax) - min(ccm_fmax),
                }
            )
        return rows

    rows = run_once(benchmark, run)

    print()
    print(
        render_table(
            [
                "wl",
                "CCM circuits to characterise",
                "generic circuits",
                "generic LE",
                "CCM LE min",
                "CCM LE max",
                "CCM Fmax spread MHz",
            ],
            [
                (
                    r["wl"],
                    r["ccm_circuits_needed"],
                    r["generic_circuits_needed"],
                    r["generic_le"],
                    r["ccm_le_min"],
                    r["ccm_le_max"],
                    r["ccm_fmax_spread"],
                )
                for r in rows
            ],
            title="Ablation: CCM [7] vs generic multiplier characterisation",
        )
    )
    total_ccm = sum(r["ccm_circuits_needed"] for r in rows)
    total_gen = sum(r["generic_circuits_needed"] for r in rows)
    print(f"total circuits: CCM flow {total_ccm} vs generic flow {total_gen}")

    # "By reducing the number of circuits, a significant speed up of the
    # performance characterisation step is obtained" (Sec. II).
    assert total_gen == len(wordlengths)
    assert total_ccm > 100 * total_gen

    for r in rows:
        # CCM structure (and thus timing) is coefficient-dependent —
        # exactly why it does not scale.
        assert r["ccm_le_max"] > r["ccm_le_min"]
        assert r["ccm_fmax_spread"] > 0
