"""Extension bench: voltage scaling (the paper's stated future work).

Paper Sec. VII: "Future work envisages applying similar methodology to
improve power efficiency by lowering the voltage and tolerating the
associated increase in errors."  The fabric model carries a Vdd knob, so
the experiment is runnable here: at a fixed clock, lowering the supply
moves the multiplier into (and deeper into) the error regime, exactly as
over-clocking at fixed voltage does.
"""

import numpy as np

from repro.characterization.circuit import CharacterizationCircuit
from repro.eval.report import render_table
from repro.fabric import OperatingConditions

from .conftest import run_once


def test_undervolting_mirrors_overclocking(ctx, benchmark):
    freq = 280.0  # error-free at nominal supply on this die
    vdds = (1.25, 1.2, 1.1, 1.0, 0.9)

    def run():
        rows = []
        stim = np.random.default_rng(0).integers(0, 256, 1200)
        for vdd in vdds:
            device = ctx.device.with_conditions(
                OperatingConditions(temperature_c=14.0, vdd=vdd)
            )
            circuit = CharacterizationCircuit(device, 8, 8, anchor=(0, 0), seed=0)
            r = circuit.run(222, stim, freq, np.random.default_rng(1))
            rows.append((vdd, r.error_rate, r.error_variance))
        return rows

    rows = run_once(benchmark, run)

    print()
    print(
        render_table(
            ["Vdd (V)", "error rate", "error variance"],
            rows,
            title=f"Extension: undervolting at a fixed {freq:.0f} MHz clock",
        )
    )

    rates = [r[1] for r in rows]
    # Error rate grows monotonically as the supply drops...
    assert all(a <= b + 1e-12 for a, b in zip(rates, rates[1:]))
    # ...from error-free at/above nominal to clearly erroneous when deep
    # under-volted.
    assert rates[0] == 0.0
    assert rates[-1] > 0.01
