"""Extension bench: embedded DSP blocks vs LUT-based generic multipliers.

The paper keeps embedded multipliers out of scope but notes the framework
extends to them (Secs. I, VI).  This bench characterises both component
types on the same die with the same procedure and compares their
over-clocking landscapes: the hard macro clocks substantially faster and
its error onset sits far above the LUT multiplier's, with far weaker
multiplicand dependence.
"""


from repro.characterization import CharacterizationConfig, characterize_multiplier
from repro.dsp import DspBlockModel, characterize_dsp_multiplier
from repro.eval.report import render_table
from repro.netlist.multipliers import unsigned_array_multiplier
from repro.synthesis import SynthesisFlow

from .conftest import run_once


def test_dsp_block_extension(ctx, benchmark):
    freqs = (280.0, 340.0, 400.0, 460.0, 520.0)

    def run():
        cfg = CharacterizationConfig(
            freqs_mhz=freqs,
            n_samples=300,
            multiplicands=tuple(range(0, 256, 8)),
            n_locations=1,
        )
        lut = characterize_multiplier(ctx.device, 8, 8, cfg, seed=ctx.seed)
        dsp = characterize_dsp_multiplier(ctx.device, 8, 8, cfg, seed=ctx.seed)
        lut_fmax = (
            SynthesisFlow(ctx.device)
            .run(unsigned_array_multiplier(8, 8), anchor=(0, 0), seed=ctx.seed)
            .device_sta()
            .fmax_mhz
        )
        dsp_fmax = DspBlockModel(ctx.device, width=8).sta_fmax_mhz()
        return lut, dsp, lut_fmax, dsp_fmax

    lut, dsp, lut_fmax, dsp_fmax = run_once(benchmark, run)

    rows = []
    for fi, f in enumerate(lut.freqs_mhz):
        rows.append(
            (
                f"{f:.0f}",
                float(lut.variance[:, :, fi].mean()),
                float(dsp.variance[:, :, fi].mean()),
            )
        )
    print()
    print(
        render_table(
            ["freq MHz", "LUT mult mean E(m,f)", "DSP block mean E(m,f)"],
            rows,
            title="Extension: LUT vs embedded-DSP over-clocking landscape",
        )
    )
    print(f"STA Fmax: LUT {lut_fmax:.0f} MHz vs DSP block {dsp_fmax:.0f} MHz")

    # The hard macro is faster and errs later.
    assert dsp_fmax > lut_fmax
    lut_means = lut.variance.mean(axis=(0, 1))
    dsp_means = dsp.variance.mean(axis=(0, 1))
    assert lut_means[-1] > 0
    assert dsp_means[2] <= lut_means[2]  # mid-sweep: DSP cleaner

    # And its multiplicand dependence is far weaker: relative spread of
    # E(m, f_top) across multiplicands (only meaningful once both err).
    top_lut = lut.variance[:, :, -1].mean(axis=0)
    top_dsp = dsp.variance[:, :, -1].mean(axis=0)
    if top_dsp.max() > 0:
        lut_cv = top_lut.std() / max(top_lut.mean(), 1e-12)
        dsp_cv = top_dsp.std() / max(top_dsp.mean(), 1e-12)
        print(
            "multiplicand dependence (CV of E at top freq): "
            f"LUT {lut_cv:.2f} vs DSP {dsp_cv:.2f}"
        )
        assert dsp_cv < lut_cv
