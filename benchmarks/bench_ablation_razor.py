"""Ablation: Razor (ref [4]) vs the paper's context-aware approach.

Razor recovers over-clocking errors by detect-and-replay: results are
always correct but every detected error stalls the pipeline, so effective
throughput flattens once the error rate climbs.  The paper's approach
instead *tolerates* errors the application can absorb, keeping the full
clock rate.  This bench runs both on the same placed multiplier and
compares the throughput each achieves at and beyond the 310 MHz target.
"""

import numpy as np

from repro.eval.report import render_table
from repro.netlist.core import bits_from_ints
from repro.netlist.multipliers import unsigned_array_multiplier
from repro.synthesis import SynthesisFlow
from repro.timing import (
    RazorConfig,
    capture_stream,
    razor_execute,
    razor_optimal_frequency,
    simulate_transitions,
)

from .conftest import run_once


def test_razor_vs_error_tolerant_overclocking(ctx, benchmark):
    freqs = np.arange(220.0, 430.0, 30.0)

    def run():
        placed = SynthesisFlow(ctx.device).run(
            unsigned_array_multiplier(9, 9), anchor=(0, 0), seed=0
        )
        rng = np.random.default_rng(0)
        n = 4000
        ins = {
            "a": bits_from_ints(rng.integers(0, 512, n), 9),
            "b": bits_from_ints(rng.integers(0, 512, n), 9),
        }
        timing = simulate_transitions(
            placed.netlist, ins, placed.node_delay, placed.edge_delay
        )
        rows = []
        for f in freqs:
            cap = capture_stream(timing, "p", float(f), setup_ns=placed.setup_ns)
            razor = razor_execute(cap, RazorConfig())
            rows.append(
                {
                    "freq": float(f),
                    "raw_error_rate": cap.error_rate(),
                    "razor_throughput": razor.effective_throughput_mhz,
                    "tolerant_throughput": float(f),
                }
            )
        best_f, best_eff = razor_optimal_frequency(
            freqs, np.array([r["raw_error_rate"] for r in rows])
        )
        return rows, (best_f, best_eff), placed.area.logic_elements

    rows, (best_f, best_eff), base_area = run_once(benchmark, run)

    print()
    print(
        render_table(
            ["freq MHz", "raw error rate", "Razor eff. MHz", "error-tolerant MHz"],
            [
                (r["freq"], r["raw_error_rate"], r["razor_throughput"], r["tolerant_throughput"])
                for r in rows
            ],
            title="Ablation: Razor detect-and-replay vs error tolerance",
        )
    )
    razor_area = RazorConfig().area_overhead_fraction
    print(
        f"Razor optimum: {best_eff:.0f} effective MHz at {best_f:.0f} MHz clock, "
        f"plus {razor_area:.0%} area overhead on {base_area} LEs"
    )

    # Razor never beats its own clock...
    for r in rows:
        assert r["razor_throughput"] <= r["freq"] + 1e-9
    # ...matches it while error-free...
    error_free = [r for r in rows if r["raw_error_rate"] == 0]
    assert error_free and all(
        abs(r["razor_throughput"] - r["freq"]) < 1e-6 for r in error_free
    )
    # ...and at the deepest over-clock the error-tolerant datapath holds a
    # higher result rate than Razor's stall-limited pipeline.
    deepest = rows[-1]
    assert deepest["raw_error_rate"] > 0
    assert deepest["tolerant_throughput"] > deepest["razor_throughput"]
