"""Ablation: characterisation information on vs off.

"Off" replaces the error models with all-zero variance grids: the prior
is flat and the objective's over-clocking term vanishes — the sampler
reduces to the quantisation-aware Bayesian mapping of the paper's
predecessor [9], blind to over-clocking.  Both optimisers' designs are
then run on the device at the 310 MHz target.

This isolates the paper's core contribution: injecting device-specific
over-clocking behaviour into the design process.
"""

import numpy as np

from repro.circuits.domains import Domain
from repro.core.optimizer import OptimizerConfig, optimize_designs
from repro.eval.report import render_table
from repro.models.error_model import ErrorModel, ErrorModelSet

from .conftest import run_once


def _blind_models(real: ErrorModelSet) -> ErrorModelSet:
    blind = {}
    for wl in real.wordlengths:
        m = real.model(wl)
        blind[wl] = ErrorModel(
            w_data=m.w_data,
            w_coeff=m.w_coeff,
            device_serial=m.device_serial,
            multiplicands=m.multiplicands,
            freqs_mhz=m.freqs_mhz,
            variance=np.zeros_like(m.variance),
            mean=np.zeros_like(m.mean),
        )
    return ErrorModelSet(blind)


def test_characterisation_information_matters(ctx, benchmark):
    def run():
        real_models = ctx.framework.characterize()
        area_model = ctx.framework.fit_area_model()
        blind_cfg = OptimizerConfig(
            settings=ctx.settings,
            error_models=_blind_models(real_models),
            area_model=area_model,
            beta=4.0,
        )
        blind = optimize_designs(ctx.x_train, blind_cfg, seed=ctx.seed)
        aware = ctx.of_result(beta=4.0)
        out = {}
        for name, res in (("blind", blind), ("aware", aware)):
            rows = []
            for d in res.designs:
                ev = ctx.framework.evaluate(d, ctx.x_test, Domain.ACTUAL)
                rows.append(
                    (str(d.wordlengths), ev.area_le, ev.mse, max(ev.extra["lane_error_rates"]))
                )
            out[name] = rows
        return out

    out = run_once(benchmark, run)

    print()
    table = [("blind [9]-style",) + r for r in out["blind"]] + [
        ("characterisation-aware",) + r for r in out["aware"]
    ]
    print(
        render_table(
            ["optimiser", "wordlengths", "area LE", "actual MSE", "worst lane error rate"],
            table,
            title="Ablation: over-clocking characterisation on/off @ 310 MHz",
        )
    )

    # The blind optimiser freely picks large word-lengths / dense
    # magnitudes; the aware one's worst on-device MSE must not be worse.
    blind_best = min(r[2] for r in out["blind"])
    aware_best = min(r[2] for r in out["aware"])
    assert aware_best <= blind_best * 1.5

    # The aware designs' exposure to lane errors is no larger.
    blind_rate = max(r[3] for r in out["blind"])
    aware_rate = max(r[3] for r in out["aware"])
    assert aware_rate <= blind_rate + 1e-12
