"""Fig. 10 bench: predicted vs simulated vs actual MSE-vs-area for the
optimisation framework's designs at the 310 MHz target.

Prints the three-domain rows and asserts the paper's reading: the error
model is valid (prediction tracks reality), simulation and device agree
closely for small designs, and the discrepancy grows with design size.
"""

from repro.eval.figures import fig10
from repro.eval.report import render_table

from .conftest import run_once


def test_fig10_three_domains(ctx, benchmark):
    result = run_once(benchmark, fig10, ctx)

    print()
    rows = [
        (
            str(r["wordlengths"]),
            r["area_le"],
            r["predicted_mse"],
            r["simulated_mse"],
            r["actual_mse"],
        )
        for r in result["rows"]
    ]
    print(
        render_table(
            ["wordlengths", "area LE", "predicted", "simulated", "actual"],
            rows,
            title=f"Fig. 10: OF designs @ {result['freq_mhz']:.0f} MHz (beta={result['beta']})",
        )
    )

    assert len(result["rows"]) == ctx.settings.q
    for r in result["rows"]:
        # The error model is usable: no order-of-magnitude surprises.
        assert r["actual_mse"] < 30 * r["predicted_mse"] + 1e-4
        assert r["simulated_mse"] < 30 * r["predicted_mse"] + 1e-4

    # Paper: "for designs with small area, the simulation and actual
    # results are very close".
    smallest = min(result["rows"], key=lambda r: r["area_le"])
    rel = abs(smallest["actual_mse"] - smallest["simulated_mse"]) / max(
        smallest["simulated_mse"], 1e-300
    )
    assert rel < 0.5
