#!/usr/bin/env python
"""Benchmark the observability layer's cost and re-assert its guarantees.

Three measurements on the reference characterisation sweep:

* **disabled** — telemetry off (the default): what every ordinary run
  pays for the instrumentation points (a guard read per call site);
* **enabled** — trace + metrics on: the full-fat recording cost;
* **no-op micro-bench** — nanoseconds per disabled ``span()`` +
  ``counter_add()`` pair, the per-call-site price in the hot path.

Every run re-asserts the layer's two contracts before writing JSON:

* the sweep grids are **bit-identical** with telemetry on and off
  (telemetry never consumes RNG or touches a numeric path);
* the enabled run's trace and metrics actually **cover the pipeline
  stages** (characterisation, sweep execution, shards, the placed-design
  cache) — instrumentation that silently stopped recording would
  otherwise look infinitely cheap.

Writes ``BENCH_observability.json``.  ``--smoke`` shrinks the sweep to
seconds for the ``scripts/check.sh`` gate.

Usage::

    python benchmarks/bench_observability.py
    python benchmarks/bench_observability.py --smoke
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.characterization.harness import (
    CharacterizationConfig,
    characterize_multiplier,
)
from repro.fabric.device import make_device
from repro.obs import runtime
from repro.parallel import PlacedDesignCache

SCHEMA_VERSION = 1

_TOP_KEYS = {"schema_version", "benchmark", "smoke", "cpus", "sweep", "noop"}
_SWEEP_KEYS = {
    "disabled_seconds",
    "enabled_seconds",
    "overhead_ratio",
    "bit_identical",
    "n_spans",
    "span_names",
    "deterministic_counters",
}
_NOOP_KEYS = {"calls", "seconds", "ns_per_call"}

#: Stages the enabled run must have recorded (span names / counter names).
_REQUIRED_SPANS = {"characterize.sweep", "sweep.run", "sweep.shard", "cache.synthesize"}
_REQUIRED_COUNTERS = {
    "characterize.sweeps",
    "sweep.shards.total",
    "sweep.attempts.total",
    "cache.placed.misses",
    "cache.placed.stores",
}

#: Generous bound on the disabled per-call-site cost: a guard read plus a
#: dict-free early return must stay far under a microsecond pair even on
#: slow CI hardware.
_NOOP_NS_BOUND = 5000.0


def _grids_equal(a, b) -> bool:
    return (
        np.array_equal(a.variance, b.variance)
        and np.array_equal(a.mean, b.mean)
        and np.array_equal(a.error_rate, b.error_rate)
        and np.array_equal(a.freqs_mhz, b.freqs_mhz)
        and np.array_equal(a.multiplicands, b.multiplicands)
        and a.locations == b.locations
    )


def _timed_sweep(device, config, seed):
    t0 = time.perf_counter()
    result = characterize_multiplier(
        device, 8, 8, config, seed=seed, cache=PlacedDesignCache()
    )
    return result, time.perf_counter() - t0


def _bench_sweep(device, config, seed, repeats):
    runtime.disable_observability()
    _timed_sweep(device, config, seed)  # warm-up: PLL memoisation, imports

    disabled_result, disabled_s = _timed_sweep(device, config, seed)
    for _ in range(repeats - 1):  # best-of-N: single-host timing is noisy
        disabled_s = min(disabled_s, _timed_sweep(device, config, seed)[1])
    print(f"  disabled: {disabled_s:.2f}s")

    enabled_s = None
    for _ in range(repeats):
        with runtime.observability(trace=True, metrics=True) as observer:
            enabled_result, dt = _timed_sweep(device, config, seed)
            snapshot = observer.metrics.snapshot()
            records = observer.tracer.records
        enabled_s = dt if enabled_s is None else min(enabled_s, dt)
    ratio = enabled_s / disabled_s
    print(f"  enabled:  {enabled_s:.2f}s ({ratio:.3f}x)")

    span_names = sorted({r.name for r in records})
    return {
        "disabled_seconds": round(disabled_s, 4),
        "enabled_seconds": round(enabled_s, 4),
        "overhead_ratio": round(ratio, 4),
        "bit_identical": _grids_equal(disabled_result, enabled_result),
        "n_spans": len(records),
        "span_names": span_names,
        "deterministic_counters": snapshot.deterministic_counters(),
        "counters": snapshot.counters,
    }


def _bench_noop(calls: int):
    """Per-call-site cost of the disabled helpers (one span + one counter)."""
    runtime.disable_observability()
    span, counter_add = runtime.span, runtime.counter_add
    t0 = time.perf_counter()
    for _ in range(calls):
        with span("sweep.shard", li=0, start=0, attempt=1):
            counter_add("sweep.attempts.total")
    dt = time.perf_counter() - t0
    ns = dt / calls * 1e9
    print(f"  no-op: {calls} span+counter pairs in {dt:.3f}s ({ns:.0f} ns/pair)")
    return {"calls": calls, "seconds": round(dt, 4), "ns_per_call": round(ns, 1)}


def _validate(payload: dict) -> None:
    for section, keys in (
        (payload, _TOP_KEYS),
        (payload["sweep"], _SWEEP_KEYS),
        (payload["noop"], _NOOP_KEYS),
    ):
        missing = keys - section.keys()
        if missing:
            raise AssertionError(f"payload missing keys: {sorted(missing)}")
    sweep = payload["sweep"]
    if not sweep["bit_identical"]:
        raise AssertionError("telemetry changed the sweep grids")
    missing_spans = _REQUIRED_SPANS - set(sweep["span_names"])
    if missing_spans:
        raise AssertionError(f"trace lost pipeline stages: {sorted(missing_spans)}")
    missing_counters = _REQUIRED_COUNTERS - set(sweep["counters"])
    if missing_counters:
        raise AssertionError(f"metrics lost counters: {sorted(missing_counters)}")
    if sweep["deterministic_counters"].get("characterize.sweeps") != 1:
        raise AssertionError("deterministic subset does not reflect the sweep")
    if payload["noop"]["ns_per_call"] > _NOOP_NS_BOUND:
        raise AssertionError(
            f"disabled-path cost {payload['noop']['ns_per_call']:.0f} ns/pair "
            f"exceeds the {_NOOP_NS_BOUND:.0f} ns bound"
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true", help="tiny sweep for CI gates")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--output",
        default="BENCH_observability.json",
        help="where to write the results JSON",
    )
    args = parser.parse_args(argv)

    device = make_device(args.seed)
    if args.smoke:
        config = CharacterizationConfig(
            freqs_mhz=(270.0, 300.0, 330.0),
            n_samples=60,
            multiplicands=tuple(range(16)),
            n_locations=2,
        )
        noop_calls = 200_000
    else:
        config = CharacterizationConfig(
            n_samples=200, multiplicands=None, n_locations=2
        )
        noop_calls = 2_000_000

    print(f"sweep ({'smoke' if args.smoke else 'reference'}):")
    sweep = _bench_sweep(device, config, args.seed, repeats=1 if args.smoke else 3)
    print("no-op path:")
    noop = _bench_noop(noop_calls)

    payload = {
        "schema_version": SCHEMA_VERSION,
        "benchmark": "observability",
        "smoke": args.smoke,
        "cpus": os.cpu_count() or 1,
        "sweep": sweep,
        "noop": noop,
    }
    _validate(payload)
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
