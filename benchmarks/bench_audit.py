#!/usr/bin/env python
"""Benchmark the determinism/concurrency audit and re-assert its contracts.

Measures a full ``repro.analysis.sanitizer`` audit of ``src/repro`` —
the exact run ``scripts/check.sh`` gates on — and records wall time plus
throughput (files and functions per second), so a regression that makes
the gate expensive shows up as a diff in the committed JSON.

Every run re-asserts the audit's contracts before writing JSON:

* the library's own source is **clean**: zero unsuppressed findings;
* every pragma suppression carries a written justification;
* the analyzer is **deterministic**: repeated audits of the same tree
  produce byte-identical report JSON (an audit whose output depended on
  iteration order could not police DT004 with a straight face);
* the audit actually covered the tree (file/function/reachability
  counts above sanity floors — an audit that silently scanned nothing
  would otherwise look infinitely fast).

Writes ``BENCH_audit.json``.  ``--smoke`` drops the repeat count for
the ``scripts/check.sh`` gate.

Usage::

    python benchmarks/bench_audit.py
    python benchmarks/bench_audit.py --smoke
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.sanitizer import ENTRY_POINTS, audit_paths

SCHEMA_VERSION = 1

_TOP_KEYS = {"schema_version", "benchmark", "smoke", "cpus", "audit"}
_AUDIT_KEYS = {
    "seconds",
    "repeats",
    "n_files",
    "n_functions",
    "n_reachable",
    "n_findings",
    "n_suppressions",
    "suppressed_rules",
    "files_per_second",
    "deterministic",
}

#: Sanity floors: the audited tree is a real library, not a fixture.
_MIN_FILES = 50
_MIN_FUNCTIONS = 300

#: Generous wall-time bound for one audit of src/repro.  The check.sh
#: gate runs this on every push; minutes-long static analysis would be
#: a usability regression worth failing loudly over.
_SECONDS_BOUND = 30.0


def _bench_audit(root: Path, repeats: int) -> dict:
    audit_paths([root])  # warm-up: imports, bytecode

    best = None
    serialized = []
    report = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        report = audit_paths([root])
        dt = time.perf_counter() - t0
        best = dt if best is None else min(best, dt)
        serialized.append(report.to_json())
    print(
        f"  audit: {report.n_files} files, {report.n_functions} functions, "
        f"{report.n_reachable} reachable — best of {repeats}: {best:.3f}s"
    )

    return {
        "seconds": round(best, 4),
        "repeats": repeats,
        "n_files": report.n_files,
        "n_functions": report.n_functions,
        "n_reachable": report.n_reachable,
        "n_findings": len(report.findings),
        "n_suppressions": len(report.suppressions),
        "suppressed_rules": sorted(s.rule for s in report.suppressions),
        "files_per_second": round(report.n_files / best, 1),
        "deterministic": len(set(serialized)) == 1,
        "entry_points": list(ENTRY_POINTS),
        "unjustified_suppressions": [
            s.rule for s in report.suppressions if not s.reason.strip()
        ],
    }


def _validate(payload: dict) -> None:
    for section, keys in ((payload, _TOP_KEYS), (payload["audit"], _AUDIT_KEYS)):
        missing = keys - section.keys()
        if missing:
            raise AssertionError(f"payload missing keys: {sorted(missing)}")
    audit = payload["audit"]
    if audit["n_findings"] != 0:
        raise AssertionError(
            f"src/repro is not clean: {audit['n_findings']} unsuppressed findings "
            "(run `repro audit src/repro` for the list)"
        )
    if audit["unjustified_suppressions"]:
        raise AssertionError(
            f"pragmas without justification: {audit['unjustified_suppressions']}"
        )
    if not audit["deterministic"]:
        raise AssertionError("repeated audits produced different report JSON")
    if audit["n_files"] < _MIN_FILES or audit["n_functions"] < _MIN_FUNCTIONS:
        raise AssertionError(
            f"audit coverage collapsed: {audit['n_files']} files / "
            f"{audit['n_functions']} functions scanned"
        )
    if audit["n_reachable"] < len(audit["entry_points"]):
        raise AssertionError("entry points no longer resolve to scanned functions")
    if audit["seconds"] > _SECONDS_BOUND:
        raise AssertionError(
            f"audit took {audit['seconds']:.1f}s, over the "
            f"{_SECONDS_BOUND:.0f}s bound"
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true", help="fewer repeats for CI")
    parser.add_argument(
        "--output",
        default="BENCH_audit.json",
        help="where to write the results JSON",
    )
    args = parser.parse_args(argv)

    root = Path(__file__).resolve().parent.parent / "src" / "repro"
    print(f"audit ({'smoke' if args.smoke else 'reference'}): {root}")
    audit = _bench_audit(root, repeats=2 if args.smoke else 5)

    payload = {
        "schema_version": SCHEMA_VERSION,
        "benchmark": "audit",
        "smoke": args.smoke,
        "cpus": os.cpu_count() or 1,
        "audit": audit,
    }
    _validate(payload)
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
