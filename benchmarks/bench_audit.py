#!/usr/bin/env python
"""Benchmark the static audit families and re-assert their contracts.

Measures the exact runs ``scripts/check.sh`` gates on — the ``DTxxx``
determinism audit, the ``DXxxx`` distribution-readiness audit and the
combined single-parse run over ``src/repro`` — and records wall time
plus throughput (files and functions per second), so a regression that
makes the gate expensive shows up as a diff in the committed JSON.

Every run re-asserts the audits' contracts before writing JSON:

* the library's own source is **clean** under both families: zero
  unsuppressed findings;
* every pragma suppression carries a written justification;
* the analyzers are **deterministic**: repeated audits of the same tree
  produce byte-identical report JSON (an audit whose output depended on
  iteration order could not police DT004 with a straight face);
* the audits actually covered the tree (file/function/reachability
  counts above sanity floors — an audit that silently scanned nothing
  would otherwise look infinitely fast);
* the frozen wire contracts verify with **zero drift**;
* the shared-index design pays: the combined DT + DX + contracts run
  stays within ``_COMBINED_OVERHEAD_BOUND`` of the standalone DT audit
  measured in the same process (both parse the tree once, so adding the
  DX passes must cost analysis time only, never a second parse).

Writes ``BENCH_audit.json``.  ``--smoke`` drops the repeat count for
the ``scripts/check.sh`` gate.

Usage::

    python benchmarks/bench_audit.py
    python benchmarks/bench_audit.py --smoke
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.portability import audit_portability, verify_contracts
from repro.analysis.sanitizer import audit_paths, build_module_index

SCHEMA_VERSION = 2

_TOP_KEYS = {"schema_version", "benchmark", "smoke", "cpus", "audit", "dx", "combined"}
_AUDIT_KEYS = {
    "seconds",
    "repeats",
    "n_files",
    "n_functions",
    "n_reachable",
    "n_findings",
    "n_suppressions",
    "suppressed_rules",
    "files_per_second",
    "deterministic",
}
_COMBINED_KEYS = {
    "seconds",
    "index_seconds",
    "dt_seconds",
    "dx_seconds",
    "contracts_seconds",
    "n_contract_drifts",
    "overhead_vs_dt",
}

#: Sanity floors: the audited tree is a real library, not a fixture.
_MIN_FILES = 50
_MIN_FUNCTIONS = 300

#: Generous wall-time bound for one audit of src/repro.  The check.sh
#: gate runs this on every push; minutes-long static analysis would be
#: a usability regression worth failing loudly over.
_SECONDS_BOUND = 30.0

#: The combined single-parse DT + DX + contracts run may cost at most
#: this multiple of the standalone DT audit measured in the same
#: process (ISSUE 9 acceptance bound).
_COMBINED_OVERHEAD_BOUND = 1.2


def _family_summary(report, seconds: float, repeats: int, serialized: list) -> dict:
    return {
        "seconds": round(seconds, 4),
        "repeats": repeats,
        "n_files": report.n_files,
        "n_functions": report.n_functions,
        "n_reachable": report.n_reachable,
        "n_findings": len(report.findings),
        "n_suppressions": len(report.suppressions),
        "suppressed_rules": sorted(s.rule for s in report.suppressions),
        "files_per_second": round(report.n_files / seconds, 1),
        "deterministic": len(set(serialized)) == 1,
        "entry_points": list(report.entry_points),
        "unjustified_suppressions": [
            s.rule for s in report.suppressions if not s.reason.strip()
        ],
    }


def _bench_family(root: Path, repeats: int, runner, label: str) -> dict:
    runner(root)  # warm-up: imports, bytecode

    best = None
    serialized = []
    report = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        report = runner(root)
        dt = time.perf_counter() - t0
        best = dt if best is None else min(best, dt)
        serialized.append(report.to_json())
    print(
        f"  {label}: {report.n_files} files, {report.n_functions} functions, "
        f"{report.n_reachable} reachable — best of {repeats}: {best:.3f}s"
    )
    return _family_summary(report, best, repeats, serialized)


def _bench_combined(root: Path, repeats: int) -> dict:
    """One shared parse feeding DT, DX and the contract check, timed per phase.

    The overhead ratio compares the combined total against the index+DT
    portion of the *same* iteration (what a DT-only gate would have
    cost with that exact parse), so it measures the price of the DX
    passes themselves, not run-to-run parse variance.
    """
    best = None
    phases = {}
    overhead = None
    drifts = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        index = build_module_index([root])
        t1 = time.perf_counter()
        audit_paths(index=index)
        t2 = time.perf_counter()
        audit_portability(index=index, check_contracts=False)
        t3 = time.perf_counter()
        drifts = verify_contracts(index)
        t4 = time.perf_counter()
        total = t4 - t0
        if best is None or total < best:
            best = total
            overhead = total / (t2 - t0)
            phases = {
                "index_seconds": round(t1 - t0, 4),
                "dt_seconds": round(t2 - t1, 4),
                "dx_seconds": round(t3 - t2, 4),
                "contracts_seconds": round(t4 - t3, 4),
            }
    print(
        f"  combined (single parse): best of {repeats}: {best:.3f}s "
        f"({overhead:.2f}x the same run's index+DT portion)"
    )
    return {
        "seconds": round(best, 4),
        **phases,
        "n_contract_drifts": len(drifts),
        "overhead_vs_dt": round(overhead, 3),
    }


def _validate(payload: dict) -> None:
    for section, keys in (
        (payload, _TOP_KEYS),
        (payload["audit"], _AUDIT_KEYS),
        (payload["dx"], _AUDIT_KEYS),
        (payload["combined"], _COMBINED_KEYS),
    ):
        missing = keys - section.keys()
        if missing:
            raise AssertionError(f"payload missing keys: {sorted(missing)}")
    for family, hint in (("audit", "repro audit --family dt"),
                         ("dx", "repro audit --family dx")):
        audit = payload[family]
        if audit["n_findings"] != 0:
            raise AssertionError(
                f"src/repro is not clean: {audit['n_findings']} unsuppressed "
                f"findings (run `{hint} src/repro` for the list)"
            )
        if audit["unjustified_suppressions"]:
            raise AssertionError(
                f"pragmas without justification: {audit['unjustified_suppressions']}"
            )
        if not audit["deterministic"]:
            raise AssertionError("repeated audits produced different report JSON")
        if audit["n_files"] < _MIN_FILES or audit["n_functions"] < _MIN_FUNCTIONS:
            raise AssertionError(
                f"audit coverage collapsed: {audit['n_files']} files / "
                f"{audit['n_functions']} functions scanned"
            )
        if audit["n_reachable"] < len(audit["entry_points"]):
            raise AssertionError("entry points no longer resolve to scanned functions")
        if audit["seconds"] > _SECONDS_BOUND:
            raise AssertionError(
                f"audit took {audit['seconds']:.1f}s, over the "
                f"{_SECONDS_BOUND:.0f}s bound"
            )
    combined = payload["combined"]
    if combined["n_contract_drifts"] != 0:
        raise AssertionError(
            "frozen wire contracts drifted (run `repro audit --contracts`)"
        )
    if combined["overhead_vs_dt"] > _COMBINED_OVERHEAD_BOUND:
        raise AssertionError(
            f"combined DT+DX audit costs {combined['overhead_vs_dt']:.2f}x the "
            f"standalone DT audit, over the {_COMBINED_OVERHEAD_BOUND}x bound"
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true", help="fewer repeats for CI")
    parser.add_argument(
        "--output",
        default="BENCH_audit.json",
        help="where to write the results JSON",
    )
    args = parser.parse_args(argv)

    root = Path(__file__).resolve().parent.parent / "src" / "repro"
    repeats = 2 if args.smoke else 5
    print(f"audit ({'smoke' if args.smoke else 'reference'}): {root}")
    audit = _bench_family(root, repeats, lambda r: audit_paths([r]), "dt")
    dx = _bench_family(root, repeats, lambda r: audit_portability([r]), "dx")
    combined = _bench_combined(root, repeats)

    payload = {
        "schema_version": SCHEMA_VERSION,
        "benchmark": "audit",
        "smoke": args.smoke,
        "cpus": os.cpu_count() or 1,
        "audit": audit,
        "dx": dx,
        "combined": combined,
    }
    _validate(payload)
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
