"""Ablation: the beta hyper-parameter (prior strength).

Runs Algorithm 1 at a weak and at the paper's strong beta and compares the
designs' over-clocking exposure.  The prior is the only channel through
which beta acts, so this isolates the value of penalising error-prone
coefficient values during sampling.
"""

import numpy as np

from repro.circuits.domains import Domain
from repro.eval.report import render_table

from .conftest import run_once


def _evaluate(ctx, result):
    rows = []
    for d in result.designs:
        ev = ctx.framework.evaluate(d, ctx.x_test, Domain.ACTUAL)
        rows.append(
            {
                "wordlengths": d.wordlengths,
                "area": ev.area_le,
                "actual_mse": ev.mse,
                "oc_term": d.metadata["overclocking_term"],
            }
        )
    return rows


def test_beta_controls_overclocking_exposure(ctx, benchmark):
    def run():
        weak = ctx.of_result(beta=0.2)
        strong = ctx.of_result(beta=4.0)
        return _evaluate(ctx, weak), _evaluate(ctx, strong)

    weak_rows, strong_rows = run_once(benchmark, run)

    print()
    table = [
        ("beta=0.2", str(r["wordlengths"]), r["area"], r["actual_mse"], r["oc_term"])
        for r in weak_rows
    ] + [
        ("beta=4.0", str(r["wordlengths"]), r["area"], r["actual_mse"], r["oc_term"])
        for r in strong_rows
    ]
    print(
        render_table(
            ["run", "wordlengths", "area LE", "actual MSE", "predicted OC term"],
            table,
            title="Ablation: prior strength beta",
        )
    )

    # The strong prior never *selects* a higher predicted over-clocking
    # exposure than the weak one.
    weak_oc = np.mean([r["oc_term"] for r in weak_rows])
    strong_oc = np.mean([r["oc_term"] for r in strong_rows])
    assert strong_oc <= weak_oc + 1e-12

    # And its designs remain well-behaved on the device.
    strong_best = min(r["actual_mse"] for r in strong_rows)
    assert strong_best < 1e-2
