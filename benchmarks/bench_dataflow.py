#!/usr/bin/env python
"""Benchmark the word-level dataflow interpreter on the CCM family.

Times :func:`repro.analysis.analyze_dataflow` over the full 8-bit
constant-coefficient multiplier family (all 256 multiplicands), the
paper's Sec. III characterisation population: one abstract
interpretation per generated CCM netlist, unconditional and with the
data bus pinned (the exact-probe configuration WL004 uses).

Also times the downstream consumers on one representative placement:
the per-coefficient sensitisation-aware STA sweep and the equivalence
prover, so a regression anywhere in the analysis stack shows up in one
file.

Writes ``BENCH_dataflow.json`` (schema validated before writing).

Usage::

    python benchmarks/bench_dataflow.py
    python benchmarks/bench_dataflow.py --smoke   # 16 coefficients
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis import (
    analyze_dataflow,
    coefficient_timing_profile,
    prove_multiplier,
)
from repro.fabric.device import make_device
from repro.netlist import ccm_multiplier, unsigned_array_multiplier
from repro.synthesis import SynthesisFlow

SCHEMA_VERSION = 1

_TOP_KEYS = {"schema_version", "benchmark", "smoke", "family", "sta", "proofs"}


def _time(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def bench_ccm_family(coefficients: list[int]) -> dict:
    """Dataflow over every CCM netlist, unconditional + pinned."""
    compiled = [ccm_multiplier(c, 8).compile() for c in coefficients]
    n_nodes = sum(cn.n_nodes for cn in compiled)

    t_uncond = _time(lambda: [analyze_dataflow(cn) for cn in compiled])
    t_pinned = _time(
        lambda: [analyze_dataflow(cn, {"x": 173}) for cn in compiled]
    )

    # Sanity on the pinned pass: abstract interpretation is exact there.
    for c, cn in zip(coefficients, compiled):
        flow = analyze_dataflow(cn, {"x": 173})
        assert flow.constant_value("p") == c * 173, c

    n = len(coefficients)
    return {
        "n_coefficients": n,
        "total_nodes": n_nodes,
        "unconditional_s": round(t_uncond, 4),
        "pinned_s": round(t_pinned, 4),
        "per_netlist_ms": round(1000.0 * t_uncond / n, 3),
        "nodes_per_second": round(n_nodes / t_uncond, 1),
    }


def bench_sta_sweep(coefficients: list[int]) -> dict:
    """Per-coefficient sensitised STA on one placed 8x8 multiplier."""
    device = make_device(serial=7)
    placed = SynthesisFlow(device).run(unsigned_array_multiplier(8, 8))
    mags = sorted(set(coefficients))
    out: dict = {}
    t = _time(
        lambda: out.setdefault(
            "profile", coefficient_timing_profile(placed, multiplicands=mags)
        )
    )
    profile = out["profile"]
    fmax = profile.static_fmax_mhz()
    return {
        "n_coefficients": len(mags),
        "sweep_s": round(t, 4),
        "per_coefficient_ms": round(1000.0 * t / len(mags), 3),
        "worst_case_period_ns": round(float(profile.worst_case_period_ns.max()), 4),
        "n_tighter_than_worst_case": int(
            (profile.min_period_ns.max(axis=1)
             < profile.worst_case_period_ns.max()).sum()
        ),
        "max_static_fmax_mhz": None
        if not bool((fmax != float("inf")).any())
        else round(float(fmax[fmax != float("inf")].max()), 2),
    }


def bench_proofs(coefficients: list[int]) -> dict:
    """Exhaustive equivalence certificates over the CCM family."""
    t0 = time.perf_counter()
    n_vectors = 0
    for c in coefficients:
        cert = prove_multiplier(ccm_multiplier(c, 8))
        assert cert.passed and cert.method == "exhaustive", c
        n_vectors += cert.n_vectors
    t = time.perf_counter() - t0
    return {
        "n_certificates": len(coefficients),
        "n_vectors": n_vectors,
        "total_s": round(t, 4),
        "per_certificate_ms": round(1000.0 * t / len(coefficients), 3),
    }


def _validate(payload: dict) -> None:
    assert set(payload) == _TOP_KEYS, sorted(payload)
    assert payload["schema_version"] == SCHEMA_VERSION
    fam = payload["family"]
    assert fam["n_coefficients"] > 0 and fam["unconditional_s"] > 0
    assert payload["proofs"]["n_certificates"] == fam["n_coefficients"]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="16 coefficients instead of all 256")
    parser.add_argument("--output", default=str(
        Path(__file__).resolve().parent.parent / "BENCH_dataflow.json"))
    args = parser.parse_args()

    coefficients = list(range(0, 256, 16)) if args.smoke else list(range(256))

    print(f"dataflow family: {len(coefficients)} CCM netlists ...")
    family = bench_ccm_family(coefficients)
    print(f"  {family['per_netlist_ms']} ms/netlist, "
          f"{family['nodes_per_second']} nodes/s")

    sta_coeffs = coefficients if args.smoke else list(range(0, 256, 4))
    print(f"sensitised STA sweep: {len(sta_coeffs)} coefficients ...")
    sta = bench_sta_sweep(sta_coeffs)
    print(f"  {sta['per_coefficient_ms']} ms/coefficient")

    print(f"equivalence proofs: {len(coefficients)} certificates ...")
    proofs = bench_proofs(coefficients)
    print(f"  {proofs['per_certificate_ms']} ms/certificate")

    payload = {
        "schema_version": SCHEMA_VERSION,
        "benchmark": "dataflow",
        "smoke": bool(args.smoke),
        "family": family,
        "sta": sta,
        "proofs": proofs,
    }
    _validate(payload)
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
