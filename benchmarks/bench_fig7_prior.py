"""Fig. 7 bench: the coefficient prior at beta in {0.1, 1.0, 4.0}.

Prints summary statistics of the three priors and asserts the paper's
reading of the figure: beta = 0.1 is nearly flat, beta = 4.0 gives
error-prone coefficient values essentially zero sampling probability.
"""

from repro.eval.figures import fig7
from repro.eval.report import render_table

from .conftest import run_once


def test_fig7_prior_shapes(ctx, benchmark):
    result = run_once(benchmark, fig7, ctx)

    print()
    rows = [
        (
            beta,
            info["entropy"],
            info["mass_ratio_max_min"],
        )
        for beta, info in sorted(result["betas"].items())
    ]
    print(
        render_table(
            ["beta", "entropy (nats)", "max/min prior mass"],
            rows,
            title=(
                f"Fig. 7: prior over {result['wordlength']}-bit coefficients "
                f"@ {result['freq_mhz']} MHz"
            ),
        )
    )

    b = result["betas"]
    # beta = 0.1: "almost the same probability of being sampled" — within
    # one order of magnitude across the whole grid, versus tens of orders
    # at beta = 4 (the raw variances span ~9 decades).
    assert b[0.1]["mass_ratio_max_min"] < 10.0
    # beta = 4.0: "high over-clocking errors have low probability".
    assert b[4.0]["mass_ratio_max_min"] > 100.0
    # Entropy strictly decreasing in beta.
    es = [b[x]["entropy"] for x in (0.1, 1.0, 4.0)]
    assert es == sorted(es, reverse=True)
    # Every prior is a proper distribution over the same grid.
    for info in b.values():
        assert abs(sum(info["mass"]) - 1.0) < 1e-9
        assert len(info["mass"]) == len(info["values"])
