"""Fig. 4 bench: error traces of multiplicand 222 at 320 MHz, two locations.

Prints the first errors and the error histograms per location and asserts
the paper's observation that placement changes the error pattern.
"""

import numpy as np

from repro.eval.figures import fig4
from repro.eval.report import render_table

from .conftest import run_once


def test_fig4_two_locations(ctx, benchmark):
    result = run_once(benchmark, fig4, ctx)

    print()
    for name, loc in result["locations"].items():
        errs = np.asarray(loc["first_errors"])
        nz = errs[errs != 0]
        print(
            f"{name} @ anchor {loc['anchor']}: rate={loc['error_rate']:.4f} "
            f"variance={loc['error_variance']:.3e} "
            f"first nonzero errors: {nz[:8].tolist()}"
        )
    r1 = result["locations"]["loc 1"]
    rows = list(
        zip(
            [f"{e:.0f}" for e in r1["histogram_edges"][:-1]],
            r1["histogram_counts"],
        )
    )
    print(render_table(["error bin >=", "count (loc 1)"], rows))

    # Over-clocking at 320 MHz produces errors (paper Fig. 4 regime)...
    assert max(loc["error_rate"] for loc in result["locations"].values()) > 0
    # ...and the two placements behave differently.
    assert result["locations_differ"]
    # Errors are large in magnitude (MSbs fail first; paper notes the
    # "high error values are expected").
    assert max(abs(e) for e in r1["histogram_edges"]) > 1000
