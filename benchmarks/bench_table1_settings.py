"""Table I bench: the case-study settings.

Prints the paper's settings next to the bench context's scaled settings
and asserts the library defaults reproduce Table I exactly.
"""

from dataclasses import asdict

from repro.config import TableISettings
from repro.eval.report import render_table
from repro.eval.tables import table1

from .conftest import run_once


def test_table1_settings(ctx, benchmark):
    result = run_once(benchmark, table1, ctx.settings)

    print()
    rows = [
        (key, result["paper"][key], result["used"][key])
        for key in sorted(result["paper"])
    ]
    print(
        render_table(
            ["parameter", "paper (Table I)", "this bench run"],
            rows,
            title="Table I: case-study settings",
        )
    )

    paper = result["paper"]
    assert paper["p"] == 6 and paper["k"] == 3
    assert paper["n_characterization"] == 4900
    assert paper["n_train"] == 100
    assert paper["n_test"] == 5000
    assert tuple(paper["betas"]) == (4.0, 8.0)
    assert paper["q"] == 5
    assert paper["clock_frequency_mhz"] == 310.0
    assert paper["input_wordlength"] == 9
    assert (paper["min_coeff_wordlength"], paper["max_coeff_wordlength"]) == (3, 9)
    assert paper["burn_in"] == 1000
    assert paper["n_samples"] == 3000
    # The library default IS the paper's Table I.
    assert asdict(TableISettings()) == paper
