"""Fig. 11 bench: the headline comparison — OF designs vs the KLT
methodology, both over-clocked to 310 MHz.

Prints both families' (area, actual MSE) points and asserts the paper's
claims: the framework's designs behave as expected under over-clocking
and deliver a large average reconstruction-error improvement at the same
area (paper: "around an order of magnitude on average").
"""

from repro.eval.figures import fig11
from repro.eval.report import render_table

from .conftest import run_once


def test_fig11_of_vs_klt(ctx, benchmark):
    result = run_once(benchmark, fig11, ctx)

    print()
    rows = [
        ("OF", str(r["wordlengths"]), r["area_le"], r["actual_mse"], r["predicted_mse"])
        for r in result["of_rows"]
    ] + [
        ("KLT", r["wordlength"], r["area_le"], r["actual_mse"], r["predicted_mse"])
        for r in result["klt_rows"]
    ]
    print(
        render_table(
            ["family", "wl", "area LE", "actual MSE", "predicted MSE"],
            rows,
            title=f"Fig. 11: reconstruction MSE @ {result['freq_mhz']:.0f} MHz",
        )
    )
    print(
        f"geometric-mean improvement at comparable area: "
        f"{result['geometric_mean_improvement']:.1f}x (paper: ~10x on average)"
    )

    # Large KLT designs err at the target clock (the regime Fig. 11 shows).
    klt_by_wl = {r["wordlength"]: r for r in result["klt_rows"]}
    assert any(rate > 0 for rate in klt_by_wl[9]["lane_error_rates"])

    # The OF wins on average at comparable area, substantially.
    assert result["geometric_mean_improvement"] > 2.0

    # And decisively where the KLT is error-bound: best OF design within
    # the 9-bit KLT's area is at least 3x better.
    of_feasible = [
        r["actual_mse"]
        for r in result["of_rows"]
        if r["area_le"] <= klt_by_wl[9]["area_le"] * 1.05
    ]
    assert of_feasible and min(of_feasible) < klt_by_wl[9]["actual_mse"] / 3
