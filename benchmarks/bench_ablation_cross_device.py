"""Ablation: per-device specificity — deploy a design on the wrong die.

The whole premise of the paper is that characterisation is *device
specific*.  This bench optimises designs against die A's error models and
evaluates them on die A and on die B (same family, different fabrication
outcome), against designs optimised for die B natively.

Expected shape: designs carry over reasonably (the family's gross
behaviour is shared) but the native optimisation is never worse — the
benefit of re-characterising each deployed device, which reconfigurability
makes cheap (paper Secs. I-II).
"""

import numpy as np

from repro.characterization import CharacterizationConfig
from repro.circuits.domains import Domain
from repro.config import TableISettings
from repro.datasets import low_rank_gaussian
from repro.eval.report import render_table
from repro.fabric import make_device
from repro.framework import OptimizationFramework, default_frequency_grid

from .conftest import run_once


def test_designs_are_device_specific(ctx, benchmark):
    settings = TableISettings(
        n_characterization=max(150, ctx.settings.n_characterization),
        n_train=ctx.settings.n_train,
        n_test=ctx.settings.n_test,
        burn_in=ctx.settings.burn_in,
        n_samples=ctx.settings.n_samples,
        q=3,
        clock_frequency_mhz=345.0,  # deep enough that device details matter
    )

    def run():
        char = CharacterizationConfig(
            freqs_mhz=default_frequency_grid(settings.clock_frequency_mhz),
            n_samples=settings.n_characterization,
            n_locations=2,  # pool locations, as the paper does (Sec. III-C)
        )
        dev_a = make_device(5001)
        dev_b = make_device(5002)
        fw_a = OptimizationFramework(dev_a, settings, char_config=char, seed=1)
        fw_b = OptimizationFramework(dev_b, settings, char_config=char, seed=1)
        x = low_rank_gaussian(
            settings.p, settings.k, settings.n_train + settings.n_test,
            np.random.default_rng(0), noise=0.02,
        )
        x_train, x_test = x[:, : settings.n_train], x[:, settings.n_train :]

        best_a = min(
            fw_a.optimize(x_train, beta=4.0).designs,
            key=lambda d: d.metadata["objective_t"],
        )
        best_b = min(
            fw_b.optimize(x_train, beta=4.0).designs,
            key=lambda d: d.metadata["objective_t"],
        )
        from repro.core.objective import objective_t

        models_b = fw_b.characterize()
        return {
            "a_on_a": fw_a.evaluate(best_a, x_test, Domain.ACTUAL).mse,
            "a_on_b": fw_b.evaluate(best_a, x_test, Domain.ACTUAL).mse,
            "b_on_b": fw_b.evaluate(best_b, x_test, Domain.ACTUAL).mse,
            # The criterion each optimiser actually controls: die B's own
            # predicted objective T for both designs.
            "pred_b_native": objective_t(best_b, x_train, models_b)["objective_t"],
            "pred_b_imported": objective_t(best_a, x_train, models_b)["objective_t"],
            "design_a": best_a.wordlengths,
            "design_b": best_b.wordlengths,
            "models_differ": not np.allclose(
                fw_a.characterize().model(9).variance,
                models_b.model(9).variance,
            ),
        }

    r = run_once(benchmark, run)

    print()
    print(
        render_table(
            ["deployment", "actual MSE"],
            [
                (f"A-optimised {r['design_a']} on die A", r["a_on_a"]),
                (f"A-optimised {r['design_a']} on die B", r["a_on_b"]),
                (f"B-optimised {r['design_b']} on die B", r["b_on_b"]),
            ],
            title="Ablation: cross-device deployment @ 345 MHz",
        )
    )
    print(
        f"die B's own predicted T: native {r['pred_b_native']:.3e} vs "
        f"imported {r['pred_b_imported']:.3e}"
    )

    # The two dies genuinely have different error landscapes.
    assert r["models_differ"]
    # On die B's own risk-adjusted criterion (what the per-device
    # optimisation controls), the native design is at least as good as the
    # imported one — an imported design may still get lucky on one
    # particular test stream, which is exactly why the paper optimises
    # against the characterised expectation rather than a single run.
    assert r["pred_b_native"] <= r["pred_b_imported"] * 1.05
    # All deployments remain sane (no catastrophic failure either way —
    # the dies share the family's gross behaviour).
    assert r["a_on_b"] < 100 * r["a_on_a"] + 1e-3
    assert r["b_on_b"] < 100 * r["a_on_a"] + 1e-3
