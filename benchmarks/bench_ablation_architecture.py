"""Ablation: multiplier architecture (ripple array vs Wallace tree).

The characterisation framework is component-agnostic (paper Sec. III-A);
this bench characterises two different 8x8 multiplier architectures on
the same die and compares their over-clocking landscapes: the tree buys a
higher error-free Fmax with slightly more LEs, and its failures spread
more evenly across output bits than the array's MSb-concentrated ones.
"""

import numpy as np

from repro.eval.report import render_table
from repro.fabric.jitter import JitterModel
from repro.netlist.core import bits_from_ints
from repro.netlist.multipliers import unsigned_array_multiplier
from repro.netlist.wallace import wallace_tree_multiplier
from repro.synthesis import SynthesisFlow
from repro.timing import capture_stream, simulate_transitions

from .conftest import run_once


def _profile(ctx, netlist, freqs, n=3000):
    placed = SynthesisFlow(ctx.device).run(netlist, anchor=(0, 0), seed=0)
    rng = np.random.default_rng(0)
    ins = {
        "a": bits_from_ints(rng.integers(0, 256, n), 8),
        "b": bits_from_ints(rng.integers(0, 256, n), 8),
    }
    timing = simulate_transitions(
        placed.netlist, ins, placed.node_delay, placed.edge_delay
    )
    rates = []
    ber_at_mid = None
    for i, f in enumerate(freqs):
        cap = capture_stream(
            timing, "p", float(f), setup_ns=placed.setup_ns,
            jitter=JitterModel(), rng=np.random.default_rng(i),
        )
        rates.append(cap.error_rate())
        if i == len(freqs) - 2:
            ber_at_mid = cap.bit_error_rate()
    return placed, rates, ber_at_mid


def test_array_vs_tree_architecture(ctx, benchmark):
    freqs = np.arange(260.0, 440.0, 20.0)

    def run():
        array = _profile(ctx, unsigned_array_multiplier(8, 8), freqs)
        tree = _profile(ctx, wallace_tree_multiplier(8, 8), freqs)
        return array, tree

    (a_placed, a_rates, a_ber), (t_placed, t_rates, t_ber) = run_once(benchmark, run)

    print()
    print(
        render_table(
            ["freq MHz", "array error rate", "tree error rate"],
            list(zip([f"{f:.0f}" for f in freqs], a_rates, t_rates)),
            title="Ablation: ripple array vs Wallace tree under over-clocking",
        )
    )
    print(
        f"array: {a_placed.area.logic_elements} LE, STA "
        f"{a_placed.device_sta().fmax_mhz:.0f} MHz | tree: "
        f"{t_placed.area.logic_elements} LE, STA "
        f"{t_placed.device_sta().fmax_mhz:.0f} MHz"
    )

    # The tree clocks faster on the same fabric...
    assert t_placed.device_sta().fmax_mhz > a_placed.device_sta().fmax_mhz
    # ...so at every swept frequency it errs no more than the array.
    assert all(t <= a + 1e-9 for a, t in zip(a_rates, t_rates))
    # ...at a modest LE premium.
    assert t_placed.area.logic_elements >= a_placed.area.logic_elements

    # Error locality: the array concentrates failures in the MSbs far more
    # than the tree does (ratio of top-bits to mid-bits error rates).
    if a_ber is not None and a_ber[8:].mean() > 0 and t_ber[8:].mean() > 0:
        a_skew = a_ber[12:].mean() / max(a_ber[4:8].mean(), 1e-9)
        t_skew = t_ber[12:].mean() / max(t_ber[4:8].mean(), 1e-9)
        print(f"MSb/mid error-rate skew: array {a_skew:.1f} vs tree {t_skew:.1f}")
