#!/usr/bin/env python
"""Benchmark the parallel characterisation engine against the seed path.

Measures, on the reference sweep (8x8 multiplier, full multiplicand
enumeration, 2 locations):

* a **legacy replica** — the pre-engine harness loop, re-created here
  verbatim: per-frequency ``capture_stream`` calls, per-segment Python
  statistics, and the un-memoised PLL divider search on every synthesize
  call (the seed's cost profile);
* the **engine** at each requested worker count (measured wall-clock,
  plus a modelled multi-worker makespan from the per-shard serial
  timings — on a single-CPU host the measured pool numbers cannot show
  core scaling, the modelled ones show what the shard schedule allows);
* the **placed-design cache**, cold (every placement synthesised) vs
  warm (every placement loaded from disk).

Every run cross-checks bit-identity: the engine grids must be identical
across worker counts, and mean/error-rate must equal the legacy replica
exactly (variance to float tolerance — the vectorised two-pass moment
differs from ``ndarray.var`` in the last ulps).

Writes ``BENCH_characterization.json`` (schema below, validated before
writing).  ``--smoke`` shrinks the sweep to seconds for CI gates.

Usage::

    python benchmarks/bench_parallel_characterization.py
    python benchmarks/bench_parallel_characterization.py --smoke --jobs 1,2
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.characterization.circuit import CharacterizationCircuit
from repro.characterization.harness import (
    CharacterizationConfig,
    _resolve_multiplicands,
    characterize_multiplier,
)
from repro.fabric.device import make_device
from repro.fabric.pll import _synthesize_search
from repro.netlist.core import bits_from_ints
from repro.parallel import (
    PlacedDesignCache,
    Shard,
    SweepPlan,
    execute_shards,
    multiplier_netlist,
    run_shard,
)
from repro.rng import SeedTree
from repro.synthesis.flow import SynthesisFlow
from repro.timing.simulator import simulate_transitions

SCHEMA_VERSION = 1

#: Keys every emitted payload must carry (the check.sh smoke gate relies
#: on the validation below, so schema drift fails loudly).
_TOP_KEYS = {"schema_version", "benchmark", "smoke", "cpus", "sweep", "cache"}
_SWEEP_KEYS = {
    "w_data",
    "w_coeff",
    "n_multiplicands",
    "n_locations",
    "n_freqs",
    "n_samples",
    "n_shards",
    "legacy_seconds",
    "engine",
    "modelled",
    "bit_identical_across_jobs",
    "matches_legacy",
}
_CACHE_KEYS = {"n_anchors", "cold_seconds", "warm_seconds", "speedup"}


# ----------------------------------------------------------------------
# Legacy replica: the seed harness loop, including its per-call PLL cost.
def _legacy_pll_search(pll, freq_mhz: float):
    """The divider grid search exactly as the seed ran it: un-memoised."""
    return _synthesize_search.__wrapped__(pll.config, float(freq_mhz))


def _legacy_sweep(device, w_data, w_coeff, config, seed):
    """Replica of the pre-engine ``characterize_multiplier`` body.

    Same seed paths and draw order as the engine (so the outputs are
    comparable), but the seed's cost structure: a probe placement, a
    fresh synthesis per location, one ``capture`` per frequency with a
    fresh PLL grid search, and per-segment Python statistics loops.
    """
    tree = SeedTree(seed).child("characterization", f"{w_data}x{w_coeff}")
    multiplicands = _resolve_multiplicands(config, w_coeff)
    pll = device.family.pll

    seen, freq_requests = set(), []
    for f in sorted(config.freqs_mhz):
        achieved_f = round(_legacy_pll_search(pll, f).achieved_mhz, 6)
        if achieved_f not in seen:
            seen.add(achieved_f)
            freq_requests.append(f)

    flow = SynthesisFlow(device)
    probe = flow.run(multiplier_netlist(w_data, w_coeff), anchor=(0, 0), seed=seed)
    locations = tuple(flow.available_anchors(probe.netlist, config.n_locations))

    n_f, n_m, n_l = len(freq_requests), multiplicands.shape[0], len(locations)
    variance = np.zeros((n_l, n_m, n_f))
    mean = np.zeros((n_l, n_m, n_f))
    rate = np.zeros((n_l, n_m, n_f))
    seg_len = config.n_samples + 1
    achieved = [_legacy_pll_search(pll, f).achieved_mhz for f in freq_requests]

    for li, loc in enumerate(locations):
        circuit = CharacterizationCircuit(
            device,
            w_data,
            w_coeff,
            anchor=loc,
            seed=seed + li,
            max_stream_depth=max(32768, seg_len * config.segment_chunk),
            cache=PlacedDesignCache(),  # empty: synthesis runs, as in the seed
        )
        stim_rng = tree.rng("stimulus", str(loc))
        for start in range(0, n_m, config.segment_chunk):
            chunk = multiplicands[start : start + config.segment_chunk]
            stream = stim_rng.integers(
                0, 1 << w_data, size=seg_len * chunk.shape[0], dtype=np.int64
            )
            inputs = {
                "a": bits_from_ints(stream, w_data),
                "b": bits_from_ints(np.repeat(chunk, seg_len), w_coeff),
            }
            timing = simulate_transitions(
                circuit.placed.netlist,
                inputs,
                circuit.placed.node_delay,
                circuit.placed.edge_delay,
            )
            n_tr = seg_len * chunk.shape[0] - 1
            valid = np.ones(n_tr, dtype=bool)
            valid[np.arange(1, chunk.shape[0]) * seg_len - 1] = False
            seg_of_transition = np.arange(n_tr) // seg_len
            for fi, f in enumerate(freq_requests):
                _legacy_pll_search(pll, f)  # the seed searched on every capture
                cap_rng = tree.rng("capture", str(loc), f"{f}", str(start))
                run_all = circuit.capture(timing, int(chunk[0]), f, cap_rng)
                errors = run_all.captured - run_all.expected
                for ci in range(chunk.shape[0]):
                    e = errors[valid & (seg_of_transition == ci)]
                    mi = start + ci
                    variance[li, mi, fi] = float(e.var())
                    mean[li, mi, fi] = float(e.mean())
                    rate[li, mi, fi] = float((e != 0).mean())
    return {
        "variance": variance,
        "mean": mean,
        "error_rate": rate,
        "freqs_mhz": np.asarray(achieved),
        "locations": locations,
    }


# ----------------------------------------------------------------------
def _build_shards(device, w_data, w_coeff, config, seed):
    """The engine's sharding, reproduced for per-shard timing."""
    tree = SeedTree(seed).child("characterization", f"{w_data}x{w_coeff}")
    multiplicands = _resolve_multiplicands(config, w_coeff)
    pll = device.family.pll
    seen, freq_requests = set(), []
    for f in sorted(config.freqs_mhz):
        achieved_f = round(pll.synthesize(f).achieved_mhz, 6)
        if achieved_f not in seen:
            seen.add(achieved_f)
            freq_requests.append(f)
    flow = SynthesisFlow(device)
    locations = tuple(
        flow.available_anchors(multiplier_netlist(w_data, w_coeff), config.n_locations)
    )
    seg_len = config.n_samples + 1
    plan = SweepPlan(
        w_data=w_data,
        w_coeff=w_coeff,
        seed=seed,
        freqs_mhz=tuple(freq_requests),
        achieved_mhz=pll.achieved_grid(freq_requests),
        n_samples=config.n_samples,
        max_stream_depth=max(32768, seg_len * config.segment_chunk),
    )
    shards = []
    for li, loc in enumerate(locations):
        stim_rng = tree.rng("stimulus", str(loc))
        for start in range(0, multiplicands.shape[0], config.segment_chunk):
            chunk = multiplicands[start : start + config.segment_chunk]
            stream = stim_rng.integers(
                0, 1 << w_data, size=seg_len * chunk.shape[0], dtype=np.int64
            )
            shards.append(
                Shard(li=li, location=loc, start=start, multiplicands=chunk, stimulus=stream)
            )
    return plan, shards


def _modelled_makespan(shard_seconds: list[float], jobs: int, startup_s: float = 0.25) -> float:
    """LPT-scheduled makespan of the measured shard times over ``jobs`` workers.

    What a multi-core host would see, up to pool overheads (a fixed
    startup allowance stands in for fork + initializer cost).
    """
    workers = [0.0] * max(1, jobs)
    for t in sorted(shard_seconds, reverse=True):
        workers[workers.index(min(workers))] += t
    return max(workers) + (startup_s if jobs > 1 else 0.0)


def _bench_sweep(device, config, jobs_list, seed):
    w_data = w_coeff = 8
    results = {}

    t0 = time.perf_counter()
    legacy = _legacy_sweep(device, w_data, w_coeff, config, seed)
    legacy_s = time.perf_counter() - t0
    print(f"  legacy replica: {legacy_s:.2f}s")

    # Per-shard serial timing (one warm-up placement first so the engine
    # numbers do not include the shared one-off netlist build).
    plan, shards = _build_shards(device, w_data, w_coeff, config, seed)
    cache = PlacedDesignCache()
    shard_seconds = []
    for shard in shards:
        t0 = time.perf_counter()
        run_shard(device, plan, shard, cache)
        shard_seconds.append(time.perf_counter() - t0)

    engine_rows = []
    grids = {}
    for jobs in jobs_list:
        t0 = time.perf_counter()
        r = characterize_multiplier(
            device, w_data, w_coeff, config, seed=seed, jobs=jobs, cache=PlacedDesignCache()
        )
        dt = time.perf_counter() - t0
        engine_rows.append(
            {"jobs": jobs, "seconds": round(dt, 4), "speedup_vs_legacy": round(legacy_s / dt, 3)}
        )
        grids[jobs] = r
        print(f"  engine jobs={jobs}: {dt:.2f}s ({legacy_s / dt:.2f}x vs legacy)")

    ref = grids[jobs_list[0]]
    bit_identical = all(
        np.array_equal(ref.variance, grids[j].variance)
        and np.array_equal(ref.mean, grids[j].mean)
        and np.array_equal(ref.error_rate, grids[j].error_rate)
        for j in jobs_list[1:]
    )
    matches_legacy = (
        np.array_equal(legacy["mean"], ref.mean)
        and np.array_equal(legacy["error_rate"], ref.error_rate)
        and np.allclose(legacy["variance"], ref.variance, rtol=1e-9, atol=1e-9)
        and np.array_equal(legacy["freqs_mhz"], ref.freqs_mhz)
        and legacy["locations"] == ref.locations
    )

    model_jobs = max(jobs_list)
    modelled_s = _modelled_makespan(shard_seconds, model_jobs)
    print(
        f"  modelled jobs={model_jobs} makespan: {modelled_s:.2f}s "
        f"({legacy_s / modelled_s:.2f}x vs legacy)"
    )

    results["w_data"] = w_data
    results["w_coeff"] = w_coeff
    results["n_multiplicands"] = int(ref.multiplicands.shape[0])
    results["n_locations"] = len(ref.locations)
    results["n_freqs"] = int(ref.freqs_mhz.shape[0])
    results["n_samples"] = config.n_samples
    results["n_shards"] = len(shards)
    results["legacy_seconds"] = round(legacy_s, 4)
    results["engine"] = engine_rows
    results["modelled"] = {
        "jobs": model_jobs,
        "seconds": round(modelled_s, 4),
        "speedup_vs_legacy": round(legacy_s / modelled_s, 3),
        "note": "LPT makespan of measured serial shard times; what a host "
        "with >= that many cores would see",
    }
    results["bit_identical_across_jobs"] = bool(bit_identical)
    results["matches_legacy"] = bool(matches_legacy)
    return results


def _bench_cache(device, n_anchors):
    netlist = multiplier_netlist(8, 8)
    flow = SynthesisFlow(device)
    anchors = flow.available_anchors(netlist, n_anchors)
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
        cold = PlacedDesignCache(tmp)
        t0 = time.perf_counter()
        cold_designs = [cold.get_or_place(device, 8, 8, a, 0) for a in anchors]
        cold_s = time.perf_counter() - t0

        warm = PlacedDesignCache(tmp)  # fresh instance: every hit is a disk load
        t0 = time.perf_counter()
        warm_designs = [warm.get_or_place(device, 8, 8, a, 0) for a in anchors]
        warm_s = time.perf_counter() - t0

        identical = all(
            np.array_equal(c.node_delay, w.node_delay)
            for c, w in zip(cold_designs, warm_designs)
        )
        stats = warm.stats()
        assert stats.disk_hits == len(anchors), "warm pass must hit disk only"
    if not identical:
        raise AssertionError("cache round-trip changed placed delays")
    print(
        f"  cache: cold {cold_s:.3f}s, warm {warm_s:.3f}s "
        f"({cold_s / warm_s:.1f}x) over {len(anchors)} anchors"
    )
    return {
        "n_anchors": len(anchors),
        "cold_seconds": round(cold_s, 4),
        "warm_seconds": round(warm_s, 4),
        "speedup": round(cold_s / warm_s, 3),
    }


def _validate(payload: dict) -> None:
    missing = _TOP_KEYS - payload.keys()
    if missing:
        raise AssertionError(f"payload missing keys: {sorted(missing)}")
    missing = _SWEEP_KEYS - payload["sweep"].keys()
    if missing:
        raise AssertionError(f"sweep section missing keys: {sorted(missing)}")
    missing = _CACHE_KEYS - payload["cache"].keys()
    if missing:
        raise AssertionError(f"cache section missing keys: {sorted(missing)}")
    if not payload["sweep"]["bit_identical_across_jobs"]:
        raise AssertionError("engine grids differ across worker counts")
    if not payload["sweep"]["matches_legacy"]:
        raise AssertionError("engine grids differ from the legacy replica")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true", help="tiny sweep for CI gates")
    parser.add_argument(
        "--jobs",
        default="1,4",
        help="comma-separated worker counts to measure (default: 1,4)",
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--output",
        default="BENCH_characterization.json",
        help="where to write the results JSON",
    )
    args = parser.parse_args(argv)
    jobs_list = [int(j) for j in args.jobs.split(",")]
    if any(j < 1 for j in jobs_list):
        parser.error("--jobs entries must be >= 1")

    device = make_device(args.seed)
    if args.smoke:
        config = CharacterizationConfig(
            freqs_mhz=(270.0, 300.0, 330.0),
            n_samples=60,
            multiplicands=tuple(range(16)),
            n_locations=2,
        )
        n_anchors = 6
    else:
        # The reference sweep: full 8-bit multiplicand enumeration at two
        # locations (paper procedure, sample count scaled for bench time).
        config = CharacterizationConfig(n_samples=200, multiplicands=None, n_locations=2)
        n_anchors = 24

    print(f"sweep ({'smoke' if args.smoke else 'reference'}):")
    sweep = _bench_sweep(device, config, jobs_list, args.seed)
    print("cache:")
    cache = _bench_cache(device, n_anchors)

    payload = {
        "schema_version": SCHEMA_VERSION,
        "benchmark": "parallel_characterization",
        "smoke": args.smoke,
        "cpus": os.cpu_count() or 1,
        "sweep": sweep,
        "cache": cache,
    }
    _validate(payload)
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
