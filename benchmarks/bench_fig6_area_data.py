"""Fig. 6 bench: the raw area-model data — LE vs word-length scatter.

Prints mean LE and run-to-run spread per word-length and asserts the
monotone growth and the presence of synthesis-run scatter.
"""

from repro.eval.figures import fig6
from repro.eval.report import render_table

from .conftest import run_once


def test_fig6_area_data(ctx, benchmark):
    result = run_once(benchmark, fig6, ctx, n_runs=6)

    print()
    rows = [
        (wl, result["mean_le_by_wordlength"][wl], result["spread_le_by_wordlength"][wl])
        for wl in sorted(result["mean_le_by_wordlength"])
    ]
    print(
        render_table(
            ["wordlength", "mean LE", "run spread (max-min)"],
            rows,
            title="Fig. 6: MAC-block area vs word-length across placements",
        )
    )

    means = [r[1] for r in rows]
    assert means == sorted(means)
    assert means[-1] > 2 * means[0]
    # Multiple placements/synthesis runs scatter (the figure's point).
    assert any(r[2] > 0 for r in rows)
