"""Fig. 8 bench: maximum clock frequencies vs coefficient word-length.

Prints the Tool-Fmax / data-path-Fmax / error-onset rows for the KLT
design at every word-length and asserts the paper's structure, including
the headline: the 310 MHz target is a deep over-clock of the 9-bit design
(paper: 1.85x the tool report).
"""

from repro.eval.figures import fig8
from repro.eval.report import render_table

from .conftest import run_once


def test_fig8_fmax_vs_wordlength(ctx, benchmark):
    result = run_once(benchmark, fig8, ctx)

    print()
    rows = [
        (
            r["wordlength"],
            r["tool_fmax_mhz"],
            r["device_sta_fmax_mhz"],
            r["datapath_fmax_mhz"],
            r["error_onset_range_mhz"][1],
        )
        for r in result["rows"]
    ]
    print(
        render_table(
            ["wl", "Tool Fmax", "device STA Fmax", "data-path Fmax", "fC"],
            rows,
            title="Fig. 8: maximum clock frequencies vs word-length (KLT design)",
        )
    )
    print(
        f"target {result['target_freq_mhz']:.0f} MHz = "
        f"{result['overclock_factor_vs_9bit_tool']:.2f}x the 9-bit Tool Fmax "
        "(paper: 1.85x)"
    )

    for r in result["rows"]:
        # Tool report < device STA bound <= measured error-free Fmax.
        assert r["tool_fmax_mhz"] < r["device_sta_fmax_mhz"]
        assert r["datapath_fmax_mhz"] >= r["device_sta_fmax_mhz"] * 0.85

    tools = [r["tool_fmax_mhz"] for r in result["rows"]]
    assert tools == sorted(tools, reverse=True)  # Fmax falls with wl

    # Headline factor: same regime as the paper's 1.85x.
    assert 1.5 < result["overclock_factor_vs_9bit_tool"] < 2.6

    # At the target clock, the largest designs operate in the error regime
    # while the smallest are still error-free (paper Sec. VI-D).
    target = result["target_freq_mhz"]
    onset = {r["wordlength"]: r["datapath_fmax_mhz"] for r in result["rows"]}
    assert onset[9] < target
    assert onset[3] > target
