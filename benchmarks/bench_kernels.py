"""Micro-benchmarks of the library's hot kernels.

Unlike the figure benches (one-shot experiment replays) these use
pytest-benchmark's statistical timing, so regressions in the vectorised
hot paths show up directly.
"""

import numpy as np
import pytest

from repro.config import kernel_mode
from repro.core.bayesian import GibbsConfig, sample_projection_vector
from repro.kernels import evaluate_tile
from repro.models.prior import CoefficientPrior
from repro.netlist.core import bits_from_ints
from repro.netlist.multipliers import unsigned_array_multiplier
from repro.synthesis import SynthesisFlow
from repro.timing.capture import capture_stream
from repro.timing.simulator import simulate_transitions
from tests.conftest import make_synthetic_error_model

N_STREAM = 4000


def _placed(ctx):
    return SynthesisFlow(ctx.device).run(
        unsigned_array_multiplier(8, 8), anchor=(0, 0), seed=0
    )


def _inputs():
    rng = np.random.default_rng(0)
    return {
        "a": bits_from_ints(rng.integers(0, 256, N_STREAM), 8),
        "b": bits_from_ints(rng.integers(0, 256, N_STREAM), 8),
    }


@pytest.mark.parametrize("kernel", ["packed", "interp"])
def test_functional_evaluation_throughput(ctx, benchmark, kernel):
    placed = _placed(ctx)
    ins = _inputs()
    with kernel_mode(kernel):
        out = benchmark(placed.netlist.evaluate, ins)
    assert out["p"].shape == (N_STREAM, 16)


@pytest.mark.parametrize("kernel", ["packed", "interp"])
def test_transition_simulation_throughput(ctx, benchmark, kernel):
    placed = _placed(ctx)
    ins = _inputs()
    with kernel_mode(kernel):
        res = benchmark(
            simulate_transitions,
            placed.netlist,
            ins,
            placed.node_delay,
            placed.edge_delay,
        )
    assert res.settle.shape[1] == N_STREAM - 1


def test_tile_sweep_throughput(ctx, benchmark):
    cn = unsigned_array_multiplier(8, 8).compile()
    ms = np.arange(64, dtype=np.int64)
    samples = np.random.default_rng(0).integers(0, 256, 1024)
    out = benchmark(
        evaluate_tile, cn, fixed={"b": ms}, streamed={"a": samples}
    )
    assert out["p"].shape == (64, 1024)


def test_capture_throughput(ctx, benchmark):
    placed = _placed(ctx)
    timing = simulate_transitions(
        placed.netlist, _inputs(), placed.node_delay, placed.edge_delay
    )
    cap = benchmark(capture_stream, timing, "p", 320.0, placed.setup_ns)
    assert cap.n_cycles == N_STREAM - 1


def test_gibbs_sampling_throughput(ctx, benchmark):
    rng = np.random.default_rng(0)
    x = np.linalg.qr(rng.normal(size=(6, 6)))[0][:, :1] @ rng.normal(size=(1, 100))
    x = 0.5 * x / np.abs(x).max()
    prior = CoefficientPrior.from_error_model(
        make_synthetic_error_model(8), 310.0, 4.0
    )
    oc = np.zeros_like(prior.values)
    cfg = GibbsConfig(burn_in=50, n_samples=150, thin=10)

    def run():
        return sample_projection_vector(x, prior, oc, np.random.default_rng(1), cfg)

    s = benchmark(run)
    assert s.values.shape == (6,)
