#!/usr/bin/env python
"""Benchmark the bit-sliced kernel compiler against the interpreted path.

Measures the three consumers the kernel accelerates — functional
evaluation, transition timing, and the full characterisation sweep —
under ``REPRO_KERNEL=interp`` vs ``packed``, plus the plan compiler
itself (cold compile vs cache hit) and the tiled family sweep vs the
per-multiplicand python loop.

Every speedup rides on a verified contract: the packed results must be
**bit-identical** to the interpreted golden reference (integer outputs
byte-equal; float32 settle times and float64 statistic grids equal at
the bit-pattern level, not merely close).  A payload with any
``bit_identical_vs_interp: false`` fails validation, so the committed
JSON doubles as an equivalence certificate for the numbers it reports.

Writes ``BENCH_compile.json``.  ``--smoke`` shrinks stream lengths and
sweep sizes for the ``scripts/check.sh`` gate (which relaxes the
speedup floor but never the bit-identity contract).

Usage::

    python benchmarks/bench_compile.py
    python benchmarks/bench_compile.py --smoke
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.characterization import CharacterizationConfig, characterize_multiplier
from repro.config import kernel_mode
from repro.fabric import make_device
from repro.kernels import clear_plan_cache, evaluate_tile, plan_for
from repro.netlist.core import bits_from_ints
from repro.netlist.multipliers import unsigned_array_multiplier
from repro.synthesis import SynthesisFlow
from repro.timing.simulator import simulate_transitions

SCHEMA_VERSION = 1

_TOP_KEYS = {
    "schema_version",
    "benchmark",
    "smoke",
    "cpus",
    "functional",
    "timing",
    "sweep",
    "plan",
    "tile",
}
_SPEEDUP_KEYS = {
    "interp_seconds",
    "packed_seconds",
    "speedup",
    "bit_identical_vs_interp",
}

#: Full-mode floor for the functional-evaluation speedup (the ISSUE's
#: acceptance bar); smoke runs use a relaxed floor because the shorter
#: streams amortise less python overhead.
_FUNCTIONAL_SPEEDUP_FLOOR = 10.0
_FUNCTIONAL_SPEEDUP_FLOOR_SMOKE = 2.0


def _best(fn, repeats: int) -> tuple[float, object]:
    result = fn()  # warm-up (also compiles/caches plans)
    best = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        dt = time.perf_counter() - t0
        best = dt if best is None else min(best, dt)
    return float(best), result


def _speedup_entry(interp_s: float, packed_s: float, identical: bool) -> dict:
    return {
        "interp_seconds": round(interp_s, 5),
        "packed_seconds": round(packed_s, 5),
        "speedup": round(interp_s / packed_s, 2),
        "bit_identical_vs_interp": bool(identical),
    }


def _bench_functional(n_stream: int, repeats: int) -> dict:
    cn = unsigned_array_multiplier(8, 8).compile()
    rng = np.random.default_rng(0)
    inputs = {
        "a": bits_from_ints(rng.integers(0, 256, n_stream), 8),
        "b": bits_from_ints(rng.integers(0, 256, n_stream), 8),
    }
    with kernel_mode("interp"):
        interp_s, ref = _best(lambda: cn.evaluate(inputs), repeats)
    with kernel_mode("packed"):
        packed_s, got = _best(lambda: cn.evaluate(inputs), repeats)
    identical = all(
        np.array_equal(got[name], ref[name]) for name in ref
    ) and set(got) == set(ref)
    entry = _speedup_entry(interp_s, packed_s, identical)
    entry["n_stream"] = n_stream
    return entry


def _bench_timing(placed, n_stream: int, repeats: int) -> dict:
    rng = np.random.default_rng(1)
    inputs = {
        "a": bits_from_ints(rng.integers(0, 256, n_stream), 8),
        "b": bits_from_ints(rng.integers(0, 256, n_stream), 8),
    }

    def run():
        return simulate_transitions(
            placed.netlist, inputs, placed.node_delay, placed.edge_delay
        )

    with kernel_mode("interp"):
        interp_s, ref = _best(run, repeats)
    with kernel_mode("packed"):
        packed_s, got = _best(run, repeats)
    identical = np.array_equal(got.values, ref.values) and np.array_equal(
        got.settle.view(np.uint32), ref.settle.view(np.uint32)
    )
    entry = _speedup_entry(interp_s, packed_s, identical)
    entry["n_stream"] = n_stream
    return entry


def _bench_sweep(device, n_samples: int, n_mult: int, jobs_list: list[int]) -> dict:
    cfg = CharacterizationConfig(
        freqs_mhz=(300.0, 360.0, 420.0),
        n_samples=n_samples,
        multiplicands=tuple(range(n_mult)),
        n_locations=2,
    )

    out: dict = {"n_samples": n_samples, "n_multiplicands": n_mult, "jobs": {}}
    for jobs in jobs_list:
        with kernel_mode("interp"):
            t0 = time.perf_counter()
            ref = characterize_multiplier(device, 8, 4, cfg, seed=5, jobs=jobs)
            interp_s = time.perf_counter() - t0
        with kernel_mode("packed"):
            t0 = time.perf_counter()
            got = characterize_multiplier(device, 8, 4, cfg, seed=5, jobs=jobs)
            packed_s = time.perf_counter() - t0
        identical = (
            np.array_equal(got.variance.view(np.uint64), ref.variance.view(np.uint64))
            and np.array_equal(got.mean.view(np.uint64), ref.mean.view(np.uint64))
            and np.array_equal(
                got.error_rate.view(np.uint64), ref.error_rate.view(np.uint64)
            )
        )
        out["jobs"][str(jobs)] = _speedup_entry(interp_s, packed_s, identical)
    return out


def _bench_plan(repeats: int) -> dict:
    cn = unsigned_array_multiplier(8, 8).compile()

    def cold():
        clear_plan_cache()
        return plan_for(cn)

    compile_s, plan = _best(cold, repeats)
    plan_for(cn)  # ensure cached
    hit_s, _ = _best(lambda: plan_for(cn), max(repeats, 20))
    return {
        "compile_seconds": round(compile_s, 5),
        "cache_hit_seconds": round(hit_s, 6),
        "amortisation": round(compile_s / hit_s, 1),
        "n_nodes": plan.n_nodes,
        "n_groups": plan.n_groups,
    }


def _bench_tile(n_mult: int, n_samples: int, repeats: int) -> dict:
    cn = unsigned_array_multiplier(8, 8).compile()
    ms = np.arange(n_mult, dtype=np.int64)
    rng = np.random.default_rng(2)
    samples = rng.integers(0, 256, n_samples)

    def loop():
        return np.stack(
            [
                cn.evaluate_ints(a=samples, b=np.full(samples.shape, m))["p"]
                for m in ms
            ]
        )

    def tile():
        return evaluate_tile(cn, fixed={"b": ms}, streamed={"a": samples})["p"]

    with kernel_mode("interp"):
        loop_interp_s, ref = _best(loop, repeats)
    with kernel_mode("packed"):
        tile_s, got = _best(tile, repeats)
    return {
        "rows": int(n_mult),
        "samples_per_row": int(n_samples),
        "loop_interp_seconds": round(loop_interp_s, 5),
        "tile_packed_seconds": round(tile_s, 5),
        "speedup": round(loop_interp_s / tile_s, 2),
        "bit_identical_vs_interp": bool(np.array_equal(got, ref)),
    }


def _validate(payload: dict) -> None:
    missing = _TOP_KEYS - payload.keys()
    if missing:
        raise AssertionError(f"payload missing keys: {sorted(missing)}")
    speedup_entries = [payload["functional"], payload["timing"]] + list(
        payload["sweep"]["jobs"].values()
    )
    for entry in speedup_entries:
        lacking = _SPEEDUP_KEYS - entry.keys()
        if lacking:
            raise AssertionError(f"speedup entry missing keys: {sorted(lacking)}")
        if not entry["bit_identical_vs_interp"]:
            raise AssertionError(
                "packed kernel diverged from the interpreted reference: "
                f"{entry}"
            )
    if not payload["tile"]["bit_identical_vs_interp"]:
        raise AssertionError("tiled sweep diverged from the per-row interp loop")
    floor = (
        _FUNCTIONAL_SPEEDUP_FLOOR_SMOKE
        if payload["smoke"]
        else _FUNCTIONAL_SPEEDUP_FLOOR
    )
    if payload["functional"]["speedup"] < floor:
        raise AssertionError(
            f"functional speedup {payload['functional']['speedup']}x is under "
            f"the {floor}x floor"
        )
    if payload["plan"]["cache_hit_seconds"] >= payload["plan"]["compile_seconds"]:
        raise AssertionError("plan cache hit is not cheaper than a compile")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true", help="smaller sizes for CI")
    parser.add_argument(
        "--output",
        default="BENCH_compile.json",
        help="where to write the results JSON",
    )
    args = parser.parse_args(argv)

    n_stream = 1000 if args.smoke else 4000
    repeats = 3 if args.smoke else 7
    device = make_device(1234)
    placed = SynthesisFlow(device).run(
        unsigned_array_multiplier(8, 8), anchor=(0, 0), seed=0
    )

    print(f"kernel compiler bench ({'smoke' if args.smoke else 'reference'})")
    functional = _bench_functional(n_stream, repeats)
    print(f"  functional: {functional['speedup']}x")
    timing = _bench_timing(placed, n_stream, repeats)
    print(f"  timing: {timing['speedup']}x")
    sweep = _bench_sweep(
        device,
        n_samples=60 if args.smoke else 200,
        n_mult=8 if args.smoke else 16,
        jobs_list=[1] if args.smoke else [1, 4],
    )
    for jobs, entry in sweep["jobs"].items():
        print(f"  sweep jobs={jobs}: {entry['speedup']}x")
    plan = _bench_plan(repeats)
    print(f"  plan: compile {plan['compile_seconds']}s, hit {plan['cache_hit_seconds']}s")
    tile = _bench_tile(
        n_mult=16 if args.smoke else 64,
        n_samples=256 if args.smoke else 1024,
        repeats=repeats,
    )
    print(f"  tile vs interp loop: {tile['speedup']}x")

    payload = {
        "schema_version": SCHEMA_VERSION,
        "benchmark": "kernel_compiler",
        "smoke": args.smoke,
        "cpus": os.cpu_count() or 1,
        "functional": functional,
        "timing": timing,
        "sweep": sweep,
        "plan": plan,
        "tile": tile,
    }
    _validate(payload)
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
