"""Ablation: location sensitivity of the characterisation.

The paper characterises at multiple locations because placement changes
the error behaviour (Fig. 4).  This bench quantifies that: an error model
built at one corner of the die is compared against the behaviour observed
at the opposite corner.
"""

import numpy as np

from repro.characterization import CharacterizationConfig, characterize_multiplier
from repro.eval.report import render_table

from .conftest import run_once


def test_error_model_is_location_specific(ctx, benchmark):
    freqs = (290.0, 310.0, 330.0)

    def run():
        cfg = CharacterizationConfig(
            freqs_mhz=freqs,
            n_samples=max(150, ctx.settings.n_characterization),
            multiplicands=tuple(range(0, 256, 5)),
            n_locations=2,  # harness probes opposite regions of the die
        )
        return characterize_multiplier(ctx.device, 8, 8, cfg, seed=ctx.seed)

    result = run_once(benchmark, run)

    v0 = result.variance[0]  # (M, F) at location 0
    v1 = result.variance[1]
    rows = [
        (
            f"{f:.0f}",
            float(v0[:, i].mean()),
            float(v1[:, i].mean()),
        )
        for i, f in enumerate(result.freqs_mhz)
    ]
    print()
    print(
        render_table(
            ["freq MHz", f"mean var @ {result.locations[0]}", f"mean var @ {result.locations[1]}"],
            rows,
            title="Ablation: per-location error behaviour",
        )
    )

    # The two locations' error grids genuinely differ...
    assert not np.allclose(v0, v1)
    # ...but share the gross structure (correlation over cells with any
    # error at the top frequency).
    top0, top1 = v0[:, -1], v1[:, -1]
    active = (top0 > 0) | (top1 > 0)
    if active.sum() > 10:
        corr = np.corrcoef(top0[active], top1[active])[0, 1]
        print(f"cross-location correlation of E(m, f_top): {corr:.3f}")
        assert corr > 0.3
