"""Fig. 1 bench: error rate vs clock frequency; the fA < fB < fC regimes.

Prints the series the paper's conceptual Fig. 1 plots and asserts the
regime ordering: the tool limit fA sits below the error-free bound fB,
which sits below the point of meaningless results fC.
"""

from repro.eval.figures import fig1
from repro.eval.report import render_series

from .conftest import run_once


def test_fig1_regimes(ctx, benchmark):
    result = run_once(benchmark, fig1, ctx)

    print()
    print(
        render_series(
            "Fig. 1: erroneous results vs clock",
            [f"{f:.0f}" for f in result["freqs_mhz"]],
            [f"{e:.2f}" for e in result["error_rate_percent"]],
            "freq MHz",
            "error %",
        )
    )
    print(
        f"fA (tool) = {result['fA_tool_mhz']:.1f} MHz, "
        f"fB (error-free) = {result['fB_error_free_mhz']:.1f} MHz, "
        f"fC (meaningless) = {result['fC_meaningless_mhz']:.1f} MHz"
    )

    assert result["fA_tool_mhz"] < result["fB_error_free_mhz"]
    assert result["fB_error_free_mhz"] < result["fC_meaningless_mhz"]
    # The error-free regime Delta-f1 is a substantial over-clocking window.
    assert result["fB_error_free_mhz"] / result["fA_tool_mhz"] > 1.3
    rates = result["error_rate_percent"]
    assert all(a <= b + 1e-9 for a, b in zip(rates, rates[1:]))
